"""Tests for the extension features: trTCM, shaper, reconvergence, FRR,
hub-and-spoke VPNs, and inter-AS option A."""

import pytest

from repro.mpls import (
    FastReroute,
    FrrError,
    Lsr,
    TrafficEngineering,
    reset_ldp,
    run_ldp,
)
from repro.net.address import IPv4Address, Prefix
from repro.net.packet import IPHeader, Packet
from repro.qos.meter import Color, TrTCM
from repro.qos.shaper import TokenBucketShaper
from repro.routing import converge, reconverge, spf_paths
from repro.topology import Network, attach_host, build_fish, build_line
from repro.traffic import CbrSource, FlowSink
from repro.vpn import (
    PeRouter,
    VpnProvisioner,
    connect_option_a,
)

def pkt(size=100, dscp=0):
    return Packet(ip=IPHeader(IPv4Address(1), IPv4Address(2), dscp=dscp),
                  payload_bytes=size - 20)


class TestTrTCM:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrTCM(0, 100, 100, 100)
        with pytest.raises(ValueError):
            TrTCM(200, 100, 100, 100)  # PIR < CIR

    def test_green_within_cir(self):
        m = TrTCM(8e3, 1000, 16e3, 2000)
        assert m.color(500, 0.0) is Color.GREEN

    def test_yellow_between_cir_and_pir(self):
        m = TrTCM(8e3, 1000, 16e3, 2000)
        m.color(1000, 0.0)  # drain CIR bucket
        assert m.color(500, 0.0) is Color.YELLOW

    def test_red_above_pir(self):
        m = TrTCM(8e3, 1000, 16e3, 2000)
        m.color(1000, 0.0)
        m.color(1000, 0.0)
        assert m.color(500, 0.0) is Color.RED

    def test_red_consumes_nothing(self):
        m = TrTCM(8e3, 1000, 16e3, 1000)
        m.color(1000, 0.0)  # green, drains both
        assert m.color(500, 0.0) is Color.RED
        # Refill 0.25 s at PIR 2 kB/s = 500 B -> yellow possible again.
        assert m.color(500, 0.25) is Color.YELLOW

    def test_two_rates_refill_independently(self):
        m = TrTCM(8e3, 1000, 80e3, 1000)  # CIR 1 kB/s, PIR 10 kB/s
        m.color(1000, 0.0)
        # After 0.1 s: PIR bucket has 1000 B (capped), CIR only 100 B.
        assert m.color(800, 0.1) is Color.YELLOW


class TestShaper:
    def test_conformant_head_released(self):
        sh = TokenBucketShaper(8e3, 1000)
        p = pkt(500)
        assert sh.enqueue(p, 0.0)
        assert sh.dequeue(0.0) is p

    def test_out_of_profile_held(self):
        sh = TokenBucketShaper(8e3, 500)
        sh.enqueue(pkt(500), 0.0)
        sh.enqueue(pkt(500), 0.0)
        assert sh.dequeue(0.0) is not None
        assert sh.dequeue(0.0) is None       # bucket empty: held, not dropped
        assert len(sh) == 1

    def test_next_eligible_refill_time(self):
        sh = TokenBucketShaper(8e3, 500)     # 1 kB/s
        sh.enqueue(pkt(500), 0.0)
        sh.enqueue(pkt(500), 0.0)
        sh.dequeue(0.0)
        assert sh.next_eligible(0.0) == pytest.approx(0.5)
        assert sh.dequeue(0.5) is not None

    def test_next_eligible_inf_when_empty(self):
        assert TokenBucketShaper(8e3, 500).next_eligible(0.0) == float("inf")

    def test_capacity_drops(self):
        sh = TokenBucketShaper(8e3, 500, capacity_packets=1)
        assert sh.enqueue(pkt(100), 0.0)
        assert not sh.enqueue(pkt(100), 0.0)
        assert sh.stats.dropped == 1

    def test_shapes_a_burst_on_a_link(self):
        """End to end: a 10 Mb/s burst through a 1 Mb/s shaper arrives
        paced at ~1 Mb/s."""
        net = Network()
        routers = build_line(net, 2, rate_bps=100e6)
        tx = attach_host(net, routers[0], "10.55.0.1")
        rx = attach_host(net, routers[1], "10.55.0.2")
        converge(net)
        dl = net.link_between("r0", "r1")
        dl.if_ab.qdisc = TokenBucketShaper(1e6, 2000, capacity_packets=1500)
        sink = FlowSink(net.sim).attach(rx)
        src = CbrSource(net.sim, tx.send, "b", "10.55.0.1", "10.55.0.2",
                        payload_bytes=500, rate_bps=10e6)
        src.start(0.0, stop_at=0.5)   # 0.5 s at 10 Mb/s = 5 Mb offered
        net.run(until=6.0)
        rec = sink.record("b")
        assert rec.count == src.sent  # nothing dropped, only delayed
        # Arrival span ~ 5 Mb / 1 Mb/s = 5 s.
        span = rec.arrival_times[-1] - rec.arrival_times[0]
        assert span == pytest.approx(5.0, rel=0.15)


class TestReconvergence:
    def test_reroutes_around_failed_link(self):
        net = Network()
        nodes = build_fish(net)
        converge(net)
        assert spf_paths(net, "A", "F") == ["A", "B", "G", "H", "E", "F"]
        net.link_between("G", "H").set_up(False)
        reconverge(net)
        assert spf_paths(net, "A", "F") == ["A", "B", "C", "D", "E", "F"]

    def test_restore_returns_to_primary(self):
        net = Network()
        nodes = build_fish(net)
        converge(net)
        dl = net.link_between("G", "H")
        dl.set_up(False)
        reconverge(net)
        dl.set_up(True)
        reconverge(net)
        assert spf_paths(net, "A", "F") == ["A", "B", "G", "H", "E", "F"]

    def test_host_routes_survive_reconvergence(self):
        net = Network()
        routers = build_line(net, 3)
        h = attach_host(net, routers[2], "10.44.0.1")
        converge(net)
        reconverge(net)
        assert routers[0].fib.lookup(IPv4Address.parse("10.44.0.1")) is not None
        assert routers[2].fib.lookup(IPv4Address.parse("10.44.0.1")) is not None

    def test_reset_ldp_releases_labels(self):
        net = Network()
        routers = [net.add_node(Lsr(net.sim, f"r{i}")) for i in range(3)]
        net.connect(routers[0], routers[1]); net.connect(routers[1], routers[2])
        converge(net)
        run_ldp(net)
        in_use = sum(r.labels.in_use for r in routers)
        assert in_use > 0
        removed = reset_ldp(net)
        assert removed > 0
        assert sum(r.labels.in_use for r in routers) == 0
        assert all(len(r.ftn) == 0 for r in routers)


class TestFastReroute:
    def _setup(self):
        net = Network()
        nodes = build_fish(net, rate_bps=10e6, trunk_rate_bps=30e6,
                           node_factory=lambda n, name: n.add_node(Lsr(n.sim, name)))
        tx = attach_host(net, nodes["A"], "10.71.0.1", name="tx")
        rx = attach_host(net, nodes["F"], "10.71.0.2", name="rx")
        converge(net)
        te = TrafficEngineering(net)
        lsp = te.signal("prim", ["A", "B", "G", "H", "E", "F"], 2e6, php=False)
        te.autoroute(lsp, [Prefix.parse("10.71.0.2/32")])
        return net, nodes, tx, rx, te, lsp

    def test_protect_lsp_covers_transit_hops(self):
        net, nodes, tx, rx, te, lsp = self._setup()
        frr = FastReroute(te)
        bypasses = frr.protect_lsp(lsp)
        assert {(b.plr, b.merge_point) for b in bypasses} == {
            ("B", "G"), ("G", "H"), ("H", "E"),
        }

    def test_php_final_hop_unprotectable(self):
        net, nodes, tx, rx, te, _ = self._setup()
        lsp2 = te.signal("php-lsp", ["A", "B", "G"], 1e6, php=True)
        frr = FastReroute(te)
        with pytest.raises(FrrError):
            frr.protect_hop(lsp2, 1)

    def test_ingress_hop_rejected(self):
        net, nodes, tx, rx, te, lsp = self._setup()
        frr = FastReroute(te)
        with pytest.raises(FrrError):
            frr.protect_hop(lsp, 0)

    def test_zero_loss_failover(self):
        net, nodes, tx, rx, te, lsp = self._setup()
        frr = FastReroute(te)
        frr.protect_lsp(lsp)
        sink = FlowSink(net.sim).attach(rx)
        src = CbrSource(net.sim, tx.send, "f", "10.71.0.1", "10.71.0.2",
                        payload_bytes=500, rate_bps=2e6)
        src.start(0.0, stop_at=3.0)

        def fail():
            net.link_between("G", "H").set_up(False)
            assert frr.trigger_link_failure("G", "H") == 1
        net.sim.schedule(1.0, fail)
        net.run(until=3.5)
        assert sink.received("f") == src.sent
        assert frr.active_repairs == 1

    def test_restore_reverts_primary_path(self):
        net, nodes, tx, rx, te, lsp = self._setup()
        frr = FastReroute(te)
        frr.protect_lsp(lsp)
        dl = net.link_between("G", "H")
        dl.set_up(False)
        frr.trigger_link_failure("G", "H")
        dl.set_up(True)
        assert frr.restore_link("G", "H") == 1
        assert frr.active_repairs == 0
        # Traffic flows over the restored primary again.
        sink = FlowSink(net.sim).attach(rx)
        src = CbrSource(net.sim, tx.send, "g", "10.71.0.1", "10.71.0.2",
                        payload_bytes=500, rate_bps=1e6)
        src.start(0.0, stop_at=0.5)
        net.run(until=1.0)
        assert sink.received("g") == src.sent

    def test_facility_tunnel_shared(self):
        """Two LSPs over the same link share one bypass tunnel."""
        net, nodes, tx, rx, te, lsp = self._setup()
        lsp2 = te.signal("prim2", ["A", "B", "G", "H", "E", "F"], 1e6, php=False)
        frr = FastReroute(te)
        frr.protect_hop(lsp, 2)   # G->H
        frr.protect_hop(lsp2, 2)
        assert len(frr._facility) == 1
        assert frr.trigger_link_failure("G", "H") == 2


class TestHubSpoke:
    def _build(self):
        net = Network()
        pe1 = net.add_node(PeRouter(net.sim, "pe1"))
        p = net.add_node(Lsr(net.sim, "p"))
        pe2 = net.add_node(PeRouter(net.sim, "pe2"))
        pe3 = net.add_node(PeRouter(net.sim, "pe3"))
        for pe in (pe1, pe2, pe3):
            net.connect(pe, p)
        prov = VpnProvisioner(net)
        vpn = prov.create_hub_spoke_vpn("hs")
        hub = prov.add_hub_site(vpn, pe3, prefix="10.0.0.0/24")
        s1 = prov.add_site(vpn, pe1, prefix="10.0.1.0/24")
        s2 = prov.add_site(vpn, pe2, prefix="10.0.2.0/24")
        converge(net)
        run_ldp(net)
        prov.converge_bgp()
        return net, prov, vpn, hub, s1, s2

    def _send(self, net, src_host, dst_host):
        got = []
        dst_host.add_local_sink(got.append)
        net.sim.schedule(0.0, lambda: src_host.send(
            Packet(ip=IPHeader(src_host.loopback, dst_host.loopback),
                   payload_bytes=50)))
        net.run(until=net.sim.now + 1.0)
        return got

    def test_spoke_to_spoke_transits_hub_ce(self):
        net, prov, vpn, hub, s1, s2 = self._build()
        before = hub.ce.stats.rx_packets
        got = self._send(net, s1.hosts[0], s2.hosts[0])
        assert len(got) == 1
        assert hub.ce.stats.rx_packets == before + 1

    def test_spoke_hub_bidirectional(self):
        net, prov, vpn, hub, s1, s2 = self._build()
        assert len(self._send(net, s1.hosts[0], hub.hosts[0])) == 1
        assert len(self._send(net, hub.hosts[0], s1.hosts[0])) == 1

    def test_spoke_vrf_has_no_direct_spoke_route(self):
        net, prov, vpn, hub, s1, s2 = self._build()
        vrf = s1.pe.vrfs["hs-spoke"]
        route = vrf.lookup(IPv4Address.parse("10.0.2.10"))
        # LPM resolves via the hub's supernet export, not spoke2 directly.
        assert route is not None
        assert route.remote_pe == hub.pe.loopback

    def test_hub_role_recorded(self):
        net, prov, vpn, hub, s1, s2 = self._build()
        assert hub.role == "hub" and s1.role == "spoke"
        assert "pe_up_ifname" in hub.extra

    def test_role_validation(self):
        net = Network()
        pe = net.add_node(PeRouter(net.sim, "pe"))
        prov = VpnProvisioner(net)
        mesh = prov.create_vpn("m")
        with pytest.raises(ValueError):
            prov.add_site(mesh, pe, role="hub")
        hs = prov.create_hub_spoke_vpn("hs")
        with pytest.raises(ValueError):
            prov.add_site(hs, pe, role="mesh")
        with pytest.raises(ValueError):
            prov.add_hub_site(mesh, pe)


class TestInterAs:
    def _build(self):
        from repro.experiments.e10_interas import build_two_providers
        return build_two_providers(seed=107, qos=False)

    def test_cross_provider_reachability(self):
        ctx = self._build()
        net = ctx["net"]
        h_a, h_b = ctx["site_a"].hosts[0], ctx["site_b"].hosts[0]
        got = []
        h_b.add_local_sink(got.append)
        net.sim.schedule(0.0, lambda: h_a.send(
            Packet(ip=IPHeader(h_a.loopback, h_b.loopback), payload_bytes=50)))
        net.run(until=1.0)
        assert len(got) == 1

    def test_reverse_direction(self):
        ctx = self._build()
        net = ctx["net"]
        h_a, h_b = ctx["site_a"].hosts[0], ctx["site_b"].hosts[0]
        got = []
        h_a.add_local_sink(got.append)
        net.sim.schedule(0.0, lambda: h_b.send(
            Packet(ip=IPHeader(h_b.loopback, h_a.loopback), payload_bytes=50)))
        net.run(until=1.0)
        assert len(got) == 1

    def test_domains_have_separate_igps(self):
        ctx = self._build()
        net = ctx["net"]
        pe_a, pe_b = net.node("pe-a"), net.node("pe-b")
        # Provider A's PE has no route to provider B's infrastructure.
        assert pe_a.fib.lookup(pe_b.loopback) is None

    def test_second_customer_isolated(self):
        ctx = self._build()
        net = ctx["net"]
        corp_src = ctx["site_a"].hosts[0]
        other_dst = ctx["o_b"].hosts[0]   # other VPN, prefix 10.9.0.0/24
        got = []
        other_dst.add_local_sink(got.append)
        net.sim.schedule(0.0, lambda: corp_src.send(
            Packet(ip=IPHeader(corp_src.loopback, other_dst.loopback),
                   payload_bytes=50)))
        net.run(until=1.0)
        assert got == []  # corp's VRF has no route into 'other'

    def test_connect_requires_vrfs(self):
        net = Network()
        a = net.add_node(PeRouter(net.sim, "a"))
        b = net.add_node(PeRouter(net.sim, "b"))
        with pytest.raises(ValueError):
            connect_option_a(net, a, b, "nope")

    def test_exchange_counts_messages(self):
        ctx = self._build()
        assert ctx["routes_exchanged"] > 0
        assert ctx["net"].counters["interas.ebgp_updates"] == ctx["routes_exchanged"]
