"""Tests for per-VPN QoS profiles and the IntServ baseline."""

import pytest

from repro.mpls import Lsr, run_ldp
from repro.net.address import IPv4Address
from repro.net.packet import IPHeader, Packet
from repro.qos.classifier import FlowMatch
from repro.qos.dscp import DSCP
from repro.qos.intserv import (
    RSVP_REFRESH_S,
    AdmissionError,
    IntServ,
    intserv_classifier,
)
from repro.routing import converge
from repro.topology import Network, build_line
from repro.vpn import (
    BRONZE,
    GOLD,
    SILVER,
    PeRouter,
    QosProfile,
    VpnProvisioner,
    apply_profile,
)


class TestQosProfiles:
    def test_builtin_tiers(self):
        assert GOLD.dscp == int(DSCP.EF)
        assert SILVER.dscp == int(DSCP.AF11)
        assert BRONZE.dscp == int(DSCP.BE) and BRONZE.cir_bps == 0

    def test_pure_marker_profile(self):
        cond = BRONZE.conditioner()
        p = Packet(ip=IPHeader(IPv4Address(1), IPv4Address(2), dscp=46),
                   payload_bytes=100)
        out = cond(p, 0.0)
        assert out.ip.dscp == int(DSCP.BE)  # customer marking overridden

    def test_policed_profile_demotes_excess(self):
        tier = QosProfile("t", dscp=int(DSCP.EF), cir_bps=8e3,
                          burst_bytes=200, excess_bytes=100)
        cond = tier.conditioner()
        def pkt():
            return Packet(ip=IPHeader(IPv4Address(1), IPv4Address(2)),
                          payload_bytes=130)  # 150B wire
        assert cond(pkt(), 0.0).ip.dscp == int(DSCP.EF)     # within CIR burst
        assert cond(pkt(), 0.0).ip.dscp == int(DSCP.BE)     # excess bucket
        assert cond(pkt(), 0.0).ip.dscp == int(DSCP.BE)     # red -> remark too

    def test_apply_profile_covers_all_sites(self):
        net = Network(seed=1)
        pe1 = net.add_node(PeRouter(net.sim, "pe1"))
        pe2 = net.add_node(PeRouter(net.sim, "pe2"))
        net.connect(pe1, pe2)
        prov = VpnProvisioner(net)
        vpn = prov.create_vpn("c")
        s1 = prov.add_site(vpn, pe1)
        s2 = prov.add_site(vpn, pe2)
        assert apply_profile(vpn, GOLD) == 2
        for site in (s1, s2):
            assert len(site.ce.interfaces[site.ce_ifname].conditioners) == 1

    def test_apply_profile_covers_hub_both_uplinks(self):
        net = Network(seed=2)
        pe = net.add_node(PeRouter(net.sim, "pe"))
        prov = VpnProvisioner(net)
        vpn = prov.create_hub_spoke_vpn("hs")
        hub = prov.add_hub_site(vpn, pe)
        apply_profile(vpn, SILVER)
        assert len(hub.ce.interfaces[hub.ce_ifname].conditioners) == 1
        assert len(hub.ce.interfaces[hub.extra["ce_up_ifname"]].conditioners) == 1

    def test_tier_marks_end_to_end(self):
        """Unmarked customer traffic arrives tier-marked across the VPN."""
        net = Network(seed=3)
        pe1 = net.add_node(PeRouter(net.sim, "pe1"))
        p = net.add_node(Lsr(net.sim, "p"))
        pe2 = net.add_node(PeRouter(net.sim, "pe2"))
        net.connect(pe1, p); net.connect(p, pe2)
        prov = VpnProvisioner(net)
        vpn = prov.create_vpn("c")
        s1 = prov.add_site(vpn, pe1)
        s2 = prov.add_site(vpn, pe2)
        converge(net); run_ldp(net); prov.converge_bgp()
        apply_profile(vpn, GOLD)
        h1, h2 = s1.hosts[0], s2.hosts[0]
        got = []
        h2.add_local_sink(got.append)
        net.sim.schedule(0.0, lambda: h1.send(
            Packet(ip=IPHeader(h1.loopback, h2.loopback, dscp=0),
                   payload_bytes=50)))
        net.run(until=1.0)
        assert got[0].ip.dscp == int(DSCP.EF)


def _intserv_net(n=4, rate=10e6, seed=7):
    net = Network(seed=seed)
    routers = build_line(net, n, rate_bps=rate)
    converge(net)
    return net, routers


class TestIntServ:
    def test_reserve_installs_state_at_every_hop(self):
        net, routers = _intserv_net()
        isv = IntServ(net)
        res = isv.reserve("r0", "r3", FlowMatch(dst_port=5004), 100e3)
        assert res.path == ("r0", "r1", "r2", "r3")
        assert all(len(r.rsvp_flows) == 1 for r in routers)
        assert isv.total_state() == 4

    def test_state_grows_linearly_with_flows(self):
        net, routers = _intserv_net()
        isv = IntServ(net)
        for i in range(10):
            isv.reserve("r0", "r3", FlowMatch(dst_port=6000 + i), 100e3)
        assert isv.state_per_router()["r1"] == 10

    def test_admission_control(self):
        net, routers = _intserv_net(rate=1e6)
        isv = IntServ(net)
        isv.reserve("r0", "r3", FlowMatch(dst_port=1), 0.9e6)
        with pytest.raises(AdmissionError):
            isv.reserve("r0", "r3", FlowMatch(dst_port=2), 0.2e6)
        # Failure left no partial reservations behind.
        assert isv.residual("r0", "r1") == pytest.approx(0.1e6)

    def test_no_path_rejected(self):
        net = Network(seed=1)
        net.add_router("a"); net.add_router("b")
        converge(net)
        with pytest.raises(AdmissionError):
            IntServ(net).reserve("a", "b", FlowMatch(), 1e3)

    def test_refresh_message_accounting(self):
        net, routers = _intserv_net()
        isv = IntServ(net)
        isv.reserve("r0", "r3", FlowMatch(dst_port=1), 1e3)   # 3 hops
        isv.reserve("r0", "r2", FlowMatch(dst_port=2), 1e3)   # 2 hops
        assert isv.refresh_messages_per_interval() == 2 * 3 + 2 * 2
        assert RSVP_REFRESH_S == 30.0

    def test_setup_messages_counted(self):
        net, routers = _intserv_net()
        isv = IntServ(net)
        isv.reserve("r0", "r3", FlowMatch(dst_port=1), 1e3)
        assert net.counters["rsvp.path_msgs"] == 3
        assert net.counters["rsvp.resv_msgs"] == 3

    def test_classifier_matches_reserved_flow(self):
        net, routers = _intserv_net()
        isv = IntServ(net)
        isv.reserve("r0", "r3", FlowMatch(dst_port=5004, proto="udp"), 1e3)
        classify = intserv_classifier(routers[1])
        reserved = Packet(ip=IPHeader(IPv4Address(1), IPv4Address(2),
                                      proto="udp", dst_port=5004),
                          payload_bytes=100)
        other = Packet(ip=IPHeader(IPv4Address(1), IPv4Address(2),
                                   proto="udp", dst_port=80),
                       payload_bytes=100)
        assert classify(reserved) == 0
        assert classify(other) >= 1

    def test_classifier_never_promotes_unreserved_ef(self):
        """IntServ trusts reservations, not markings: an unreserved packet
        marked EF still lands outside the reserved class."""
        net, routers = _intserv_net()
        classify = intserv_classifier(routers[1])
        spoofed = Packet(ip=IPHeader(IPv4Address(1), IPv4Address(2), dscp=46),
                         payload_bytes=100)
        assert classify(spoofed) >= 1
