"""Tests for the metrics registry: families, children, exporters."""

import json
import math

import pytest

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestPrimitives:
    def test_counter_monotonic(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.get() == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_set_inc_dec(self):
        g = Gauge()
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.get() == 7

    def test_histogram_buckets_le_inclusive(self):
        h = Histogram((1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 4.0, 99.0):
            h.observe(v)
        snap = h.snapshot()
        # Cumulative: le=1 -> 2 (0.5, 1.0), le=2 -> 3, le=4 -> 4, +Inf -> 5.
        assert snap["buckets"] == [[1.0, 2], [2.0, 3], [4.0, 4], ["+Inf", 5]]
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(106.0)

    def test_histogram_percentile(self):
        h = Histogram((1.0, 2.0, 4.0))
        for v in (0.5, 0.6, 0.7, 3.0):
            h.observe(v)
        assert h.percentile(50) == 1.0
        assert h.percentile(100) == 4.0
        assert math.isnan(Histogram((1.0,)).percentile(50))

    def test_histogram_validation(self):
        with pytest.raises(ValueError):
            Histogram(())
        with pytest.raises(ValueError):
            Histogram((2.0, 1.0))


class TestFamilies:
    def test_labeled_children_are_cached(self):
        reg = MetricsRegistry()
        fam = reg.counter("pkts", "packets", labels=("node",))
        fam.labels(node="a").inc()
        fam.labels(node="a").inc()
        fam.labels(node="b").inc(5)
        assert fam.labels(node="a").get() == 2
        assert fam.labels(node="b").get() == 5

    def test_label_name_mismatch_rejected(self):
        reg = MetricsRegistry()
        fam = reg.gauge("g", labels=("node", "iface"))
        with pytest.raises(ValueError):
            fam.labels(node="a")
        with pytest.raises(ValueError):
            fam.labels(node="a", iface="i", extra="x")

    def test_reregistration_same_shape_returns_existing(self):
        reg = MetricsRegistry()
        a = reg.counter("c", labels=("x",))
        b = reg.counter("c", labels=("x",))
        assert a is b
        assert len(reg) == 1

    def test_reregistration_different_shape_rejected(self):
        reg = MetricsRegistry()
        reg.counter("c", labels=("x",))
        with pytest.raises(ValueError):
            reg.gauge("c", labels=("x",))
        with pytest.raises(ValueError):
            reg.counter("c", labels=("y",))

    def test_labelless_convenience(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(7)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["c"]["series"][0]["value"] == 3
        assert snap["g"]["series"][0]["value"] == 7
        assert snap["h"]["series"][0]["count"] == 1


class TestExporters:
    def _registry(self):
        reg = MetricsRegistry()
        fam = reg.gauge("repro_node_rx", "Packets received", labels=("node",))
        fam.labels(node="pe1").set(10)
        fam.labels(node="p").set(20)
        hist = reg.histogram("repro_delay_s", "Delay", buckets=(0.001, 0.01))
        hist.observe(0.0005)
        hist.observe(0.5)
        return reg

    def test_snapshot_is_json_serialisable_and_sorted(self):
        snap = self._registry().snapshot()
        json.dumps(snap)  # must not raise
        assert list(snap) == ["repro_delay_s", "repro_node_rx"]
        series = snap["repro_node_rx"]["series"]
        assert [s["labels"]["node"] for s in series] == ["p", "pe1"]

    def test_prometheus_text_format(self):
        text = self._registry().to_prometheus()
        assert "# HELP repro_node_rx Packets received" in text
        assert "# TYPE repro_node_rx gauge" in text
        assert 'repro_node_rx{node="pe1"} 10' in text
        assert 'repro_delay_s_bucket{le="0.001"} 1' in text
        assert 'repro_delay_s_bucket{le="+Inf"} 2' in text
        assert "repro_delay_s_count 2" in text
        assert text.endswith("\n")

    def test_prometheus_label_escaping(self):
        reg = MetricsRegistry()
        reg.gauge("g", labels=("name",)).labels(name='a"b\\c').set(1)
        text = reg.to_prometheus()
        assert 'name="a\\"b\\\\c"' in text
