"""TrafficSource lifecycle edges: stop_at boundaries, burst trains,
offered-rate consistency.

These pin the exact emission-window semantics the fluid plane's
PacketExpander mirrors (``tests/test_hybrid_parity.py`` depends on the
two agreeing): a wake-up landing exactly on ``stop_at`` emits nothing,
bursts are all-or-nothing per wake-up, and every source class's
``offered_rate_bps`` matches what it actually puts on the wire.
"""

from __future__ import annotations

import pytest

from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.traffic.generators import (
    CbrSource,
    OnOffSource,
    ParetoOnOffSource,
    PoissonSource,
)


class Collector:
    def __init__(self) -> None:
        self.packets = []

    def __call__(self, pkt) -> None:
        self.packets.append(pkt)


def make_cbr(sim, out, payload=980, rate=1e6, **kw):
    # wire = 1000 B -> gap exactly 8 ms at 1 Mb/s: easy boundary math.
    return CbrSource(
        sim, out, "f", "10.0.0.1", "10.0.0.2",
        payload_bytes=payload, rate_bps=rate, **kw,
    )


class TestStopAtBoundary:
    def test_wakeup_exactly_on_stop_at_emits_nothing(self):
        """Emissions at t = start + k·gap; stop_at on the grid excludes
        that instant (the check is ``now >= stop_at``)."""
        sim = Simulator()
        out = Collector()
        src = make_cbr(sim, out)  # gap = 8 ms
        src.start(0.0, stop_at=0.024)  # grid: 0, 8, 16, *24* ms
        sim.run(until=1.0)
        assert src.sent == 3
        assert [p.created for p in out.packets] == [0.0, 0.008, 0.016]
        assert not src._running

    def test_stop_at_just_past_grid_point_includes_it(self):
        sim = Simulator()
        out = Collector()
        src = make_cbr(sim, out)
        src.start(0.0, stop_at=0.024 + 1e-9)
        sim.run(until=1.0)
        assert src.sent == 4

    def test_start_at_equal_to_stop_at_emits_nothing(self):
        sim = Simulator()
        out = Collector()
        src = make_cbr(sim, out)
        src.start(0.5, stop_at=0.5)
        sim.run(until=1.0)
        assert src.sent == 0
        assert not src._running

    def test_explicit_stop_halts_next_wakeup(self):
        sim = Simulator()
        out = Collector()
        src = make_cbr(sim, out)
        src.start(0.0)  # no stop_at: would run forever
        sim.schedule_at(0.020, src.stop)  # between the 16 ms and 24 ms grid
        sim.run(until=1.0)
        assert src.sent == 3
        assert sim.peek() == float("inf")  # heap fully drained


class TestBurstTrains:
    def test_burst_shares_one_timestamp_and_sums_gaps(self):
        sim = Simulator()
        out = Collector()
        src = make_cbr(sim, out, burst=4)  # per-packet gap 8 ms
        src.start(0.0, stop_at=1.0)
        sim.run(until=0.001)  # just the first wake-up
        assert src.sent == 4
        assert {p.created for p in out.packets} == {0.0}
        assert [p.seq for p in out.packets] == [0, 1, 2, 3]
        # Next train fires after the summed gaps, not after one.
        sim.run(until=0.033)
        assert src.sent == 8
        assert out.packets[4].created == pytest.approx(0.032)

    def test_burst_crossing_stop_at_is_all_or_nothing(self):
        """A train straddling stop_at either fires whole (wake-up before
        the boundary) or not at all — no partial trains."""
        sim = Simulator()
        out = Collector()
        src = make_cbr(sim, out, burst=4)  # trains at 0, 32, 64 ms
        src.start(0.0, stop_at=0.040)  # 32 ms wake-up < stop_at < 64 ms
        sim.run(until=1.0)
        assert src.sent == 8  # both trains complete, none truncated
        sent_at = sorted({p.created for p in out.packets})
        assert sent_at == [0.0, pytest.approx(0.032)]

    def test_burst_wakeup_on_stop_at_suppresses_whole_train(self):
        sim = Simulator()
        out = Collector()
        src = make_cbr(sim, out, burst=4)
        src.start(0.0, stop_at=0.032)  # second train lands exactly on it
        sim.run(until=1.0)
        assert src.sent == 4

    def test_burst_must_be_positive(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            make_cbr(sim, Collector(), burst=0)


class TestOfferedRateConsistency:
    """offered_rate_bps must predict measured wire bits/s for every class."""

    HORIZON_S = 30.0

    def _measured_bps(self, src) -> float:
        src.start(0.0, stop_at=self.HORIZON_S)
        src.sim.run(until=self.HORIZON_S + 1.0)
        return src.bytes_sent * 8.0 / self.HORIZON_S

    def test_cbr(self):
        sim = Simulator()
        src = make_cbr(sim, Collector(), rate=1e6)
        assert src.offered_rate_bps == 1e6
        assert self._measured_bps(src) == pytest.approx(1e6, rel=0.01)

    def test_poisson(self):
        sim = Simulator()
        streams = RandomStreams(7)
        src = PoissonSource(
            sim, Collector(), "f", "10.0.0.1", "10.0.0.2",
            payload_bytes=980, rate_bps=1e6, rng=streams.stream("t.poisson"),
        )
        assert src.offered_rate_bps == 1e6
        assert self._measured_bps(src) == pytest.approx(1e6, rel=0.05)

    def test_onoff(self):
        sim = Simulator()
        streams = RandomStreams(7)
        src = OnOffSource(
            sim, Collector(), "f", "10.0.0.1", "10.0.0.2",
            payload_bytes=980, peak_bps=2e6, mean_on_s=0.1, mean_off_s=0.4,
            rng=streams.stream("t.onoff"),
        )
        assert src.offered_rate_bps == pytest.approx(2e6 * 0.2)
        assert self._measured_bps(src) == pytest.approx(
            src.offered_rate_bps, rel=0.15
        )

    def test_pareto_onoff(self):
        sim = Simulator()
        streams = RandomStreams(11)
        src = ParetoOnOffSource(
            sim, Collector(), "f", "10.0.0.1", "10.0.0.2",
            payload_bytes=980, peak_bps=2e6, mean_on_s=0.1, mean_off_s=0.4,
            shape=2.5, rng=streams.stream("t.pareto"),
        )
        assert src.offered_rate_bps == pytest.approx(2e6 * 0.2)
        # Heavy-tailed sojourns converge slowly; the mean is still the
        # mean, just noisier over a finite horizon.
        assert self._measured_bps(src) == pytest.approx(
            src.offered_rate_bps, rel=0.35
        )

    def test_fluid_aggregate_matches_source_contract(self):
        """FluidAggregate.offered_rate_bps == n × the per-source value."""
        from repro.traffic.fluid import FluidAggregate

        sim = Simulator()
        streams = RandomStreams(7)
        cbr = FluidAggregate(
            sim, "f", "10.0.0.1", "10.0.0.2",
            n_flows=50, payload_bytes=980, kind="cbr", rate_bps=1e6,
        )
        assert cbr.offered_rate_bps == 50e6
        onoff = FluidAggregate(
            sim, "g", "10.0.0.1", "10.0.0.2",
            n_flows=50, payload_bytes=980, kind="onoff", peak_bps=2e6,
            mean_on_s=0.1, mean_off_s=0.4, rng=streams.stream("t.fluid"),
        )
        assert onoff.offered_rate_bps == pytest.approx(50 * 2e6 * 0.2)
