"""Tests for the kernel profiler and the engine's profile hook."""

import pytest

from repro.obs.profiler import KernelProfiler
from repro.sim.engine import Simulator, bind


class TestHook:
    def test_disabled_by_default(self):
        sim = Simulator()
        assert sim._profile_hook is None

    def test_attach_detach(self):
        sim = Simulator()
        prof = KernelProfiler(sim)
        assert not prof.attached
        prof.attach()
        assert prof.attached
        prof.detach()
        assert not prof.attached
        assert sim._profile_hook is None

    def test_double_attach_same_profiler_ok(self):
        sim = Simulator()
        prof = KernelProfiler(sim).attach()
        prof.attach()  # idempotent
        assert prof.attached

    def test_second_profiler_rejected(self):
        sim = Simulator()
        KernelProfiler(sim).attach()
        with pytest.raises(RuntimeError):
            KernelProfiler(sim).attach()

    def test_validation(self):
        with pytest.raises(ValueError):
            KernelProfiler(Simulator(), sample_every=0)


class TestCounting:
    def test_every_event_counted(self):
        sim = Simulator()
        prof = KernelProfiler(sim, sample_every=4).attach()
        hits = []
        def tick():
            hits.append(sim.now)
        for i in range(10):
            sim.schedule(i * 0.1, tick)
        sim.run()
        assert len(hits) == 10
        snap = prof.snapshot()
        assert snap["events"] == 10
        # Every sample_every-th event is timed.
        assert snap["sampled"] == 10 // 4

    def test_kind_resolution_unwraps_bind(self):
        """bind() closures all share one code object; attribution must land
        on the wrapped callback, not on the wrapper."""
        sim = Simulator()
        prof = KernelProfiler(sim, sample_every=1).attach()
        def inner():
            pass
        sim.schedule(0.0, bind(inner))
        sim.schedule(0.1, bind(bind(inner)))  # nested wrapping
        sim.run()
        kinds = {k["kind"]: k["events"] for k in prof.snapshot()["kinds"]}
        (name,) = kinds
        assert "inner" in name
        assert kinds[name] == 2

    def test_kind_resolution_bound_method(self):
        class Thing:
            def go(self):
                pass
        sim = Simulator()
        prof = KernelProfiler(sim, sample_every=1).attach()
        sim.schedule(0.0, Thing().go)
        sim.run()
        kinds = [k["kind"] for k in prof.snapshot()["kinds"]]
        assert len(kinds) == 1 and kinds[0].endswith("Thing.go")

    def test_results_ranked_and_estimated(self):
        sim = Simulator()
        prof = KernelProfiler(sim, sample_every=1).attach()
        def busy():
            sum(range(2000))
        def idle():
            pass
        for i in range(5):
            sim.schedule(i * 0.1, busy)
            sim.schedule(i * 0.1 + 0.05, idle)
        sim.run()
        snap = prof.snapshot()
        assert snap["events"] == 10 and snap["sampled"] == 10
        assert snap["events_per_sec"] > 0
        top = snap["kinds"][0]
        assert "busy" in top["kind"]
        assert top["est_total_s"] >= top["sampled_wall_s"] > 0
        assert snap["heap_depth"]["count"] == 10

    def test_detach_preserves_data_and_stops_collection(self):
        sim = Simulator()
        prof = KernelProfiler(sim, sample_every=1).attach()
        sim.schedule(0.0, lambda: None)
        sim.run()
        prof.detach()
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert prof.snapshot()["events"] == 1

    def test_simulator_next_id_namespaced(self):
        sim = Simulator()
        assert sim.next_id("probe") == 1
        assert sim.next_id("probe") == 2
        assert sim.next_id("other") == 1
        assert Simulator().next_id("probe") == 1  # fresh sim, fresh ids
