"""Sweep runner: determinism across worker counts, failure reporting."""

from __future__ import annotations

import os

import pytest

from repro.obs import runtime
from repro.sweep import (
    build_grid,
    deterministic_view,
    run_sweep,
    smoke_grid,
    task_seed,
)


def _small_grid():
    # One task per scenario family, seconds-scale: enough to exercise
    # every adapter without making the suite slow.
    return smoke_grid()


def test_worker_count_is_invisible_in_results() -> None:
    """1 worker vs 4 workers over the same grid → identical reports
    (modulo timing), even on a box with fewer than 4 cores."""
    solo = run_sweep(_small_grid(), workers=1)
    quad = run_sweep(_small_grid(), workers=4)
    assert solo["ok"] == len(_small_grid())
    assert deterministic_view(solo) == deterministic_view(quad)


def test_task_seeds_are_grid_derived() -> None:
    """Seeds are a pure function of the task name — no process salt."""
    assert task_seed("e2/mpls-diffserv/r0") == task_seed("e2/mpls-diffserv/r0")
    assert task_seed("e2/mpls-diffserv/r0") != task_seed("e2/mpls-diffserv/r1")
    a = build_grid("e2", reps=2)
    b = build_grid("e2", reps=2)
    assert a == b
    assert len({t["seed"] for t in a}) == len(a)  # all distinct here


def test_grid_shapes() -> None:
    e1 = build_grid("e1", reps=1, sites=(10, 20))
    assert len(e1) == 4  # 2 kinds × 2 site counts
    e5 = build_grid("e5", reps=2)
    assert len(e5) == 8  # 4 stages × 2 reps
    both = build_grid("all", reps=1, sites=(10,))
    assert [t["index"] for t in both] == list(range(len(both)))


def test_failures_are_reported_not_raised() -> None:
    tasks = _small_grid()[:1]
    tasks.append({
        "index": 1, "name": "broken/task", "scenario": "no-such-scenario",
        "params": {}, "seed": 1,
    })
    report = run_sweep(tasks, workers=2)
    assert report["ok"] == 1
    assert len(report["failed"]) == 1
    assert report["failed"][0]["name"] == "broken/task"
    assert "no-such-scenario" in report["failed"][0]["error"]
    # The healthy task's rows still made it into the merge.
    assert report["rows"]


def test_inline_sweep_restores_packet_counters() -> None:
    assert runtime.packet_counters_enabled()
    run_sweep(_small_grid()[:1], workers=1)
    assert runtime.packet_counters_enabled()


def test_telemetry_manifests_are_merged() -> None:
    tasks = [t for t in _small_grid() if t["scenario"] == "e2"]
    report = run_sweep(tasks, workers=1, telemetry=True)
    assert report["ok"] == len(tasks)
    assert len(report["manifests"]) >= len(tasks)
    m = report["manifests"][0]
    assert m["config"]["task"] == tasks[0]["name"]
    assert m["sim"]["events_processed"] > 0


@pytest.mark.skipif(os.name != "posix", reason="fork start method")
def test_multiprocess_rows_match_inline_rows() -> None:
    """The mp path must not perturb seeding: row-for-row equality."""
    grid = build_grid("e5", reps=1, measure_s=0.5)
    solo = run_sweep(grid, workers=1)
    multi = run_sweep(grid, workers=3)
    assert solo["rows"] == multi["rows"]
    assert not solo["failed"] and not multi["failed"]


@pytest.mark.skipif(os.name != "posix", reason="fork start method")
def test_spill_files_are_written_and_kept(tmp_path) -> None:
    """An explicit --spill-dir keeps one JSONL file per worker, one line
    per task, and the merged report equals the inline run exactly."""
    import json

    tasks = _small_grid()
    solo = run_sweep(tasks, workers=1)
    spilled = run_sweep(tasks, workers=2, spill_dir=str(tmp_path))
    assert deterministic_view(solo) == deterministic_view(spilled)
    files = sorted(tmp_path.glob("worker-*.jsonl"))
    assert files  # the pool actually spilled
    lines = [
        json.loads(line)
        for f in files
        for line in f.read_text().splitlines()
    ]
    assert sorted(r["index"] for r in lines) == [t["index"] for t in tasks]
    assert all(r["ok"] for r in lines)


def test_warm_start_rows_byte_identical_inline() -> None:
    """Warm start restores the same restore code on the 1-worker inline
    path as in pool workers; rows must equal the cold sweep exactly."""
    import json

    tasks = _small_grid()
    cold = run_sweep(tasks, workers=1)
    warm = run_sweep(tasks, workers=1, warm_start=True)
    assert warm["ok"] == len(tasks)
    assert json.dumps(deterministic_view(cold), sort_keys=True) == \
        json.dumps(deterministic_view(warm), sort_keys=True)
    # Every supported task really took the restore path, and the parent
    # reports what it snapshotted.
    assert all(t["warm"] for t in warm["timing"]["per_task"])
    info = warm["timing"]["warm_start"]
    assert info["bases"] and info["bytes"] > 0


@pytest.mark.skipif(os.name != "posix", reason="fork start method")
def test_warm_start_rows_byte_identical_across_workers() -> None:
    """Cold vs warm at 4 workers, and warm 1-worker vs warm 4-worker —
    all the same deterministic view (the acceptance-criteria invariant)."""
    import json

    tasks = _small_grid()
    view = lambda r: json.dumps(deterministic_view(r), sort_keys=True)  # noqa: E731
    cold = run_sweep(tasks, workers=4)
    warm4 = run_sweep(tasks, workers=4, warm_start=True)
    warm1 = run_sweep(tasks, workers=1, warm_start=True)
    assert view(cold) == view(warm4) == view(warm1)
    assert not warm4["failed"]


def test_warm_start_base_keys() -> None:
    """Base keys capture exactly what a task's build does not vary with."""
    from repro.sweep.runner import base_key

    e1, e2, e5, _, e15 = _small_grid()
    assert base_key(e1) == "e1/mpls/10"
    assert base_key(e2) == "e2/mpls-diffserv"
    assert base_key(e5) == "e5/full"
    # Churn mutates its base, so e15 gets its own snapshot-restore key —
    # never e1's shared live-tier base.
    assert base_key(e15) == "e15/10"
    assert base_key({"scenario": "nope", "params": {}}) is None


def test_warm_start_missing_base_falls_back_cold() -> None:
    """A task whose base was never prepared runs the cold build path
    under warm-start rather than failing; ``warm`` says which happened."""
    from repro.sweep.runner import _BASES, _run_task

    task = dict(_small_grid()[1], warm_start=True)  # e2, no base prepared
    _BASES.clear()
    res = _run_task(task)
    assert res["ok"]
    assert res["warm"] is False
    assert res["rows"]


def test_merge_synthesizes_failure_for_missing_and_torn_results(tmp_path) -> None:
    """A worker that dies mid-spill costs its task, not the sweep: a
    truncated (no-newline) line and an absent line both come back as
    synthesized failure rows at their task index."""
    import json

    from repro.sweep.runner import _merge_spills

    tasks = [
        {"index": 0, "name": "grid/ok", "scenario": "e2", "params": {}, "seed": 1},
        {"index": 1, "name": "grid/torn", "scenario": "e2", "params": {}, "seed": 2},
        {"index": 2, "name": "grid/lost", "scenario": "e2", "params": {}, "seed": 3},
    ]
    good = {
        "index": 0, "name": "grid/ok", "ok": True, "rows": [{"x": 1}],
        "timing": {}, "wall_s": 0.1, "manifests": [], "pid": 123,
    }
    torn = json.dumps({"index": 1, "name": "grid/torn", "ok": True})[:-7]
    (tmp_path / "worker-1.jsonl").write_text(json.dumps(good) + "\n" + torn)
    results = _merge_spills(str(tmp_path), tasks)
    assert [r["index"] for r in results] == [0, 1, 2]
    assert results[0]["ok"] and results[0]["rows"] == [{"x": 1}]
    for res, name in ((results[1], "grid/torn"), (results[2], "grid/lost")):
        assert not res["ok"]
        assert name in res["error"]
        assert "crashed" in res["error"]
        assert res["rows"] == [] and res["manifests"] == []
