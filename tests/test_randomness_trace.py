"""Tests for named RNG streams and the trace bus / counters."""

import numpy as np

from repro.sim.randomness import RandomStreams
from repro.sim.trace import Counter, TraceBus


class TestRandomStreams:
    def test_same_name_same_generator_object(self):
        rs = RandomStreams(1)
        assert rs.stream("a") is rs.stream("a")

    def test_same_seed_same_sequence(self):
        a = RandomStreams(42).stream("traffic.voice").random(10)
        b = RandomStreams(42).stream("traffic.voice").random(10)
        np.testing.assert_array_equal(a, b)

    def test_different_names_independent(self):
        rs = RandomStreams(42)
        a = rs.stream("x").random(10)
        b = rs.stream("y").random(10)
        assert not np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("x").random(10)
        b = RandomStreams(2).stream("x").random(10)
        assert not np.allclose(a, b)

    def test_new_stream_does_not_perturb_existing(self):
        """Adding a stream must not change another stream's draws."""
        rs1 = RandomStreams(7)
        g = rs1.stream("keep")
        first = g.random()
        rs2 = RandomStreams(7)
        rs2.stream("other")  # extra stream created first
        g2 = rs2.stream("keep")
        assert g2.random() == first

    def test_bookkeeping(self):
        rs = RandomStreams(0)
        rs.stream("a"); rs.stream("b")
        assert len(rs) == 2
        assert "a" in rs and "c" not in rs
        assert rs.names() == ["a", "b"]
        assert rs.seed == 0


class TestTraceBus:
    def test_publish_without_subscribers_is_noop(self):
        bus = TraceBus()
        bus.publish("drop", 1.0, node="x")  # must not raise
        assert not bus.active("drop")

    def test_subscribe_receives_records(self):
        bus = TraceBus()
        got = []
        bus.subscribe("drop", got.append)
        bus.publish("drop", 2.5, node="r1", reason="ttl")
        assert len(got) == 1
        rec = got[0]
        assert rec.kind == "drop" and rec.time == 2.5
        assert rec.node == "r1" and rec.reason == "ttl"

    def test_attr_error_for_missing_field(self):
        bus = TraceBus()
        got = []
        bus.subscribe("k", got.append)
        bus.publish("k", 0.0)
        try:
            got[0].nope
            assert False, "expected AttributeError"
        except AttributeError:
            pass

    def test_record_retains(self):
        bus = TraceBus()
        bus.record("lsp")
        bus.publish("lsp", 1.0, name="t1")
        bus.publish("lsp", 2.0, name="t2")
        assert [r.name for r in bus.records("lsp")] == ["t1", "t2"]

    def test_records_empty_when_not_recording(self):
        assert TraceBus().records("x") == []

    def test_record_idempotent(self):
        bus = TraceBus()
        bus.record("k")
        bus.record("k")
        bus.publish("k", 0.0)
        assert len(bus.records("k")) == 1

    def test_multiple_subscribers(self):
        bus = TraceBus()
        a, b = [], []
        bus.subscribe("k", a.append)
        bus.subscribe("k", b.append)
        bus.publish("k", 0.0)
        assert len(a) == 1 and len(b) == 1

    def test_unsubscribe_stops_delivery(self):
        bus = TraceBus()
        got = []
        bus.subscribe("k", got.append)
        bus.publish("k", 0.0)
        bus.unsubscribe("k", got.append)
        bus.publish("k", 1.0)
        assert len(got) == 1

    def test_unsubscribe_restores_fast_path(self):
        bus = TraceBus()
        got = []
        bus.subscribe("k", got.append)
        assert bus.active("k")
        bus.unsubscribe("k", got.append)
        assert not bus.active("k")

    def test_unsubscribe_unknown_raises(self):
        bus = TraceBus()
        import pytest
        with pytest.raises(ValueError):
            bus.unsubscribe("k", lambda rec: None)

    def test_unsubscribe_keeps_other_subscribers(self):
        bus = TraceBus()
        a, b = [], []
        bus.subscribe("k", a.append)
        bus.subscribe("k", b.append)
        bus.unsubscribe("k", a.append)
        bus.publish("k", 0.0)
        assert len(a) == 0 and len(b) == 1

    def test_record_mode_survives_unsubscribe_of_others(self):
        """record() retention is independent of other subscriptions."""
        bus = TraceBus()
        extra = []
        bus.record("k")
        bus.subscribe("k", extra.append)
        bus.publish("k", 1.0, n=1)
        bus.unsubscribe("k", extra.append)
        bus.publish("k", 2.0, n=2)
        assert [r.n for r in bus.records("k")] == [1, 2]
        assert len(extra) == 1

    def test_observability_attachment_points_default_off(self):
        bus = TraceBus()
        assert bus.flight is None and bus.flows is None


class TestCounter:
    def test_incr_and_get(self):
        c = Counter()
        c.incr("x")
        c.incr("x", 4)
        assert c["x"] == 5
        assert c["missing"] == 0

    def test_total_prefix(self):
        c = Counter()
        c.incr("bgp.updates", 3)
        c.incr("bgp.sessions", 2)
        c.incr("ldp.msgs", 7)
        assert c.total("bgp.") == 5
        assert c.total() == 12

    def test_iteration_sorted(self):
        c = Counter()
        c.incr("b"); c.incr("a")
        assert [k for k, _ in c] == ["a", "b"]

    def test_snapshot_is_copy(self):
        c = Counter()
        c.incr("x")
        snap = c.snapshot()
        c.incr("x")
        assert snap == {"x": 1}
