"""Edge-case tests for MP-BGP distribution, re-convergence idempotence,
and the RR/full-mesh accounting that E1/E9e depend on."""

import pytest

from repro.mpls import Lsr, run_ldp
from repro.net.address import IPv4Address, Prefix
from repro.routing import converge
from repro.topology import Network
from repro.vpn import MpBgp, PeRouter, VpnProvisioner
from repro.vpn.rd_rt import RouteDistinguisher, VpnPrefix


def star_of_pes(n, seed=17):
    net = Network(seed=seed)
    core = net.add_node(Lsr(net.sim, "core"))
    pes = [net.add_node(PeRouter(net.sim, f"pe{i}")) for i in range(n)]
    for pe in pes:
        net.connect(pe, core)
    return net, core, pes


class TestBgpAccounting:
    def test_rr_origin_is_reflector(self):
        """When the RR itself originates a route it sends n-1 updates
        directly (no reflection hop)."""
        net, core, pes = star_of_pes(4)
        prov = VpnProvisioner(net)
        vpn = prov.create_vpn("v")
        prov.add_site(vpn, pes[0], num_hosts=0)   # pe0 will be the RR
        converge(net)
        res = MpBgp(net, pes, route_reflector="pe0").converge()
        # 2 exports (site prefix + access /30), each to 3 clients.
        assert res.routes_exported == 2
        assert res.updates_sent == 2 * 3

    def test_non_rr_origin_costs_same_total(self):
        net, core, pes = star_of_pes(4)
        prov = VpnProvisioner(net)
        vpn = prov.create_vpn("v")
        prov.add_site(vpn, pes[1], num_hosts=0)   # origin is a client
        converge(net)
        res = MpBgp(net, pes, route_reflector="pe0").converge()
        # origin -> RR (1) + RR -> other 2 clients = 3 per export.
        assert res.updates_sent == 2 * 3

    def test_single_pe_no_sessions(self):
        net, core, pes = star_of_pes(1)
        res = MpBgp(net, pes).converge()
        assert res.sessions == 0 and res.updates_sent == 0

    def test_duplicate_pe_names_rejected(self):
        net, core, pes = star_of_pes(2)
        with pytest.raises(ValueError):
            MpBgp(net, [pes[0], pes[0]])

    def test_reconverge_is_idempotent(self):
        """Running converge() twice must not duplicate or corrupt routes."""
        net, core, pes = star_of_pes(3)
        prov = VpnProvisioner(net)
        vpn = prov.create_vpn("v")
        sites = [prov.add_site(vpn, pe, num_hosts=0) for pe in pes]
        converge(net)
        run_ldp(net)
        bgp = MpBgp(net, pes)
        bgp.converge()
        before = {pe.name: dict(pe.vrfs["v"].routes()) for pe in pes}
        bgp.converge()
        after = {pe.name: dict(pe.vrfs["v"].routes()) for pe in pes}
        assert before == after

    def test_import_skips_own_exports(self):
        net, core, pes = star_of_pes(2)
        prov = VpnProvisioner(net)
        vpn = prov.create_vpn("v")
        s0 = prov.add_site(vpn, pes[0], prefix="10.5.0.0/24", num_hosts=0)
        converge(net)
        MpBgp(net, pes).converge()
        # pe0's own site stays a *local* route (not replaced by an import).
        route = pes[0].vrfs["v"].lookup(IPv4Address.parse("10.5.0.1"))
        assert route.kind == "local"


class TestVpnPrefixSemantics:
    def test_same_prefix_different_rd_coexist_in_exports(self):
        net, core, pes = star_of_pes(2)
        prov = VpnProvisioner(net)
        a = prov.create_vpn("a")
        b = prov.create_vpn("b")
        prov.add_site(a, pes[0], prefix="10.1.0.0/24", num_hosts=0)
        prov.add_site(b, pes[0], prefix="10.1.0.0/24", num_hosts=0)
        converge(net)
        res = MpBgp(net, pes).converge()
        keys = {r.key for r in res.exported}
        same_prefix = [k for k in keys if k.prefix == Prefix.parse("10.1.0.0/24")]
        assert len(same_prefix) == 2
        assert same_prefix[0].rd != same_prefix[1].rd

    def test_vpn_prefix_str(self):
        vp = VpnPrefix(RouteDistinguisher(65000, 7), Prefix.parse("10.0.0.0/8"))
        assert str(vp) == "65000:7:10.0.0.0/8"


class TestVpnConservationUnderLoad:
    def test_labeled_conservation(self):
        """Packet conservation holds through the full VPN encapsulation
        path under congestion (labels imposed/swapped/popped)."""
        from repro.traffic import CbrSource, FlowSink

        net, core, pes = star_of_pes(3, seed=23)
        # Shrink core links to force drops.
        for dl in net.duplex_links:
            dl.if_ab.rate_bps = 2e6
            dl.if_ba.rate_bps = 2e6
        prov = VpnProvisioner(net)
        vpn = prov.create_vpn("v")
        sites = [prov.add_site(vpn, pe) for pe in pes]
        converge(net)
        run_ldp(net)
        prov.converge_bgp()

        sinks = [FlowSink(net.sim).attach(s.hosts[0]) for s in sites]
        sources = []
        for i, (src_site, dst_site) in enumerate(
            [(0, 1), (1, 2), (2, 0)]
        ):
            h1 = sites[src_site].hosts[0]
            h2 = sites[dst_site].hosts[0]
            src = CbrSource(net.sim, h1.send, f"f{i}",
                            str(h1.loopback), str(h2.loopback),
                            payload_bytes=900, rate_bps=2.5e6)
            src.start(0.0, stop_at=1.5)
            sources.append((src, sinks[dst_site]))
        net.run(until=4.0)

        sent = sum(s.sent for s, _ in sources)
        recv = sum(sink.received(f"f{i}") for i, (_s, sink) in enumerate(sources))
        drops = net.total_drops() + sum(
            n.stats.dropped_no_route + n.stats.dropped_ttl + n.stats.dropped_other
            for n in net.nodes.values()
        )
        assert sent == recv + drops
        assert drops > 0  # the scenario actually congested
