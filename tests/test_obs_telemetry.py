"""Tests for the Telemetry session, runtime switch, manifest schema, CLI."""

import json

import pytest

from repro.cli import main
from repro.obs import runtime
from repro.obs.schema import validate_manifest
from repro.obs.telemetry import SCHEMA_ID, Telemetry
from repro.topology import Network

from tests.test_vpn import two_pe_network


@pytest.fixture(autouse=True)
def _clean_runtime():
    runtime.reset()
    yield
    runtime.reset()


def vpn_run():
    net, prov, vpn, s1, s2 = two_pe_network()
    tel = Telemetry(net, sample_every=4)
    prov.converge_bgp()
    h1, h2 = s1.hosts[0], s2.hosts[0]
    from repro.net.packet import IPHeader, Packet
    for seq in range(5):
        pkt = Packet(ip=IPHeader(h1.loopback, h2.loopback, dscp=46),
                     payload_bytes=100, flow="f1", seq=seq)
        net.sim.schedule(seq * 0.01, lambda p=pkt: h1.send(p))
    net.run(until=1.0)
    return net, tel


class TestRuntimeSwitch:
    def test_disabled_by_default(self):
        assert not runtime.is_enabled()
        assert Network().telemetry is None

    def test_enable_attaches_sessions(self):
        runtime.enable(sample_every=8)
        net = Network()
        assert net.telemetry is not None
        assert net.trace.flight is net.telemetry.flight
        assert net.trace.flows is net.telemetry.flows
        assert net.telemetry.profiler.attached
        assert runtime.sessions() == [net.telemetry]

    def test_disable_stops_new_attachments(self):
        runtime.enable()
        n1 = Network()
        runtime.disable()
        n2 = Network()
        assert n1.telemetry is not None and n2.telemetry is None
        assert len(runtime.sessions()) == 1

    def test_reset_detaches(self):
        runtime.enable()
        net = Network()
        runtime.reset()
        assert net.trace.flight is None
        assert not net.telemetry.profiler.attached
        assert runtime.sessions() == []


class TestManifest:
    def test_manifest_validates_against_schema(self):
        net, tel = vpn_run()
        m = tel.manifest(config={"experiment": "unit"})
        assert validate_manifest(m) == []
        assert m["schema"] == SCHEMA_ID and m["kind"] == "run"
        assert m["seed"] == 5  # two_pe_network default
        assert m["sim"]["nodes"] == len(net.nodes)
        json.dumps(m)  # fully serialisable

    def test_manifest_carries_all_sections(self):
        net, tel = vpn_run()
        m = tel.manifest()
        assert m["metrics"]["repro_node_rx_packets"]["series"]
        assert m["profile"]["events"] > 0
        assert any(k["events"] > 0 for k in m["profile"]["kinds"])
        assert m["flows"], "VPN traffic must produce flow-accounting rows"
        assert m["flight"]["recorded_total"] > 0
        assert m["git_rev"] is None or len(m["git_rev"]) == 40

    def test_scrape_is_idempotent(self):
        net, tel = vpn_run()
        a = tel.scrape().snapshot()
        b = tel.scrape().snapshot()
        assert a == b

    def test_drop_reasons_in_metrics(self):
        net, tel = vpn_run()
        from repro.net.address import IPv4Address
        from repro.net.drops import DropReason
        from repro.net.packet import IPHeader, Packet
        pkt = Packet(ip=IPHeader(IPv4Address(1), IPv4Address(2)),
                     payload_bytes=10)
        net.node("pe1").drop(pkt, DropReason.TTL)
        snap = tel.scrape().snapshot()
        series = snap["repro_node_dropped_packets"]["series"]
        assert {"node": "pe1", "reason": "ttl"} in [s["labels"] for s in series]

    def test_prometheus_export_of_scrape(self):
        net, tel = vpn_run()
        tel.scrape()
        text = tel.registry.to_prometheus()
        assert 'repro_node_rx_packets{node="p"}' in text
        assert "# TYPE repro_iface_tx_bytes gauge" in text

    def test_write_creates_valid_json_file(self, tmp_path):
        net, tel = vpn_run()
        path = tel.write(tmp_path / "run.json")
        doc = json.loads(path.read_text())
        assert validate_manifest(doc) == []


class TestExperimentRunManifest:
    def test_none_when_disabled(self):
        from repro.experiments.common import ExperimentRun
        run = ExperimentRun(net=Network())
        assert run.manifest() is None

    def test_harness_config_folded_in(self):
        from repro.experiments.common import ExperimentRun
        runtime.enable()
        run = ExperimentRun(net=Network(), warmup_s=0.1, measure_s=0.2)
        m = run.manifest(config={"experiment": "x"})
        assert validate_manifest(m) == []
        assert m["config"]["warmup_s"] == 0.1
        assert m["config"]["experiment"] == "x"


class TestSchemaRejections:
    def test_not_a_dict(self):
        assert validate_manifest([1, 2]) != []

    def test_wrong_schema_id(self):
        net, tel = vpn_run()
        m = tel.manifest()
        m["schema"] = "bogus/v9"
        assert any("schema" in e for e in validate_manifest(m))

    def test_unknown_kind(self):
        assert any("kind" in e
                   for e in validate_manifest({"schema": SCHEMA_ID, "kind": "x"}))

    def test_missing_sections_reported(self):
        errs = validate_manifest({"schema": SCHEMA_ID, "kind": "run"})
        joined = "\n".join(errs)
        for key in ("sim", "metrics", "flows", "flight"):
            assert key in joined

    def test_bad_series_labels_reported(self):
        net, tel = vpn_run()
        m = tel.manifest()
        m["metrics"]["repro_node_rx_packets"]["series"][0]["labels"] = {"bad": "x"}
        assert any("label" in e for e in validate_manifest(m))

    def test_bundle_validation(self):
        net, tel = vpn_run()
        good = {"schema": SCHEMA_ID, "kind": "bundle", "experiments": ["e2"],
                "options": {}, "runs": [tel.manifest()]}
        assert validate_manifest(good) == []
        bad = dict(good, runs=[{"kind": "nope"}])
        assert validate_manifest(bad) != []


class TestCli:
    def test_run_with_telemetry_writes_bundle(self, tmp_path, capsys):
        out = tmp_path / "e2.json"
        rc = main(["run", "e2", "--measure", "0.5", "--telemetry", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert validate_manifest(doc) == []
        assert doc["kind"] == "bundle" and doc["experiments"] == ["e2"]
        assert len(doc["runs"]) >= 1
        assert all(r["config"]["experiment"] == "e2" for r in doc["runs"])
        # The switch is reset afterwards: later networks are untelemetered.
        assert Network().telemetry is None
        assert "telemetry" in capsys.readouterr().out

    def test_telemetry_subcommand_renders_bundle(self, tmp_path, capsys):
        out = tmp_path / "e2.json"
        main(["run", "e2", "--measure", "0.5", "--telemetry", str(out)])
        capsys.readouterr()
        rc = main(["telemetry", str(out), "--flows"])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "runs" in printed
        assert "e2" in printed
        assert "hottest event kinds" in printed

    def test_telemetry_subcommand_rejects_invalid(self, tmp_path, capsys):
        p = tmp_path / "bad.json"
        p.write_text(json.dumps({"schema": "x", "kind": "run"}))
        rc = main(["telemetry", str(p)])
        assert rc == 1
        assert "not a valid telemetry document" in capsys.readouterr().out

    def test_run_without_flag_records_nothing(self, capsys):
        rc = main(["run", "e3"])
        assert rc == 0
        assert runtime.sessions() == []
