"""Unit tests for the hybrid fluid plane: envelopes, expansion, charging.

Parity with pure-packet experiments lives in ``test_hybrid_parity.py``;
this file pins the mechanisms — the ``Simulator.every`` periodic channel,
interface/qdisc fluid charging, envelope determinism, expansion policies,
and the SLO engine's fluid accounting block.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import ExperimentRun
from repro.obs.slo import SloEngine
from repro.qos.queues import DropTailFifo
from repro.routing.spf import converge
from repro.sim.engine import SimulationError, Simulator
from repro.sim.randomness import RandomStreams
from repro.topology import Network, attach_host, build_line
from repro.traffic.fluid import FluidAggregate, FluidRouter


def small_net(seed=5, rate_bps=10e6):
    net = Network(seed=seed)
    routers = build_line(net, 3, rate_bps=rate_bps)
    tx = attach_host(net, routers[0], "10.9.0.1", name="tx")
    rx = attach_host(net, routers[2], "10.9.0.2", name="rx")
    converge(net)
    return net, tx, rx, routers


class TestPeriodic:
    def test_every_fires_on_the_grid(self):
        sim = Simulator()
        ticks = []
        sim.every(0.1, lambda: ticks.append(sim.now))
        sim.run(until=0.35)
        assert ticks == pytest.approx([0.1, 0.2, 0.3])

    def test_first_delay_overrides_initial_interval(self):
        sim = Simulator()
        ticks = []
        sim.every(0.1, lambda: ticks.append(sim.now), first_delay=0.0)
        sim.run(until=0.25)
        assert ticks == pytest.approx([0.0, 0.1, 0.2])

    def test_cancel_stops_future_fires(self):
        sim = Simulator()
        ticks = []
        p = sim.every(0.1, lambda: ticks.append(sim.now))
        sim.schedule_at(0.25, p.cancel)
        sim.run(until=1.0)
        assert ticks == pytest.approx([0.1, 0.2])
        assert not p.active

    def test_cancel_from_inside_callback(self):
        sim = Simulator()
        ticks = []
        p = sim.every(0.1, lambda: (ticks.append(sim.now), p.cancel()))
        sim.run(until=1.0)
        assert len(ticks) == 1

    def test_invalid_interval_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.every(0.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.every(float("inf"), lambda: None)


class TestInterfaceFluidLoad:
    def test_effective_rate_reduced_and_exactly_restored(self):
        net, tx, rx, routers = small_net()
        iface = next(iter(routers[0].interfaces.values()))
        original = iface.rate_bps
        iface.set_fluid_load(4e6)
        assert iface._eff_rate_bps == pytest.approx(original - 4e6)
        iface.set_fluid_load(0.0)
        # Exact float restore: zero fluid load must not perturb parity.
        assert iface._eff_rate_bps == original

    def test_load_floor_keeps_rate_positive(self):
        net, tx, rx, routers = small_net()
        iface = next(iter(routers[0].interfaces.values()))
        iface.set_fluid_load(iface.rate_bps * 10)
        assert iface._eff_rate_bps == pytest.approx(iface.rate_bps * 1e-3)


class TestQdiscFluidBackground:
    def test_standing_bytes_consume_capacity(self):
        from repro.net.packet import IPHeader, Packet
        from repro.net.address import IPv4Address

        q = DropTailFifo(capacity_packets=None, capacity_bytes=3000)
        pkt = Packet(
            ip=IPHeader(
                src=IPv4Address.parse("10.0.0.1"),
                dst=IPv4Address.parse("10.0.0.2"),
            ),
            payload_bytes=1000,
        )
        q.set_fluid_background(5e6, standing_bytes=2500)
        assert q.enqueue(pkt, now=0.0) is False  # 1020 + 2500 > 3000
        q.set_fluid_background(0, 0)
        assert q.enqueue(pkt, now=0.0) is True


class TestFluidAggregate:
    def test_onoff_redraw_is_stream_deterministic(self):
        draws = []
        for _ in range(2):
            sim = Simulator()
            streams = RandomStreams(123)
            agg = FluidAggregate(
                sim, "f", "10.0.0.1", "10.0.0.2",
                n_flows=100, kind="onoff", peak_bps=1e5,
                mean_on_s=0.1, mean_off_s=0.4, rng=streams.stream("t.env"),
            )
            draws.append([agg.update_envelope() for _ in range(10)])
        assert draws[0] == draws[1]
        assert any(r != draws[0][0] for r in draws[0])  # actually stochastic

    def test_account_fluid_integrates_offered_load(self):
        sim = Simulator()
        agg = FluidAggregate(
            sim, "f", "10.0.0.1", "10.0.0.2",
            n_flows=10, payload_bytes=980, kind="cbr", rate_bps=1e6,
        )
        agg.account_fluid(2.0)  # 10 Mb/s × 2 s = 20 Mb = 2500 packets
        assert agg.fluid_delivered_packets == 2500
        assert agg.fluid_delivered_bytes == 2_500_000
        assert agg.sent == 2500

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            FluidAggregate(sim, "f", "1.2.3.4", "5.6.7.8", kind="nope")
        with pytest.raises(ValueError):
            FluidAggregate(sim, "f", "1.2.3.4", "5.6.7.8", kind="cbr")
        with pytest.raises(ValueError):  # onoff needs a named stream
            FluidAggregate(
                sim, "f", "1.2.3.4", "5.6.7.8", kind="onoff", peak_bps=1e6
            )


class TestFluidRouter:
    def test_fully_fluid_path_charges_and_uncharges_links(self):
        net, tx, rx, routers = small_net(rate_bps=10e6)
        router = FluidRouter(net)
        agg = FluidAggregate(
            net.sim, "f", "10.9.0.1", "10.9.0.2",
            payload_bytes=980, kind="cbr", rate_bps=2e6,  # under headroom
        )
        path = router.add(agg, tx, rx)
        router.start(0.0, stop_at=1.0)
        net.run(until=0.5)
        assert path.exp_index is None
        core_ifaces = [h[0] for h in path.hops]
        assert all(i.fluid_load_bps == 2e6 for i in core_ifaces)
        assert all(i._eff_rate_bps < i.rate_bps for i in core_ifaces)
        net.run(until=1.5)  # past stop_at
        assert all(i.fluid_load_bps == 0.0 for i in core_ifaces)
        assert all(i._eff_rate_bps == i.rate_bps for i in core_ifaces)
        # 2 Mb/s × 1 s at 1000 B wire = 250 packets, delivered analytically.
        assert agg.fluid_delivered_packets == pytest.approx(250, abs=1)
        assert agg.expanded_sent == 0

    def test_congested_hop_triggers_expansion(self):
        net, tx, rx, routers = small_net(rate_bps=10e6)
        run = ExperimentRun(net, warmup_s=0.1, measure_s=0.5)
        sink = run.sink_at(rx)
        agg = FluidAggregate(
            net.sim, "f", "10.9.0.1", "10.9.0.2",
            payload_bytes=980, kind="cbr", rate_bps=9.5e6,  # > 85% of 10M
        )
        path = run.fluid_plane().add(agg, tx, rx)
        run.execute(drain_s=0.2)
        assert path.exp_index == 1  # first core hop, not the access link
        assert agg.expanded_sent > 0
        assert sink.record("f").count > 0

    def test_expand_source_policy_forces_host_injection(self):
        net, tx, rx, routers = small_net(rate_bps=10e6)
        run = ExperimentRun(net, warmup_s=0.1, measure_s=0.3)
        sink = run.sink_at(rx)
        agg = FluidAggregate(
            net.sim, "f", "10.9.0.1", "10.9.0.2",
            payload_bytes=980, kind="cbr", rate_bps=1e6,
        )
        path = run.fluid_plane().add(agg, tx, rx, expand="source")
        run.execute(drain_s=0.2)
        assert path.exp_index == 0
        assert agg.fluid_delivered_packets == 0
        assert sink.record("f").count == agg.expanded_sent > 0

    def test_expand_never_policy_stays_fluid_under_congestion(self):
        net, tx, rx, routers = small_net(rate_bps=10e6)
        router = FluidRouter(net)
        agg = FluidAggregate(
            net.sim, "f", "10.9.0.1", "10.9.0.2",
            payload_bytes=980, kind="cbr", rate_bps=20e6,  # 2× the line
        )
        path = router.add(agg, tx, rx, expand="never")
        router.start(0.0, stop_at=0.5)
        net.run(until=0.3)
        assert path.exp_index is None
        assert agg.expanded_sent == 0
        # Charge is applied, effective rate floored but positive.
        iface = path.hops[1][0]
        assert iface.fluid_load_bps == 20e6
        assert iface._eff_rate_bps > 0
        net.run(until=1.0)

    def test_expand_at_sink_delivers_real_packets(self):
        net, tx, rx, routers = small_net(rate_bps=10e6)
        run = ExperimentRun(net, warmup_s=0.1, measure_s=0.5)
        sink = run.sink_at(rx)
        agg = FluidAggregate(
            net.sim, "f", "10.9.0.1", "10.9.0.2",
            payload_bytes=980, kind="cbr", rate_bps=1e6,
        )
        path = run.fluid_plane().add(agg, tx, rx, expand_at_sink=True)
        run.execute(drain_s=0.2)
        assert path.exp_index == len(path.hops) - 1
        assert sink.record("f").count == agg.expanded_sent > 0

    def test_unknown_expand_policy_rejected(self):
        net, tx, rx, _ = small_net()
        router = FluidRouter(net)
        agg = FluidAggregate(
            net.sim, "f", "10.9.0.1", "10.9.0.2", kind="cbr", rate_bps=1e6
        )
        with pytest.raises(ValueError):
            router.add(agg, tx, rx, expand="sometimes")

    def test_headroom_validation(self):
        net, *_ = small_net()
        with pytest.raises(ValueError):
            FluidRouter(net, headroom=0.0)
        with pytest.raises(ValueError):
            FluidRouter(net, headroom=1.5)


class TestSloFluidAccounting:
    def test_fluid_deliveries_reach_the_engine_summary(self):
        net, tx, rx, routers = small_net(rate_bps=10e6)
        engine = SloEngine(net.sim, window_s=0.5).attach(net)
        router = FluidRouter(net)
        agg = FluidAggregate(
            net.sim, "f", "10.9.0.1", "10.9.0.2",
            payload_bytes=980, kind="cbr", rate_bps=2e6,
        )
        router.add(agg, tx, rx)
        router.start(0.0, stop_at=1.0)
        net.run(until=1.5)
        summary = engine.summary()
        assert "fluid" in summary
        rec = summary["fluid"]["f"]
        assert rec["packets"] == agg.fluid_delivered_packets > 0
        assert rec["delay_s"] == pytest.approx(agg.analytic_delay_s)
        # Analytic deliveries are tallied apart from packet streams.
        assert engine.delivered == 0

    def test_no_fluid_block_without_fluid_traffic(self):
        sim = Simulator()
        engine = SloEngine(sim)
        assert "fluid" not in engine.summary()
