"""Sweep × SLO: streaming columns stay deterministic at any worker count."""

import pytest

from repro.sweep.grids import build_grid, e5_grid, smoke_grid
from repro.sweep.runner import deterministic_view, run_sweep


def test_e5_grid_slo_flag_threads_params():
    plain = e5_grid(measure_s=0.5)
    slo = e5_grid(measure_s=0.5, slo=True)
    assert [t["name"] for t in plain] == [t["name"] for t in slo]
    assert [t["seed"] for t in plain] == [t["seed"] for t in slo]
    assert all("slo" not in t["params"] for t in plain)
    assert all(t["params"]["slo"] is True for t in slo)
    built = build_grid("e5", measure_s=0.5, slo=True)
    assert all(t["params"]["slo"] is True for t in built)


def test_smoke_grid_includes_slo_task():
    tasks = smoke_grid()
    slo_tasks = [t for t in tasks if t["params"].get("slo")]
    assert len(slo_tasks) == 1
    assert slo_tasks[0]["scenario"] == "e5"


def test_slo_rows_carry_streaming_columns_and_summary_row():
    tasks = [t for t in smoke_grid() if t["params"].get("slo")]
    report = run_sweep(tasks, workers=1)
    assert not report["failed"]
    rows = report["rows"]
    flows = {r["flow"]: r for r in rows}
    assert set(flows) == {"voice", "data", "bulk", "(slo-summary)"}
    for flow in ("voice", "data"):
        row = flows[flow]
        assert row["slo"] in ("PASS", "FAIL")
        # The streaming verdict must agree with the batch-oracle column.
        assert row["slo"] == row["sla"]
        assert row["slo_p99_ms"] == pytest.approx(row["p99_ms"], abs=0.01)
    assert flows["bulk"]["slo"] == "n/a"
    summary = flows["(slo-summary)"]
    assert summary["delivered"] > 0
    assert summary["streams"] >= 4
    assert summary["windows_closed"] >= 0


def test_slo_sweep_deterministic_across_worker_counts():
    tasks = e5_grid(measure_s=0.5, slo=True)
    inline = run_sweep(tasks, workers=1)
    fanned = run_sweep(tasks, workers=2)
    assert deterministic_view(inline) == deterministic_view(fanned)
    assert not inline["failed"]
