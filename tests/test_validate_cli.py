"""Tests for the validation sweep and the CLI."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main
from repro.mpls import Lsr, run_ldp
from repro.mpls.lfib import LabelOp, LfibEntry, Nhlfe
from repro.net.link import Interface
from repro.qos.queues import DropTailFifo
from repro.routing import converge
from repro.topology import Network, build_backbone
from repro.validate import Issue, validate
from repro.vpn import PeRouter, VpnProvisioner


def provisioned_network():
    net = Network(seed=5)

    def factory(n, name):
        cls = PeRouter if name.startswith("E") else Lsr
        return n.add_node(cls(n.sim, name))

    nodes = build_backbone(net, node_factory=factory)
    prov = VpnProvisioner(net)
    vpn = prov.create_vpn("v")
    prov.add_site(vpn, nodes["E1"])
    prov.add_site(vpn, nodes["E8"])
    converge(net)
    run_ldp(net)
    prov.converge_bgp()
    return net, nodes


class TestValidate:
    def test_clean_network_has_no_errors(self):
        net, _ = provisioned_network()
        errors = [i for i in validate(net) if i.severity == "error"]
        assert errors == []

    def test_unattached_interface_flagged(self):
        net, nodes = provisioned_network()
        lone = Interface(net.sim, nodes["P1"], "dangling", 1e6, DropTailFifo())
        nodes["P1"].add_interface(lone)
        issues = validate(net)
        assert any("no attached link" in i.message for i in issues)

    def test_duplicate_core_address_flagged(self):
        net, nodes = provisioned_network()
        nodes["P1"].add_address("172.16.0.1", "")
        nodes["P2"].add_address("172.16.0.1", "")
        issues = validate(net)
        assert any("also on" in i.message for i in issues)

    def test_lfib_to_missing_interface_flagged(self):
        net, nodes = provisioned_network()
        nodes["P1"].lfib.install(
            9999, LfibEntry(LabelOp.SWAP, out_label=10, out_ifname="ghost")
        )
        issues = validate(net)
        assert any("missing" in i.message and "9999" in i.message for i in issues)

    def test_vpn_label_unknown_vrf_flagged(self):
        net, nodes = provisioned_network()
        nodes["E1"].lfib.install(9998, LfibEntry(LabelOp.VPN, vrf="ghost-vrf"))
        issues = validate(net)
        assert any("unknown VRF" in i.message for i in issues)

    def test_ftn_to_missing_interface_flagged(self):
        net, nodes = provisioned_network()
        nodes["P1"].ftn.bind("9.9.9.0/24", Nhlfe("ghost", (17,)))
        issues = validate(net)
        assert any("FTN" in i.message for i in issues)

    def test_empty_vrf_warns(self):
        net, nodes = provisioned_network()
        from repro.vpn.rd_rt import RouteDistinguisher, RouteTarget
        rt = RouteTarget(65000, 99)
        nodes["E2"].add_vrf("empty", RouteDistinguisher(65000, 99), {rt}, {rt})
        issues = validate(net)
        warnings = [i for i in issues if i.severity == "warning"]
        assert any("no circuits" in i.message for i in warnings)

    def test_errors_sort_first(self):
        net, nodes = provisioned_network()
        from repro.vpn.rd_rt import RouteDistinguisher, RouteTarget
        rt = RouteTarget(65000, 99)
        nodes["E2"].add_vrf("empty", RouteDistinguisher(65000, 99), {rt}, {rt})
        nodes["P1"].ftn.bind("9.9.9.0/24", Nhlfe("ghost", (17,)))
        issues = validate(net)
        severities = [i.severity for i in issues]
        assert severities == sorted(severities, key=lambda s: s != "error")

    def test_issue_str(self):
        i = Issue("error", "r1", "boom")
        assert str(i) == "[error] r1: boom"


class TestCli:
    def test_every_experiment_registered(self):
        assert set(EXPERIMENTS) == {f"e{i}" for i in range(1, 16)} | {"eh"}

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_run_e3(self, capsys):
        assert main(["run", "e3"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "finished" in out

    def test_run_e7_fast(self, capsys):
        assert main(["run", "e7", "--measure", "1"]) == 0
        out = capsys.readouterr().out
        assert "delivered_cross" in out

    def test_run_e1_custom_sites(self, capsys):
        assert main(["run", "e1", "--sites", "4", "8"]) == 0
        out = capsys.readouterr().out
        assert "overlay_VCs" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "e99"])


class TestValidateExperimentNetworks:
    """Every experiment's provisioned network must pass the sweep clean —
    the harness itself should never rely on misconfiguration."""

    def test_e5_full_stage_clean(self):
        from repro.experiments.e5_sla import _build
        net = _build("full", seed=41)["net"]
        assert [i for i in validate(net) if i.severity == "error"] == []

    def test_e10_two_providers_clean(self):
        from repro.experiments.e10_interas import build_two_providers
        net = build_two_providers(seed=101, qos=False)["net"]
        assert [i for i in validate(net) if i.severity == "error"] == []

    def test_e7_overlap_scenario_clean(self):
        from repro.experiments.e7_isolation import build_overlap_scenario
        net = build_overlap_scenario(seed=61, extranet=True)["net"]
        assert [i for i in validate(net) if i.severity == "error"] == []
