"""Unit + property tests for packets and MPLS label-stack operations."""

import pytest
from hypothesis import given, strategies as st

from repro.net.address import IPv4Address
from repro.net.packet import (
    IPV4_HEADER_BYTES,
    MPLS_SHIM_BYTES,
    IPHeader,
    MplsEntry,
    Packet,
    PacketError,
)


def mk(payload=100, dscp=0, ttl=64):
    return Packet(
        ip=IPHeader(IPv4Address.parse("10.0.0.1"), IPv4Address.parse("10.0.0.2"),
                    dscp=dscp, ttl=ttl),
        payload_bytes=payload,
    )


class TestWireSize:
    def test_plain_ip(self):
        assert mk(100).wire_bytes == 100 + IPV4_HEADER_BYTES

    def test_each_label_adds_shim(self):
        p = mk(100)
        for depth in range(1, 4):
            p.push_label(15 + depth)
            assert p.wire_bytes == 100 + IPV4_HEADER_BYTES + depth * MPLS_SHIM_BYTES

    def test_encapsulation_nests(self):
        inner = mk(100)
        outer = Packet(
            ip=IPHeader(IPv4Address(1), IPv4Address(2)),
            inner=inner, encrypted=True, encap_overhead=30,
        )
        assert outer.wire_bytes == inner.wire_bytes + 30 + IPV4_HEADER_BYTES

    def test_encap_overhead_without_inner(self):
        p = mk(100)
        p.encap_overhead = 8
        assert p.wire_bytes == 100 + 8 + IPV4_HEADER_BYTES


class TestLabelStack:
    def test_push_swap_pop_cycle(self):
        p = mk()
        p.push_label(100, exp=5)
        assert p.top_label.label == 100 and p.top_label.exp == 5
        p.swap_label(200)
        assert p.top_label.label == 200
        assert p.top_label.exp == 5  # EXP preserved across swap
        entry = p.pop_label()
        assert entry.label == 200
        assert p.top_label is None

    def test_two_level_stack_order(self):
        p = mk()
        p.push_label(30)   # VPN label (bottom)
        p.push_label(40)   # tunnel label (top)
        assert p.top_label.label == 40
        p.pop_label()
        assert p.top_label.label == 30

    def test_swap_empty_raises(self):
        with pytest.raises(PacketError):
            mk().swap_label(5)

    def test_pop_empty_raises(self):
        with pytest.raises(PacketError):
            mk().pop_label()

    def test_label_range_validation(self):
        with pytest.raises(PacketError):
            mk().push_label(1 << 20)
        with pytest.raises(PacketError):
            MplsEntry(label=5, exp=9)
        p = mk()
        p.push_label(5)
        with pytest.raises(PacketError):
            p.swap_label(1 << 20)

    def test_swap_can_set_exp(self):
        p = mk()
        p.push_label(7, exp=1)
        p.swap_label(8, exp=4)
        assert p.top_label.exp == 4

    @given(st.lists(st.integers(min_value=16, max_value=0xFFFFF), min_size=1, max_size=8))
    def test_push_pop_lifo(self, labels):
        p = mk()
        for lbl in labels:
            p.push_label(lbl)
        popped = [p.pop_label().label for _ in labels]
        assert popped == list(reversed(labels))
        assert p.top_label is None


class TestTtl:
    def test_push_inherits_ip_ttl(self):
        p = mk(ttl=37)
        p.push_label(16)
        assert p.top_label.ttl == 37

    def test_push_inherits_label_ttl(self):
        p = mk(ttl=37)
        p.push_label(16)
        p.top_label.ttl = 9
        p.push_label(17)
        assert p.top_label.ttl == 9

    def test_decrement_targets_top_label(self):
        p = mk(ttl=10)
        p.push_label(16)
        assert p.decrement_ttl() == 9
        assert p.ip.ttl == 10  # IP TTL untouched while labeled

    def test_pop_propagates_ttl_down_to_ip(self):
        """RFC 3443 uniform model: MPLS TTL writes back on pop."""
        p = mk(ttl=10)
        p.push_label(16)
        p.decrement_ttl()
        p.decrement_ttl()
        p.pop_label()
        assert p.ip.ttl == 8

    def test_pop_propagates_between_labels(self):
        p = mk(ttl=20)
        p.push_label(16)
        p.push_label(17)
        p.decrement_ttl()
        p.pop_label()
        assert p.top_label.ttl == 19

    def test_decrement_ip_when_unlabeled(self):
        p = mk(ttl=2)
        assert p.decrement_ttl() == 1
        assert p.decrement_ttl() == 0


class TestEncapsulation:
    def test_innermost_unwraps_chain(self):
        inner = mk()
        mid = Packet(ip=IPHeader(IPv4Address(1), IPv4Address(2)), inner=inner)
        outer = Packet(ip=IPHeader(IPv4Address(3), IPv4Address(4)), inner=mid)
        assert outer.innermost() is inner
        assert inner.innermost() is inner

    def test_classifiable_dscp_is_outer(self):
        inner = mk(dscp=46)
        outer = Packet(
            ip=IPHeader(IPv4Address(1), IPv4Address(2), dscp=0),
            inner=inner, encrypted=True,
        )
        assert outer.classifiable_dscp() == 0  # claim C3: inner EF invisible
        assert inner.classifiable_dscp() == 46

    def test_uids_unique(self):
        assert mk().uid != mk().uid

    def test_header_copy_is_independent(self):
        h = IPHeader(IPv4Address(1), IPv4Address(2), dscp=10)
        c = h.copy()
        c.dscp = 20
        assert h.dscp == 10
