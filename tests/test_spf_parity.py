"""Bit-for-bit parity between the control-plane fast path and the reference.

``repro.routing.reference`` preserves the pre-fast-path implementation
verbatim (path-tuple-heap Dijkstra, networkx graph rebuilt per call, one
``fib.install`` per route).  These tests build the same topology twice,
converge one copy with each implementation, and demand *identical* FIB,
LFIB, and FTN contents — the acceptance bar for the optimization: faster,
not different.
"""

import networkx as nx
import pytest

from repro.mpls.ldp import run_ldp
from repro.mpls.lsr import Lsr
from repro.routing.reference import (
    converge_reference,
    deterministic_dijkstra_reference,
    domain_graph_reference,
    reconverge_reference,
    run_ldp_reference,
)
from repro.routing.router import Router
from repro.routing.spf import _deterministic_dijkstra, converge, reconverge
from repro.topology import (
    Network,
    attach_host,
    build_backbone,
    build_fish,
    build_waxman,
)


def fib_snapshot(net):
    """name → {prefix: RouteEntry} for every Router in the network."""
    return {
        name: dict(node.fib.routes())
        for name, node in net.nodes.items()
        if isinstance(node, Router)
    }


def twin_networks(builder, seed):
    """Two networks built identically (same seed → same names/addresses)."""
    nets = []
    for _ in range(2):
        net = Network(seed=seed)
        builder(net)
        nets.append(net)
    return nets


BUILDERS = {
    "backbone": lambda net: build_backbone(net),
    "fish": lambda net: build_fish(net),
    "waxman9": lambda net: build_waxman(net, 9, alpha=0.9, beta=0.9),
    "waxman15": lambda net: build_waxman(net, 15, alpha=0.6, beta=0.8),
}


class TestConvergeParity:
    @pytest.mark.parametrize("topo", sorted(BUILDERS))
    @pytest.mark.parametrize("ecmp", [False, True])
    def test_fib_identical(self, topo, ecmp):
        new, ref = twin_networks(BUILDERS[topo], seed=23)
        n_new = converge(new, ecmp=ecmp)
        n_ref = converge_reference(ref, ecmp=ecmp)
        assert n_new == n_ref
        assert fib_snapshot(new) == fib_snapshot(ref)

    def test_fib_identical_with_attached_hosts(self):
        def builder(net):
            nodes = build_backbone(net)
            attach_host(net, nodes["E1"], "10.90.0.1")
            attach_host(net, nodes["E8"], "10.90.0.2")

        new, ref = twin_networks(builder, seed=29)
        converge(new)
        converge_reference(ref)
        assert fib_snapshot(new) == fib_snapshot(ref)

    def test_reconverge_after_link_down_identical(self):
        new, ref = twin_networks(BUILDERS["backbone"], seed=31)
        converge(new)
        converge_reference(ref)
        for net in (new, ref):
            net.link_between("P1", "P2").set_up(False)
        reconverge(new)
        reconverge_reference(ref)
        assert fib_snapshot(new) == fib_snapshot(ref)

    def test_reconverge_after_restore_identical(self):
        new, ref = twin_networks(BUILDERS["fish"], seed=37)
        converge(new)
        converge_reference(ref)
        for net in (new, ref):
            net.link_between("G", "H").set_up(False)
        reconverge(new)
        reconverge_reference(ref)
        for net in (new, ref):
            net.link_between("G", "H").set_up(True)
        reconverge(new)
        reconverge_reference(ref)
        assert fib_snapshot(new) == fib_snapshot(ref)


class TestDijkstraWrapperParity:
    """`_deterministic_dijkstra` survives as a compatibility wrapper for the
    TE/IntServ code; it must return exactly what the reference returned —
    including dict iteration order, which downstream loops rely on."""

    def test_undirected_identical_including_order(self):
        net = Network(seed=23)
        build_backbone(net)
        g = domain_graph_reference(net, "core")
        for src in ("P1", "E4"):
            dist_n, paths_n = _deterministic_dijkstra(g, src)
            dist_r, paths_r = deterministic_dijkstra_reference(g, src)
            assert dist_n == dist_r
            assert paths_n == paths_r
            assert list(paths_n) == list(paths_r)  # discovery order too

    def test_late_discovered_final_predecessor(self):
        # Regression: S-A=10, S-B=1, B-C=1, C-A=1.  A is *discovered*
        # first (via the heavy S-A edge) and then re-pointed at C, which
        # enters the discovery order after A — so reconstruction must walk
        # the final predecessor chain rather than trust discovery order
        # (the old code raised KeyError('C') here).
        g = nx.Graph()
        g.add_edge("S", "A", metric=10.0)
        g.add_edge("S", "B", metric=1.0)
        g.add_edge("B", "C", metric=1.0)
        g.add_edge("C", "A", metric=1.0)
        dist_n, paths_n = _deterministic_dijkstra(g, "S")
        dist_r, paths_r = deterministic_dijkstra_reference(g, "S")
        assert dist_n == dist_r
        assert paths_n == paths_r
        assert list(paths_n) == list(paths_r)  # discovery order too
        assert paths_n["A"] == ["S", "B", "C", "A"]
        assert dist_n["A"] == 3.0

    def test_digraph_supported(self):
        # The TE CSPF runs this on a DiGraph of residual-capacity arcs.
        g = nx.DiGraph()
        g.add_edge("a", "b", metric=1.0)
        g.add_edge("b", "c", metric=1.0)
        g.add_edge("a", "c", metric=2.0)  # ties a-b-c; path tie-break picks a-b-c
        g.add_edge("c", "a", metric=5.0)  # asymmetric return arc
        dist_n, paths_n = _deterministic_dijkstra(g, "a")
        dist_r, paths_r = deterministic_dijkstra_reference(g, "a")
        assert dist_n == dist_r
        assert paths_n == paths_r
        assert paths_n["c"] == ["a", "b", "c"]


class TestLdpParity:
    def _lsr_backbone(self, seed):
        net = Network(seed=seed)
        build_backbone(net, node_factory=lambda n, name: n.add_node(Lsr(n.sim, name)))
        return net

    @pytest.mark.parametrize("mode", ["php", "explicit_null", "no_php"])
    def test_lfib_ftn_and_counters_identical(self, mode):
        php = mode == "php"
        explicit = mode == "explicit_null"
        new = self._lsr_backbone(41)
        ref = self._lsr_backbone(41)
        converge(new)
        converge_reference(ref)
        res_n = run_ldp(new, php=php, use_explicit_null=explicit)
        res_r = run_ldp_reference(ref, php=php, use_explicit_null=explicit)
        assert res_n.bindings == res_r.bindings
        assert res_n.sessions == res_r.sessions
        assert res_n.mapping_messages == res_r.mapping_messages
        assert res_n.lfib_entries == res_r.lfib_entries
        assert res_n.ftn_entries == res_r.ftn_entries
        for name in new.nodes:
            node_n, node_r = new.nodes[name], ref.nodes[name]
            if not isinstance(node_n, Lsr):
                continue
            assert node_n.lfib.entries() == node_r.lfib.entries(), name
            assert node_n.ftn.entries() == node_r.ftn.entries(), name
