"""Tests for the VPN layer: RD/RT, VRF, PE, MP-BGP, provisioning."""

import pytest

from repro.mpls.ldp import run_ldp
from repro.mpls.lfib import LabelOp
from repro.mpls.lsr import Lsr
from repro.net.address import IPv4Address, Prefix
from repro.net.packet import IPHeader, Packet
from repro.routing.spf import converge
from repro.topology import Network
from repro.vpn.bgp import MpBgp
from repro.vpn.pe import PeRouter
from repro.vpn.provision import VpnProvisioner
from repro.vpn.rd_rt import RouteDistinguisher, RouteTarget, VpnPrefix
from repro.vpn.vrf import Vrf, VrfRoute


class TestRdRt:
    def test_rd_parse_str_roundtrip(self):
        rd = RouteDistinguisher.parse("65000:42")
        assert rd.asn == 65000 and rd.number == 42
        assert str(rd) == "65000:42"

    def test_rt_parse_both_forms(self):
        assert RouteTarget.parse("target:65000:7") == RouteTarget(65000, 7)
        assert RouteTarget.parse("65000:7") == RouteTarget(65000, 7)
        assert str(RouteTarget(65000, 7)) == "target:65000:7"

    def test_range_validation(self):
        with pytest.raises(ValueError):
            RouteDistinguisher(70000, 1)
        with pytest.raises(ValueError):
            RouteTarget(1, 1 << 32)

    def test_vpn_prefix_disambiguates_overlap(self):
        p = Prefix.parse("10.0.0.0/8")
        a = VpnPrefix(RouteDistinguisher(65000, 1), p)
        b = VpnPrefix(RouteDistinguisher(65000, 2), p)
        assert a != b
        assert len({a, b}) == 2


def mk_vrf(name="v", rd_num=1, label=100):
    rt = RouteTarget(65000, rd_num)
    return Vrf(name, RouteDistinguisher(65000, rd_num), frozenset({rt}),
               frozenset({rt}), label)


class TestVrf:
    def test_local_route_lookup(self):
        vrf = mk_vrf()
        vrf.add_local("10.1.0.0/24", "ge0")
        r = vrf.lookup(IPv4Address.parse("10.1.0.5"))
        assert r.kind == "local" and r.out_ifname == "ge0"

    def test_remote_route_lookup(self):
        vrf = mk_vrf()
        vrf.add_remote("10.2.0.0/24", IPv4Address.parse("172.16.0.9"), 201)
        r = vrf.lookup(IPv4Address.parse("10.2.0.5"))
        assert r.kind == "remote" and r.vpn_label == 201

    def test_lpm_within_vrf(self):
        vrf = mk_vrf()
        vrf.add_local("10.0.0.0/8", "short")
        vrf.add_local("10.1.0.0/16", "long")
        assert vrf.lookup(IPv4Address.parse("10.1.2.3")).out_ifname == "long"

    def test_miss_returns_none(self):
        assert mk_vrf().lookup(IPv4Address.parse("10.0.0.1")) is None

    def test_withdraw(self):
        vrf = mk_vrf()
        vrf.add_local("10.1.0.0/24", "ge0")
        assert vrf.withdraw("10.1.0.0/24")
        assert vrf.lookup(IPv4Address.parse("10.1.0.5")) is None
        assert not vrf.withdraw("10.1.0.0/24")

    def test_route_validation(self):
        with pytest.raises(ValueError):
            VrfRoute("local")
        with pytest.raises(ValueError):
            VrfRoute("remote", remote_pe=IPv4Address(1))
        with pytest.raises(ValueError):
            VrfRoute("bogus", out_ifname="x")

    def test_local_routes_filter(self):
        vrf = mk_vrf()
        vrf.add_local("10.1.0.0/24", "ge0")
        vrf.add_remote("10.2.0.0/24", IPv4Address(9), 200)
        assert len(vrf.local_routes()) == 1
        assert len(vrf) == 2


class TestPeRouter:
    def _pe(self):
        net = Network()
        pe = net.add_node(PeRouter(net.sim, "pe"))
        core = net.add_node(Lsr(net.sim, "p"))
        ce = net.add_node(Lsr(net.sim, "ce"), loopback=False)
        net.connect(pe, core)
        net.connect(pe, ce)
        return net, pe, core, ce

    def test_add_vrf_installs_vpn_label(self):
        net, pe, core, ce = self._pe()
        rt = RouteTarget(65000, 1)
        vrf = pe.add_vrf("v1", RouteDistinguisher(65000, 1), {rt}, {rt})
        entry = pe.lfib.lookup(vrf.vpn_label)
        assert entry.op is LabelOp.VPN and entry.vrf == "v1"

    def test_duplicate_vrf_rejected(self):
        net, pe, core, ce = self._pe()
        rt = RouteTarget(65000, 1)
        pe.add_vrf("v1", RouteDistinguisher(65000, 1), {rt}, {rt})
        with pytest.raises(ValueError):
            pe.add_vrf("v1", RouteDistinguisher(65000, 2), {rt}, {rt})

    def test_bind_circuit_moves_subnet_out_of_igp(self):
        net, pe, core, ce = self._pe()
        rt = RouteTarget(65000, 1)
        pe.add_vrf("v1", RouteDistinguisher(65000, 1), {rt}, {rt})
        access_subnet = next(
            s for s, ifn in pe.connected_prefixes.items() if ifn == "to-ce"
        )
        pe.bind_circuit("to-ce", "v1")
        assert access_subnet not in pe.connected_prefixes
        assert pe.vrfs["v1"].lookup(access_subnet.first) is not None
        assert pe.vrf_of_circuit("to-ce") is pe.vrfs["v1"]

    def test_bind_unknown_interface_rejected(self):
        net, pe, core, ce = self._pe()
        rt = RouteTarget(65000, 1)
        pe.add_vrf("v1", RouteDistinguisher(65000, 1), {rt}, {rt})
        with pytest.raises(ValueError):
            pe.bind_circuit("nope", "v1")

    def test_customer_packet_without_route_dropped(self):
        net, pe, core, ce = self._pe()
        rt = RouteTarget(65000, 1)
        pe.add_vrf("v1", RouteDistinguisher(65000, 1), {rt}, {rt})
        pe.bind_circuit("to-ce", "v1")
        p = Packet(ip=IPHeader(IPv4Address.parse("10.1.0.1"),
                               IPv4Address.parse("10.99.0.1")), payload_bytes=50)
        pe.handle(p, "to-ce")
        assert pe.stats.dropped_no_route == 1

    def test_remote_route_without_tunnel_dropped(self):
        net, pe, core, ce = self._pe()
        rt = RouteTarget(65000, 1)
        vrf = pe.add_vrf("v1", RouteDistinguisher(65000, 1), {rt}, {rt})
        pe.bind_circuit("to-ce", "v1")
        vrf.add_remote("10.2.0.0/24", IPv4Address.parse("172.16.0.99"), 300)
        p = Packet(ip=IPHeader(IPv4Address.parse("10.1.0.1"),
                               IPv4Address.parse("10.2.0.1")), payload_bytes=50)
        pe.handle(p, "to-ce")
        assert pe.stats.dropped_other == 1  # no_tunnel


def two_pe_network(seed=5):
    """pe1 - p - pe2 line with one VPN, two sites, converged."""
    net = Network(seed=seed)
    pe1 = net.add_node(PeRouter(net.sim, "pe1"))
    p = net.add_node(Lsr(net.sim, "p"))
    pe2 = net.add_node(PeRouter(net.sim, "pe2"))
    net.connect(pe1, p); net.connect(p, pe2)
    prov = VpnProvisioner(net)
    vpn = prov.create_vpn("corp")
    s1 = prov.add_site(vpn, pe1, prefix="10.1.0.0/24")
    s2 = prov.add_site(vpn, pe2, prefix="10.2.0.0/24")
    converge(net)
    run_ldp(net)
    return net, prov, vpn, s1, s2


class TestMpBgp:
    def test_full_mesh_counts(self):
        net, prov, vpn, s1, s2 = two_pe_network()
        res = prov.converge_bgp()
        assert res.sessions == 1
        assert res.routes_exported == 4      # 2 per site (prefix + access /30)
        assert res.updates_sent == 4         # each export to the 1 peer
        assert res.routes_imported == 4

    def test_rt_policy_gates_import(self):
        net, prov, vpn, s1, s2 = two_pe_network()
        # Break import policy on pe2's VRF: no routes should arrive.
        vrf2 = s2.pe.vrfs["corp"]
        vrf2.import_rts = frozenset({RouteTarget(65000, 999)})
        res = prov.converge_bgp()
        assert all(r.kind == "local" for r in vrf2.routes().values())

    def test_next_hop_is_pe_loopback(self):
        net, prov, vpn, s1, s2 = two_pe_network()
        res = prov.converge_bgp()
        route = s2.pe.vrfs["corp"].lookup(IPv4Address.parse("10.1.0.5"))
        assert route.kind == "remote"
        assert route.remote_pe == s1.pe.loopback

    def test_vpn_label_matches_origin_vrf(self):
        net, prov, vpn, s1, s2 = two_pe_network()
        prov.converge_bgp()
        route = s2.pe.vrfs["corp"].lookup(IPv4Address.parse("10.1.0.5"))
        assert route.vpn_label == s1.pe.vrfs["corp"].vpn_label

    def test_route_reflector_sessions(self):
        net = Network()
        pes = [net.add_node(PeRouter(net.sim, f"pe{i}")) for i in range(4)]
        for pe in pes:
            pass  # no links needed for session counting
        bgp_fm = MpBgp(net, pes)
        assert bgp_fm.session_count() == 6
        bgp_rr = MpBgp(net, pes, route_reflector="pe0")
        assert bgp_rr.session_count() == 3

    def test_rr_must_be_a_pe(self):
        net = Network()
        pes = [net.add_node(PeRouter(net.sim, f"pe{i}")) for i in range(2)]
        with pytest.raises(ValueError):
            MpBgp(net, pes, route_reflector="nope")

    def test_empty_pes_rejected(self):
        with pytest.raises(ValueError):
            MpBgp(Network(), [])


class TestProvisionerEndToEnd:
    def test_vpn_data_path(self):
        net, prov, vpn, s1, s2 = two_pe_network()
        prov.converge_bgp()
        h1, h2 = s1.hosts[0], s2.hosts[0]
        got = []
        h2.add_local_sink(got.append)
        p = Packet(ip=IPHeader(h1.loopback, h2.loopback), payload_bytes=100)
        net.sim.schedule(0.0, lambda: h1.send(p))
        net.run(until=1.0)
        assert len(got) == 1

    def test_label_stack_on_core_link(self):
        """Capture the packet mid-core: two labels, VPN label innermost."""
        net, prov, vpn, s1, s2 = two_pe_network()
        prov.converge_bgp()
        h1, h2 = s1.hosts[0], s2.hosts[0]
        seen = []
        p_node = net.node("p")
        orig = p_node.handle
        def spy(pk, ifn):
            seen.append([e.label for e in pk.mpls_stack])
            orig(pk, ifn)
        p_node.handle = spy
        net.sim.schedule(0.0, lambda: h1.send(
            Packet(ip=IPHeader(h1.loopback, h2.loopback), payload_bytes=10)))
        net.run(until=1.0)
        assert seen and len(seen[0]) == 2
        assert seen[0][0] == s2.pe.vrfs["corp"].vpn_label  # bottom of stack

    def test_exp_mapping_from_customer_dscp(self):
        net, prov, vpn, s1, s2 = two_pe_network()
        prov.converge_bgp()
        h1, h2 = s1.hosts[0], s2.hosts[0]
        seen = []
        p_node = net.node("p")
        orig = p_node.handle
        def spy(pk, ifn):
            seen.append([(e.label, e.exp) for e in pk.mpls_stack])
            orig(pk, ifn)
        p_node.handle = spy
        net.sim.schedule(0.0, lambda: h1.send(
            Packet(ip=IPHeader(h1.loopback, h2.loopback, dscp=46), payload_bytes=10)))
        net.run(until=1.0)
        assert all(exp == 5 for _lbl, exp in seen[0])

    def test_same_pe_two_sites_local_switch(self):
        """Two sites of one VPN on one PE talk without touching the core."""
        net = Network()
        pe = net.add_node(PeRouter(net.sim, "pe"))
        p = net.add_node(Lsr(net.sim, "p"))
        net.connect(pe, p)
        prov = VpnProvisioner(net)
        vpn = prov.create_vpn("corp")
        s1 = prov.add_site(vpn, pe, prefix="10.1.0.0/24")
        s2 = prov.add_site(vpn, pe, prefix="10.2.0.0/24")
        converge(net)
        run_ldp(net)
        prov.converge_bgp()
        h1, h2 = s1.hosts[0], s2.hosts[0]
        got = []
        h2.add_local_sink(got.append)
        net.sim.schedule(0.0, lambda: h1.send(
            Packet(ip=IPHeader(h1.loopback, h2.loopback), payload_bytes=10)))
        net.run(until=1.0)
        assert len(got) == 1
        assert p.stats.rx_packets == 0  # never left the PE

    def test_census(self):
        net, prov, vpn, s1, s2 = two_pe_network()
        prov.converge_bgp()
        census = prov.state_census()
        assert census["sites"] == 2
        assert census["pes"] == 2
        assert census["vrfs"] == 2
        assert census["bgp_sessions"] == 1

    def test_site_prefix_autocarving(self):
        net = Network()
        pe = net.add_node(PeRouter(net.sim, "pe"))
        prov = VpnProvisioner(net)
        vpn = prov.create_vpn("corp")
        a = prov.add_site(vpn, pe, num_hosts=0)
        b = prov.add_site(vpn, pe, num_hosts=0)
        assert a.prefix != b.prefix
        assert vpn.supernet.contains_prefix(a.prefix)

    def test_duplicate_vpn_rejected(self):
        prov = VpnProvisioner(Network())
        prov.create_vpn("x")
        with pytest.raises(ValueError):
            prov.create_vpn("x")

    def test_ce_is_customer_domain(self):
        net, prov, vpn, s1, s2 = two_pe_network()
        assert s1.ce.domain == "customer"
        # Core routers know nothing about customer prefixes.
        assert net.node("p").fib.lookup(IPv4Address.parse("10.1.0.5")) is None
