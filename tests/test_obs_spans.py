"""Convergence tracer: causal span chains under a scripted link flap.

The acceptance shape: cutting a link under the tracer yields one trace
whose spans are causally ordered (link.down first, control-plane repair
after the recovery delay, data-plane healing last), with the data-plane
healing time ≥ the control-plane time, and the whole chain exportable as
schema-valid JSONL.
"""

import json

import pytest

from repro.obs.schema import validate_spans
from repro.obs.spans import SPAN_SCHEMA, ConvergenceTracer


def igp_flap(measure_s=4.0):
    from repro.experiments.e11_resilience import run_variant

    return run_variant("igp-tuned", "igp", 1.0, measure_s=measure_s,
                       trace_spans=True)


def test_igp_flap_produces_complete_causal_chain():
    result = igp_flap()
    spans = result["spans"]
    by_kind = {s.kind: s for s in spans}
    assert {"link.down", "spf.reconverge", "ldp.reset", "ldp.converge",
            "heal.first_packet"} <= set(by_kind)

    down = by_kind["link.down"]
    assert down.parent_id is None and down.t_start_s == pytest.approx(2.0)
    # Every other span is a child of the root, in one trace.
    for s in spans:
        if s is not down:
            assert s.parent_id == down.span_id
        assert s.trace_id == down.trace_id
        assert s.t_end_s >= s.t_start_s

    # Causality: failure < control-plane repair ≤ data-plane heal.
    spf = by_kind["spf.reconverge"]
    heal = by_kind["heal.first_packet"]
    assert down.t_start_s < spf.t_start_s  # repair came after the cut
    assert spf.t_start_s == pytest.approx(3.0)  # FAIL_AT + recovery delay
    assert spf.attrs["installs"] > 0
    assert heal.t_start_s == down.t_start_s  # heal span starts at the cut
    assert heal.t_end_s >= spf.t_end_s


def test_data_plane_healing_is_at_least_control_plane():
    result = igp_flap()
    (trace,) = result["tracer"].summary()["traces"]
    assert trace["event"] == "link.down" and trace["link"] == "G<->H"
    assert trace["cp_healing_s"] == pytest.approx(1.0)
    assert trace["dp_healing_s"] >= trace["cp_healing_s"]
    # The watch saw exactly one healing for the one flap.
    ((healing,),) = result["healing"]
    assert healing["dp_healing_s"] == pytest.approx(
        trace["dp_healing_s"], rel=1e-9
    )


def test_frr_flap_uses_frr_repair_span_and_heals_faster():
    from repro.experiments.e11_resilience import run_variant

    frr = run_variant("frr", "frr", 0.050, measure_s=4.0, trace_spans=True)
    kinds = {s.kind for s in frr["spans"]}
    assert "frr.repair" in kinds
    assert "spf.reconverge" not in kinds  # local repair, no global SPF
    (trace,) = frr["tracer"].summary()["traces"]
    assert trace["dp_healing_s"] >= trace["cp_healing_s"]

    igp = igp_flap()
    (igp_trace,) = igp["tracer"].summary()["traces"]
    # The paper's claim: FRR restores forwarding much faster than IGP.
    assert trace["dp_healing_s"] < igp_trace["dp_healing_s"] / 5


def test_healing_probe_stays_out_of_customer_accounting():
    result = igp_flap()
    # The healing probe flow never shows up in the sink's customer flows.
    heal_spans = [s for s in result["spans"] if s.kind == "heal.first_packet"]
    assert heal_spans[0].attrs["flow"].startswith("__heal")
    assert result["sent"] > 0  # probe accounting untouched by the watch


def test_span_docs_roundtrip_jsonl_and_validate(tmp_path):
    result = igp_flap()
    tracer = result["tracer"]
    docs = tracer.span_docs()
    assert validate_spans(docs) == []
    assert all(d["schema"] == SPAN_SCHEMA for d in docs)

    path = tmp_path / "spans.jsonl"
    n = tracer.to_jsonl(str(path))
    lines = path.read_text().splitlines()
    assert n == len(lines) == len(docs)
    assert [json.loads(line) for line in lines] == docs

    # The validator actually rejects malformed docs.
    bad = [dict(docs[0], t_end_s=docs[0]["t_start_s"] - 1.0)]
    assert validate_spans(bad)
    assert validate_spans([{"schema": "nope"}])


def test_default_run_has_no_tracer_and_identical_results():
    from repro.experiments.e11_resilience import run_variant

    plain = run_variant("igp-tuned", "igp", 1.0, measure_s=4.0)
    assert "tracer" not in plain and "spans" not in plain
    assert plain["net"].convergence_tracer is None
    traced = igp_flap()
    # Healing probes ride the same network but must not perturb the
    # experiment's own loss accounting.
    assert traced["sent"] == plain["sent"]
    assert traced["received"] == plain["received"]


def test_duplex_link_event_deduplicated():
    """DuplexLink.set_up flips both simplex directions; one trace, not two."""
    result = igp_flap()
    tracer = result["tracer"]
    downs = [s for s in tracer.spans if s.kind == "link.down"]
    assert len(downs) == 1


def test_detach_unhooks_listener():
    from repro.experiments.e11_resilience import _build

    net = _build(seed=5)["net"]
    tracer = ConvergenceTracer(net).attach()
    assert net.convergence_tracer is tracer
    tracer.detach()
    assert net.convergence_tracer is None
    net.link_between("G", "H").set_up(False)
    assert tracer.spans == []
