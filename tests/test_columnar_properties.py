"""Property-based parity for the columnar burst data plane (hypothesis).

The struct-of-arrays fast path (``ForwardingPipeline._ingress_columns``)
claims *observational equivalence* with the scalar per-packet pipeline:
same counters, same cache arithmetic, same drops in the same buckets,
same field mutations on every delivered packet.  These tests generate
random burst compositions — mixed VRFs, label depths 0–3, TTL=1 expiry
edges, mixed DSCP codepoints, local/no-route/unknown-label rows — run
the identical burst through both modes on identically-seeded fixtures,
and compare the full observable state.  ``COLUMNAR_MIN`` is pinned to 1
so even a 1-row burst exercises the columnar tier.

A second suite turns observability *on* (packet counters + flight
recorder), which gates the columnar tier off by contract, and demands
that the hoisted-loop tier still produces uid-normalized traces
bit-identical to scalar mode.

The pool-recycling regression tests live here too: a recycled
:class:`~repro.net.packet.Packet` shell must never leak the previous
flow's label stack, memoized hash, or encap state into the next life.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

import repro.dataplane.pipeline as pipeline_mod
from repro.mpls import Lsr, run_ldp
from repro.mpls.lfib import LabelOp
from repro.net.address import IPv4Address
from repro.net.packet import POOL, IPHeader, MplsEntry, Packet, PacketPool
from repro.obs import runtime
from repro.routing import converge
from repro.topology import Network, attach_host
from repro.vpn.pe import PeRouter
from repro.vpn.provision import VpnProvisioner

# ----------------------------------------------------------------------
# Fixture: pe1 - p1 - p2 - pe2 backbone, two VPNs, one global host.
#
# Four nodes so the transit LSRs carry real SWAP entries (with only one
# P router, PHP turns every transit entry into a POP).  Injection
# happens at two points: edge bursts at pe1 (imposition, VRF demux,
# local delivery, no-route) and labeled bursts at p1 (SWAP/POP/unknown
# label, deep stacks).
# ----------------------------------------------------------------------


def _fixture():
    net = Network(seed=11)
    pe1 = net.add_node(PeRouter(net.sim, "pe1"))
    p1 = net.add_node(Lsr(net.sim, "p1"))
    p2 = net.add_node(Lsr(net.sim, "p2"))
    pe2 = net.add_node(PeRouter(net.sim, "pe2"))
    net.connect(pe1, p1)
    net.connect(p1, p2)
    net.connect(p2, pe2)
    gh = attach_host(net, pe2, "10.99.0.2", name="gh")
    prov = VpnProvisioner(net)
    corp = prov.create_vpn("corp")
    c1 = prov.add_site(corp, pe1, prefix="10.1.0.0/24")
    c2 = prov.add_site(corp, pe2, prefix="10.2.0.0/24")
    acme = prov.create_vpn("acme")
    a1 = prov.add_site(acme, pe1, prefix="10.3.0.0/24")
    a2 = prov.add_site(acme, pe2, prefix="10.4.0.0/24")
    converge(net)
    run_ldp(net)
    prov.converge_bgp()

    def host_addr(site, stem):
        h = site.hosts[0]
        return str(next(a for a in h.addresses if str(a).startswith(stem)))

    info = {
        "corp_circuit": c1.pe_ifname,
        "acme_circuit": a1.pe_ifname,
        "corp_dst": host_addr(c2, "10.2.0."),
        "acme_dst": host_addr(a2, "10.4.0."),
        "global_dst": "10.99.0.2",
        "pe1_local": str(pe1.loopback or next(iter(pe1.addresses))),
        "pe1_core": "to-p1",
        "p1_core": "to-pe1",
        "swap_labels": sorted(
            l for l, e in p1.lfib._entries.items() if e.op is LabelOp.SWAP
        ),
        "pop_labels": sorted(
            l for l, e in p1.lfib._entries.items()
            if e.op in (LabelOp.POP, LabelOp.POP_PROCESS)
        ),
    }
    sinks: list[tuple] = []

    def tap(node):
        node.add_local_sink(
            lambda pkt, _n=node.name: sinks.append((
                _n, pkt.flow, pkt.seq, pkt.ip.ttl, pkt.ip.dscp, pkt.hops,
                tuple((m.label, m.exp, m.ttl) for m in pkt.mpls_stack),
                pkt.wire_bytes,
            ))
        )

    for node in (pe1, gh, c2.hosts[0], a2.hosts[0]):
        tap(node)
    return net, (pe1, p1, p2, pe2), info, sinks


# Row = (kind, ttl, dscp, pick).  ``pick`` selects among same-kind
# variants (which SWAP/POP in-label, inner-stack depth).
_KINDS = [
    "ip", "vrf_corp", "vrf_acme", "local", "noroute",
    "swap", "swapdeep", "pop", "badlbl",
]
_ROW = st.tuples(
    st.sampled_from(_KINDS),
    st.sampled_from([1, 2, 64]),          # TTL=1 rows expire mid-burst
    st.sampled_from([0, 10, 26, 46, 63]),  # BE / AF11 / AF31 / EF / edge
    st.integers(0, 3),
)
_SPEC = st.lists(_ROW, min_size=1, max_size=24)


def _build_bursts(spec, info):
    """Materialize a spec into (pe1_items, p1_items) arrival lists."""
    edge: list[tuple[Packet, str]] = []
    core: list[tuple[Packet, str]] = []
    for i, (kind, ttl, dscp, pick) in enumerate(spec):
        ip = None
        stack: list[MplsEntry] = []
        if kind == "ip":
            ip = IPHeader(IPv4Address.parse("10.50.0.1"),
                          IPv4Address.parse(info["global_dst"]),
                          dscp=dscp, ttl=ttl)
            where, ifn = edge, info["pe1_core"]
        elif kind == "vrf_corp":
            ip = IPHeader(IPv4Address.parse("10.1.0.9"),
                          IPv4Address.parse(info["corp_dst"]),
                          dscp=dscp, ttl=ttl)
            where, ifn = edge, info["corp_circuit"]
        elif kind == "vrf_acme":
            ip = IPHeader(IPv4Address.parse("10.3.0.9"),
                          IPv4Address.parse(info["acme_dst"]),
                          dscp=dscp, ttl=ttl)
            where, ifn = edge, info["acme_circuit"]
        elif kind == "local":
            ip = IPHeader(IPv4Address.parse("10.50.0.1"),
                          IPv4Address.parse(info["pe1_local"]),
                          dscp=dscp, ttl=ttl)
            where, ifn = edge, info["pe1_core"]
        elif kind == "noroute":
            ip = IPHeader(IPv4Address.parse("10.50.0.1"),
                          IPv4Address.parse("203.0.113.9"),
                          dscp=dscp, ttl=ttl)
            where, ifn = edge, info["pe1_core"]
        else:
            # Labeled rows arrive at the transit LSR.  The inner stack
            # (depth 0–2 below the top) is arbitrary — SWAP never looks
            # below the top, POP exposes it to the next hop's LFIB.
            ip = IPHeader(IPv4Address.parse("10.50.0.1"),
                          IPv4Address.parse(info["global_dst"]),
                          dscp=dscp, ttl=64)
            depth_below = pick % 3 if kind == "swapdeep" else pick % 2
            for d in range(depth_below):
                stack.append(MplsEntry(label=70 + d, exp=d % 8, ttl=9 + d))
            if kind in ("swap", "swapdeep"):
                labels = info["swap_labels"]
            elif kind == "pop":
                labels = info["pop_labels"] or info["swap_labels"]
            else:  # badlbl: never allocated by the LDP label pool
                labels = [99999]
            top = labels[pick % len(labels)]
            stack.append(MplsEntry(label=top, exp=dscp % 8, ttl=ttl))
            where, ifn = core, info["p1_core"]
        pkt = Packet(ip=ip, payload_bytes=100 + i, mpls_stack=stack,
                     flow=("prop", i), seq=i)
        where.append((pkt, ifn))
    return edge, core


def _snapshot(net, nodes, sinks):
    out: list = [tuple(sinks)]
    for n in nodes:
        s = n.stats
        out.append((n.name, s.rx_packets, s.forwarded, s.delivered,
                    s.dropped_no_route, s.dropped_ttl, s.dropped_other,
                    tuple(sorted(s.by_reason.items()))))
        for ifn in sorted(n.interfaces):
            st_ = n.interfaces[ifn].stats
            out.append((n.name, ifn, st_.tx_packets, st_.tx_bytes,
                        st_.enqueued, st_.dropped, st_.conditioner_dropped))
        pl = n.pipeline
        fc = pl.flow_cache
        out.append((n.name, "flow", fc.hits, fc.misses, fc.invalidations))
        lc = pl.label_cache
        if lc is not None:
            out.append((n.name, "label", lc.hits, lc.misses,
                        lc.invalidations))
        for vname in sorted(getattr(pl, "vrf_caches", {})):
            vc = pl.vrf_caches[vname]
            out.append((n.name, "vrf", vname, vc.hits, vc.misses))
        lf = getattr(n, "lfib", None)
        if lf is not None:
            out.append((n.name, "lfib", lf.lookups))
        out.append((n.name, "fib", n.fib.lookups))
    return tuple(out)


def _run(spec, vector: bool):
    """One full fixture + injection + drain under the given mode."""
    runtime.set_vector_mode(vector)
    saved = pipeline_mod.COLUMNAR_MIN
    pipeline_mod.COLUMNAR_MIN = 1
    try:
        net, nodes, info, sinks = _fixture()
        edge, core = _build_bursts(spec, info)
        pe1, p1 = nodes[0], nodes[1]
        if vector:
            if edge:
                pe1.receive_batch(edge)
            if core:
                p1.receive_batch(core)
        else:
            for pkt, ifn in edge:
                pe1.receive(pkt, ifn)
            for pkt, ifn in core:
                p1.receive(pkt, ifn)
        net.run(until=net.sim.now + 10.0)
        return _snapshot(net, nodes, sinks)
    finally:
        pipeline_mod.COLUMNAR_MIN = saved
        runtime.set_vector_mode(True)


prop_settings = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@prop_settings
@given(spec=_SPEC)
def test_columnar_burst_matches_scalar(spec) -> None:
    """Random burst composition: columnar tier ≡ scalar, full state."""
    assert _run(spec, vector=True) == _run(spec, vector=False)


@prop_settings
@given(spec=st.lists(
    st.tuples(st.sampled_from(["swap", "swapdeep", "pop", "badlbl"]),
              st.sampled_from([1, 2, 64]),
              st.sampled_from([0, 10, 26, 46, 63]),
              st.integers(0, 3)),
    min_size=4, max_size=24))
def test_columnar_labeled_core_matches_scalar(spec) -> None:
    """All-labeled bursts: the uniform-SWAP / fused-TTL fast shape."""
    assert _run(spec, vector=True) == _run(spec, vector=False)


# ----------------------------------------------------------------------
# Observability on: the columnar tier stays engaged with a flight
# recorder attached — the apply pass itself must interleave records
# exactly like scalar mode (per-row rx/label ops, per-packet sends).
# ----------------------------------------------------------------------


def _run_traced(spec, vector: bool):
    runtime.set_vector_mode(vector)
    saved = pipeline_mod.COLUMNAR_MIN
    pipeline_mod.COLUMNAR_MIN = 1
    runtime.reset()
    runtime.enable(flight_capacity=1 << 20, profile=False)
    try:
        net, nodes, info, sinks = _fixture()
        edge, core = _build_bursts(spec, info)
        pe1, p1 = nodes[0], nodes[1]
        if vector:
            if edge:
                pe1.receive_batch(edge)
            if core:
                p1.receive_batch(core)
        else:
            for pkt, ifn in edge:
                pe1.receive(pkt, ifn)
            for pkt, ifn in core:
                p1.receive(pkt, ifn)
        net.run(until=net.sim.now + 10.0)
        snap = _snapshot(net, nodes, sinks)
        records = []
        for session in runtime.sessions():
            records.extend(session.flight._ring)
        ids: dict[int, int] = {}
        trace = []
        for r in records:
            u = ids.setdefault(r.uid, len(ids))
            trace.append((
                r.time, r.node, r.event, u, r.flow, r.seq, r.ifname,
                r.labels, r.in_label, r.out_label, r.reason, r.backlog,
            ))
        return snap, trace
    finally:
        runtime.reset()
        pipeline_mod.COLUMNAR_MIN = saved
        runtime.set_vector_mode(True)


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(spec=_SPEC)
def test_obs_enabled_batch_parity(spec) -> None:
    """Counters + flight recorder on: batch mode stays trace-identical."""
    fast_snap, fast_trace = _run_traced(spec, vector=True)
    slow_snap, slow_trace = _run_traced(spec, vector=False)
    assert fast_trace == slow_trace
    assert fast_snap == slow_snap


def test_traced_burst_takes_columnar_path(monkeypatch) -> None:
    """A flight recorder must not push big bursts off the columnar tier.

    Regression guard for the old gate, which fell back to the hoisted
    scalar loop whenever a recorder or drop subscriber was attached.
    """
    calls: list[int] = []
    orig = pipeline_mod.ForwardingPipeline._ingress_columns

    def spy(self, items):
        calls.append(len(items))
        return orig(self, items)

    monkeypatch.setattr(
        pipeline_mod.ForwardingPipeline, "_ingress_columns", spy
    )
    spec = [("ip", 64, 0, 0), ("swap", 64, 10, 1),
            ("vrf_corp", 64, 46, 0), ("pop", 2, 26, 2)] * 4
    snap, trace = _run_traced(spec, vector=True)
    assert calls and max(calls) >= 4
    # The columnar apply pass really emitted records: per-row receives
    # and at least one label operation from the traced burst.
    events = {ev[2] for ev in trace}
    assert "rx" in events
    assert events & {"swap", "pop", "push"}


# ----------------------------------------------------------------------
# Pool recycling: a reused shell must not leak its previous life.
# ----------------------------------------------------------------------


def _dirty_packet() -> Packet:
    pkt = Packet(
        ip=IPHeader(IPv4Address.parse("10.9.0.1"),
                    IPv4Address.parse("10.9.0.2"), dscp=46, ttl=3),
        payload_bytes=500, flow=("old", 1), seq=7,
    )
    pkt.mpls_stack.append(MplsEntry(label=777, exp=5, ttl=31))
    pkt.mpls_stack.append(MplsEntry(label=888, exp=1, ttl=31))
    pkt.flow_hash_cache = 0xDEAD
    pkt.encap_overhead = 57
    pkt.encrypted = True
    pkt.vc_id = 42
    _ = pkt.wire_bytes  # memoize _wire
    return pkt


def test_pool_recycled_packet_is_clean() -> None:
    pool = PacketPool(max_size=4)
    dirty = _dirty_packet()
    dirty.pooled = True
    pool.release(dirty)
    assert len(pool) == 1
    # Release itself must already scrub retained-object state (the
    # freelist must not pin headers/stacks while parked).
    assert dirty.mpls_stack == [] and dirty.ip is None
    assert dirty.flow_hash_cache is None and dirty._wire is None

    ip = IPHeader(IPv4Address.parse("10.8.0.1"),
                  IPv4Address.parse("10.8.0.2"), dscp=0, ttl=64)
    fresh = pool.acquire(ip=ip, payload_bytes=64, flow=("new", 0), seq=0,
                         created=1.0)
    assert fresh is dirty  # recycled shell, not a new allocation
    assert fresh.mpls_stack == []
    assert fresh.flow_hash_cache is None
    assert fresh.encap_overhead == 0
    assert fresh.encrypted is False
    assert fresh.vc_id is None
    assert fresh.inner is None
    assert fresh.ip.dscp == 0 and fresh.ip.ttl == 64
    assert fresh.hops == 0
    # wire_bytes recomputes from the new life, no stale memo
    assert fresh.wire_bytes == 20 + 64


def test_pool_counters_track_hits_misses_releases() -> None:
    pool = PacketPool(max_size=2)
    ip = IPHeader(IPv4Address.parse("10.8.0.1"),
                  IPv4Address.parse("10.8.0.2"))
    a = pool.acquire(ip=ip, payload_bytes=1, flow=None, seq=0, created=0.0)
    assert (pool.hits, pool.misses, pool.releases) == (0, 1, 0)
    pool.release(a)
    assert pool.releases == 1
    b = pool.acquire(ip=ip, payload_bytes=1, flow=None, seq=1, created=0.5)
    assert b is a
    assert (pool.hits, pool.misses) == (1, 1)


def test_global_pool_exports_gauges() -> None:
    from repro.obs.telemetry import Telemetry

    runtime.reset()
    try:
        net = Network(seed=1)
        net.add_router("r")
        tel = Telemetry(net, profile=False)
        snap = tel.scrape().snapshot()
        for gauge in ("repro_pool_occupancy", "repro_pool_capacity",
                      "repro_pool_hits", "repro_pool_misses",
                      "repro_pool_releases"):
            assert gauge in snap
        (series,) = snap["repro_pool_capacity"]["series"]
        assert series["value"] == POOL.max_size
    finally:
        runtime.reset()
