"""Property tests for incremental reconvergence.

:func:`repro.routing.spf.reconverge` diffs the topology against the
snapshot of the last convergence and recomputes only the affected
shortest-path trees.  The property held here is the strongest one
available: after *any* sequence of single-link fail/restore events, the
incrementally maintained FIBs equal what a from-scratch
``clear + converge`` produces on a twin network — for both the unipath
and the ECMP control plane.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.routing.router import Router
from repro.routing.spf import clear_routes, converge, reconverge
from repro.topology import Network, build_backbone, build_fish, build_waxman

slow_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def fib_snapshot(net):
    return {
        name: dict(node.fib.routes())
        for name, node in net.nodes.items()
        if isinstance(node, Router)
    }


def full_reconverge(net, ecmp):
    """The oracle: flush every in-domain FIB and converge from scratch."""
    for node in net.nodes.values():
        if isinstance(node, Router) and node.domain == "core":
            clear_routes(node)
    converge(net, ecmp=ecmp)


BUILDERS = {
    "backbone": lambda net: build_backbone(net),
    "fish": lambda net: build_fish(net),
    "waxman9": lambda net: build_waxman(net, 9, alpha=0.9, beta=0.9),
}


def _run_sequence(topo, ecmp, toggles):
    """Apply a toggle sequence to twin nets: incremental vs from-scratch."""
    inc = Network(seed=47)
    BUILDERS[topo](inc)
    oracle = Network(seed=47)
    BUILDERS[topo](oracle)
    converge(inc, ecmp=ecmp)
    converge(oracle, ecmp=ecmp)

    links_inc = list(inc.duplex_links)
    links_orc = list(oracle.duplex_links)
    assert len(links_inc) == len(links_orc)
    for li in toggles:
        dl_i = links_inc[li % len(links_inc)]
        dl_o = links_orc[li % len(links_orc)]
        up = not dl_i.link_ab.up
        dl_i.set_up(up)
        dl_o.set_up(up)
        reconverge(inc)
        full_reconverge(oracle, ecmp)
        assert fib_snapshot(inc) == fib_snapshot(oracle)


class TestIncrementalMatchesFullRecompute:
    @pytest.mark.parametrize("ecmp", [False, True])
    @pytest.mark.parametrize("topo", sorted(BUILDERS))
    @slow_settings
    @given(toggles=st.lists(st.integers(min_value=0, max_value=63),
                            min_size=1, max_size=6))
    def test_single_link_sequences(self, topo, ecmp, toggles):
        _run_sequence(topo, ecmp, toggles)

    def test_flap_same_link_repeatedly(self):
        # Down/up/down on one core trunk: the restore path exercises the
        # added-edge attractiveness test, the repeat the snapshot update.
        _run_sequence("backbone", False, [0, 0, 0])

    def test_partition_and_heal(self):
        # Failing both of E1's uplinks partitions it; restoring heals.
        net = Network(seed=47)
        build_backbone(net)
        oracle = Network(seed=47)
        build_backbone(oracle)
        converge(net)
        converge(oracle)
        for pair in (("E1", "P1"), ("E1", "P2")):
            net.link_between(*pair).set_up(False)
            oracle.link_between(*pair).set_up(False)
            reconverge(net)
            full_reconverge(oracle, False)
            assert fib_snapshot(net) == fib_snapshot(oracle)
        for pair in (("E1", "P1"), ("E1", "P2")):
            net.link_between(*pair).set_up(True)
            oracle.link_between(*pair).set_up(True)
            reconverge(net)
            full_reconverge(oracle, False)
            assert fib_snapshot(net) == fib_snapshot(oracle)

    def test_reconverge_without_change_is_noop_and_keeps_generations(self):
        net = Network(seed=47)
        build_backbone(net)
        converge(net)
        before = fib_snapshot(net)
        gens = {n: r.fib.generation for n, r in net.nodes.items()
                if isinstance(r, Router)}
        assert reconverge(net) == 0
        assert fib_snapshot(net) == before
        # Contract: a FIB generation moves iff the FIB's contents changed,
        # so unchanged FIBs keep their flow caches warm.
        for name, node in net.nodes.items():
            if isinstance(node, Router):
                assert node.fib.generation == gens[name]

    def test_reconverge_delta_keeps_unaffected_generations(self):
        # Same contract on the incremental path: routers whose FIB the
        # link event did not change keep their generation (warm caches);
        # routers whose FIB changed must move theirs.
        net = Network(seed=47)
        build_backbone(net)
        oracle = Network(seed=47)
        build_backbone(oracle)
        converge(net)
        converge(oracle)
        gens = {n: r.fib.generation for n, r in net.nodes.items()
                if isinstance(r, Router)}
        before = fib_snapshot(net)
        net.link_between("P1", "P2").set_up(False)
        oracle.link_between("P1", "P2").set_up(False)
        reconverge(net)
        full_reconverge(oracle, False)
        after = fib_snapshot(net)
        assert after == fib_snapshot(oracle)
        for name, node in net.nodes.items():
            if not isinstance(node, Router):
                continue
            if after[name] == before[name]:
                assert node.fib.generation == gens[name], name
            else:
                assert node.fib.generation > gens[name], name

    def test_direct_link_up_write_invalidates_cached_view(self):
        # Bypassing DuplexLink.set_up and writing link state directly must
        # still invalidate the cached domain view (the Link.up property
        # hook bumps topology_generation).
        inc = Network(seed=47)
        build_backbone(inc)
        oracle = Network(seed=47)
        build_backbone(oracle)
        converge(inc)
        converge(oracle)
        gen = inc.topology_generation
        inc.link_between("P1", "P2").link_ab.up = False  # one direction drops the edge
        assert inc.topology_generation > gen
        oracle.link_between("P1", "P2").set_up(False)
        reconverge(inc)
        full_reconverge(oracle, False)
        assert fib_snapshot(inc) == fib_snapshot(oracle)

    def test_metric_rewrite_invalidates_cached_view(self):
        # Same invariant for the other writable IGP input: dl.metric is a
        # property that bumps topology_generation on rewrite.
        inc = Network(seed=47)
        build_backbone(inc)
        oracle = Network(seed=47)
        build_backbone(oracle)
        converge(inc)
        converge(oracle)
        gen = inc.topology_generation
        for net in (inc, oracle):
            net.link_between("P1", "P2").metric = 10.0
        assert inc.topology_generation > gen
        reconverge(inc)
        full_reconverge(oracle, False)
        assert fib_snapshot(inc) == fib_snapshot(oracle)

    def test_reconverge_preserves_ecmp_mode(self):
        net = Network(seed=47)
        build_backbone(net)
        oracle = Network(seed=47)
        build_backbone(oracle)
        converge(net, ecmp=True)
        converge(oracle, ecmp=True)
        net.link_between("P1", "P2").set_up(False)
        oracle.link_between("P1", "P2").set_up(False)
        reconverge(net)  # sticky: stays in ECMP mode
        full_reconverge(oracle, True)
        assert fib_snapshot(net) == fib_snapshot(oracle)
