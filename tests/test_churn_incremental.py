"""Property tests for the incremental MP-BGP churn engine.

The contract held here is the strongest one available: after *any*
sequence of churn operations — sites added, removed, flapped between
PEs, duplicate prefixes introduced, whole VPNs provisioned and torn
down, PEs drained and restored — the incrementally maintained VRF state
equals what a clear-remotes + from-scratch ``converge()`` produces on
the same network (the same oracle style as
``test_reconverge_incremental`` uses for the IGP fast path).

Alongside the property suite: RFC 4456 route-reflector cluster
accounting (sessions, per-route fan-out, cluster-list suppression) and
the idempotent-reconvergence regression for the old double-import /
double-count bug.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.topology import Network
from repro.vpn.bgp import MpBgp
from repro.vpn.pe import PeRouter
from repro.vpn.provision import VpnProvisioner

slow_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------
def _pe_mesh(n_pes: int) -> tuple[Network, list[PeRouter]]:
    """A bare Network with n PE routers (loopbacks, no VRFs, no links) —
    enough for session/fan-out accounting, which is pure control plane."""
    net = Network(seed=5)
    pes = [net.add_node(PeRouter(net.sim, f"pe{i}")) for i in range(n_pes)]
    return net, pes


def _world(
    n_pes: int = 4, rr_clusters=None
) -> tuple[Network, list[PeRouter], VpnProvisioner]:
    """n PEs, a "corp" VPN with one anchor site per PE, converged.

    The anchors keep every PE in ``prov.pes()`` throughout the churn, so
    the persistent engine is never rebuilt mid-sequence.
    """
    net, pes = _pe_mesh(n_pes)
    prov = VpnProvisioner(net)
    corp = prov.create_vpn("corp")
    for pe in pes:
        prov.add_site(corp, pe, num_hosts=0)
    prov.converge_bgp(rr_clusters=rr_clusters)
    return net, pes, prov


def _vrf_snapshot(prov: VpnProvisioner):
    return {
        (pe.name, vrf.name): vrf.routes()
        for pe in prov.pes()
        for vrf in pe.vrfs.values()
    }


def _strip_remotes(prov: VpnProvisioner) -> None:
    for pe in prov.pes():
        for vrf in pe.vrfs.values():
            vrf.remove_many(
                [p for p, r in vrf.routes().items() if r.kind == "remote"]
            )


def _oracle_snapshot(prov: VpnProvisioner, drained, rr_clusters=None):
    """Flush every BGP-learned route and converge a fresh engine."""
    _strip_remotes(prov)
    oracle = MpBgp(prov.net, prov.pes(), rr_clusters=rr_clusters)
    for name in sorted(drained):
        oracle.peer_down(name)
    oracle.converge()
    return _vrf_snapshot(prov)


# ----------------------------------------------------------------------
# Satellite: idempotent re-convergence (the double-import regression)
# ----------------------------------------------------------------------
class TestIdempotentReconverge:
    def test_second_converge_is_a_noop(self):
        net, pes, prov = _world(4)
        counters = net.counters.snapshot()
        gens = {
            (pe.name, v.name): v.generation
            for pe in pes for v in pe.vrfs.values()
        }
        again = prov.converge_bgp()
        assert again.updates_sent == 0
        assert again.routes_exported == 0
        assert again.routes_imported == 0
        assert again.routes_removed == 0
        # Counters unchanged: no double-counted sessions, updates, imports.
        assert net.counters.snapshot() == counters
        # Data-plane flow caches stay warm: no VRF generation bumps.
        assert {
            (pe.name, v.name): v.generation
            for pe in pes for v in pe.vrfs.values()
        } == gens

    def test_converge_after_delta_is_a_noop(self):
        net, pes, prov = _world(3)
        site = prov.add_site(prov.vpns["corp"], pes[1], num_hosts=0)
        prov.bgp_engine().export_delta(pes[1], pes[1].vrfs["corp"])
        snap = _vrf_snapshot(prov)
        again = prov.converge_bgp()
        assert again.updates_sent == 0 and again.routes_imported == 0
        assert _vrf_snapshot(prov) == snap
        assert site in prov.vpns["corp"].sites


# ----------------------------------------------------------------------
# Engine reuse: a bare bgp_engine()/converge_bgp() must not rebuild an
# RR-topology engine into a full mesh (discarding the Adj-RIB and
# orphaning every import it had installed).
# ----------------------------------------------------------------------
class TestEngineReuse:
    def test_bare_call_reuses_rr_engine(self):
        net, pes, prov = _world(4, rr_clusters=[("pe0", "pe1")])
        engine = prov.bgp_engine(rr_clusters=[("pe0", "pe1")])
        assert prov.bgp_engine() is engine
        assert engine.rr_clusters == (("pe0", "pe1"),)
        # A bare converge on the reused engine is an incremental no-op.
        again = prov.converge_bgp()
        assert again.updates_sent == 0 and again.routes_imported == 0

    def test_explicit_full_mesh_still_rebuilds(self):
        net, pes, prov = _world(3, rr_clusters=["pe0"])
        engine = prov.bgp_engine()
        rebuilt = prov.bgp_engine(rr_clusters=None)
        assert rebuilt is not engine
        assert rebuilt.rr_clusters == ()

    def test_pe_set_change_rebuilds(self):
        net, pes, prov = _world(3)
        engine = prov.bgp_engine()
        net.add_node(PeRouter(net.sim, "pe9"))
        extra = net.nodes["pe9"]
        prov.add_site(prov.vpns["corp"], extra, num_hosts=0)
        assert prov.bgp_engine() is not engine

    def test_rr_churn_through_bare_calls_matches_oracle(self):
        """The scenario that exposed the rebuild bug: flap sites and run a
        VPN wave through bare bgp_engine()/converge_bgp() calls on an
        RR-cluster engine, then compare against a fresh full converge."""
        rr = [("pe0", "pe1")]
        net, pes, prov = _world(4, rr_clusters=rr)
        corp = prov.vpns["corp"]
        anchors = {s.site_id for s in corp.sites}
        # Three site flaps on non-reflector PEs, delta'd via bare calls.
        for pe in (pes[2], pes[3], pes[2]):
            site = prov.add_site(corp, pe, num_hosts=0)
            prov.bgp_engine().export_delta(pe, pe.vrfs["corp"])
            prov.remove_site(site)
        # Drain/restore a client PE.
        prov.drain_pe("pe3")
        prov.restore_pe("pe3")
        # A wave VPN provisioned then converged with a bare call.
        wave = prov.create_vpn("wave")
        for pe in (pes[2], pes[3]):
            prov.add_site(wave, pe, num_hosts=0)
        prov.converge_bgp()
        prov.remove_vpn("wave")
        assert {s.site_id for s in corp.sites} == anchors
        incremental = _vrf_snapshot(prov)
        assert incremental == _oracle_snapshot(prov, set(), rr_clusters=rr)


# ----------------------------------------------------------------------
# RFC 4456: RR clusters — sessions, fan-out, loop suppression
# ----------------------------------------------------------------------
class TestRrClusters:
    def test_degenerate_single_pe(self):
        net, pes = _pe_mesh(1)
        engine = MpBgp(net, pes)
        assert engine.session_count() == 0
        assert engine.fanout("pe0") == (0, 0)
        assert engine.converge().updates_sent == 0

    def test_full_mesh_sessions(self):
        net, pes = _pe_mesh(8)
        engine = MpBgp(net, pes)
        assert engine.session_count() == 8 * 7 // 2
        assert engine.fanout("pe3") == (7, 0)

    def test_route_reflector_sugar_is_one_cluster(self):
        net, pes = _pe_mesh(8)
        engine = MpBgp(net, pes, route_reflector="pe0")
        assert engine.rr_clusters == (("pe0",),)
        assert engine.reflectors == {"pe0"}
        assert engine.session_count() == 7          # n-1
        # Client origin: 1 to the RR + reflection to the other n-2.
        assert engine.fanout("pe1") == (7, 0)
        # RR origin: straight to its n-1 clients, no reflection leg.
        assert engine.fanout("pe0") == (7, 0)

    def test_two_single_rr_clusters(self):
        net, pes = _pe_mesh(8)
        engine = MpBgp(net, pes, rr_clusters=["pe0", "pe1"])
        # 6 clients with one RR each + the RR-RR mesh session.
        assert engine.session_count() == 7
        client = next(n for n in ("pe2", "pe3") if n not in engine.reflectors)
        sent, suppressed = engine.fanout(client)
        assert (sent, suppressed) == (7, 0)
        assert engine.fanout("pe0") == (7, 0)
        # Everyone hears exactly one copy.
        receivers, _, _ = engine._propagate(client)
        assert len(receivers) == 7

    def test_redundant_rr_pair_suppresses_partner_copies(self):
        net, pes = _pe_mesh(8)
        engine = MpBgp(net, pes, rr_clusters=[("pe0", "pe1")])
        # 6 clients × 2 RRs + 1 RR-RR session.
        assert engine.session_count() == 13
        sent, suppressed = engine.fanout("pe2")
        # Each RR reflects to the other 5 clients + its co-RR; the co-RR
        # copies carry the cluster id already and are dropped (RFC 4456).
        assert (sent, suppressed) == (14, 2)
        receivers, _, _ = engine._propagate("pe2")
        assert len(receivers) == 7

    def test_two_redundant_clusters(self):
        net, pes = _pe_mesh(8)
        engine = MpBgp(net, pes, rr_clusters=[("pe0", "pe1"), ("pe2", "pe3")])
        # 4 clients × 2 RRs + C(4,2) RR mesh sessions.
        assert engine.session_count() == 4 * 2 + 6
        sent, suppressed = engine.fanout("pe4")
        assert (sent, suppressed) == (14, 2)
        receivers, _, _ = engine._propagate("pe4")
        assert len(receivers) == 7

    def test_validation(self):
        net, pes = _pe_mesh(4)
        with pytest.raises(ValueError, match="not both"):
            MpBgp(net, pes, route_reflector="pe0", rr_clusters=["pe1"])
        with pytest.raises(ValueError, match="is not a PE"):
            MpBgp(net, pes, rr_clusters=["nope"])
        with pytest.raises(ValueError, match="two clusters"):
            MpBgp(net, pes, rr_clusters=["pe0", ("pe0", "pe1")])
        with pytest.raises(ValueError, match="empty RR cluster"):
            MpBgp(net, pes, rr_clusters=[()])

    def test_cannot_drain_a_reflector(self):
        net, pes, prov = _world(4, rr_clusters=["pe0"])
        with pytest.raises(ValueError, match="route reflector"):
            prov.drain_pe("pe0")


# ----------------------------------------------------------------------
# Deterministic churn-vs-oracle cases (fast smoke for the property)
# ----------------------------------------------------------------------
class TestChurnDeterministic:
    def test_site_withdraw_then_readvertise(self):
        net, pes, prov = _world(3)
        engine = prov.bgp_engine()
        extra = prov.add_site(prov.vpns["corp"], pes[0], num_hosts=0)
        engine.export_delta(pes[0], pes[0].vrfs["corp"])
        full = _vrf_snapshot(prov)
        # Selective withdraw: only that site's NLRI leave the other VRFs;
        # the locals stay (withdraw is the control-plane half only).
        engine.withdraw(pes[0], vrf="corp", site=extra.site_id)
        for pe in pes[1:]:
            assert extra.prefix not in pe.vrfs["corp"].routes()
        assert extra.prefix in pes[0].vrfs["corp"].routes()
        # Re-advertising the unchanged locals restores everything.
        engine.export_delta(pes[0], pes[0].vrfs["corp"])
        assert _vrf_snapshot(prov) == full

    def test_drain_restore_roundtrip(self):
        net, pes, prov = _world(4)
        before = _vrf_snapshot(prov)
        prov.drain_pe(pes[2])
        assert prov.bgp_engine().drained == {"pe2"}
        # Everyone forgot pe2's routes; pe2 forgot everyone's.
        for pe in pes:
            for vrf in pe.vrfs.values():
                for route in vrf.routes().values():
                    assert route.kind == "local" or pe.name != "pe2"
        prov.restore_pe(pes[2])
        assert _vrf_snapshot(prov) == before

    def test_peer_down_twice_is_idempotent(self):
        net, pes, prov = _world(3)
        prov.drain_pe(pes[0])
        counters = net.counters.snapshot()
        again = prov.drain_pe(pes[0])
        assert again.updates_sent == 0 and again.routes_removed == 0
        assert net.counters.snapshot() == counters

    def test_export_delta_rejects_drained_pe(self):
        net, pes, prov = _world(3)
        prov.drain_pe(pes[1])
        with pytest.raises(ValueError, match="drained"):
            prov.bgp_engine().export_delta(pes[1], pes[1].vrfs["corp"])

    def test_forget_vrf_requires_withdraw_first(self):
        net, pes, prov = _world(2)
        with pytest.raises(ValueError, match="withdraw first"):
            prov.bgp_engine().forget_vrf(pes[0], "corp")


# ----------------------------------------------------------------------
# The property: incremental churn ≡ clear + full converge
# ----------------------------------------------------------------------
OP_KINDS = ("site+", "site-", "flap", "dup+", "vpn+", "vpn-", "drain", "restore")


def _apply_op(prov, pes, engine, anchors, drained, op, state):
    """Interpret one (kind, a, b) op; indices select modulo the currently
    valid choices, and ops with no valid target are skipped — standard
    stateful-testing interpretation so every drawn sequence is runnable."""
    kind, a, b = op
    vpns = [prov.vpns[name] for name in sorted(prov.vpns)]
    up_pes = [pe for pe in pes if pe.name not in drained]
    removable = [
        (v, s)
        for v in vpns
        for s in v.sites
        if s.site_id not in anchors and s.pe.name not in drained
    ]

    if kind == "site+":
        if not up_pes:
            return
        v, pe = vpns[a % len(vpns)], up_pes[b % len(up_pes)]
        prov.add_site(v, pe, num_hosts=0)
        engine.export_delta(pe, pe.vrfs[v.name])
    elif kind == "site-":
        if not removable:
            return
        _, site = removable[a % len(removable)]
        prov.remove_site(site)        # provisioner pushes the delta
    elif kind == "flap":
        if not removable or not up_pes:
            return
        v, site = removable[a % len(removable)]
        prov.remove_site(site)
        pe = up_pes[b % len(up_pes)]  # may re-home the site on another PE
        prov.add_site(v, pe, prefix=site.prefix, num_hosts=0)
        engine.export_delta(pe, pe.vrfs[v.name])
    elif kind == "dup+":
        # Same prefix advertised by a second origin PE: exercises the
        # winner tie-break that keeps incremental == full-converge order.
        sites = [(v, s) for v in vpns for s in v.sites]
        if not sites:
            return
        v, site = sites[a % len(sites)]
        others = [pe for pe in up_pes if pe.name != site.pe.name]
        if not others:
            return
        pe = others[b % len(others)]
        prov.add_site(v, pe, prefix=site.prefix, num_hosts=0)
        engine.export_delta(pe, pe.vrfs[v.name])
    elif kind == "vpn+":
        if len(prov.vpns) >= 3 or len(up_pes) < 2:
            return
        name = f"x{state['vpn_seq']}"
        state["vpn_seq"] += 1
        v = prov.create_vpn(name)
        for pe in (up_pes[a % len(up_pes)], up_pes[b % len(up_pes)]):
            prov.add_site(v, pe, num_hosts=0)
            engine.export_delta(pe, pe.vrfs[name])
    elif kind == "vpn-":
        extras = [
            name for name in sorted(prov.vpns)
            if name != "corp"
            and not any(s.pe.name in drained for s in prov.vpns[name].sites)
        ]
        if not extras:
            return
        prov.remove_vpn(extras[a % len(extras)])
    elif kind == "drain":
        candidates = [
            pe.name for pe in up_pes if pe.name not in engine.reflectors
        ]
        if len(drained) >= len(pes) - 1 or not candidates:
            return
        name = candidates[a % len(candidates)]
        prov.drain_pe(name)
        drained.add(name)
    elif kind == "restore":
        if not drained:
            return
        name = sorted(drained)[a % len(drained)]
        prov.restore_pe(name)
        drained.discard(name)


class TestIncrementalMatchesFullConverge:
    @pytest.mark.parametrize(
        "rr_clusters", [None, ["pe0"]], ids=["full-mesh", "rr"]
    )
    @slow_settings
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(OP_KINDS),
                st.integers(min_value=0, max_value=11),
                st.integers(min_value=0, max_value=11),
            ),
            min_size=1,
            max_size=10,
        )
    )
    def test_random_churn_sequences(self, rr_clusters, ops):
        net, pes, prov = _world(4, rr_clusters=rr_clusters)
        engine = prov.bgp_engine(rr_clusters=rr_clusters)
        anchors = {s.site_id for s in prov.vpns["corp"].sites}
        drained: set[str] = set()
        state = {"vpn_seq": 0}
        for op in ops:
            _apply_op(prov, pes, engine, anchors, drained, op, state)
        # The Adj-RIB exactly mirrors what the PEs are exporting.
        assert engine.adj_rib_size() == sum(
            len(vrf.local_routes())
            for pe in prov.pes() for vrf in pe.vrfs.values()
        )
        incremental = _vrf_snapshot(prov)
        assert incremental == _oracle_snapshot(
            prov, drained, rr_clusters=rr_clusters
        )
