"""Coverage for corners the focused suites skip: experiment plumbing,
SPF internals, interface retry machinery, generator base contracts."""

import pytest

from repro.experiments.common import (
    ExperimentRun,
    make_qdisc_factory,
    run_and_summarize,
    three_class_queues,
)
from repro.net.address import IPv4Address
from repro.net.packet import IPHeader, Packet
from repro.qos.queues import (
    DropTailFifo,
    FairQueueing,
    PriorityScheduler,
    WeightedRoundRobin,
)
from repro.qos.shaper import TokenBucketShaper
from repro.routing import converge
from repro.routing.spf import spf_paths
from repro.sim.engine import Simulator
from repro.topology import Network, attach_host, build_line
from repro.traffic import CbrSource, FlowSink, TrafficSource


class TestQdiscFactory:
    @pytest.mark.parametrize("kind,cls", [
        ("fifo", DropTailFifo),
        ("priority", PriorityScheduler),
        ("wfq", FairQueueing),
        ("wrr", WeightedRoundRobin),
    ])
    def test_kinds(self, kind, cls):
        net = Network()
        factory = make_qdisc_factory(kind)
        r = net.add_router("r")
        assert isinstance(factory(r, "eth0"), cls)

    def test_drr_kind(self):
        from repro.qos.queues import DeficitRoundRobin
        net = Network()
        factory = make_qdisc_factory("drr")
        assert isinstance(factory(net.add_router("r"), "e"), DeficitRoundRobin)

    def test_unknown_kind_rejected(self):
        factory = make_qdisc_factory("bogus")
        net = Network()
        with pytest.raises(ValueError):
            factory(net.add_router("r"), "eth0")

    def test_three_class_queues_order(self):
        qs = three_class_queues(7)
        assert [q.name for q in qs] == ["EF", "AF", "BE"]
        assert all(q.capacity_packets == 7 for q in qs)


class TestExperimentRun:
    def _net(self):
        net = Network(seed=4)
        routers = build_line(net, 2, rate_bps=10e6)
        tx = attach_host(net, routers[0], "10.31.0.1", name="tx")
        rx = attach_host(net, routers[1], "10.31.0.2", name="rx")
        converge(net)
        return net, tx, rx

    def test_sources_start_and_stop_in_window(self):
        net, tx, rx = self._net()
        run = ExperimentRun(net, warmup_s=1.0, measure_s=2.0)
        sink = run.sink_at(rx)
        src = run.add_source(
            CbrSource(net.sim, tx.send, "f", "10.31.0.1", "10.31.0.2",
                      rate_bps=1e6)
        )
        run.execute()
        rec = sink.record("f")
        assert rec.arrival_times[0] >= 1.0
        # Created times bounded by warmup+measure.
        assert max(rec.arrivals_array() - rec.delays_array()) < 3.0 + 1e-9

    def test_sink_at_caches_per_node(self):
        net, tx, rx = self._net()
        run = ExperimentRun(net)
        assert run.sink_at(rx) is run.sink_at(rx)

    def test_run_and_summarize(self):
        net, tx, rx = self._net()
        run = ExperimentRun(net, warmup_s=0.1, measure_s=1.0)
        sink = run.sink_at(rx)
        src = run.add_source(
            CbrSource(net.sim, tx.send, "f", "10.31.0.1", "10.31.0.2",
                      rate_bps=1e6)
        )
        stats = run_and_summarize(run, [(src, sink)])
        assert len(stats) == 1
        assert stats[0].received == src.sent

    def test_explicit_start_time(self):
        net, tx, rx = self._net()
        run = ExperimentRun(net, warmup_s=1.0, measure_s=2.0)
        sink = run.sink_at(rx)
        src = CbrSource(net.sim, tx.send, "late", "10.31.0.1", "10.31.0.2",
                        rate_bps=1e6)
        run.add_source(src, start=2.0)
        run.execute()
        rec = sink.record("late")
        assert rec.arrival_times[0] >= 2.0


class TestSpfInternals:
    def test_parallel_links_prefer_lower_metric(self):
        net = Network()
        a = net.add_router("a")
        b = net.add_router("b")
        net.connect(a, b, metric=5)
        net.connect(a, b, metric=1)   # the better parallel link
        converge(net)
        entry = a.fib.lookup(b.loopback)
        assert entry.metric == 1

    def test_spf_handles_isolated_router(self):
        net = Network()
        build_line(net, 2)
        lonely = net.add_router("lonely")
        count = converge(net)
        assert count > 0
        assert lonely.fib.lookup(net.node("r0").loopback) is None

    def test_path_through_higher_metric_when_necessary(self):
        net = Network()
        a, b, c = (net.add_router(n) for n in "abc")
        net.connect(a, b, metric=10)
        net.connect(b, c, metric=10)
        converge(net)
        assert spf_paths(net, "a", "c") == ["a", "b", "c"]


class TestInterfaceRetry:
    def test_new_enqueue_cancels_pending_retry(self):
        """A shaper wake-up must not double-fire when traffic re-arrives."""
        net = Network()
        routers = build_line(net, 2, rate_bps=10e6)
        tx = attach_host(net, routers[0], "10.32.0.1", name="tx")
        rx = attach_host(net, routers[1], "10.32.0.2", name="rx")
        converge(net)
        dl = net.link_between("r0", "r1")
        dl.if_ab.qdisc = TokenBucketShaper(1e5, 600, capacity_packets=200)
        sink = FlowSink(net.sim).attach(rx)
        src = CbrSource(net.sim, tx.send, "s", "10.32.0.1", "10.32.0.2",
                        payload_bytes=480, rate_bps=4e5)
        src.start(0.0, stop_at=1.0)
        net.run(until=6.0)
        rec = sink.record("s")
        # Everything eventually delivered exactly once, in order.
        assert rec.count == src.sent
        assert rec.seqs == sorted(set(rec.seqs))

    def test_idle_shaper_quiesces(self):
        """No livelock: after the backlog drains the simulator goes quiet."""
        net = Network()
        routers = build_line(net, 2, rate_bps=10e6)
        tx = attach_host(net, routers[0], "10.33.0.1", name="tx")
        rx = attach_host(net, routers[1], "10.33.0.2", name="rx")
        converge(net)
        dl = net.link_between("r0", "r1")
        dl.if_ab.qdisc = TokenBucketShaper(1e6, 2000)
        p = Packet(ip=IPHeader(IPv4Address.parse("10.33.0.1"),
                               IPv4Address.parse("10.33.0.2")),
                   payload_bytes=100)
        net.sim.schedule(0.0, lambda: tx.send(p))
        net.run(until=1.0)
        assert net.sim.peek() == float("inf")  # no lingering wakeups


class TestTrafficSourceBase:
    def test_abstract_gap_raises(self):
        src = TrafficSource(Simulator(), lambda p: None, "f",
                            "10.0.0.1", "10.0.0.2")
        with pytest.raises(NotImplementedError):
            src.next_gap()
        with pytest.raises(NotImplementedError):
            src.offered_rate_bps

    def test_start_before_now_clamps(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        got = []
        src = CbrSource(sim, got.append, "f", "10.0.0.1", "10.0.0.2",
                        rate_bps=1e6)
        src.start(at=0.0, stop_at=sim.now + 0.01)  # "at" is in the past
        sim.run()
        assert got  # clamped to now and emitted

    def test_bytes_accounting(self):
        sim = Simulator()
        got = []
        src = CbrSource(sim, got.append, "f", "10.0.0.1", "10.0.0.2",
                        payload_bytes=100, rate_bps=1e6)
        src.start(0.0, stop_at=0.01)
        sim.run()
        assert src.bytes_sent == sum(p.wire_bytes for p in got)
