"""Unit + property tests for token buckets, srTCM, and conditioners."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.address import IPv4Address
from repro.net.packet import IPHeader, Packet
from repro.qos.dscp import DSCP
from repro.qos.meter import (
    Color,
    SrTCM,
    TokenBucket,
    dscp_marker,
    exp_from_dscp_marker,
    policer,
    srtcm_remarker,
)


def pkt(size=100, dscp=0):
    return Packet(ip=IPHeader(IPv4Address(1), IPv4Address(2), dscp=dscp),
                  payload_bytes=size - 20)


class TestTokenBucket:
    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(0, 100)
        with pytest.raises(ValueError):
            TokenBucket(100, 0)

    def test_starts_full(self):
        tb = TokenBucket(8e3, 1000)
        assert tb.tokens(0.0) == 1000

    def test_starts_empty_option(self):
        tb = TokenBucket(8e3, 1000, start_full=False)
        assert tb.tokens(0.0) == 0.0

    def test_burst_then_exhaustion(self):
        tb = TokenBucket(8e3, 1000)  # 1 kB/s fill
        assert tb.conforms(600, 0.0)
        assert tb.conforms(400, 0.0)
        assert not tb.conforms(1, 0.0)

    def test_refill_at_rate(self):
        tb = TokenBucket(8e3, 1000)
        tb.conforms(1000, 0.0)
        # After 0.5 s at 1 kB/s: 500 bytes available.
        assert not tb.conforms(501, 0.5)
        assert tb.conforms(500, 0.5)

    def test_never_exceeds_burst(self):
        tb = TokenBucket(8e3, 1000)
        assert tb.tokens(1000.0) == 1000

    def test_time_until(self):
        tb = TokenBucket(8e3, 1000)
        tb.conforms(1000, 0.0)
        assert tb.time_until(500, 0.0) == pytest.approx(0.5)
        assert tb.time_until(0, 0.0) == 0.0

    def test_clock_does_not_go_backwards(self):
        tb = TokenBucket(8e3, 1000)
        tb.conforms(500, 1.0)
        before = tb.tokens(1.0)
        assert tb.tokens(0.5) == before  # stale timestamp is a no-op

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.floats(min_value=0.001, max_value=10.0),
                              st.integers(min_value=1, max_value=2000)),
                    min_size=1, max_size=60))
    def test_long_run_rate_never_exceeded(self, steps):
        """Accepted bytes <= burst + rate*elapsed, for any arrival pattern."""
        rate_bps, burst = 64e3, 2000
        tb = TokenBucket(rate_bps, burst)
        now = 0.0
        accepted = 0
        for gap, size in steps:
            now += gap
            if tb.conforms(size, now):
                accepted += size
        assert accepted <= burst + rate_bps / 8.0 * now + 1e-6


class TestSrTCM:
    def test_validation(self):
        with pytest.raises(ValueError):
            SrTCM(0, 100, 100)
        with pytest.raises(ValueError):
            SrTCM(100, 0, 100)

    def test_green_within_cbs(self):
        m = SrTCM(8e3, 1000, 500)
        assert m.color(800, 0.0) is Color.GREEN

    def test_yellow_from_excess_bucket(self):
        m = SrTCM(8e3, 1000, 500)
        m.color(1000, 0.0)
        assert m.color(400, 0.0) is Color.YELLOW

    def test_red_when_both_empty(self):
        m = SrTCM(8e3, 1000, 500)
        m.color(1000, 0.0)
        m.color(500, 0.0)
        assert m.color(100, 0.0) is Color.RED

    def test_refill_committed_before_excess(self):
        m = SrTCM(8e3, 1000, 500)
        m.color(1000, 0.0)
        m.color(500, 0.0)
        # 1 s at 1 kB/s refills committed fully; excess stays empty.
        assert m.color(900, 1.0) is Color.GREEN
        assert m.color(200, 1.0) is Color.RED

    def test_excess_spillover(self):
        m = SrTCM(8e3, 1000, 500)
        m.color(1000, 0.0)
        m.color(500, 0.0)
        # 2 s refills 2000 B: 1000 to committed, 500 spill to excess (cap).
        assert m.color(1000, 2.0) is Color.GREEN
        assert m.color(500, 2.0) is Color.YELLOW


class TestConditioners:
    def test_policer_drops_excess(self):
        tb = TokenBucket(8e3, 200)
        cond = policer(tb)
        assert cond(pkt(150), 0.0) is not None
        assert cond(pkt(150), 0.0) is None

    def test_policer_match_filter(self):
        tb = TokenBucket(8e3, 100)
        cond = policer(tb, match=lambda p: p.ip.dscp == 46)
        big_be = pkt(1000, dscp=0)
        assert cond(big_be, 0.0) is big_be  # unmatched passes unmetered
        assert cond(pkt(90, dscp=46), 0.0) is not None
        assert cond(pkt(90, dscp=46), 0.0) is None

    def test_dscp_marker_sets(self):
        cond = dscp_marker(int(DSCP.EF))
        p = cond(pkt(dscp=0), 0.0)
        assert p.ip.dscp == int(DSCP.EF)

    def test_dscp_marker_match(self):
        cond = dscp_marker(int(DSCP.EF), match=lambda p: p.ip.dst_port == 5004)
        p = pkt()
        p.ip.dst_port = 80
        assert cond(p, 0.0).ip.dscp == 0

    def test_srtcm_remarker_demotes(self):
        m = SrTCM(8e3, 200, 200)
        cond = srtcm_remarker(m, green_dscp=int(DSCP.AF11), yellow_dscp=int(DSCP.AF12))
        assert cond(pkt(150), 0.0).ip.dscp == int(DSCP.AF11)
        assert cond(pkt(150), 0.0).ip.dscp == int(DSCP.AF12)
        assert cond(pkt(150), 0.0) is None  # red drops by default

    def test_srtcm_remarker_red_remark(self):
        m = SrTCM(8e3, 200, 0)
        cond = srtcm_remarker(
            m, green_dscp=int(DSCP.AF11), yellow_dscp=int(DSCP.AF12),
            red_action="remark", red_dscp=int(DSCP.AF13),
        )
        cond(pkt(200), 0.0)
        assert cond(pkt(150), 0.0).ip.dscp == int(DSCP.AF13)

    def test_srtcm_remarker_validation(self):
        m = SrTCM(8e3, 200, 0)
        with pytest.raises(ValueError):
            srtcm_remarker(m, 1, 2, red_action="bogus")
        with pytest.raises(ValueError):
            srtcm_remarker(m, 1, 2, red_action="remark")

    def test_exp_from_dscp_marker(self):
        cond = exp_from_dscp_marker()
        p = pkt(dscp=int(DSCP.EF))
        p.push_label(100)
        assert cond(p, 0.0).top_label.exp == 5
        # No-op on unlabeled packets.
        q = pkt(dscp=int(DSCP.EF))
        assert cond(q, 0.0) is q
