"""Tests for interfaces, links, nodes, and hosts."""

import pytest

from repro.net.address import IPv4Address, Prefix
from repro.net.link import Interface, Link
from repro.net.node import Host, Node, ProcessingModel
from repro.net.packet import IPHeader, Packet
from repro.qos.queues import DropTailFifo
from repro.sim.engine import Simulator


class Recorder(Node):
    """Minimal node that logs what it receives."""

    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.got = []

    def handle(self, pkt, ifname):
        self.got.append((pkt, ifname, self.sim.now))


def wire(sim, a, b, rate_bps=1e6, delay_s=0.01):
    """One simplex link a->b with a DropTail interface on a."""
    iface = Interface(sim, a, "eth0", rate_bps, DropTailFifo())
    a.add_interface(iface)
    link = Link(sim, "a->b", b, "eth0", delay_s)
    iface.attach(link, b, "eth0")
    return iface, link


def pkt(size=1000, dst="10.0.0.2"):
    return Packet(ip=IPHeader(IPv4Address.parse("10.0.0.1"),
                              IPv4Address.parse(dst)),
                  payload_bytes=size - 20)


class TestTransmission:
    def test_delivery_time_is_serialization_plus_propagation(self):
        sim = Simulator()
        a, b = Recorder(sim, "a"), Recorder(sim, "b")
        iface, _ = wire(sim, a, b, rate_bps=1e6, delay_s=0.01)
        p = pkt(1000)  # 1000 B = 8000 bits -> 8 ms at 1 Mb/s
        sim.schedule(0.0, lambda: iface.send(p))
        sim.run()
        assert len(b.got) == 1
        assert b.got[0][2] == pytest.approx(0.018)

    def test_back_to_back_packets_pipeline(self):
        sim = Simulator()
        a, b = Recorder(sim, "a"), Recorder(sim, "b")
        iface, _ = wire(sim, a, b, rate_bps=1e6, delay_s=0.01)
        sim.schedule(0.0, lambda: (iface.send(pkt(1000)), iface.send(pkt(1000))))
        sim.run()
        times = [t for _, _, t in b.got]
        # Second packet waits one serialization time, not one RTT.
        assert times == [pytest.approx(0.018), pytest.approx(0.026)]

    def test_hop_counter_increments(self):
        sim = Simulator()
        a, b = Recorder(sim, "a"), Recorder(sim, "b")
        iface, _ = wire(sim, a, b)
        p = pkt()
        sim.schedule(0.0, lambda: iface.send(p))
        sim.run()
        assert p.hops == 1

    def test_queue_overflow_drops(self):
        sim = Simulator()
        a, b = Recorder(sim, "a"), Recorder(sim, "b")
        iface = Interface(sim, a, "eth0", 1e3, DropTailFifo(capacity_packets=2))
        a.add_interface(iface)
        link = Link(sim, "l", b, "eth0", 0.001)
        iface.attach(link, b, "eth0")
        sent = [iface.send(pkt()) for _ in range(5)]
        # First dequeues immediately into the transmitter, 2 queue, rest drop.
        assert sum(sent) == 3
        assert iface.stats.dropped == 2

    def test_link_down_blackholes(self):
        sim = Simulator()
        a, b = Recorder(sim, "a"), Recorder(sim, "b")
        iface, link = wire(sim, a, b)
        link.up = False
        sim.schedule(0.0, lambda: iface.send(pkt()))
        sim.run()
        assert b.got == []
        assert iface.stats.tx_packets == 1  # transmitted, lost on the wire

    def test_utilization_accounting(self):
        sim = Simulator()
        a, b = Recorder(sim, "a"), Recorder(sim, "b")
        iface, _ = wire(sim, a, b, rate_bps=1e6)
        sim.schedule(0.0, lambda: iface.send(pkt(1000)))
        sim.run()
        assert iface.stats.busy_time == pytest.approx(0.008)
        assert iface.stats.utilization(0.016) == pytest.approx(0.5)
        assert iface.stats.tx_bytes == 1000

    def test_conditioner_can_drop(self):
        sim = Simulator()
        a, b = Recorder(sim, "a"), Recorder(sim, "b")
        iface, _ = wire(sim, a, b)
        iface.add_conditioner(lambda p, now: None)
        assert iface.send(pkt()) is False
        assert iface.stats.conditioner_dropped == 1

    def test_conditioner_can_rewrite(self):
        sim = Simulator()
        a, b = Recorder(sim, "a"), Recorder(sim, "b")
        iface, _ = wire(sim, a, b)
        def mark(p, now):
            p.ip.dscp = 46
            return p
        iface.add_conditioner(mark)
        sim.schedule(0.0, lambda: iface.send(pkt()))
        sim.run()
        assert b.got[0][0].ip.dscp == 46


class TestNode:
    def test_duplicate_interface_rejected(self):
        sim = Simulator()
        n = Recorder(sim, "n")
        n.add_interface(Interface(sim, n, "eth0", 1e6, DropTailFifo()))
        with pytest.raises(ValueError):
            n.add_interface(Interface(sim, n, "eth0", 1e6, DropTailFifo()))

    def test_owns_addresses(self):
        sim = Simulator()
        n = Recorder(sim, "n")
        n.set_loopback("172.16.0.1")
        n.add_address("192.168.0.1", "eth0")
        assert n.owns(IPv4Address.parse("172.16.0.1"))
        assert n.owns(IPv4Address.parse("192.168.0.1"))
        assert not n.owns(IPv4Address.parse("10.0.0.1"))

    def test_connected_prefix_recorded(self):
        sim = Simulator()
        n = Recorder(sim, "n")
        n.add_address("192.168.0.1", "eth0", Prefix.parse("192.168.0.0/30"))
        assert Prefix.parse("192.168.0.0/30") in n.connected_prefixes

    def test_drop_accounting(self):
        sim = Simulator()
        n = Recorder(sim, "n")
        n.drop(pkt(), "ttl")
        n.drop(pkt(), "no_route")
        n.drop(pkt(), "weird")
        assert n.stats.dropped_ttl == 1
        assert n.stats.dropped_no_route == 1
        assert n.stats.dropped_other == 1

    def test_drop_publishes_trace(self):
        sim = Simulator()
        n = Recorder(sim, "n")
        n.trace.record("drop")
        n.drop(pkt(), "ttl")
        recs = n.trace.records("drop")
        assert len(recs) == 1 and recs[0].reason == "ttl"

    def test_local_sink_called_on_delivery(self):
        sim = Simulator()
        n = Recorder(sim, "n")
        got = []
        n.add_local_sink(got.append)
        p = pkt()
        n.deliver_local(p)
        assert got == [p]
        assert n.stats.delivered == 1

    def test_after_processing_immediate_when_zero(self):
        sim = Simulator()
        n = Recorder(sim, "n")
        ran = []
        n.after_processing(0.0, lambda: ran.append(sim.now))
        assert ran == [0.0]  # synchronous

    def test_after_processing_delays(self):
        sim = Simulator()
        n = Recorder(sim, "n")
        ran = []
        n.after_processing(0.5, lambda: ran.append(sim.now))
        assert ran == []
        sim.run()
        assert ran == [0.5]

    def test_processing_model_crypto_time(self):
        m = ProcessingModel(crypto_bps=8e6)
        assert m.crypto_time(1000) == pytest.approx(0.001)
        assert ProcessingModel().crypto_time(1000) == 0.0


class TestHost:
    def test_delivers_own_traffic(self):
        sim = Simulator()
        h = Host(sim, "h")
        h.add_address("10.0.0.2", "eth0")
        got = []
        h.add_local_sink(got.append)
        h.handle(pkt(dst="10.0.0.2"), "eth0")
        assert len(got) == 1

    def test_forwards_via_gateway(self):
        sim = Simulator()
        h = Host(sim, "h")
        b = Recorder(sim, "b")
        iface, _ = wire(sim, h, b)
        h.gateway_ifname = "eth0"
        sim.schedule(0.0, lambda: h.send(pkt(dst="10.9.9.9")))
        sim.run()
        assert len(b.got) == 1

    def test_single_interface_implied_gateway(self):
        sim = Simulator()
        h = Host(sim, "h")
        b = Recorder(sim, "b")
        wire(sim, h, b)
        sim.schedule(0.0, lambda: h.send(pkt(dst="10.9.9.9")))
        sim.run()
        assert len(b.got) == 1

    def test_no_gateway_drops(self):
        sim = Simulator()
        h = Host(sim, "h")
        h.send(pkt())
        assert h.stats.dropped_no_route == 1
