"""Integration tests: miniature runs of every experiment, asserting the
qualitative *shape* each paper claim predicts (see DESIGN.md §3).

These use shorter measurement windows than the benchmarks; the assertions
are about orderings and ratios, not absolute numbers, so they are robust
to the reduced run length.
"""

import pytest

from repro.experiments.e1_scalability import mpls_census, overlay_census, run_e1
from repro.experiments.e2_qos import run_config as e2_config
from repro.experiments.e3_forwarding import run_e3
from repro.experiments.e4_ipsec import run_ipsec_config, run_mpls_config
from repro.experiments.e5_sla import run_stage
from repro.experiments.e6_te import run_config as e6_config
from repro.experiments.e7_isolation import build_overlap_scenario, run_e7
from repro.experiments.e8_mixed import run_e8
from repro.experiments.e9_ablations import (
    run_e9a_schedulers,
    run_e9c_exp_php,
    run_e9d_stack_overhead,
    run_e9e_ibgp,
)


class TestE1Scalability:
    def test_overlay_matches_paper_formula(self):
        """§2.1: 10 sites -> 45 VCs."""
        census = overlay_census(10)
        assert census["circuits"] == 45
        assert census["formula"] == 45

    def test_overlay_quadratic_growth(self):
        c10 = overlay_census(10)
        c40 = overlay_census(40)
        # 4x sites -> ~16x circuits and state.
        assert c40["circuits"] / c10["circuits"] == pytest.approx(
            (40 * 39) / (10 * 9)
        )
        assert c40["state_total"] > 10 * c10["state_total"]

    def test_mpls_linear_growth(self):
        m10 = mpls_census(10)
        m40 = mpls_census(40)
        # 4x sites -> ~4x VRF routes, not 16x.
        ratio = m40["vrf_routes_total"] / m10["vrf_routes_total"]
        assert ratio == pytest.approx(4.0, rel=0.3)

    def test_core_has_zero_per_vpn_state(self):
        m = mpls_census(20)
        assert m["core_per_vpn_state"] == 0
        assert m["core_ldp_state"] > 0  # shared transport state exists

    def test_ldp_cost_independent_of_sites(self):
        """The LSP mesh is shared: loopback-FEC LDP cost does not grow with
        customer count (access FECs are customer-side, not in the core IGP)."""
        m10, m40 = mpls_census(10), mpls_census(40)
        assert m10["ldp_sessions"] == m40["ldp_sessions"]

    def test_run_e1_rows(self):
        rows, raw = run_e1(site_counts=(10, 20))
        assert len(rows) == 2
        assert rows[0]["overlay_VCs"] == 45
        assert rows[1]["overlay_VCs"] == 190


class TestE2Qos:
    @pytest.fixture(scope="class")
    def results(self):
        return {
            cfg: e2_config(cfg, measure_s=3.0)
            for cfg in ("ip-fifo", "mpls-diffserv")
        }

    def test_fifo_hurts_voice(self, results):
        voice = results["ip-fifo"]["voice"]
        assert voice.loss_ratio > 0.05
        assert voice.p99_delay_s > 0.05

    def test_mpls_diffserv_protects_voice(self, results):
        voice = results["mpls-diffserv"]["voice"]
        assert voice.loss_ratio == 0.0
        assert voice.p99_delay_s < 0.03

    def test_voice_improvement_order_of_magnitude(self, results):
        fifo = results["ip-fifo"]["voice"].p99_delay_s
        mpls = results["mpls-diffserv"]["voice"].p99_delay_s
        assert fifo / mpls > 5

    def test_bulk_pays_the_price(self, results):
        """Protecting EF/AF must come out of BE, not out of thin air."""
        assert (
            results["mpls-diffserv"]["bulk"].loss_ratio
            >= results["ip-fifo"]["bulk"].loss_ratio
        )

    def test_mpls_path_is_labeled(self, results):
        net = results["mpls-diffserv"]["net"]
        assert net.nodes["r1"].lfib.lookups > 0


class TestE3Forwarding:
    def test_label_lookup_beats_lpm(self):
        rows, _ = run_e3(table_sizes=(1000,), n_lookups=3000)
        assert rows[0]["speedup"] > 2.0

    def test_lpm_degrades_with_table_size_relative_to_label(self):
        rows, _ = run_e3(table_sizes=(100, 20000), n_lookups=3000)
        # The exact-match advantage must remain large at provider-scale
        # tables.  (Wall-clock micro-timing is noisy under a loaded test
        # runner, so assert the magnitude, not a cross-run ratio.)
        assert rows[1]["speedup"] > 3.0


class TestE4Ipsec:
    @pytest.fixture(scope="class")
    def results(self):
        return {
            "blind": run_ipsec_config(copy_dscp=False, measure_s=3.0),
            "copy": run_ipsec_config(copy_dscp=True, measure_s=3.0),
            "mpls": run_mpls_config(measure_s=3.0),
        }

    def test_blind_tunnel_erases_qos(self, results):
        """Claim C3: encrypted tunnel without DSCP copy kills the EF class."""
        assert results["blind"]["voice"].loss_ratio > 0.1

    def test_copy_out_restores_qos(self, results):
        assert results["copy"]["voice"].loss_ratio == 0.0

    def test_mpls_vpn_preserves_qos(self, results):
        assert results["mpls"]["voice"].loss_ratio == 0.0
        assert results["mpls"]["voice"].p99_delay_s < 0.05

    def test_mpls_overhead_smaller(self, results):
        assert results["mpls"]["voice_overhead_bytes"] < results["blind"]["voice_overhead_bytes"]

    def test_ipsec_pays_ike(self, results):
        assert results["blind"]["ike_messages"] == 18
        assert results["mpls"]["ike_messages"] == 0


class TestE5Sla:
    @pytest.fixture(scope="class")
    def stages(self):
        return {s: run_stage(s, measure_s=3.0) for s in
                ("none", "cbq-only", "core-only", "full")}

    def test_full_chain_passes_both_slas(self, stages):
        assert stages["full"]["voice_sla"].conformant
        assert stages["full"]["data_sla"].conformant

    def test_no_qos_fails_voice(self, stages):
        assert not stages["none"]["voice_sla"].conformant

    def test_partial_chains_insufficient(self, stages):
        assert not stages["cbq-only"]["voice_sla"].conformant
        assert not stages["core-only"]["voice_sla"].conformant

    def test_monotone_improvement_for_voice_loss(self, stages):
        assert (
            stages["full"]["voice"].loss_ratio
            <= stages["cbq-only"]["voice"].loss_ratio
            <= stages["none"]["voice"].loss_ratio
        )


class TestE6TrafficEngineering:
    @pytest.fixture(scope="class")
    def results(self):
        return {
            "sp": e6_config(use_te=False, measure_s=3.0),
            "te": e6_config(use_te=True, measure_s=3.0),
            "fail": e6_config(use_te=True, measure_s=3.0, fail_link=True),
        }

    def test_shortest_path_congests(self, results):
        losses = [f.loss_ratio for f in results["sp"]["flows"]]
        assert max(losses) > 0.2

    def test_te_eliminates_loss(self, results):
        assert all(f.loss_ratio < 0.01 for f in results["te"]["flows"])

    def test_te_spreads_load(self, results):
        assert results["sp"]["util_top"] == pytest.approx(0.0, abs=0.01)
        assert results["te"]["util_top"] > 0.2
        assert results["te"]["util_bottom"] < results["sp"]["util_bottom"]

    def test_te_raises_aggregate_goodput(self, results):
        assert (
            results["te"]["aggregate_goodput_bps"]
            > 1.1 * results["sp"]["aggregate_goodput_bps"]
        )

    def test_link_failure_reroutes_admitted_tunnels(self, results):
        flows = results["fail"]["flows"]
        admitted = [f for f, p in zip(flows, results["fail"]["paths"])
                    if p != ["rejected"]]
        rejected = [f for f, p in zip(flows, results["fail"]["paths"])
                    if p == ["rejected"]]
        assert len(admitted) == 2 and len(rejected) == 1
        assert all(f.loss_ratio < 0.01 for f in admitted)
        for p in results["fail"]["paths"]:
            assert "G" not in p or "H" not in p or p == ["rejected"]


class TestE7Isolation:
    def test_zero_cross_vpn_leakage(self):
        rows, raw = run_e7(measure_s=1.5)
        for row in rows:
            assert row["delivered_cross"] == 0

    def test_full_intra_vpn_delivery(self):
        rows, raw = run_e7(measure_s=1.5)
        for row in rows:
            assert row["intra_ratio"] == pytest.approx(1.0)

    def test_extranet_requires_rt_import(self):
        """Without the RT import, green cannot reach red at all."""
        ctx = build_overlap_scenario(seed=62, extranet=False)
        sites = ctx["sites"]
        # green doesn't exist; instead verify blue cannot reach red's
        # prefix *via its own VRF* even though the address exists there.
        blue_pe = sites["blue", 1].pe
        vrf = blue_pe.vrfs["blue"]
        red_vrf = blue_pe.vrfs["red"]
        # Same destination address resolves per-VRF to different targets.
        from repro.net.address import IPv4Address
        dst = IPv4Address.parse("10.0.2.10")
        blue_route = vrf.lookup(dst)
        red_route = red_vrf.lookup(dst)
        assert blue_route.vpn_label != red_route.vpn_label


class TestE8Mixed:
    @pytest.fixture(scope="class")
    def results(self):
        rows, raw = run_e8(measure_s=1.5)
        return rows, raw

    def test_both_paths_deliver(self, results):
        rows, _ = results
        for row in rows:
            assert row["recv"] == row["sent"]

    def test_mixed_mode_labels_one_path_only(self, results):
        _, raw = results
        census = raw["mixed"]["census"]
        assert census["m1.label_lookups"] > 0     # path 1 labeled
        assert census["n2.ip_lookups"] > 0        # path 2 plain IP
        assert census["n2.label_lookups"] == 0

    def test_upgrade_moves_path2_onto_labels(self, results):
        _, raw = results
        census = raw["all-mpls"]["census"]
        assert census["n2.label_lookups"] > 0
        assert census["n2.ip_lookups"] == 0


class TestE9Ablations:
    def test_schedulers_shape(self):
        rows, raw = run_e9a_schedulers(measure_s=2.0)
        by = {r["scheduler"]: r for r in rows}
        assert by["fifo"]["voice_loss%"] > 5
        for kind in ("priority", "wfq"):
            assert by[kind]["voice_loss%"] == 0.0
            assert by[kind]["voice_p99_ms"] < by["fifo"]["voice_p99_ms"] / 3

    def test_exp_php_hole(self):
        rows, raw = run_e9c_exp_php(measure_s=2.0)
        by = {r["variant"]: r for r in rows}
        assert by["outer-only+php"]["voice_loss%"] > 5
        assert by["both+php"]["voice_loss%"] == 0.0
        assert by["outer-only+explicit-null"]["voice_loss%"] == 0.0

    def test_stack_overhead_monotone(self):
        rows, _ = run_e9d_stack_overhead()
        effs = [r["eff_160B"] for r in rows]
        assert effs == sorted(effs, reverse=True)
        assert rows[0]["hdr_bytes"] == 20 and rows[3]["hdr_bytes"] == 32

    def test_ibgp_sessions_vs_updates(self):
        rows, _ = run_e9e_ibgp(pe_counts=(4, 8), sites_per_pe=2)
        by = {(r["pes"], r["topology"]): r for r in rows}
        assert by[(8, "full-mesh")]["sessions"] == 28
        assert by[(8, "route-reflector")]["sessions"] == 7
        assert (
            by[(8, "full-mesh")]["updates"]
            == by[(8, "route-reflector")]["updates"]
        )
        assert (
            by[(8, "full-mesh")]["routes_imported"]
            == by[(8, "route-reflector")]["routes_imported"]
        )


class TestE10InterAs:
    def test_cross_provider_sla_and_isolation(self):
        from repro.experiments.e10_interas import run_e10
        rows, summary = run_e10(measure_s=2.0)
        assert summary["voice_sla"].conformant
        assert summary["cross_customer_leaks"] == 0
        assert summary["routes_exchanged_over_border"] > 0
        assert summary["voice"].loss_ratio == 0.0

    def test_bulk_still_congests(self):
        """QoS protects voice *because* the path is congested."""
        from repro.experiments.e10_interas import run_e10
        rows, summary = run_e10(measure_s=2.0)
        assert summary["bulk"].loss_ratio > 0.05


class TestE11Resilience:
    def test_outage_tracks_recovery_delay(self):
        from repro.experiments.e11_resilience import run_variant
        slow = run_variant("igp", "igp", 2.0, measure_s=5.0)
        fast = run_variant("frr", "frr", 0.05, measure_s=5.0)
        assert slow["outage_s"] == pytest.approx(2.0, rel=0.2)
        assert fast["outage_s"] < 0.2
        assert fast["received"] > slow["received"]

    def test_igp_recovery_actually_restores(self):
        from repro.experiments.e11_resilience import run_variant
        r = run_variant("igp", "igp", 1.0, measure_s=6.0)
        # Traffic after recovery flows: loss bounded by the outage window.
        expected_lost = 1.0 * (2e6 / ((500 + 20) * 8))
        assert r["lost"] == pytest.approx(expected_lost, rel=0.2)


class TestE12Elastic:
    def test_red_cuts_standing_queue(self):
        from repro.experiments.e12_elastic import run_e12a_aqm
        rows, raw = run_e12a_aqm(duration_s=8.0)
        by = {r["aqm"]: r for r in rows}
        assert by["red"]["p50_delay_ms"] < by["droptail"]["p50_delay_ms"]
        assert by["droptail"]["utilization%"] > 80

    def test_wfq_protects_voice_from_adaptive_flows(self):
        from repro.experiments.e12_elastic import run_e12b_voice_vs_elastic
        rows, raw = run_e12b_voice_vs_elastic(duration_s=8.0)
        by = {r["scheduler"]: r for r in rows}
        assert by["wfq"]["voice_loss%"] == 0.0
        assert by["wfq"]["voice_p95_ms"] < by["fifo"]["voice_p95_ms"]
        # The elastic flows adapt around the voice class, not vice versa.
        assert by["wfq"]["elastic_goodput_kbps"] > 3000


class TestE9fLlsp:
    def test_llsp_matches_elsp_qos_at_3x_state(self):
        from repro.experiments.e9_ablations import run_e9f_elsp_llsp
        rows, raw = run_e9f_elsp_llsp(measure_s=2.0)
        by = {r["model"]: r for r in rows}
        assert by["l-lsp"]["voice_loss%"] == 0.0
        assert by["e-lsp"]["voice_loss%"] == 0.0
        assert by["l-lsp"]["labels_in_use"] == 3 * by["e-lsp"]["labels_in_use"]

    def test_llsp_class_really_comes_from_label(self):
        """With EXP forced to 0, only the label map can protect voice."""
        from repro.experiments.e9_ablations import run_e9f_elsp_llsp
        rows, raw = run_e9f_elsp_llsp(measure_s=2.0)
        net = raw["l-lsp"]["net"]
        # All imposed EXP are zero yet voice was protected.
        from repro.mpls import Lsr
        assert all(
            lsr.impose_exp == 0
            for lsr in net.nodes.values()
            if isinstance(lsr, Lsr)
        )
        assert raw["l-lsp"]["voice"].loss_ratio == 0.0


class TestE13Tiers:
    def test_tier_determines_outcome_for_identical_workloads(self):
        from repro.experiments.e13_tiers import run_e13
        rows, raw = run_e13(measure_s=3.0)
        assert raw["gold"].loss_ratio == 0.0
        assert raw["silver"].loss_ratio == 0.0
        assert raw["bronze"].loss_ratio > 0.05
        assert raw["gold"].p99_delay_s <= raw["silver"].p99_delay_s

    def test_over_contract_gold_is_policed(self):
        from repro.experiments.e13_tiers import run_e13
        from repro.vpn.profiles import GOLD
        rows, raw = run_e13(measure_s=3.0)
        # Greedy gold offered 3x CIR but the EF class only carried ~CIR.
        assert raw["gold-greedy"].throughput_bps < 2.5 * GOLD.cir_bps
        # And the in-contract gold customer never noticed.
        assert raw["gold"].loss_ratio == 0.0
        assert raw["gold"].p99_delay_s < 0.05


class TestE14IntServ:
    def test_equal_quality_unequal_cost(self):
        from repro.experiments.e14_intserv import run_e14
        rows, raw = run_e14(flow_counts=(4, 16), measure_s=2.0)
        by = {(r["arch"], r["flows"]): r for r in rows}
        for n in (4, 16):
            assert by[("intserv", n)]["voice_loss%"] == 0.0
            assert by[("diffserv", n)]["voice_loss%"] == 0.0
        assert (
            by[("intserv", 16)]["core_state/router"]
            == 4 * by[("intserv", 4)]["core_state/router"]
        )
        assert (
            by[("diffserv", 16)]["core_state/router"]
            == by[("diffserv", 4)]["core_state/router"]
        )

    def test_intserv_refresh_cost_is_perpetual(self):
        from repro.experiments.e14_intserv import run_architecture
        r = run_architecture("intserv", 8, measure_s=1.0)
        assert r["refresh_msgs_per_30s"] == r["setup_messages"]
        d = run_architecture("diffserv", 8, measure_s=1.0)
        assert d["refresh_msgs_per_30s"] == 0


class TestE2LoadSweep:
    def test_crossover_shape(self):
        from repro.experiments.e2_qos import run_e2_load_sweep
        rows, raw = run_e2_load_sweep(loads=(0.5, 1.5), measure_s=2.0)
        by = {(r["config"], r["offered_load"]): r for r in rows}
        assert by[("ip-fifo", 1.5)]["voice_p99_ms"] > \
            5 * by[("ip-fifo", 0.5)]["voice_p99_ms"]
        assert by[("mpls-diffserv", 1.5)]["voice_p99_ms"] < \
            1.5 * by[("mpls-diffserv", 0.5)]["voice_p99_ms"]
