"""Unit + property tests for the queue disciplines."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.address import IPv4Address
from repro.net.packet import IPHeader, Packet
from repro.qos.queues import (
    ClassQueue,
    DeficitRoundRobin,
    DropTailFifo,
    FairQueueing,
    PriorityScheduler,
    WeightedRoundRobin,
)


def pkt(size=100, cls=0):
    # The flow field doubles as the class tag in these tests.
    return Packet(ip=IPHeader(IPv4Address(1), IPv4Address(2)),
                  payload_bytes=max(0, size - 20), flow=cls)


def by_tag(p):
    return p.flow


def queues(n=3, cap=1000):
    return [ClassQueue(f"c{i}", capacity_packets=cap) for i in range(n)]


class TestDropTailFifo:
    def test_fifo_order(self):
        q = DropTailFifo()
        a, b = pkt(), pkt()
        assert q.enqueue(a, 0.0) and q.enqueue(b, 0.0)
        assert q.dequeue(0.0) is a
        assert q.dequeue(0.0) is b
        assert q.dequeue(0.0) is None

    def test_packet_capacity(self):
        q = DropTailFifo(capacity_packets=2)
        assert q.enqueue(pkt(), 0.0)
        assert q.enqueue(pkt(), 0.0)
        assert not q.enqueue(pkt(), 0.0)
        assert q.stats.dropped == 1
        assert len(q) == 2

    def test_byte_capacity(self):
        q = DropTailFifo(capacity_packets=None, capacity_bytes=250)
        assert q.enqueue(pkt(100), 0.0)
        assert q.enqueue(pkt(100), 0.0)
        assert not q.enqueue(pkt(100), 0.0)  # 300 > 250
        assert q.backlog_bytes == 200

    def test_backlog_accounting(self):
        q = DropTailFifo()
        q.enqueue(pkt(100), 0.0)
        q.enqueue(pkt(60), 0.0)
        assert q.backlog_bytes == 160
        q.dequeue(0.0)
        assert q.backlog_bytes == 60

    def test_stats(self):
        q = DropTailFifo()
        q.enqueue(pkt(100), 0.0)
        q.dequeue(0.0)
        assert q.stats.enqueued == 1
        assert q.stats.dequeued == 1
        assert q.stats.bytes_sent == 100

    def test_next_eligible_default_now(self):
        q = DropTailFifo()
        assert q.next_eligible(3.0) == 3.0

    def test_unbounded(self):
        q = DropTailFifo(capacity_packets=None, capacity_bytes=None)
        for _ in range(1000):
            assert q.enqueue(pkt(), 0.0)


class TestPriority:
    def test_higher_class_served_first(self):
        q = PriorityScheduler(queues(), by_tag)
        low, high = pkt(cls=2), pkt(cls=0)
        q.enqueue(low, 0.0)
        q.enqueue(high, 0.0)
        assert q.dequeue(0.0) is high
        assert q.dequeue(0.0) is low

    def test_starvation_is_real(self):
        """Strict priority never serves class 1 while class 0 backlogged."""
        q = PriorityScheduler(queues(), by_tag)
        for _ in range(5):
            q.enqueue(pkt(cls=0), 0.0)
        q.enqueue(pkt(cls=1), 0.0)
        served = [q.dequeue(0.0).flow for _ in range(6)]
        assert served == [0, 0, 0, 0, 0, 1]

    def test_unknown_class_goes_best_effort(self):
        q = PriorityScheduler(queues(), lambda p: 99)
        p = pkt()
        q.enqueue(p, 0.0)
        assert q.classes[-1].q[0] is p

    def test_empty_dequeue(self):
        assert PriorityScheduler(queues(), by_tag).dequeue(0.0) is None

    def test_requires_classes(self):
        with pytest.raises(ValueError):
            PriorityScheduler([], by_tag)


class TestWrr:
    def test_weight_validation(self):
        with pytest.raises(ValueError):
            WeightedRoundRobin(queues(), by_tag, [1, 2])
        with pytest.raises(ValueError):
            WeightedRoundRobin(queues(), by_tag, [1, 0, 2])

    def test_service_ratio_matches_weights(self):
        q = WeightedRoundRobin(queues(2), by_tag, [3, 1])
        for _ in range(400):
            q.enqueue(pkt(cls=0), 0.0)
            q.enqueue(pkt(cls=1), 0.0)
        served = [q.dequeue(0.0).flow for _ in range(400)]
        counts = [served.count(0), served.count(1)]
        assert counts[0] / counts[1] == pytest.approx(3.0, rel=0.1)

    def test_work_conserving(self):
        q = WeightedRoundRobin(queues(2), by_tag, [3, 1])
        q.enqueue(pkt(cls=1), 0.0)
        assert q.dequeue(0.0) is not None


class TestDrr:
    def test_quantum_validation(self):
        with pytest.raises(ValueError):
            DeficitRoundRobin(queues(), by_tag, [100, 100])
        with pytest.raises(ValueError):
            DeficitRoundRobin(queues(), by_tag, [100, -1, 100])

    def test_byte_fair_despite_packet_sizes(self):
        """Class 0 sends 1500B packets, class 1 sends 100B; equal quanta
        must give ~equal *bytes*, i.e. many more small packets."""
        q = DeficitRoundRobin(queues(2, cap=10000), by_tag, [1500, 1500])
        for _ in range(200):
            q.enqueue(pkt(1500, cls=0), 0.0)
        for _ in range(3000):
            q.enqueue(pkt(100, cls=1), 0.0)
        sent = {0: 0, 1: 0}
        for _ in range(1000):
            p = q.dequeue(0.0)
            if p is None:
                break
            sent[p.flow] += p.wire_bytes
        assert sent[1] / sent[0] == pytest.approx(1.0, rel=0.2)

    def test_quantum_ratio_respected(self):
        q = DeficitRoundRobin(queues(2, cap=10000), by_tag, [3000, 1000])
        for _ in range(2000):
            q.enqueue(pkt(500, cls=0), 0.0)
            q.enqueue(pkt(500, cls=1), 0.0)
        bytes_sent = {0: 0, 1: 0}
        for _ in range(1200):
            p = q.dequeue(0.0)
            bytes_sent[p.flow] += p.wire_bytes
        assert bytes_sent[0] / bytes_sent[1] == pytest.approx(3.0, rel=0.15)

    def test_single_class_makes_progress_with_small_quantum(self):
        """A head packet bigger than one quantum must still be sent."""
        q = DeficitRoundRobin(queues(1, cap=10), by_tag, [100])
        big = pkt(1500, cls=0)
        q.enqueue(big, 0.0)
        assert q.dequeue(0.0) is big

    def test_work_conserving(self):
        q = DeficitRoundRobin(queues(2), by_tag, [1000, 1000])
        q.enqueue(pkt(cls=1), 0.0)
        assert q.dequeue(0.0) is not None
        assert q.dequeue(0.0) is None

    def test_drained_class_resets_deficit(self):
        q = DeficitRoundRobin(queues(2), by_tag, [5000, 5000])
        q.enqueue(pkt(100, cls=0), 0.0)
        q.dequeue(0.0)
        assert q.deficits[0] == 0


class TestFairQueueing:
    def test_weight_validation(self):
        with pytest.raises(ValueError):
            FairQueueing(queues(), by_tag, [1.0])
        with pytest.raises(ValueError):
            FairQueueing(queues(), by_tag, [1.0, -2.0, 1.0])

    def test_weighted_byte_share(self):
        q = FairQueueing(queues(2, cap=10000), by_tag, [4.0, 1.0])
        for _ in range(2000):
            q.enqueue(pkt(500, cls=0), 0.0)
            q.enqueue(pkt(500, cls=1), 0.0)
        bytes_sent = {0: 0, 1: 0}
        for _ in range(1000):
            p = q.dequeue(0.0)
            bytes_sent[p.flow] += p.wire_bytes
        assert bytes_sent[0] / bytes_sent[1] == pytest.approx(4.0, rel=0.1)

    def test_light_flow_low_delay(self):
        """A light class's packet overtakes a deep heavy backlog."""
        q = FairQueueing(queues(2, cap=10000), by_tag, [1.0, 1.0])
        for _ in range(50):
            q.enqueue(pkt(1500, cls=0), 0.0)
        light = pkt(100, cls=1)
        q.enqueue(light, 0.0)
        # The light packet's finish tag beats most of the heavy backlog:
        # it must come out within the first few dequeues.
        first = [q.dequeue(0.0) for _ in range(3)]
        assert light in first

    def test_virtual_clock_resets_when_idle(self):
        q = FairQueueing(queues(1), by_tag, [1.0])
        q.enqueue(pkt(100, cls=0), 0.0)
        q.dequeue(0.0)
        assert q.dequeue(0.0) is None
        assert q._virtual == 0.0

    def test_fifo_within_class(self):
        q = FairQueueing(queues(1), by_tag, [1.0])
        a, b = pkt(100, cls=0), pkt(100, cls=0)
        q.enqueue(a, 0.0)
        q.enqueue(b, 0.0)
        assert q.dequeue(0.0) is a
        assert q.dequeue(0.0) is b


class TestConservation:
    """Property: across all disciplines, enqueued == dequeued + dropped + queued."""

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 2), st.integers(40, 1500)),
                    min_size=1, max_size=200),
           st.sampled_from(["prio", "wrr", "drr", "wfq"]))
    def test_no_packet_lost_or_duplicated(self, arrivals, kind):
        qs = queues(3, cap=20)
        if kind == "prio":
            disc = PriorityScheduler(qs, by_tag)
        elif kind == "wrr":
            disc = WeightedRoundRobin(qs, by_tag, [4, 2, 1])
        elif kind == "drr":
            disc = DeficitRoundRobin(qs, by_tag, [6000, 3000, 1500])
        else:
            disc = FairQueueing(qs, by_tag, [4.0, 2.0, 1.0])
        accepted = sum(
            1 for cls, size in arrivals if disc.enqueue(pkt(size, cls=cls), 0.0)
        )
        out = []
        while True:
            p = disc.dequeue(0.0)
            if p is None:
                break
            out.append(p)
        assert len(out) == accepted
        assert len(disc) == 0
        assert len(set(p.uid for p in out)) == len(out)  # no duplicates
