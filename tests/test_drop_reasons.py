"""Tests for the DropReason taxonomy and queue-drop visibility."""


from repro.net.address import IPv4Address
from repro.net.drops import DropReason
from repro.net.node import Node
from repro.net.packet import IPHeader, Packet
from repro.qos.queues import ClassQueue, DropTailFifo, PriorityScheduler
from repro.routing import converge
from repro.sim.engine import Simulator
from repro.topology import Network, attach_host, build_line
from repro.traffic import CbrSource


def mk_pkt(flow="f", seq=0, dscp=0):
    return Packet(ip=IPHeader(IPv4Address(1), IPv4Address(2), dscp=dscp),
                  payload_bytes=100, flow=flow, seq=seq)


class TestTaxonomy:
    def test_parse_enum_passthrough(self):
        assert DropReason.parse(DropReason.TTL) is DropReason.TTL

    def test_parse_known_string(self):
        assert DropReason.parse("no_vrf_route") is DropReason.NO_VRF_ROUTE

    def test_parse_unknown_string_is_other(self):
        assert DropReason.parse("totally_new_reason") is DropReason.OTHER

    def test_categories_match_legacy_buckets(self):
        assert DropReason.NO_ROUTE.category == "no_route"
        assert DropReason.NO_VRF_ROUTE.category == "no_route"
        assert DropReason.TTL.category == "ttl"
        assert DropReason.QUEUE_TAIL.category == "queue"
        assert DropReason.QUEUE_AQM.category == "queue"
        assert DropReason.CONDITIONER.category == "queue"
        # These always landed in "other" before the taxonomy existed.
        assert DropReason.NO_VC.category == "other"
        assert DropReason.NO_TUNNEL.category == "other"
        assert DropReason.NO_LABEL.category == "other"

    def test_values_are_stable_strings(self):
        for r in DropReason:
            assert r.value == r.value.lower()
            assert " " not in r.value


class TestNodeAccounting:
    def _node(self):
        sim = Simulator()
        return Node(sim, "n")

    def test_enum_drop_fills_bucket_and_by_reason(self):
        n = self._node()
        n.drop(mk_pkt(), DropReason.NO_VRF_ROUTE)
        assert n.stats.dropped_no_route == 1
        assert n.stats.by_reason == {"no_vrf_route": 1}
        assert n.stats.dropped_total == 1

    def test_unknown_string_preserved_verbatim(self):
        n = self._node()
        n.drop(mk_pkt(), "weird_typo")
        assert n.stats.dropped_other == 1
        assert n.stats.by_reason == {"weird_typo": 1}

    def test_trace_reason_stays_a_string(self):
        n = self._node()
        got = []
        n.trace.subscribe("drop", got.append)
        n.drop(mk_pkt(), DropReason.TTL)
        assert got[0].reason == "ttl"
        assert isinstance(got[0].reason, str)


class TestQueueDropCallbacks:
    def test_droptail_tail_drop_reason(self):
        q = DropTailFifo(capacity_packets=1)
        seen = []
        q.set_drop_callback(lambda pkt, reason, now: seen.append(reason))
        assert q.enqueue(mk_pkt(seq=0), 0.0)
        assert not q.enqueue(mk_pkt(seq=1), 0.0)
        assert seen == [DropReason.QUEUE_TAIL]

    def test_droptail_aqm_drop_reason(self):
        class AlwaysDrop:
            def should_drop(self, pkt, backlog_bytes, now):
                return True
            def notify_dequeue(self, backlog_bytes, now):
                pass
        q = DropTailFifo(capacity_packets=10, drop_policy=AlwaysDrop())
        seen = []
        q.set_drop_callback(lambda pkt, reason, now: seen.append(reason))
        assert not q.enqueue(mk_pkt(), 0.0)
        assert seen == [DropReason.QUEUE_AQM]

    def test_classful_scheduler_propagates_callback(self):
        queues = [ClassQueue("EF", capacity_packets=1),
                  ClassQueue("BE", capacity_packets=1)]
        sched = PriorityScheduler(queues, classify=lambda pkt: 0)
        seen = []
        sched.set_drop_callback(lambda pkt, reason, now: seen.append(reason))
        assert sched.enqueue(mk_pkt(seq=0), 0.0)
        assert not sched.enqueue(mk_pkt(seq=1), 0.0)
        assert seen == [DropReason.QUEUE_TAIL]

    def test_base_class_callback_is_noop(self):
        # The abstract default must accept the call without effect.
        from repro.qos.queues import QueueDiscipline
        QueueDiscipline().set_drop_callback(lambda pkt, reason, now: None)


class TestQueueDropsOnTraceBus:
    def _overloaded_net(self):
        net = Network(seed=7)
        net.default_qdisc_factory = lambda n, i: DropTailFifo(capacity_packets=3)
        routers = build_line(net, 2, rate_bps=1e6)
        tx = attach_host(net, routers[0], "10.6.0.1", name="tx", rate_bps=100e6)
        attach_host(net, routers[1], "10.6.0.2", name="rx", rate_bps=100e6)
        converge(net)
        src = CbrSource(net.sim, tx.send, "burst", "10.6.0.1", "10.6.0.2",
                        payload_bytes=1000, rate_bps=20e6)
        src.start(0.0, stop_at=0.5)
        return net

    def test_queue_drops_published(self):
        """Queue/AQM drops used to bump ClassStats silently; now every one
        is a 'drop' trace record naming node, interface, and reason."""
        net = self._overloaded_net()
        net.trace.record("drop")
        net.run(until=1.0)
        recs = net.trace.records("drop")
        assert recs, "no drop records despite an overloaded 1 Mb/s link"
        assert all(r.reason == "queue_tail" for r in recs)
        assert all(r.iface for r in recs)
        assert recs[0].node == "r0"
        # Trace count matches the interface's drop counter.
        iface_drops = sum(i.stats.dropped
                          for n in net.nodes.values()
                          for i in n.interfaces.values())
        assert len(recs) == iface_drops

    def test_qdisc_swap_after_construction_stays_wired(self):
        """Assigning a new qdisc to an existing interface must rewire the
        drop callback (the property setter owns the wiring)."""
        net = self._overloaded_net()
        dl = net.duplex_links[0]
        dl.if_ab.qdisc = DropTailFifo(capacity_packets=1)
        net.trace.record("drop")
        net.run(until=1.0)
        assert net.trace.records("drop")


class TestMeterCounts:
    def test_srtcm_counts(self):
        from repro.qos.meter import SrTCM
        m = SrTCM(cir_bps=8e3, cbs_bytes=1000, ebs_bytes=1000)
        for _ in range(20):
            m.color(500, now=0.0)
        counts = m.counts()
        assert sum(counts.values()) == 20
        assert counts["red"] > 0  # burst far beyond cbs+ebs

    def test_trtcm_counts(self):
        from repro.qos.meter import TrTCM
        m = TrTCM(cir_bps=8e3, cbs_bytes=500, pir_bps=16e3, pbs_bytes=1000)
        for _ in range(20):
            m.color(500, now=0.0)
        counts = m.counts()
        assert sum(counts.values()) == 20
        assert counts["red"] > 0
