"""Unit + property tests for the LPM trie FIB."""

from hypothesis import given, settings, strategies as st

from repro.net.address import IPv4Address, Prefix
from repro.routing.fib import Fib, RouteEntry


def entry(tag):
    return RouteEntry(out_ifname=tag)


class TestBasicLpm:
    def test_empty_fib_returns_none(self):
        assert Fib().lookup(IPv4Address.parse("10.0.0.1")) is None

    def test_exact_prefix_match(self):
        fib = Fib()
        fib.install("10.1.0.0/16", entry("a"))
        assert fib.lookup(IPv4Address.parse("10.1.2.3")).out_ifname == "a"
        assert fib.lookup(IPv4Address.parse("10.2.0.0")) is None

    def test_longest_prefix_wins(self):
        fib = Fib()
        fib.install("10.0.0.0/8", entry("short"))
        fib.install("10.1.0.0/16", entry("mid"))
        fib.install("10.1.2.0/24", entry("long"))
        assert fib.lookup(IPv4Address.parse("10.1.2.3")).out_ifname == "long"
        assert fib.lookup(IPv4Address.parse("10.1.9.9")).out_ifname == "mid"
        assert fib.lookup(IPv4Address.parse("10.9.9.9")).out_ifname == "short"

    def test_default_route(self):
        fib = Fib()
        fib.install("0.0.0.0/0", entry("default"))
        assert fib.lookup(IPv4Address.parse("200.1.2.3")).out_ifname == "default"
        fib.install("10.0.0.0/8", entry("specific"))
        assert fib.lookup(IPv4Address.parse("10.0.0.1")).out_ifname == "specific"

    def test_host_route(self):
        fib = Fib()
        fib.install("10.0.0.5/32", entry("host"))
        assert fib.lookup(IPv4Address.parse("10.0.0.5")).out_ifname == "host"
        assert fib.lookup(IPv4Address.parse("10.0.0.4")) is None

    def test_reinstall_replaces(self):
        fib = Fib()
        fib.install("10.0.0.0/8", entry("old"))
        fib.install("10.0.0.0/8", entry("new"))
        assert fib.lookup(IPv4Address.parse("10.0.0.1")).out_ifname == "new"
        assert len(fib) == 1

    def test_int_lookup_accepted(self):
        fib = Fib()
        fib.install("10.0.0.0/8", entry("a"))
        assert fib.lookup(0x0A000001).out_ifname == "a"


class TestWithdraw:
    def test_withdraw_removes(self):
        fib = Fib()
        fib.install("10.0.0.0/8", entry("a"))
        assert fib.withdraw("10.0.0.0/8") is True
        assert fib.lookup(IPv4Address.parse("10.0.0.1")) is None
        assert len(fib) == 0

    def test_withdraw_missing_false(self):
        assert Fib().withdraw("10.0.0.0/8") is False

    def test_withdraw_reveals_shorter(self):
        fib = Fib()
        fib.install("10.0.0.0/8", entry("short"))
        fib.install("10.1.0.0/16", entry("long"))
        fib.withdraw("10.1.0.0/16")
        assert fib.lookup(IPv4Address.parse("10.1.0.1")).out_ifname == "short"


class TestLookupPrefix:
    def test_returns_matching_prefix(self):
        fib = Fib()
        fib.install("10.1.0.0/16", entry("a"))
        pfx, ent = fib.lookup_prefix(IPv4Address.parse("10.1.2.3"))
        assert pfx == Prefix.parse("10.1.0.0/16")
        assert ent.out_ifname == "a"

    def test_none_when_no_match(self):
        assert Fib().lookup_prefix(IPv4Address.parse("1.2.3.4")) is None

    def test_default_route_prefix(self):
        fib = Fib()
        fib.install("0.0.0.0/0", entry("d"))
        pfx, _ = fib.lookup_prefix(IPv4Address.parse("9.9.9.9"))
        assert pfx == Prefix.parse("0.0.0.0/0")


class TestAccounting:
    def test_routes_iteration(self):
        fib = Fib()
        fib.install("10.0.0.0/8", entry("a"))
        fib.install("11.0.0.0/8", entry("b"))
        routes = dict(fib.routes())
        assert len(routes) == 2
        assert Prefix.parse("10.0.0.0/8") in fib

    def test_get(self):
        fib = Fib()
        fib.install("10.0.0.0/8", entry("a"))
        assert fib.get("10.0.0.0/8").out_ifname == "a"
        assert fib.get("12.0.0.0/8") is None

    def test_lookup_counter(self):
        fib = Fib()
        fib.install("10.0.0.0/8", entry("a"))
        fib.lookup(IPv4Address.parse("10.0.0.1"))
        fib.lookup(IPv4Address.parse("10.0.0.2"))
        assert fib.lookups == 2


# Brute-force oracle: linear scan over installed prefixes.
def _oracle(routes, value):
    best = None
    best_len = -1
    for pfx, ent in routes.items():
        if pfx.contains(IPv4Address(value)) and pfx.length > best_len:
            best, best_len = ent, pfx.length
    return best


@st.composite
def route_tables(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    routes = {}
    for i in range(n):
        value = draw(st.integers(min_value=0, max_value=0xFFFFFFFF))
        length = draw(st.integers(min_value=0, max_value=32))
        routes[Prefix.of(IPv4Address(value), length)] = entry(f"if{i}")
    return routes


class TestAgainstOracle:
    @settings(max_examples=60, deadline=None)
    @given(route_tables(), st.lists(st.integers(min_value=0, max_value=0xFFFFFFFF),
                                    min_size=1, max_size=30))
    def test_trie_matches_linear_scan(self, routes, queries):
        fib = Fib()
        for pfx, ent in routes.items():
            fib.install(pfx, ent)
        for value in queries:
            got = fib.lookup(IPv4Address(value))
            want = _oracle(routes, value)
            if want is None:
                assert got is None
            else:
                # Several prefixes may tie in length only if identical, so
                # the entries must agree exactly.
                assert got is not None
                got_pfx, _ = fib.lookup_prefix(IPv4Address(value))
                assert got_pfx.contains(IPv4Address(value))
                assert got == want

    @settings(max_examples=30, deadline=None)
    @given(route_tables())
    def test_every_installed_prefix_findable(self, routes):
        fib = Fib()
        for pfx, ent in routes.items():
            fib.install(pfx, ent)
        for pfx, ent in routes.items():
            got_pfx, got_ent = fib.lookup_prefix(pfx.first)
            # The match is at least as specific as the installed prefix.
            assert got_pfx.length >= pfx.length
