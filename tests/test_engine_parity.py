"""Seeded-trace parity: the engine fast path must not reorder anything.

The event-ordering contract — time first, schedule order within a
timestamp — is what every seeded experiment depends on.  These tests run
whole experiments (e2 / e5 / e11) twice with the flight recorder
attached: once on the current time-bucketed engine, once on the frozen
pre-fast-path engine from ``repro.sim.reference``, and assert the
per-hop event sequences are **bit-identical**.

Packet ``uid`` values come from a process-global counter, so two runs of
the same experiment see different absolute uids with identical structure.
Records are therefore compared after first-appearance uid normalization
(uid → order of first appearance in the trace), which preserves every
packet identity relationship while erasing the global offset.

Also here: packet-pool parity (pooling on vs off must not change a single
hop) and the tombstone-leak regression test for the lazy-deletion
scheduler.
"""

from __future__ import annotations

from typing import Callable

import pytest

from repro.obs import runtime
from repro.sim.engine import Simulator
from repro.sim.reference import reference_engine
from repro.traffic import generators


def _trace(run_fn: Callable[[], object]) -> list[tuple]:
    """Run ``run_fn`` with a big flight recorder; return normalized hops."""
    runtime.reset()
    runtime.enable(flight_capacity=1 << 20, profile=False)
    try:
        run_fn()
        records = []
        for session in runtime.sessions():
            records.extend(session.flight._ring)
    finally:
        runtime.reset()

    ids: dict[int, int] = {}
    out = []
    for r in records:
        u = ids.setdefault(r.uid, len(ids))
        out.append((
            r.time, r.node, r.event, u, r.flow, r.seq, r.ifname,
            r.labels, r.in_label, r.out_label, r.reason, r.backlog,
        ))
    return out


def _e2() -> None:
    from repro.experiments.e2_qos import run_config
    run_config("mpls-diffserv", measure_s=2.0)


def _e5() -> None:
    from repro.experiments.e5_sla import run_stage
    run_stage("full", measure_s=2.0)


def _e11() -> None:
    from repro.experiments.e11_resilience import run_e11
    run_e11(measure_s=3.0)


@pytest.mark.parametrize(
    "run_fn", [_e2, _e5, _e11], ids=["e2-mpls-diffserv", "e5-full", "e11"]
)
def test_engine_matches_reference_trace(run_fn) -> None:
    """Same experiment, both engines → identical hop-by-hop history."""
    fast = _trace(run_fn)
    with reference_engine():
        slow = _trace(run_fn)
    assert len(fast) > 1000  # the trace actually recorded a real run
    assert fast == slow


def test_packet_pool_invisible_in_trace() -> None:
    """Recycling packets through the freelist must not alter any hop."""
    pooled = _trace(_e2)
    generators.POOLING = False
    try:
        fresh = _trace(_e2)
    finally:
        generators.POOLING = True
    assert len(pooled) > 1000
    assert pooled == fresh


# ----------------------------------------------------------------------
# Tombstone accounting: cancelled events are lazy-deleted, so a workload
# that cancels heavily (coalesced shaper retries, rearmed timers) must
# not let the heap grow without bound.


def test_cancel_churn_does_not_leak() -> None:
    sim = Simulator()
    live: list = []

    def tick() -> None:
        # Re-arm a far-future timer every tick and cancel the previous
        # one — the access pattern of a shaper pushing its wake-up out.
        if live:
            live.pop().cancel()
        live.append(sim.schedule(100.0, lambda: None))

    for i in range(5000):
        sim.schedule(i * 1e-3, tick)
    sim.run(until=6.0)

    # 5000 cancels happened; compaction must have kept the store small.
    assert sim.pending == len(live) + 0  # only the surviving timer(s)
    assert sim._dead * 2 < max(sim._size, 128)
    assert sim._size < 200  # not 5000 tombstones


def test_pending_excludes_cancelled() -> None:
    sim = Simulator()
    events = [sim.schedule(1.0 + i, lambda: None) for i in range(10)]
    assert sim.pending == 10
    for ev in events[:4]:
        ev.cancel()
    assert sim.pending == 6
    events[0].cancel()  # idempotent
    assert sim.pending == 6
