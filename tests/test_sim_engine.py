"""Unit tests for the discrete-event kernel."""

import math

import pytest

from repro.sim.engine import SimulationError, Simulator, Timer, bind, drain


class TestScheduling:
    def test_initial_clock(self):
        assert Simulator().now == 0.0
        assert Simulator(start_time=5.0).now == 5.0

    def test_runs_single_event_at_time(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1.5]
        assert sim.now == 1.5

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_fire_in_schedule_order(self):
        sim = Simulator()
        order = []
        for tag in "abcdef":
            sim.schedule(1.0, lambda t=tag: order.append(t))
        sim.run()
        assert order == list("abcdef")

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-0.1, lambda: None)

    def test_non_finite_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(math.inf, lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule(math.nan, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: sim.schedule_at(0.5, lambda: None))
        with pytest.raises(SimulationError):
            sim.run()

    def test_events_scheduled_during_run_fire(self):
        sim = Simulator()
        fired = []
        def chain(n):
            fired.append(n)
            if n < 5:
                sim.schedule(1.0, bind(chain, n + 1))
        sim.schedule(0.0, bind(chain, 0))
        sim.run()
        assert fired == [0, 1, 2, 3, 4, 5]
        assert sim.now == 5.0

    def test_call_soon_runs_after_pending_same_time(self):
        sim = Simulator()
        order = []
        sim.schedule(0.0, lambda: order.append("first"))
        sim.call_soon(lambda: order.append("second"))
        sim.run()
        assert order == ["first", "second"]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(1.0, lambda: fired.append(1))
        ev.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        ev.cancel()
        ev.cancel()
        assert ev.cancelled

    def test_cancelled_not_counted_processed(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None).cancel()
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.events_processed == 1


class TestRunControl:
    def test_run_until_stops_clock_at_until(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run(until=5.0)
        assert sim.now == 5.0
        assert sim.pending == 1

    def test_event_exactly_at_until_fires(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(1))
        sim.run(until=5.0)
        assert fired == [1]

    def test_run_resumes_after_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, lambda: fired.append(1))
        sim.run(until=5.0)
        sim.run()
        assert fired == [1]
        assert sim.now == 10.0

    def test_max_events_guard(self):
        sim = Simulator()
        def forever():
            sim.schedule(0.0, forever)
        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=100)

    def test_stop_halts_loop(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop())[0])
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_step_executes_one_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        assert sim.step() is True
        assert fired == [1]

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None).cancel()
        sim.schedule(2.0, lambda: None)
        assert sim.peek() == 2.0

    def test_peek_empty_is_inf(self):
        assert Simulator().peek() == math.inf

    def test_reentrant_run_rejected(self):
        sim = Simulator()
        def reenter():
            sim.run()
        sim.schedule(0.0, reenter)
        with pytest.raises(SimulationError, match="re-entrant"):
            sim.run()


class TestTimer:
    def test_timer_fires(self):
        sim = Simulator()
        fired = []
        t = Timer(sim, lambda: fired.append(sim.now))
        t.start(2.0)
        sim.run()
        assert fired == [2.0]

    def test_restart_supersedes(self):
        sim = Simulator()
        fired = []
        t = Timer(sim, lambda: fired.append(sim.now))
        t.start(2.0)
        t.start(5.0)
        sim.run()
        assert fired == [5.0]

    def test_cancel_prevents_fire(self):
        sim = Simulator()
        fired = []
        t = Timer(sim, lambda: fired.append(1))
        t.start(1.0)
        t.cancel()
        sim.run()
        assert fired == []

    def test_armed_property(self):
        sim = Simulator()
        t = Timer(sim, lambda: None)
        assert not t.armed
        t.start(1.0)
        assert t.armed
        sim.run()
        assert not t.armed


class TestHelpers:
    def test_drain_yields_chunks(self):
        sim = Simulator()
        ticks = list(drain(sim, horizon=3.0, chunk=1.0))
        assert ticks == [1.0, 2.0, 3.0]

    def test_bind_captures_args(self):
        calls = []
        f = bind(lambda a, b=0: calls.append((a, b)), 1, b=2)
        f()
        assert calls == [(1, 2)]
