"""Hybrid ≡ pure-packet parity: the fluid plane must not change results.

Same spirit as the vector ≡ scalar property suites: the hybrid traffic
plane is a performance optimization, so seeded experiments must agree
with pure-packet runs within documented tolerances (ARCHITECTURE §12).

Where the filler expands before every congested hop (e2, e5), the
expander's virtual creation clock reproduces the CBR schedule exactly
and the agreement is bit-for-bit today on class-scheduled configs — the
tolerances below are the *contract*, kept loose enough to survive benign
scheduling changes:

* loss ratio:       ±0.02 absolute under class scheduling; ±0.08 under a
  single shared FIFO, where the filler's sub-millisecond phase (in pure
  mode it queues behind voice/data on the access link; in hybrid mode
  its prefix delay is analytic) decides the drop lottery among the
  small flows' ~10² packets.
* p99 delay:        ±10% relative (when finite)
* RFC 3550 jitter:  ±0.5 ms absolute
* e12a (closed-loop AIMD against *analytic* background load): goodput
  ±15% relative, AQM ordering (RED keeps p50 below DropTail) preserved.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments.e2_qos import run_config
from repro.experiments.e5_sla import run_stage
from repro.experiments.e12_elastic import run_e12a_aqm
from repro.experiments.hybrid import run_scale

LOSS_TOL = 0.02
FIFO_LOSS_TOL = 0.08
P99_REL_TOL = 0.10
JITTER_TOL_S = 0.5e-3


def assert_stats_close(pure, hyb, flow: str, loss_tol: float = LOSS_TOL) -> None:
    assert hyb.sent == pytest.approx(pure.sent, rel=0.01), flow
    assert abs(hyb.loss_ratio - pure.loss_ratio) <= loss_tol, flow
    if math.isfinite(pure.p99_delay_s):
        assert hyb.p99_delay_s == pytest.approx(
            pure.p99_delay_s, rel=P99_REL_TOL
        ), flow
    if math.isfinite(pure.jitter_rfc3550_s):
        assert abs(hyb.jitter_rfc3550_s - pure.jitter_rfc3550_s) <= JITTER_TOL_S, flow


@pytest.mark.parametrize("config", ["ip-fifo", "mpls-diffserv"])
def test_e2_parity(config):
    loss_tol = FIFO_LOSS_TOL if config == "ip-fifo" else LOSS_TOL
    pure = run_config(config, seed=21, measure_s=4.0)
    hyb = run_config(config, seed=21, measure_s=4.0, hybrid=True)
    for flow in ("voice", "data", "bulk"):
        assert_stats_close(pure[flow], hyb[flow], flow, loss_tol=loss_tol)
    # The bulk filler actually rode the fluid plane and expanded at the
    # first congested hop (not the source) — otherwise this test proves
    # nothing about the hybrid path.
    aggs = hyb["fluid"]["aggregates"]
    assert len(aggs) == 1
    assert aggs[0]["expansion_hop"] == 1
    assert aggs[0]["expanded_packets"] > 0


def test_e5_parity_full_stage():
    pure = run_stage("full", seed=41, measure_s=2.0)
    hyb = run_stage("full", seed=41, measure_s=2.0, hybrid=True)
    for flow in ("voice", "data", "bulk", "background"):
        assert_stats_close(pure[flow], hyb[flow], flow)
    # SLA verdicts — the headline table — must agree exactly.
    assert hyb["voice_sla"].conformant == pure["voice_sla"].conformant
    assert hyb["data_sla"].conformant == pure["data_sla"].conformant
    # Background expanded at the CE (its 4 Mb/s exceeds the 3 Mb/s
    # access uplink's headroom), so the shared core saw real packets.
    agg = hyb["fluid"]["aggregates"][0]
    assert agg["expansion_hop"] is not None
    assert agg["expanded_packets"] > 0


def test_e12a_parity_fluid_background():
    """Closed-loop flows against analytic vs packet background load."""
    pure_rows, _ = run_e12a_aqm(seed=121, duration_s=6.0, background_bps=1e6)
    hyb_rows, hyb_raw = run_e12a_aqm(
        seed=121, duration_s=6.0, background_bps=1e6, hybrid=True
    )
    pure = {r["aqm"]: r for r in pure_rows}
    hyb = {r["aqm"]: r for r in hyb_rows}
    for kind in ("droptail", "red"):
        assert hyb[kind]["goodput_kbps"] == pytest.approx(
            pure[kind]["goodput_kbps"], rel=0.15
        ), kind
    # The qualitative AQM result survives the abstraction: RED keeps the
    # standing queue (probe p50) below DropTail's in both modes.
    assert pure["red"]["p50_delay_ms"] < pure["droptail"]["p50_delay_ms"]
    assert hyb["red"]["p50_delay_ms"] < hyb["droptail"]["p50_delay_ms"]
    # And the background really was fluid, not expanded: 1 Mb/s sits
    # under the bottleneck's headroom.
    for kind in ("droptail", "red"):
        bg = hyb_raw[kind]["background"]
        assert bg.expanded_sent == 0
        assert bg.fluid_delivered_packets > 0


def test_scale_parity_small():
    """Pure vs hybrid at a CI-sized flow count: same offered load, same
    delivery, same probe delay (the only packet flow in hybrid mode)."""
    pure = run_scale(mode="pure", n_flows=2_000, measure_s=0.4)
    hyb = run_scale(mode="hybrid", n_flows=2_000, measure_s=0.4)
    assert hyb["offered_pkts"] == pytest.approx(pure["offered_pkts"], rel=0.01)
    assert hyb["delivered_pkts"] == pytest.approx(pure["delivered_pkts"], rel=0.01)
    assert hyb["probe"].p99_delay_s == pytest.approx(
        pure["probe"].p99_delay_s, rel=0.05
    )
    # No losses in either mode: the line is fat enough for the load.
    assert pure["delivered_pkts"] == pure["offered_pkts"]
    assert hyb["delivered_pkts"] == hyb["offered_pkts"]
