"""Tests for the overlay-VC and IPsec baselines."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.address import IPv4Address
from repro.net.node import ProcessingModel
from repro.net.packet import IPHeader, Packet
from repro.routing.spf import converge
from repro.topology import Network, attach_host, build_line
from repro.vpn.ipsec import (
    IKEV1_HANDSHAKE_MESSAGES,
    IpsecGateway,
    esp_overhead_bytes,
)
from repro.vpn.overlay import (
    OverlayVpnBuilder,
    VcRouter,
    expected_full_mesh_circuits,
)


def vc_line(net, n):
    routers = [net.add_node(VcRouter(net.sim, f"v{i}")) for i in range(n)]
    for i in range(n - 1):
        net.connect(routers[i], routers[i + 1], 10e6, 0.001)
    return routers


class TestOverlayFormula:
    @pytest.mark.parametrize("n,expected", [(2, 1), (10, 45), (200, 19900)])
    def test_paper_numbers(self, n, expected):
        """§2.1: '45 virtual circuits' at 10 sites, '~20,000' at 200."""
        assert expected_full_mesh_circuits(n) == expected


class TestOverlayBuilder:
    def test_full_mesh_circuit_count(self):
        net = Network()
        routers = vc_line(net, 4)
        converge(net)
        builder = OverlayVpnBuilder(net)
        result = builder.build_full_mesh([r.name for r in routers])
        assert result.circuit_count == 6
        assert len(result.circuits) == 12  # unidirectional pairs

    def test_transit_state_installed_everywhere(self):
        net = Network()
        routers = vc_line(net, 4)
        converge(net)
        builder = OverlayVpnBuilder(net)
        builder.build_full_mesh(["v0", "v3"])
        # The v0->v3 circuit needs swap state at v0, v1, v2 + term at v3.
        assert len(routers[1].vc_table) >= 1
        assert len(routers[2].vc_table) >= 1
        assert len(routers[3].vc_terminations) >= 1

    def test_signaling_messages_scale_with_hops(self):
        net = Network()
        vc_line(net, 4)
        converge(net)
        builder = OverlayVpnBuilder(net)
        builder.provision_circuit("v0", "v3")  # 3 hops
        assert net.counters["overlay.signaling_msgs"] == 6

    def test_hub_spoke_linear_circuits(self):
        net = Network()
        hub = net.add_node(VcRouter(net.sim, "hub"))
        spokes = [net.add_node(VcRouter(net.sim, f"s{i}")) for i in range(5)]
        for s in spokes:
            net.connect(hub, s, 10e6, 0.001)
        converge(net)
        builder = OverlayVpnBuilder(net)
        result = builder.build_hub_spoke("hub", [s.name for s in spokes])
        assert result.circuit_count == 5

    def test_no_path_raises(self):
        net = Network()
        net.add_node(VcRouter(net.sim, "a"))
        net.add_node(VcRouter(net.sim, "b"))
        converge(net)
        with pytest.raises(ValueError):
            OverlayVpnBuilder(net).provision_circuit("a", "b")

    def test_data_plane_delivery_over_vc(self):
        net = Network()
        routers = vc_line(net, 4)
        converge(net)
        builder = OverlayVpnBuilder(net)
        vc = builder.provision_circuit("v0", "v3")
        got = []
        routers[3].add_local_sink(got.append)
        p = Packet(ip=IPHeader(IPv4Address.parse("10.0.0.1"),
                               IPv4Address.parse("10.0.0.2")),
                   payload_bytes=100, vc_id=vc.vc_id)
        net.sim.schedule(0.0, lambda: routers[0].handle(p, "in"))
        net.run(until=1.0)
        assert len(got) == 1
        assert got[0].vc_id is None  # stripped at termination

    def test_unknown_vc_dropped(self):
        net = Network()
        routers = vc_line(net, 2)
        converge(net)
        p = Packet(ip=IPHeader(IPv4Address(1), IPv4Address(2)),
                   payload_bytes=10, vc_id=777)
        routers[0].handle(p, "in")
        assert routers[0].stats.dropped_other == 1

    def test_state_census(self):
        net = Network()
        routers = vc_line(net, 3)
        converge(net)
        builder = OverlayVpnBuilder(net)
        result = builder.build_full_mesh(["v0", "v1", "v2"])
        assert result.total_state_entries == sum(
            r.vc_state_entries for r in routers
        )
        assert result.max_state_on_one_node >= result.total_state_entries // 3


class TestEspOverhead:
    def test_known_value_3des(self):
        # inner 120 B: pad = (8 - (122 % 8)) % 8 = 6 -> 8+8+6+2+12 = 36.
        assert esp_overhead_bytes(120) == 36

    def test_known_value_aes(self):
        # inner 120 B, block 16, iv 16: pad = (16 - 122 % 16) % 16 = 6.
        assert esp_overhead_bytes(120, block=16, iv=16) == 8 + 16 + 6 + 2 + 12

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            esp_overhead_bytes(-1)

    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=0, max_value=9000),
           st.sampled_from([8, 16]), st.sampled_from([8, 16]))
    def test_alignment_property(self, inner, block, iv):
        """inner + pad + 2 is always a whole number of cipher blocks."""
        ovh = esp_overhead_bytes(inner, block=block, iv=iv)
        pad = ovh - 8 - iv - 2 - 12
        assert 0 <= pad < block
        assert (inner + pad + 2) % block == 0


def ipsec_pair(copy_dscp=False, crypto_bps=0.0, rtt=0.0):
    """gw1 - r - gw2 with hosts on each side and SAs established."""
    net = Network()
    crypto = ProcessingModel(crypto_bps=crypto_bps)
    r = build_line(net, 1, prefix="core")[0]
    gw1 = net.add_node(IpsecGateway(net.sim, "gw1", processing=crypto))
    gw2 = net.add_node(IpsecGateway(net.sim, "gw2", processing=crypto))
    net.connect(gw1, r, 10e6, 0.001)
    net.connect(gw2, r, 10e6, 0.001)
    h1 = attach_host(net, gw1, "10.1.0.1", advertise=False)
    h2 = attach_host(net, gw2, "10.2.0.1", advertise=False)
    converge(net)
    gw1.add_policy("10.2.0.0/24", gw2.loopback)
    gw2.add_policy("10.1.0.0/24", gw1.loopback)
    sa1 = gw1.establish_sa(gw2.loopback, rtt_s=rtt, copy_dscp=copy_dscp)
    sa2 = gw2.establish_sa(gw1.loopback, rtt_s=rtt, copy_dscp=copy_dscp)
    return net, gw1, gw2, h1, h2, sa1, sa2


class TestIpsecGateway:
    def _send(self, net, h1, dst="10.2.0.1", dscp=0, at=0.0):
        p = Packet(ip=IPHeader(IPv4Address.parse("10.1.0.1"),
                               IPv4Address.parse(dst), dscp=dscp),
                   payload_bytes=100, flow="f", created=at)
        net.sim.schedule_at(at, lambda: h1.send(p))
        return p

    def test_end_to_end_through_tunnel(self):
        net, gw1, gw2, h1, h2, sa1, sa2 = ipsec_pair()
        got = []
        h2.add_local_sink(got.append)
        self._send(net, h1)
        net.run(until=1.0)
        assert len(got) == 1
        assert got[0].ip.dst == IPv4Address.parse("10.2.0.1")
        assert sa1.encapsulated == 1 and sa2.decapsulated == 1

    def test_core_sees_only_outer_header(self):
        net, gw1, gw2, h1, h2, sa1, sa2 = ipsec_pair(copy_dscp=False)
        core = net.node("core0")
        seen = []
        orig = core.handle
        def spy(pk, ifn):
            seen.append((pk.ip.src, pk.ip.dst, pk.ip.dscp, pk.encrypted))
            orig(pk, ifn)
        core.handle = spy
        self._send(net, h1, dscp=46)
        net.run(until=1.0)
        src, dst, dscp, enc = seen[0]
        assert src == gw1.loopback and dst == gw2.loopback
        assert dscp == 0 and enc  # claim C3: EF marking invisible

    def test_copy_dscp_exposes_class(self):
        net, gw1, gw2, h1, h2, sa1, sa2 = ipsec_pair(copy_dscp=True)
        core = net.node("core0")
        seen = []
        orig = core.handle
        def spy(pk, ifn):
            seen.append(pk.ip.dscp)
            orig(pk, ifn)
        core.handle = spy
        self._send(net, h1, dscp=46)
        net.run(until=1.0)
        assert seen[0] == 46

    def test_inner_dscp_restored_at_exit(self):
        net, gw1, gw2, h1, h2, sa1, sa2 = ipsec_pair(copy_dscp=False)
        got = []
        h2.add_local_sink(got.append)
        self._send(net, h1, dscp=46)
        net.run(until=1.0)
        assert got[0].ip.dscp == 46

    def test_sa_pending_drops(self):
        net, gw1, gw2, h1, h2, sa1, sa2 = ipsec_pair(rtt=1.0)
        # 9 messages at 0.5 s one-way -> usable at 4.5 s.
        got = []
        h2.add_local_sink(got.append)
        self._send(net, h1, at=0.0)
        net.run(until=2.0)
        assert got == []
        assert sa1.dropped_pending == 1
        self._send(net, h1, at=5.0)
        net.run(until=7.0)
        assert len(got) == 1

    def test_no_policy_routes_plain(self):
        net, gw1, gw2, h1, h2, sa1, sa2 = ipsec_pair()
        # Traffic to the gateway itself is not tunneled.
        got = []
        gw2.add_local_sink(got.append)
        self._send(net, h1, dst=str(gw2.loopback))
        net.run(until=1.0)
        assert len(got) == 1
        assert sa1.encapsulated == 0

    def test_crypto_cost_delays(self):
        fast = ipsec_pair(crypto_bps=0.0)
        slow = ipsec_pair(crypto_bps=1e6)
        times = []
        for net, gw1, gw2, h1, h2, sa1, sa2 in (fast, slow):
            got = []
            h2.add_local_sink(lambda p, g=got: g.append(net.sim.now))
            self._send(net, h1)
            net.run(until=5.0)
            times.append(got[0])
        assert times[1] > times[0]

    def test_ike_message_count(self):
        net, gw1, gw2, h1, h2, sa1, sa2 = ipsec_pair()
        assert gw1.total_ike_messages() == IKEV1_HANDSHAKE_MESSAGES

    def test_decap_without_sa_drops(self):
        net, gw1, gw2, h1, h2, sa1, sa2 = ipsec_pair()
        gw2.sas.clear()
        self._send(net, h1)
        net.run(until=1.0)
        assert gw2.stats.dropped_other == 1
