"""Tests for equal-cost multipath routing."""


from repro.net.address import IPv4Address
from repro.net.packet import IPHeader, Packet
from repro.routing import converge
from repro.routing.fib import RouteEntry
from repro.routing.router import flow_hash
from repro.topology import Network, attach_host
from repro.traffic import CbrSource, FlowSink


def diamond():
    """s - (m1|m2) - t with two equal-cost branches."""
    net = Network(seed=6)
    s = net.add_router("s")
    m1 = net.add_router("m1")
    m2 = net.add_router("m2")
    t = net.add_router("t")
    net.connect(s, m1, 10e6, 1e-3)
    net.connect(m1, t, 10e6, 1e-3)
    net.connect(s, m2, 10e6, 1e-3)
    net.connect(m2, t, 10e6, 1e-3)
    return net, s, m1, m2, t


class TestFlowHash:
    def _pkt(self, sport=0, dport=0):
        return Packet(ip=IPHeader(IPv4Address.parse("10.0.0.1"),
                                  IPv4Address.parse("10.0.0.2"),
                                  src_port=sport, dst_port=dport),
                      payload_bytes=10)

    def test_stable_per_flow(self):
        assert flow_hash(self._pkt(5, 6)) == flow_hash(self._pkt(5, 6))

    def test_differs_across_flows(self):
        hashes = {flow_hash(self._pkt(p, 80)) for p in range(16)}
        assert len(hashes) > 8  # near-perfect distinctness over 16 ports


class TestEcmpRoutes:
    def test_alternates_installed(self):
        net, s, m1, m2, t = diamond()
        converge(net, ecmp=True)
        entry = s.fib.lookup(t.loopback)
        assert entry is not None
        assert len(entry.all_paths) == 2
        assert entry.out_ifname == "to-m1"          # lowest name = primary
        assert entry.alternates[0][0] == "to-m2"

    def test_single_path_has_no_alternates(self):
        net, s, m1, m2, t = diamond()
        converge(net, ecmp=True)
        entry = s.fib.lookup(m1.loopback)
        assert entry.alternates == ()

    def test_non_ecmp_mode_unchanged(self):
        net, s, m1, m2, t = diamond()
        converge(net, ecmp=False)
        entry = s.fib.lookup(t.loopback)
        assert entry.alternates == ()

    def test_all_paths_property(self):
        e = RouteEntry("a", None, alternates=(("b", None),))
        assert e.all_paths == (("a", None), ("b", None))

    def test_float_metric_sums_tie_under_shared_epsilon(self):
        """0.1 + 0.2 != 0.3 in binary floats; the one shared tie tolerance
        (spf_core.TIE_EPS) must make the two branches equal cost anyway —
        in the Dijkstra tie-break AND the ECMP multipath condition."""
        net = Network(seed=6)
        s = net.add_router("s")
        m1 = net.add_router("m1")
        m2 = net.add_router("m2")
        t = net.add_router("t")
        net.connect(s, m1, 10e6, 1e-3, metric=0.1)
        net.connect(m1, t, 10e6, 1e-3, metric=0.2)
        net.connect(s, m2, 10e6, 1e-3, metric=0.3)
        net.connect(m2, t, 10e6, 1e-3, metric=1e-13)  # below TIE_EPS: free hop
        converge(net, ecmp=True)
        entry = s.fib.lookup(t.loopback)
        assert entry is not None
        assert len(entry.all_paths) == 2
        assert entry.out_ifname == "to-m1"          # lexicographic primary
        assert entry.alternates[0][0] == "to-m2"


class TestEcmpForwarding:
    def test_flows_spread_and_do_not_reorder(self):
        net, s, m1, m2, t = diamond()
        tx = attach_host(net, s, "10.66.0.1", name="tx")
        rx = attach_host(net, t, "10.66.0.2", name="rx")
        converge(net, ecmp=True)
        sink = FlowSink(net.sim).attach(rx)
        sources = []
        for i in range(8):
            src = CbrSource(net.sim, tx.send, f"f{i}", "10.66.0.1", "10.66.0.2",
                            payload_bytes=200, rate_bps=0.5e6,
                            src_port=1000 + i, dst_port=80)
            src.start(0.0, stop_at=1.0)
            sources.append(src)
        net.run(until=2.0)
        # Both branches carried traffic.
        assert m1.stats.rx_packets > 0
        assert m2.stats.rx_packets > 0
        # Every flow fully delivered in order (single path per flow).
        for i, src in enumerate(sources):
            rec = sink.record(f"f{i}")
            assert rec.count == src.sent
            assert rec.seqs == sorted(rec.seqs)

    def test_aggregate_capacity_doubles(self):
        """With ECMP, many flows exceed one branch's capacity without loss."""
        net, s, m1, m2, t = diamond()
        tx = attach_host(net, s, "10.66.0.1", name="tx", rate_bps=100e6)
        rx = attach_host(net, t, "10.66.0.2", name="rx", rate_bps=100e6)
        converge(net, ecmp=True)
        sink = FlowSink(net.sim).attach(rx)
        sources = []
        # 16 flows x 1 Mb/s = 16 Mb/s offered over 2 x 10 Mb/s branches.
        for i in range(16):
            src = CbrSource(net.sim, tx.send, f"g{i}", "10.66.0.1", "10.66.0.2",
                            payload_bytes=500, rate_bps=1e6,
                            src_port=2000 + i, dst_port=80)
            src.start(0.0, stop_at=2.0)
            sources.append(src)
        net.run(until=3.0)
        sent = sum(s_.sent for s_ in sources)
        recv = sum(sink.received(f"g{i}") for i in range(16))
        # Hash imbalance can overload one branch slightly; demand 90 %+.
        assert recv / sent > 0.9
