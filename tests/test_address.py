"""Unit + property tests for IPv4 addresses and prefixes."""

import pytest
from hypothesis import given, strategies as st

from repro.net.address import MASKS, AddressError, IPv4Address, Prefix

addresses = st.integers(min_value=0, max_value=0xFFFFFFFF)
lengths = st.integers(min_value=0, max_value=32)


class TestIPv4Address:
    def test_parse_dotted_quad(self):
        assert IPv4Address.parse("10.0.0.1").value == 0x0A000001
        assert IPv4Address.parse("255.255.255.255").value == 0xFFFFFFFF
        assert IPv4Address.parse("0.0.0.0").value == 0

    def test_parse_int_and_passthrough(self):
        a = IPv4Address.parse(42)
        assert a.value == 42
        assert IPv4Address.parse(a) is a

    @pytest.mark.parametrize("bad", ["256.0.0.1", "1.2.3", "a.b.c.d", "1.2.3.4.5", ""])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(AddressError):
            IPv4Address.parse(bad)

    def test_out_of_range_rejected(self):
        with pytest.raises(AddressError):
            IPv4Address(1 << 32)
        with pytest.raises(AddressError):
            IPv4Address(-1)

    def test_str_roundtrip_examples(self):
        for text in ("192.168.1.254", "10.255.0.3", "172.16.31.1"):
            assert str(IPv4Address.parse(text)) == text

    @given(addresses)
    def test_str_parse_roundtrip(self, value):
        a = IPv4Address(value)
        assert IPv4Address.parse(str(a)) == a

    def test_ordering_and_add(self):
        assert IPv4Address(1) < IPv4Address(2)
        assert IPv4Address(1) + 5 == IPv4Address(6)
        assert int(IPv4Address(9)) == 9

    def test_in_prefix(self):
        p = Prefix.parse("10.1.0.0/16")
        assert IPv4Address.parse("10.1.2.3").in_prefix(p)
        assert not IPv4Address.parse("10.2.0.0").in_prefix(p)


class TestPrefix:
    def test_parse_normalises_host_bits(self):
        assert str(Prefix.parse("10.1.2.3/8")) == "10.0.0.0/8"

    def test_parse_rejects_missing_length(self):
        with pytest.raises(AddressError):
            Prefix.parse("10.0.0.0")

    @pytest.mark.parametrize("bad", ["10.0.0.0/33", "10.0.0.0/-1", "10.0.0.0/x"])
    def test_parse_rejects_bad_length(self, bad):
        with pytest.raises(AddressError):
            Prefix.parse(bad)

    def test_of_builds_containing_prefix(self):
        p = Prefix.of("10.1.2.3", 24)
        assert str(p) == "10.1.2.0/24"
        assert p.contains("10.1.2.3")

    def test_mask_and_sizes(self):
        p = Prefix.parse("192.168.4.0/30")
        assert p.mask == MASKS[30]
        assert p.num_addresses == 4
        assert str(p.first) == "192.168.4.0"
        assert str(p.last) == "192.168.4.3"

    def test_zero_length_contains_everything(self):
        default = Prefix.parse("0.0.0.0/0")
        assert default.contains("255.1.2.3")
        assert default.contains("0.0.0.0")

    def test_host_route(self):
        p = Prefix.parse("10.0.0.5/32")
        assert p.contains("10.0.0.5")
        assert not p.contains("10.0.0.6")
        assert p.num_addresses == 1

    @given(addresses, lengths)
    def test_contains_its_own_network_and_broadcast(self, value, length):
        p = Prefix.of(IPv4Address(value), length)
        assert p.contains(p.first)
        assert p.contains(p.last)

    @given(addresses, lengths)
    def test_str_parse_roundtrip(self, value, length):
        p = Prefix.of(IPv4Address(value), length)
        assert Prefix.parse(str(p)) == p

    @given(addresses, st.integers(min_value=1, max_value=32))
    def test_neighbouring_prefix_disjoint(self, value, length):
        p = Prefix.of(IPv4Address(value), length)
        if p.last.value < 0xFFFFFFFF:
            nxt = IPv4Address(p.last.value + 1)
            assert not p.contains(nxt)

    def test_contains_prefix(self):
        outer = Prefix.parse("10.0.0.0/8")
        inner = Prefix.parse("10.5.0.0/16")
        assert outer.contains_prefix(inner)
        assert not inner.contains_prefix(outer)
        assert outer.contains_prefix(outer)

    def test_overlaps(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix.parse("10.5.0.0/16")
        c = Prefix.parse("11.0.0.0/8")
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    @given(addresses, lengths, addresses, lengths)
    def test_overlap_symmetric(self, v1, l1, v2, l2):
        p1 = Prefix.of(IPv4Address(v1), l1)
        p2 = Prefix.of(IPv4Address(v2), l2)
        assert p1.overlaps(p2) == p2.overlaps(p1)

    def test_subnets_partition(self):
        p = Prefix.parse("10.0.0.0/22")
        subs = list(p.subnets(24))
        assert len(subs) == 4
        assert subs[0] == Prefix.parse("10.0.0.0/24")
        assert subs[-1] == Prefix.parse("10.0.3.0/24")
        # Disjoint and covering.
        total = sum(s.num_addresses for s in subs)
        assert total == p.num_addresses
        for i, s in enumerate(subs):
            for t in subs[i + 1:]:
                assert not s.overlaps(t)

    def test_subnets_rejects_shorter(self):
        with pytest.raises(AddressError):
            list(Prefix.parse("10.0.0.0/24").subnets(16))
        with pytest.raises(AddressError):
            list(Prefix.parse("10.0.0.0/24").subnets(33))

    def test_host_indexing(self):
        p = Prefix.parse("10.1.1.0/24")
        assert str(p.host(0)) == "10.1.1.0"
        assert str(p.host(255)) == "10.1.1.255"
        with pytest.raises(AddressError):
            p.host(256)
        with pytest.raises(AddressError):
            p.host(-1)

    def test_prefixes_hashable_for_dict_keys(self):
        d = {Prefix.parse("10.0.0.0/8"): 1}
        assert d[Prefix.parse("10.1.0.0/8")] == 1  # normalised to same key
