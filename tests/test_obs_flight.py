"""Flight recorder tests: hop-by-hop reconstruction across an MPLS VPN."""

import pytest

from repro.net.packet import IPHeader, Packet
from repro.net.address import IPv4Address
from repro.obs.flightrec import FlightRecorder, HopRecord
from repro.obs.telemetry import Telemetry
from repro.routing import converge
from repro.topology import Network, attach_host, build_line
from repro.traffic import CbrSource

from tests.test_vpn import two_pe_network


class TestRingBuffer:
    def test_capacity_bounds_memory(self):
        fr = FlightRecorder(capacity=4)
        pkt = Packet(ip=IPHeader(IPv4Address(1), IPv4Address(2)),
                     payload_bytes=10, flow="f", seq=0)
        for i in range(10):
            fr.deliver(float(i), "n", pkt)
        assert len(fr) == 4
        summary = fr.summary()
        assert summary["recorded_total"] == 10
        assert summary["aged_out"] == 6
        # Oldest records fell off the back.
        assert [r.time for r in fr.records()] == [6.0, 7.0, 8.0, 9.0]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_to_dict_omits_unset_fields(self):
        rec = HopRecord(1.0, "n", "deliver", 7, "f", 3)
        d = rec.to_dict()
        assert "ifname" not in d and "reason" not in d and "backlog" not in d
        assert d["labels"] == []


class TestVpnPathReconstruction:
    def _run_vpn_flow(self):
        net, prov, vpn, s1, s2 = two_pe_network()
        tel = Telemetry(net, profile=False)
        prov.converge_bgp()
        h1, h2 = s1.hosts[0], s2.hosts[0]
        pkt = Packet(ip=IPHeader(h1.loopback, h2.loopback, dscp=46),
                     payload_bytes=100, flow="f1", seq=1)
        net.sim.schedule(0.0, lambda: h1.send(pkt))
        net.run(until=1.0)
        return net, tel, s1, s2

    def test_full_path_with_label_ops(self):
        net, tel, s1, s2 = self._run_vpn_flow()
        path = tel.flight.path_of("f1")
        assert path, "flight recorder captured nothing"
        # Chronologically ordered.
        times = [r.time for r in path]
        assert times == sorted(times)
        # The packet visited every backbone node.
        nodes_seen = {r.node for r in path}
        assert {"pe1", "p", "pe2"} <= nodes_seen
        # Ingress PE imposed the two-level stack: VPN label first (bottom),
        # then the LDP tunnel label.
        pushes = [r for r in path if r.event == "push"]
        assert len(pushes) >= 2
        vpn_label = s2.pe.vrfs["corp"].vpn_label
        assert pushes[0].node == "pe1" and pushes[0].out_label == vpn_label
        # The egress direction popped the VPN label back off.
        pops = [r for r in path if r.event == "pop"]
        assert any(r.node == "pe2" and r.in_label == vpn_label for r in pops)
        # Queueing hops carry interface and backlog.
        enq = [r for r in path if r.event == "enqueue"]
        assert enq and all(r.ifname and r.backlog is not None for r in enq)
        # Journey ends with local delivery at the remote host.
        assert path[-1].event == "deliver"
        assert path[-1].node == s2.hosts[0].name

    def test_labels_recorded_per_hop(self):
        net, tel, s1, s2 = self._run_vpn_flow()
        # While crossing the core the packet carried the VPN label at the
        # bottom of its stack.
        core_rx = [r for r in tel.flight.path_of("f1")
                   if r.node == "p" and r.event == "rx"]
        vpn_label = s2.pe.vrfs["corp"].vpn_label
        assert core_rx and core_rx[0].labels[0] == vpn_label
        assert len(core_rx[0].labels) == 2

    def test_explain_renders_journey(self):
        net, tel, s1, s2 = self._run_vpn_flow()
        text = tel.flight.explain("f1")
        assert "flow 'f1'" in text
        for node in ("pe1", "p", "pe2"):
            assert node in text
        assert "push" in text and "deliver" in text

    def test_drop_reason_recorded(self):
        net, prov, vpn, s1, s2 = two_pe_network()
        tel = Telemetry(net, profile=False)
        prov.converge_bgp()
        h1 = s1.hosts[0]
        # Destination outside every site prefix: VRF lookup miss at pe1.
        pkt = Packet(ip=IPHeader(h1.loopback, IPv4Address.parse("10.99.0.1")),
                     payload_bytes=50, flow="lost", seq=0)
        net.sim.schedule(0.0, lambda: h1.send(pkt))
        net.run(until=1.0)
        drops = [r for r in tel.flight.path_of("lost") if r.event == "drop"]
        assert len(drops) == 1
        assert drops[0].node == "pe1"
        assert drops[0].reason == "no_vrf_route"
        assert "reason=no_vrf_route" in tel.flight.explain("lost")

    def test_queue_drop_recorded_with_interface(self):
        from repro.qos.queues import DropTailFifo
        net = Network(seed=3)
        net.default_qdisc_factory = lambda n, i: DropTailFifo(capacity_packets=3)
        routers = build_line(net, 2, rate_bps=1e6)
        tx = attach_host(net, routers[0], "10.5.0.1", name="tx", rate_bps=100e6)
        rx = attach_host(net, routers[1], "10.5.0.2", name="rx", rate_bps=100e6)
        converge(net)
        tel = Telemetry(net, profile=False)
        src = CbrSource(net.sim, tx.send, "burst", "10.5.0.1", "10.5.0.2",
                        payload_bytes=1000, rate_bps=20e6)
        src.start(0.0, stop_at=0.5)
        net.run(until=1.0)
        drops = [r for r in tel.flight.records() if r.event == "drop"]
        assert drops, "overloaded bottleneck produced no recorded drops"
        assert all(r.reason == "queue_tail" for r in drops)
        assert all(r.ifname for r in drops)

    def test_flow_accounting_at_vpn_edge(self):
        net, tel, s1, s2 = self._run_vpn_flow()
        rows = tel.flows.table()
        assert rows, "no flow accounting rows at the PEs"
        ingress = [r for r in rows if r["direction"] == "ingress"]
        egress = [r for r in rows if r["direction"] == "egress"]
        assert ingress[0]["pe"] == "pe1" and ingress[0]["vrf"] == "corp"
        assert egress[0]["pe"] == "pe2" and egress[0]["vrf"] == "corp"
        # DSCP 46 -> EF class; one packet each way through the edge.
        assert ingress[0]["class"] == "EF"
        assert tel.flows.totals("corp", "ingress")[0] == 1
        assert tel.flows.totals("corp", "egress")[0] == 1
