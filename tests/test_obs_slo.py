"""Live SLO engine: verdict identity, windowed conformance, telemetry.

The load-bearing contract is that the streaming engine's end-of-run
verdict — computed without retaining a single raw sample — is identical
to the batch oracle's on the seeded experiments, component flag by
component flag.  The windowed state on top (first violation, violation
seconds) is exercised with synthetic streams where the right answer is
known exactly.
"""

import json
import math

import pytest

from repro.metrics.probes import ProbeAgent
from repro.metrics.sla import VOICE_SLA, SlaSpec, evaluate
from repro.obs import runtime
from repro.obs.schema import validate_manifest
from repro.obs.slo import SloEngine, SloStream
from repro.sim.engine import Simulator


@pytest.fixture(autouse=True)
def _clean_runtime():
    runtime.reset()
    yield
    runtime.reset()


# ----------------------------------------------------------------------
# Verdict identity on E5: the acceptance criterion.


@pytest.mark.parametrize("stage", ["full", "none"])
def test_e5_streaming_verdict_identical_to_batch(stage):
    from repro.experiments.e5_sla import run_stage

    result = run_stage(stage, measure_s=2.0, streaming=True)
    for flow, batch_key in (("voice", "voice_sla"), ("data", "data_sla")):
        live = result["slo"][flow]
        batch = result[batch_key]
        assert live.conformant == batch.conformant, (stage, flow)
        # Not just the top-line bit: every component flag agrees.
        assert live.delay_ok == batch.delay_ok
        assert live.jitter_ok == batch.jitter_ok
        assert live.loss_ok == batch.loss_ok
        assert live.throughput_ok == batch.throughput_ok


def test_e5_class_streams_follow_vrf_mapping():
    from repro.experiments.e5_sla import run_stage

    result = run_stage("full", measure_s=2.0, streaming=True)
    engine = result["slo"]["engine"]
    # corp hosts see EF voice + AF data + BE bulk; the other VPN only bg.
    assert set(engine.classes) >= {("corp", "EF"), ("corp", "AF"),
                                   ("corp", "BE"), ("other", "BE")}
    assert engine.classes[("corp", "EF")].count == engine.flows["voice"].count
    assert engine.classes[("other", "BE")].count == engine.flows["bg"].count


# ----------------------------------------------------------------------
# Windowed conformance on synthetic streams.


def synthetic_stream(spec, window_s=0.5):
    return SloStream("syn", spec, window_s=window_s)


def test_window_delay_violation_sets_first_violation_timestamp():
    spec = SlaSpec("tight", max_p99_delay_s=0.010)
    s = synthetic_stream(spec)
    # Window [0, 0.5): all packets in budget.
    for i in range(10):
        s.observe(0.05 * i, 0.005, seq=i, wire_bytes=100)
    # Window [0.5, 1.0): every packet over budget.
    for i in range(10, 20):
        s.observe(0.05 * i, 0.020, seq=i, wire_bytes=100)
    s.observe(1.01, 0.005, seq=20, wire_bytes=100)  # closes both
    s.finalize()
    assert s.first_violation_s == 0.5
    assert s.violation_seconds == pytest.approx(0.5)
    assert s.worst_window["metrics"] == ["delay"]


def test_empty_window_counts_as_outage_when_loss_committed():
    spec = SlaSpec("lossy", max_loss_ratio=0.01)
    s = synthetic_stream(spec)
    for i in range(10):
        s.observe(0.05 * i, 0.001, seq=i, wire_bytes=100)
    # One second of silence (an outage), then traffic resumes.
    for i in range(10, 15):
        s.observe(1.5 + 0.05 * (i - 10), 0.001, seq=i + 50, wire_bytes=100)
    s.finalize()
    # Windows [0.5,1.0) and [1.0,1.5) were empty → two violated windows.
    assert s.violation_seconds == pytest.approx(1.0)
    assert s.first_violation_s == 0.5
    assert "loss" in s.worst_window["metrics"]


def test_trailing_silence_after_last_packet_is_not_an_outage():
    spec = SlaSpec("lossy", max_loss_ratio=0.01)
    s = synthetic_stream(spec)
    for i in range(10):
        s.observe(0.05 * i, 0.001, seq=i, wire_bytes=100)
    s.finalize()  # engine-style finalize: no `now`
    assert s.violation_seconds == 0.0
    assert s.first_violation_s is None


def test_inband_loss_from_sequence_gaps():
    s = synthetic_stream(None)
    for i, seq in enumerate([0, 1, 2, 5, 6, 7, 8, 9]):  # 3..4 lost
        s.observe(0.01 * i, 0.001, seq=seq, wire_bytes=100)
    assert s.inband_loss_ratio() == pytest.approx(2 / 10)


# ----------------------------------------------------------------------
# NaN consistency: empty streams answer like the batch path.


def test_empty_stream_stats_nan_semantics():
    engine = SloEngine(Simulator())
    stats = engine.stats("ghost", sent=7)
    assert math.isnan(stats.p99_delay_s)
    assert math.isnan(stats.mean_delay_s)
    assert math.isnan(stats.jitter_rfc3550_s)
    assert stats.loss_ratio == 1.0
    assert stats.throughput_bps == 0.0
    # NaN delay on a bounded metric fails the SLA, exactly like the oracle.
    verdict = evaluate(VOICE_SLA, stats)
    assert not verdict.conformant and not verdict.delay_ok


def test_probe_agent_delay_percentile_nan_guards():
    from repro.topology import Network, attach_host, build_line

    net = Network(seed=9)
    routers = build_line(net, 2, rate_bps=10e6)
    tx = attach_host(net, routers[0], "10.88.0.1", name="tx")
    rx = attach_host(net, routers[1], "10.88.0.2", name="rx")
    from repro.routing import converge

    converge(net)
    probe = ProbeAgent(net.sim, tx, rx, "10.88.0.1", "10.88.0.2")
    # Never started: no probes arrived — NaN, not an exception.
    assert math.isnan(probe.delay_percentile(50))
    probe.start(0.0, stop_at=1.0)
    net.run(until=1.5)
    assert probe.delay_percentile(50) > 0.0
    assert math.isnan(probe.delay_percentile(101))
    assert math.isnan(probe.delay_percentile(-1))


# ----------------------------------------------------------------------
# Telemetry wiring: manifest flags, SLO summary, cache gauges.


def test_manifest_records_obs_runtime_flags_and_slo_summary():
    from repro.experiments.e5_sla import run_stage
    from repro.obs.telemetry import Telemetry

    runtime.enable(profile=False)
    runtime.set_slo(True)
    result = run_stage("full", measure_s=1.0, streaming=False)
    session = result["net"].telemetry
    assert isinstance(session, Telemetry)
    assert session.slo is not None  # runtime switch attached an engine
    manifest = session.manifest()
    assert validate_manifest(manifest) == []
    flags = manifest["obs_runtime"]
    assert set(flags) == {"vector_mode", "packet_counters", "slo", "spans"}
    assert flags["slo"] is True and flags["spans"] is False
    assert manifest["slo"]["delivered"] > 0
    assert manifest["spans"] is None
    json.dumps(manifest)  # JSON-able end to end


def test_manifest_without_slo_is_still_valid():
    from repro.experiments.e2_qos import run_config

    runtime.enable(profile=False)
    result = run_config("mpls-diffserv", measure_s=0.5)
    manifest = result["net"].telemetry.manifest()
    assert validate_manifest(manifest) == []
    assert manifest["obs_runtime"]["slo"] is False
    assert manifest["slo"] is None


def test_scrape_exports_cache_and_slo_metrics():
    from repro.experiments.e5_sla import run_stage

    runtime.enable(profile=False)
    runtime.set_slo(True)
    result = run_stage("full", measure_s=1.0)
    snap = result["net"].telemetry.scrape().snapshot()
    assert {"repro_cache_hits", "repro_cache_misses",
            "repro_cache_entries"} <= set(snap)
    assert {"repro_slo_received_packets",
            "repro_slo_p99_delay_seconds"} <= set(snap)
    cache_series = snap["repro_cache_hits"]["series"]
    assert any(s["labels"].get("cache") == "flow" for s in cache_series)
    assert any(s["value"] > 0 for s in cache_series)
    slo_series = snap["repro_slo_received_packets"]["series"]
    assert any(s["labels"]["stream"] == "voice" and s["value"] > 0
               for s in slo_series)
