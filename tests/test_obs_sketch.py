"""Streaming estimator parity: sketch vs numpy, jitter vs batch oracle.

The SLO engine's claim is that its bounded-memory estimators agree with
the raw-sample batch path — exactly while uncompacted, within the
documented rank-error bound beyond.  These tests pin that contract on
synthetic streams and on real seeded experiment traces (e2, e5).
"""

import numpy as np
import pytest

from repro.metrics.stats import delay_percentile, rfc3550_jitter
from repro.obs.sketch import QuantileSketch, StreamingJitter, rank_error_bound


def test_uncompacted_sketch_is_bit_exact_vs_numpy():
    rng = np.random.default_rng(7)
    samples = rng.exponential(0.01, size=1500)
    sk = QuantileSketch(k=2048)
    for s in samples:
        sk.insert(float(s))
    assert sk.retained == 1500
    for q in range(0, 101):
        assert sk.query(q) == float(np.percentile(samples, q)), q


def test_single_sample_and_empty_nan_contract():
    sk = QuantileSketch()
    assert np.isnan(sk.query(50))
    assert np.isnan(sk.query(-1))
    sk.insert(0.25)
    assert sk.query(0) == 0.25
    assert sk.query(100) == 0.25
    assert np.isnan(sk.query(100.5))
    assert np.isnan(sk.query(-0.5))
    # Same contract as the batch helper.
    assert np.isnan(delay_percentile([], 50))
    assert np.isnan(delay_percentile([0.25], 101))
    assert delay_percentile([0.25], 50) == 0.25


def test_compacted_sketch_within_documented_rank_error():
    rng = np.random.default_rng(11)
    n, k = 100_000, 256
    samples = rng.lognormal(-4.0, 1.0, size=n)
    sk = QuantileSketch(k=k)
    for s in samples:
        sk.insert(float(s))
    assert sk.retained < 8 * k  # bounded memory, not O(n)
    bound = sk.error_bound()
    assert bound == rank_error_bound(n, k) > 0.0
    sorted_samples = np.sort(samples)
    for q in (50, 90, 95, 99):
        est = sk.query(q)
        # Where does the estimate land in the true rank order?
        rank = np.searchsorted(sorted_samples, est) / n
        assert abs(rank - q / 100.0) <= bound, (q, rank, bound)


def test_sketch_is_deterministic():
    rng = np.random.default_rng(3)
    samples = [float(s) for s in rng.normal(0.0, 1.0, size=10_000)]
    a, b = QuantileSketch(k=64), QuantileSketch(k=64)
    for s in samples:
        a.insert(s)
        b.insert(s)
    assert [a.query(q) for q in range(101)] == [b.query(q) for q in range(101)]


def test_streaming_jitter_matches_batch_oracle_bit_for_bit():
    rng = np.random.default_rng(5)
    delays = rng.exponential(0.005, size=400)
    arrivals = np.cumsum(rng.exponential(0.02, size=400))
    send_times = arrivals - delays
    oracle = rfc3550_jitter(send_times, arrivals)
    sj = StreamingJitter()
    for t, d in zip(arrivals, delays):
        # The oracle computes transit = arrival − (arrival − delay);
        # reproduce its arithmetic for bit-exactness.
        sj.update(t - (t - d))
    assert sj.value == oracle
    assert sj.count == 400


def test_streaming_jitter_short_streams():
    sj = StreamingJitter()
    assert sj.value == 0.0
    sj.update(0.010)
    assert sj.value == 0.0  # one sample: no difference yet
    sj.update(0.026)
    assert sj.value == pytest.approx(0.016 / 16.0)


# ----------------------------------------------------------------------
# Parity on real seeded experiment traces: the streaming FlowStats must
# match the batch-oracle FlowStats on every shared field (exactly while
# n ≤ k; p-quantiles within the rank-error bound once compacted).


def _assert_stream_parity(batch, stream, n_sorted_delays=None):
    assert stream.received == batch.received
    assert stream.sent == batch.sent
    assert stream.loss_ratio == batch.loss_ratio
    assert stream.mean_delay_s == pytest.approx(batch.mean_delay_s, rel=1e-12)
    assert stream.max_delay_s == batch.max_delay_s
    assert stream.jitter_rfc3550_s == batch.jitter_rfc3550_s
    assert stream.throughput_bps == pytest.approx(batch.throughput_bps, rel=1e-12)
    for attr in ("p50_delay_s", "p95_delay_s", "p99_delay_s"):
        sv, bv = getattr(stream, attr), getattr(batch, attr)
        if n_sorted_delays is None:
            assert sv == bv, attr  # uncompacted: bit-exact
        else:
            q = {"p50_delay_s": 0.50, "p95_delay_s": 0.95, "p99_delay_s": 0.99}[attr]
            rank = np.searchsorted(n_sorted_delays, sv) / len(n_sorted_delays)
            assert abs(rank - q) <= rank_error_bound(len(n_sorted_delays), 2048)


def test_e5_streaming_stats_match_batch_oracle():
    from repro.experiments.e5_sla import run_stage

    result = run_stage("full", measure_s=2.0, streaming=True)
    engine = result["slo"]["engine"]
    for flow in ("voice", "data", "bulk"):
        batch = result[flow]
        stream = engine.stats(flow, sent=batch.sent, duration_s=2.0)
        # E5 flows are well under k=2048 samples: parity must be exact.
        assert engine.flows[flow].sketch.retained == batch.received
        _assert_stream_parity(batch, stream)


def test_e2_streaming_stats_match_batch_oracle():
    from repro.experiments.e2_qos import run_config

    result = run_config("mpls-diffserv", measure_s=2.0, streaming=True)
    engine = result["slo"]["engine"]
    for flow in ("voice", "data", "bulk"):
        batch = result[flow]
        stream = result["slo"]["stats"][flow]
        assert stream.received == batch.received
        if engine.flows[flow].sketch.n <= 2048:
            _assert_stream_parity(batch, stream)
        else:  # compacted: still exact on everything but the quantiles
            assert stream.jitter_rfc3550_s == batch.jitter_rfc3550_s
            assert stream.loss_ratio == batch.loss_ratio
