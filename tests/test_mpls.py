"""Tests for MPLS: label spaces, LFIB/FTN, LSR data plane, LDP, TE."""

import pytest

from repro.mpls.label import (
    EXPLICIT_NULL,
    IMPLICIT_NULL,
    LabelExhausted,
    LabelSpace,
)
from repro.mpls.ldp import run_ldp
from repro.mpls.lfib import FtnTable, LabelOp, Lfib, LfibEntry, Nhlfe
from repro.mpls.lsr import Lsr
from repro.mpls.te import AdmissionError, TrafficEngineering
from repro.net.address import IPv4Address, Prefix
from repro.net.packet import IPHeader, Packet
from repro.routing.router import Router
from repro.routing.spf import converge
from repro.topology import Network, attach_host


def pkt(src="10.0.0.1", dst="10.0.0.2", dscp=0, ttl=64):
    return Packet(ip=IPHeader(IPv4Address.parse(src), IPv4Address.parse(dst),
                              dscp=dscp, ttl=ttl), payload_bytes=100)


class TestLabelSpace:
    def test_allocates_from_16(self):
        ls = LabelSpace()
        assert ls.allocate() == 16
        assert ls.allocate() == 17

    def test_release_and_reuse(self):
        ls = LabelSpace()
        a = ls.allocate()
        ls.release(a)
        assert ls.allocate() == a

    def test_double_free_rejected(self):
        ls = LabelSpace()
        a = ls.allocate()
        ls.release(a)
        with pytest.raises(ValueError):
            ls.release(a)

    def test_contains_and_count(self):
        ls = LabelSpace()
        a = ls.allocate()
        assert a in ls and ls.in_use == 1
        ls.release(a)
        assert a not in ls and ls.in_use == 0

    def test_bad_first_rejected(self):
        with pytest.raises(ValueError):
            LabelSpace(first=3)

    def test_exhaustion(self):
        ls = LabelSpace(first=(1 << 20) - 1)
        ls.allocate()
        with pytest.raises(LabelExhausted):
            ls.allocate()


class TestLfib:
    def test_entry_validation(self):
        with pytest.raises(ValueError):
            LfibEntry(LabelOp.SWAP, out_label=5)  # missing ifname
        with pytest.raises(ValueError):
            LfibEntry(LabelOp.POP)  # missing ifname
        with pytest.raises(ValueError):
            LfibEntry(LabelOp.VPN)  # missing vrf

    def test_install_lookup_remove(self):
        lfib = Lfib()
        e = LfibEntry(LabelOp.SWAP, out_label=99, out_ifname="eth0")
        lfib.install(16, e)
        assert lfib.lookup(16) is e
        assert 16 in lfib and len(lfib) == 1
        assert lfib.remove(16) is True
        assert lfib.lookup(16) is None
        assert lfib.remove(16) is False

    def test_lookup_counter(self):
        lfib = Lfib()
        lfib.lookup(1); lfib.lookup(2)
        assert lfib.lookups == 2

    def test_ftn_bind_lookup(self):
        ftn = FtnTable()
        n = Nhlfe("eth0", (17,))
        ftn.bind("10.0.0.0/8", n)
        assert ftn.lookup(Prefix.parse("10.0.0.0/8")) is n
        assert ftn.lookup(Prefix.parse("11.0.0.0/8")) is None
        assert ftn.unbind("10.0.0.0/8") is True
        assert len(ftn) == 0


class TestLsrDataPlane:
    def _lsr_pair(self):
        net = Network()
        a = net.add_node(Lsr(net.sim, "a"))
        b = net.add_node(Lsr(net.sim, "b"))
        net.connect(a, b, 10e6, 0.001)
        return net, a, b

    def test_swap_forwards_and_decrements(self):
        net, a, b = self._lsr_pair()
        a.lfib.install(16, LfibEntry(LabelOp.SWAP, out_label=17, out_ifname="to-b"))
        p = pkt(ttl=10)
        p.push_label(16, exp=3)
        got = []
        b.handle = lambda pk, ifn: got.append(pk)
        net.sim.schedule(0.0, lambda: a.handle(p, "in"))
        net.run(until=1.0)
        assert got and got[0].top_label.label == 17
        assert got[0].top_label.exp == 3       # EXP preserved
        assert got[0].top_label.ttl == 9

    def test_unknown_label_dropped(self):
        net, a, b = self._lsr_pair()
        p = pkt()
        p.push_label(999)
        a.handle(p, "in")
        assert a.stats.dropped_other == 1

    def test_php_pop_forwards_ip(self):
        net, a, b = self._lsr_pair()
        a.lfib.install(16, LfibEntry(LabelOp.POP, out_ifname="to-b"))
        p = pkt(ttl=10)
        p.push_label(16)
        got = []
        b.handle = lambda pk, ifn: got.append(pk)
        net.sim.schedule(0.0, lambda: a.handle(p, "in"))
        net.run(until=1.0)
        assert got and got[0].top_label is None
        assert got[0].ip.ttl == 9  # uniform TTL model

    def test_ttl_expiry_on_label_path(self):
        net, a, b = self._lsr_pair()
        a.lfib.install(16, LfibEntry(LabelOp.SWAP, out_label=17, out_ifname="to-b"))
        p = pkt(ttl=64)
        p.push_label(16, ttl=1)
        a.handle(p, "in")
        assert a.stats.dropped_ttl == 1

    def test_pop_process_delivers_own_ip(self):
        net, a, b = self._lsr_pair()
        a.set_loopback("172.16.5.5")
        a.lfib.install(16, LfibEntry(LabelOp.POP_PROCESS))
        got = []
        a.add_local_sink(got.append)
        p = pkt(dst="172.16.5.5")
        p.push_label(16)
        a.handle(p, "in")
        assert len(got) == 1

    def test_pop_process_recurses_inner_label(self):
        net, a, b = self._lsr_pair()
        a.lfib.install(16, LfibEntry(LabelOp.POP_PROCESS))
        a.lfib.install(17, LfibEntry(LabelOp.SWAP, out_label=20, out_ifname="to-b"))
        got = []
        b.handle = lambda pk, ifn: got.append(pk)
        p = pkt()
        p.push_label(17)
        p.push_label(16)
        net.sim.schedule(0.0, lambda: a.handle(p, "in"))
        net.run(until=1.0)
        assert got and got[0].top_label.label == 20

    def test_vpn_label_without_hook_drops(self):
        net, a, b = self._lsr_pair()
        a.vpn_deliver = None
        a.lfib.install(16, LfibEntry(LabelOp.VPN, vrf="x"))
        p = pkt()
        p.push_label(16)
        a.handle(p, "in")
        assert a.stats.dropped_other == 1

    def test_imposition_sets_exp_from_dscp(self):
        net, a, b = self._lsr_pair()
        a.fib.install("10.0.0.0/8", __import__("repro.routing.fib", fromlist=["RouteEntry"]).RouteEntry("to-b"))
        a.ftn.bind("10.0.0.0/8", Nhlfe("to-b", (30,)))
        got = []
        b.handle = lambda pk, ifn: got.append(pk)
        p = pkt(dscp=46)
        net.sim.schedule(0.0, lambda: a.handle(p, "in"))
        net.run(until=1.0)
        assert got[0].top_label.label == 30
        assert got[0].top_label.exp == 5

    def test_imposition_fixed_exp_override(self):
        net, a, b = self._lsr_pair()
        from repro.routing.fib import RouteEntry
        a.fib.install("10.0.0.0/8", RouteEntry("to-b"))
        a.ftn.bind("10.0.0.0/8", Nhlfe("to-b", (30,)))
        a.impose_exp = 0
        got = []
        b.handle = lambda pk, ifn: got.append(pk)
        p = pkt(dscp=46)
        net.sim.schedule(0.0, lambda: a.handle(p, "in"))
        net.run(until=1.0)
        assert got[0].top_label.exp == 0

    def test_implicit_null_in_nhlfe_skipped(self):
        net, a, b = self._lsr_pair()
        from repro.routing.fib import RouteEntry
        a.fib.install("10.0.0.0/8", RouteEntry("to-b"))
        a.ftn.bind("10.0.0.0/8", Nhlfe("to-b", (IMPLICIT_NULL,)))
        got = []
        b.handle = lambda pk, ifn: got.append(pk)
        net.sim.schedule(0.0, lambda: a.handle(pkt(), "in"))
        net.run(until=1.0)
        assert got[0].top_label is None


def _lsr_line(n=4, rate=10e6):
    net = Network()
    routers = [net.add_node(Lsr(net.sim, f"r{i}")) for i in range(n)]
    for i in range(n - 1):
        net.connect(routers[i], routers[i + 1], rate, 0.001)
    return net, routers


class TestLdp:
    def test_bindings_cover_all_lsrs(self):
        net, routers = _lsr_line(4)
        converge(net)
        res = run_ldp(net)
        fec = Prefix.of(routers[3].loopback, 32)
        b = res.bindings[fec]
        assert b["r3"] == IMPLICIT_NULL
        assert all(name in b for name in ("r0", "r1", "r2"))

    def test_php_penultimate_pops(self):
        net, routers = _lsr_line(3)
        converge(net)
        res = run_ldp(net)
        fec = Prefix.of(routers[2].loopback, 32)
        in_label_r1 = res.bindings[fec]["r1"]
        entry = routers[1].lfib.lookup(in_label_r1)
        assert entry.op is LabelOp.POP

    def test_explicit_null_keeps_label_to_egress(self):
        net, routers = _lsr_line(3)
        converge(net)
        res = run_ldp(net, php=False, use_explicit_null=True)
        fec = Prefix.of(routers[2].loopback, 32)
        assert res.bindings[fec]["r2"] == EXPLICIT_NULL
        entry = routers[2].lfib.lookup(EXPLICIT_NULL)
        assert entry.op is LabelOp.POP_PROCESS

    def test_no_php_allocates_real_egress_label(self):
        net, routers = _lsr_line(3)
        converge(net)
        res = run_ldp(net, php=False)
        fec = Prefix.of(routers[2].loopback, 32)
        label = res.bindings[fec]["r2"]
        assert label >= 16
        assert routers[2].lfib.lookup(label).op is LabelOp.POP_PROCESS

    def test_php_and_explicit_null_conflict(self):
        net, routers = _lsr_line(2)
        converge(net)
        with pytest.raises(ValueError):
            run_ldp(net, php=True, use_explicit_null=True)

    def test_end_to_end_labeled_delivery(self):
        net, routers = _lsr_line(4)
        h1 = attach_host(net, routers[0], "10.30.0.1")
        h2 = attach_host(net, routers[3], "10.30.0.2")
        converge(net)
        run_ldp(net)
        got = []
        h2.add_local_sink(got.append)
        net.sim.schedule(0.0, lambda: h1.send(pkt("10.30.0.1", "10.30.0.2")))
        net.run(until=1.0)
        assert len(got) == 1
        # Transit LSR actually label-switched.
        assert routers[1].lfib.lookups >= 1

    def test_mixed_backbone_stops_at_plain_router(self):
        """Ordered control: no bindings upstream of a non-LSR hop."""
        net = Network()
        a = net.add_node(Lsr(net.sim, "a"))
        m = net.add_node(Router(net.sim, "m"))  # legacy IP router
        b = net.add_node(Lsr(net.sim, "b"))
        net.connect(a, m); net.connect(m, b)
        converge(net)
        res = run_ldp(net)
        fec = Prefix.of(b.loopback, 32)
        assert "a" not in res.bindings[fec]
        # Traffic still flows over IP.
        h1 = attach_host(net, a, "10.31.0.1")
        h2 = attach_host(net, b, "10.31.0.2")
        converge(net)
        got = []
        h2.add_local_sink(got.append)
        net.sim.schedule(0.0, lambda: h1.send(pkt("10.31.0.1", "10.31.0.2")))
        net.run(until=1.0)
        assert len(got) == 1

    def test_message_and_session_counting(self):
        net, routers = _lsr_line(3)
        converge(net)
        res = run_ldp(net)
        assert res.sessions == 2
        assert res.mapping_messages > 0
        assert net.counters["ldp.sessions"] == 2
        assert net.counters["ldp.mapping_msgs"] == res.mapping_messages

    def test_advertised_prefix_becomes_fec(self):
        net, routers = _lsr_line(3)
        h = attach_host(net, routers[2], "10.33.0.9")
        converge(net)
        res = run_ldp(net)
        assert Prefix.parse("10.33.0.9/32") in res.bindings


class TestTrafficEngineering:
    def _net(self):
        net, routers = _lsr_line(4, rate=10e6)
        converge(net)
        return net, routers

    def test_cspf_finds_shortest(self):
        net, routers = self._net()
        te = TrafficEngineering(net)
        assert te.cspf("r0", "r3", 1e6) == ["r0", "r1", "r2", "r3"]

    def test_cspf_respects_bandwidth(self):
        net, routers = self._net()
        te = TrafficEngineering(net)
        te.setup("big", "r0", "r3", 8e6)
        assert te.cspf("r0", "r3", 4e6) is None  # residual 2M only

    def test_cspf_avoid_nodes_and_links(self):
        net = Network()
        nodes = {n: net.add_node(Lsr(net.sim, n)) for n in "abcd"}
        net.connect("a", "b"); net.connect("b", "d")
        net.connect("a", "c"); net.connect("c", "d")
        converge(net)
        te = TrafficEngineering(net)
        assert te.cspf("a", "d", 1e6, avoid_nodes=["b"]) == ["a", "c", "d"]
        assert te.cspf("a", "d", 1e6, avoid_links=[("a", "b")]) == ["a", "c", "d"]

    def test_admission_error_leaves_no_state(self):
        net, routers = self._net()
        te = TrafficEngineering(net)
        te.setup("first", "r0", "r3", 8e6)
        before = dict(te.reserved)
        with pytest.raises(AdmissionError):
            te.signal("second", ["r0", "r1", "r2", "r3"], 4e6)
        assert te.reserved == before
        assert "second" not in te.lsps

    def test_signal_installs_swap_chain(self):
        net, routers = self._net()
        te = TrafficEngineering(net)
        lsp = te.setup("t", "r0", "r3", 1e6)
        assert lsp.up and lsp.ingress == "r0" and lsp.egress == "r3"
        # First-hop label known; transit r1, r2 have entries; PHP on last.
        assert lsp.hop_labels[0] >= 16
        assert lsp.hop_labels[-1] == IMPLICIT_NULL
        assert len(routers[1].lfib) == 1
        assert len(routers[2].lfib) == 1

    def test_teardown_releases_everything(self):
        net, routers = self._net()
        te = TrafficEngineering(net)
        lsp = te.setup("t", "r0", "r3", 1e6)
        te.autoroute(lsp, [Prefix.of(routers[3].loopback, 32)])
        te.teardown("t")
        assert te.residual("r0", "r1") == 10e6
        assert len(routers[1].lfib) == 0
        assert len(routers[0].ftn) == 0
        assert routers[1].labels.in_use == 0

    def test_duplicate_name_rejected(self):
        net, routers = self._net()
        te = TrafficEngineering(net)
        te.setup("t", "r0", "r3", 1e6)
        with pytest.raises(ValueError):
            te.signal("t", ["r0", "r1"], 1e6)

    def test_subscription_factor(self):
        net, routers = self._net()
        te = TrafficEngineering(net, subscription=0.5)
        assert te.residual("r0", "r1") == 5e6
        with pytest.raises(AdmissionError):
            te.setup("t", "r0", "r3", 6e6)

    def test_explicit_route_overrides_igp(self):
        """A TE LSP pinned over the long way actually carries traffic there."""
        net = Network()
        nodes = {n: net.add_node(Lsr(net.sim, n)) for n in "abcd"}
        net.connect("a", "b"); net.connect("b", "d")  # short: a-b-d
        net.connect("a", "c"); net.connect("c", "d")  # alt: a-c-d
        h1 = attach_host(net, nodes["a"], "10.34.0.1")
        h2 = attach_host(net, nodes["d"], "10.34.0.2")
        converge(net)
        te = TrafficEngineering(net)
        lsp = te.signal("pin", ["a", "c", "d"], 1e6)
        te.autoroute(lsp, [Prefix.parse("10.34.0.2/32")])
        got = []
        h2.add_local_sink(got.append)
        net.sim.schedule(0.0, lambda: h1.send(pkt("10.34.0.1", "10.34.0.2")))
        net.run(until=1.0)
        assert len(got) == 1
        assert nodes["c"].lfib.lookups == 1   # went via c
        assert nodes["b"].stats.rx_packets == 0

    def test_ingress_nhlfe(self):
        net, routers = self._net()
        te = TrafficEngineering(net)
        lsp = te.setup("t", "r0", "r3", 1e6)
        nhlfe = te.ingress_nhlfe(lsp)
        assert nhlfe.out_ifname == "to-r1"
        assert nhlfe.labels == (lsp.hop_labels[0],)

    def test_rsvp_message_counters(self):
        net, routers = self._net()
        te = TrafficEngineering(net)
        te.setup("t", "r0", "r3", 1e6)
        assert net.counters["rsvp.path_msgs"] == 3
        assert net.counters["rsvp.resv_msgs"] == 3


class TestLlsp:
    def test_signal_with_class_populates_label_map(self):
        net, routers = _lsr_line(4)
        converge(net)
        te = TrafficEngineering(net)
        lsp = te.signal("v", ["r0", "r1", "r2", "r3"], 1e6, php=False,
                        scheduling_class=0)
        # Transmitting nodes know the class of the label they send.
        assert routers[0].label_class[lsp.hop_labels[0]] == 0
        assert routers[1].label_class[lsp.hop_labels[1]] == 0
        assert routers[2].label_class[lsp.hop_labels[2]] == 0

    def test_teardown_clears_label_map(self):
        net, routers = _lsr_line(3)
        converge(net)
        te = TrafficEngineering(net)
        te.signal("v", ["r0", "r1", "r2"], 1e6, php=False, scheduling_class=1)
        te.teardown("v")
        # Receiving-side registrations die with the LFIB entries.
        assert all(
            lbl not in r.label_class
            for r in routers for lbl in list(r.label_class)
            if lbl in r.lfib.entries()
        )

    def test_llsp_classifier_prefers_label_map(self):
        from repro.qos.classifier import llsp_classifier
        net, routers = _lsr_line(2)
        lsr = routers[0]
        lsr.label_class[777] = 0
        classify = llsp_classifier(lsr)
        p = pkt(dscp=0)
        p.push_label(777, exp=0)       # BE by EXP, EF by label map
        assert classify(p) == 0
        q = pkt(dscp=0)
        q.push_label(778, exp=0)       # unknown label: falls back to EXP
        assert classify(q) == 2
