"""Vector fast-path parity: batching must be invisible in every trace.

The burst-extraction kernel (``repro.sim.engine``) fuses consecutive
same-timestamp ``Node.receive`` events at one node into a single
``receive_batch`` call, and the data plane grows hoisted batch loops
(``ForwardingPipeline.ingress_batch``, ``Interface.send_batch``, ...).
None of that is allowed to change a single observable: these tests run
whole seeded experiments with vector mode on and off and demand
bit-identical flight-recorder traces, then cover the mixed-burst corner
cases (drop mid-batch, TTL expiry mid-batch, ECMP split inside one
burst, cache invalidation between bursts) and the kernel's coalescing
rules directly.
"""

from __future__ import annotations

from typing import Callable

import pytest

from repro.dataplane import GenCache
from repro.net.address import IPv4Address
from repro.net.packet import IPHeader, Packet
from repro.obs import runtime
from repro.qos.queues import DropTailFifo
from repro.routing import converge
from repro.sim.engine import SimulationError, Simulator
from repro.topology import Network, attach_host
from repro.traffic import CbrSource, FlowSink


# ----------------------------------------------------------------------
# Kernel burst extraction: the coalescing rules, tested in isolation.
# ----------------------------------------------------------------------
class _Recv:
    """Stand-in node: a class whose ``receive`` is the batch target."""

    def __init__(self, log: list) -> None:
        self.log = log

    def receive(self, pkt, ifname) -> None:
        self.log.append(("scalar", self, pkt, ifname))


def _dispatch(owner: _Recv, batch: list) -> None:
    owner.log.append(("batch", owner, list(batch)))


class TestBurstExtraction:
    def _sim(self, log: list) -> Simulator:
        sim = Simulator()
        sim.set_batch_target(_Recv.receive, _dispatch)
        return sim

    def test_consecutive_same_time_events_fuse(self) -> None:
        log: list = []
        sim = self._sim(log)
        r = _Recv(log)
        for i in range(3):
            sim.schedule_call(1.0, r.receive, f"p{i}", "eth0")
        sim.run()
        assert log == [("batch", r, [("p0", "eth0"), ("p1", "eth0"),
                                     ("p2", "eth0")])]

    def test_single_event_stays_scalar(self) -> None:
        log: list = []
        sim = self._sim(log)
        r = _Recv(log)
        sim.schedule_call(1.0, r.receive, "p0", "eth0")
        sim.schedule_call(2.0, r.receive, "p1", "eth0")  # different time
        sim.run()
        assert log == [("scalar", r, "p0", "eth0"), ("scalar", r, "p1", "eth0")]

    def test_foreign_event_breaks_the_run(self) -> None:
        log: list = []
        sim = self._sim(log)
        r = _Recv(log)
        sim.schedule_call(1.0, r.receive, "p0", "e")
        sim.schedule_call(1.0, r.receive, "p1", "e")
        sim.schedule(1.0, lambda: log.append(("other",)))
        sim.schedule_call(1.0, r.receive, "p2", "e")
        sim.run()
        # Run of two fuses; the foreign callback keeps its FIFO slot; the
        # trailing lone receive goes scalar.
        assert log == [
            ("batch", r, [("p0", "e"), ("p1", "e")]),
            ("other",),
            ("scalar", r, "p2", "e"),
        ]

    def test_different_receiver_breaks_the_run(self) -> None:
        log: list = []
        sim = self._sim(log)
        r1, r2 = _Recv(log), _Recv(log)
        sim.schedule_call(1.0, r1.receive, "a", "e")
        sim.schedule_call(1.0, r1.receive, "b", "e")
        sim.schedule_call(1.0, r2.receive, "c", "e")
        sim.run()
        assert log == [
            ("batch", r1, [("a", "e"), ("b", "e")]),
            ("scalar", r2, "c", "e"),
        ]

    def test_cancelled_event_inside_run_is_consumed(self) -> None:
        log: list = []
        sim = self._sim(log)
        r = _Recv(log)
        sim.schedule_call(1.0, r.receive, "p0", "e")
        mid = sim.schedule_call(1.0, r.receive, "p1", "e")
        sim.schedule_call(1.0, r.receive, "p2", "e")
        mid.cancel()
        sim.run()
        assert log == [("batch", r, [("p0", "e"), ("p2", "e")])]
        assert sim.pending == 0

    def test_batch_counts_against_event_budget(self) -> None:
        log: list = []
        sim = self._sim(log)
        r = _Recv(log)
        for i in range(4):
            sim.schedule_call(1.0, r.receive, i, "e")
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=2)

    def test_set_batch_target_requires_dispatch(self) -> None:
        sim = Simulator()
        with pytest.raises(SimulationError, match="dispatch"):
            sim.set_batch_target(_Recv.receive)

    def test_clearing_target_restores_scalar(self) -> None:
        log: list = []
        sim = self._sim(log)
        sim.set_batch_target(None)
        r = _Recv(log)
        sim.schedule_call(1.0, r.receive, "p0", "e")
        sim.schedule_call(1.0, r.receive, "p1", "e")
        sim.run()
        assert log == [("scalar", r, "p0", "e"), ("scalar", r, "p1", "e")]


# ----------------------------------------------------------------------
# GenCache: optional capacity bound + the per-burst sync() contract.
# ----------------------------------------------------------------------
class _FakeTable:
    def __init__(self) -> None:
        self.generation = 0


class TestGenCacheCapacity:
    def test_default_is_unbounded(self) -> None:
        c = GenCache(_FakeTable())
        for i in range(5000):
            c.put(i, i)
        assert len(c) == 5000 and c.evictions == 0

    def test_capacity_evicts_oldest_first_at_epoch(self) -> None:
        c = GenCache(_FakeTable(), capacity=2)
        c.put("a", 1)
        c.put("b", 2)
        c.put("c", 3)  # overshoot tolerated until the next epoch boundary
        assert len(c) == 3 and c.evictions == 0
        assert c.get("a") is None  # epoch trim evicts "a" (FIFO) first
        assert len(c) == 2 and c.evictions == 1
        assert c.get("b") == 2 and c.get("c") == 3

    def test_sync_is_an_epoch_boundary(self) -> None:
        c = GenCache(_FakeTable(), capacity=2)
        for key in "abcd":
            c.put(key, key)
        assert len(c) == 4 and c.evictions == 0
        entries = c.sync()  # per-burst trim: oldest two go in one pass
        assert list(entries) == ["c", "d"] and c.evictions == 2

    def test_no_eviction_between_put_and_sync(self) -> None:
        # The columnar-tier contract: fills inside a burst never evict, so
        # a pre-gathered entry stays valid until the next sync()/get().
        c = GenCache(_FakeTable(), capacity=1)
        entries = c.sync()
        c.put("a", 1)
        c.put("b", 2)
        assert entries["a"] == 1 and entries["b"] == 2
        assert list(c.sync()) == ["b"] and c.evictions == 1

    def test_overwrite_does_not_evict(self) -> None:
        c = GenCache(_FakeTable(), capacity=2)
        c.put("a", 1)
        c.put("b", 2)
        c.put("a", 9)  # same key: replace in place, nothing evicted
        assert len(c) == 2 and c.evictions == 0
        assert c.get("a") == 9

    def test_stats_reports_evictions(self) -> None:
        c = GenCache(_FakeTable(), capacity=1)
        c.put("a", 1)
        c.put("b", 2)
        c.sync()
        assert c.stats()["evictions"] == 1

    def test_sync_flushes_stale_entries_once(self) -> None:
        t = _FakeTable()
        c = GenCache(t)
        c.put("k", "v")
        assert c.sync() is c.sync()  # fresh: same live dict, no flush
        assert c.invalidations == 0
        t.generation += 1
        entries = c.sync()
        assert entries == {} and c.invalidations == 1
        c.sync()
        assert c.invalidations == 1  # idempotent until the next bump

    def test_sync_does_not_touch_hit_miss_counters(self) -> None:
        c = GenCache(_FakeTable())
        c.put("k", "v")
        c.sync()["k"]
        assert c.hits == 0 and c.misses == 0  # batch loops bump manually


# ----------------------------------------------------------------------
# Whole-experiment trace parity: vector on vs vector off.
# ----------------------------------------------------------------------
def _trace(run_fn: Callable[[], object]) -> list[tuple]:
    """Uid-normalized flight trace (same idiom as test_engine_parity)."""
    runtime.reset()
    runtime.enable(flight_capacity=1 << 20, profile=False)
    try:
        run_fn()
        records = []
        for session in runtime.sessions():
            records.extend(session.flight._ring)
    finally:
        runtime.reset()

    ids: dict[int, int] = {}
    out = []
    for r in records:
        u = ids.setdefault(r.uid, len(ids))
        out.append((
            r.time, r.node, r.event, u, r.flow, r.seq, r.ifname,
            r.labels, r.in_label, r.out_label, r.reason, r.backlog,
        ))
    return out


def _with_vector_mode(on: bool, fn: Callable[[], object]):
    runtime.set_vector_mode(on)
    try:
        return fn()
    finally:
        runtime.set_vector_mode(True)


def _e2() -> None:
    from repro.experiments.e2_qos import run_config
    run_config("mpls-diffserv", measure_s=2.0)


def _e5() -> None:
    from repro.experiments.e5_sla import run_stage
    run_stage("full", measure_s=2.0)


def _e11() -> None:
    from repro.experiments.e11_resilience import run_e11
    run_e11(measure_s=3.0)


@pytest.mark.parametrize(
    "run_fn", [_e2, _e5, _e11], ids=["e2-mpls-diffserv", "e5-full", "e11"]
)
def test_vector_mode_invisible_in_experiment_traces(run_fn) -> None:
    """Batched and scalar runs of a seeded experiment → identical hops."""
    fast = _with_vector_mode(True, lambda: _trace(run_fn))
    slow = _with_vector_mode(False, lambda: _trace(run_fn))
    assert len(fast) > 1000  # the trace actually recorded a real run
    assert fast == slow


# ----------------------------------------------------------------------
# Mixed-burst scenarios: the awkward cases inside one batch.
# ----------------------------------------------------------------------
def _burst_line(queue_cap: int | None = None):
    """tx — r1 —(bottleneck)— r2 — rx with an infinite-rate access link,
    so multi-packet emissions arrive at r1 as one same-timestamp burst."""
    net = Network(seed=7)
    r1 = net.add_router("r1")
    r2 = net.add_router("r2")
    factory = None
    if queue_cap is not None:
        factory = lambda node, ifname: DropTailFifo(capacity_packets=queue_cap)
    net.connect(r1, r2, 1e6, 1e-3, qdisc_factory=factory)
    tx = attach_host(net, r1, "10.66.0.1", name="tx", rate_bps=float("inf"))
    rx = attach_host(net, r2, "10.66.0.2", name="rx", rate_bps=100e6)
    converge(net)
    return net, r1, r2, tx, rx


def _flow_view(sink: FlowSink, flows: list[str]) -> list[tuple]:
    return [(f, tuple(sink.record(f).seqs)) for f in flows]


class TestMixedBursts:
    def test_batches_actually_form_end_to_end(self) -> None:
        """Sanity: with vector mode on, a burst source really does reach
        the router as one multi-packet ``receive_batch`` call — otherwise
        every parity test below would be comparing scalar to scalar."""
        def run():
            net, r1, _r2, tx, _rx = _burst_line()
            sizes: list[int] = []
            orig = r1.receive_batch

            def spy(items):
                sizes.append(len(items))
                orig(items)

            r1.receive_batch = spy
            src = CbrSource(net.sim, tx.send, "f", "10.66.0.1", "10.66.0.2",
                            payload_bytes=200, rate_bps=8e6, burst=8)
            src.start(0.0, stop_at=0.1)
            net.run(until=0.5)
            return sizes

        sizes = _with_vector_mode(True, run)
        assert sizes and max(sizes) == 8

    def _drop_mid_batch(self) -> tuple:
        net, r1, r2, tx, rx = _burst_line(queue_cap=4)
        sink = FlowSink(net.sim).attach(rx)
        # 16-packet trains into a 4-deep bottleneck queue: the tail of
        # every burst dies mid-batch while the head survives.
        src = CbrSource(net.sim, tx.send, "f", "10.66.0.1", "10.66.0.2",
                        payload_bytes=500, rate_bps=4e6, burst=16)
        src.start(0.0, stop_at=1.0)
        net.run(until=3.0)
        iface = r1.interfaces["to-r2"]
        return (
            src.sent,
            _flow_view(sink, ["f"]),
            iface.stats.enqueued,
            iface.stats.dropped,
            dict(r1.stats.by_reason),
        )

    def test_drop_in_middle_of_batch_matches_scalar(self) -> None:
        fast = _with_vector_mode(True, self._drop_mid_batch)
        slow = _with_vector_mode(False, self._drop_mid_batch)
        assert fast == slow
        assert fast[3] > 0  # the bottleneck really dropped

    def _ttl_mix(self) -> tuple:
        net, r1, _r2, _tx, rx = _burst_line()
        sink = FlowSink(net.sim).attach(rx)
        dst = next(iter(rx.addresses))
        # Hand-built burst: alive/expiring interleaved inside one batch
        # (TTL 1 decrements to 0 at r1 and must die there).
        for seq in range(8):
            pkt = Packet(
                ip=IPHeader(IPv4Address.parse("10.66.0.1"), dst,
                            ttl=(1 if seq % 2 else 64)),
                payload_bytes=100, flow="t", seq=seq,
            )
            net.sim.schedule_call(0.5, r1.receive, pkt, "to-tx")
        net.run(until=2.0)
        return (
            _flow_view(sink, ["t"]),
            r1.stats.dropped_ttl,
            r1.stats.rx_packets,
        )

    def test_ttl_expiry_inside_batch_matches_scalar(self) -> None:
        fast = _with_vector_mode(True, self._ttl_mix)
        slow = _with_vector_mode(False, self._ttl_mix)
        assert fast == slow
        assert fast[1] == 4  # the odd seqs expired at r1
        assert fast[0] == [("t", (0, 2, 4, 6))]

    def _ecmp_burst(self) -> tuple:
        # Diamond with equal-cost branches; eight flows emitting in
        # lockstep form one multi-flow burst at s that must split by hash.
        net = Network(seed=6)
        s = net.add_router("s")
        m1 = net.add_router("m1")
        m2 = net.add_router("m2")
        t = net.add_router("t")
        net.connect(s, m1, 10e6, 1e-3)
        net.connect(m1, t, 10e6, 1e-3)
        net.connect(s, m2, 10e6, 1e-3)
        net.connect(m2, t, 10e6, 1e-3)
        tx = attach_host(net, s, "10.66.0.1", name="tx", rate_bps=float("inf"))
        rx = attach_host(net, t, "10.66.0.2", name="rx", rate_bps=100e6)
        converge(net, ecmp=True)
        sink = FlowSink(net.sim).attach(rx)
        flows = []
        for i in range(8):
            src = CbrSource(net.sim, tx.send, f"f{i}", "10.66.0.1",
                            "10.66.0.2", payload_bytes=200, rate_bps=1e6,
                            src_port=1000 + i, dst_port=80, burst=4)
            src.start(0.0, stop_at=0.5)
            flows.append(f"f{i}")
        net.run(until=2.0)
        return (
            m1.stats.rx_packets,
            m2.stats.rx_packets,
            _flow_view(sink, flows),
        )

    def test_ecmp_split_inside_batch_matches_scalar(self) -> None:
        fast = _with_vector_mode(True, self._ecmp_burst)
        slow = _with_vector_mode(False, self._ecmp_burst)
        assert fast == slow
        assert fast[0] > 0 and fast[1] > 0  # both branches carried traffic

    def _invalidation_between_bursts(self) -> tuple:
        net, r1, _r2, tx, rx = _burst_line()
        sink = FlowSink(net.sim).attach(rx)
        src = CbrSource(net.sim, tx.send, "f", "10.66.0.1", "10.66.0.2",
                        payload_bytes=200, rate_bps=2e6, burst=8)
        src.start(0.0, stop_at=1.0)
        # Mid-run route churn: bumping the FIB generation from a scheduled
        # (non-receive) event must flush the flow cache before the next
        # burst — via get() on the scalar path, via sync() on the batch
        # path — with identical counter effects.
        def churn() -> None:
            r1.fib.generation += 1
        net.sim.schedule_at(0.5, churn)
        net.run(until=3.0)
        fc = r1.pipeline.flow_cache
        return (
            _flow_view(sink, ["f"]),
            fc.invalidations,
            fc.hits,
            fc.misses,
        )

    def test_cache_invalidation_between_bursts_matches_scalar(self) -> None:
        fast = _with_vector_mode(True, self._invalidation_between_bursts)
        slow = _with_vector_mode(False, self._invalidation_between_bursts)
        assert fast == slow
        assert fast[1] >= 1  # the churn really flushed the cache
