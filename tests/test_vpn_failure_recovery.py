"""System tests: VPN service across failures and recovery.

The customer's view of E11: does *my VPN* come back after the provider
loses a link — under IGP reconvergence, and hitlessly under FRR when the
PE-PE tunnel is a protected TE LSP.
"""

import pytest

from repro.mpls import (
    FastReroute,
    Lsr,
    TrafficEngineering,
    reset_ldp,
    run_ldp,
)
from repro.net.address import Prefix
from repro.net.packet import IPHeader, Packet
from repro.routing import converge, reconverge
from repro.topology import Network
from repro.traffic import CbrSource, FlowSink
from repro.vpn import PeRouter, VpnProvisioner


def diamond_vpn(seed=19):
    """pe1 -(p-up | p-down)- pe2 with one VPN across it."""
    net = Network(seed=seed)
    pe1 = net.add_node(PeRouter(net.sim, "pe1"))
    pe2 = net.add_node(PeRouter(net.sim, "pe2"))
    up = net.add_node(Lsr(net.sim, "p-up"))
    down = net.add_node(Lsr(net.sim, "p-down"))
    net.connect(pe1, up); net.connect(up, pe2)
    net.connect(pe1, down, metric=2); net.connect(down, pe2, metric=2)
    prov = VpnProvisioner(net)
    vpn = prov.create_vpn("c")
    s1 = prov.add_site(vpn, pe1, prefix="10.1.0.0/24")
    s2 = prov.add_site(vpn, pe2, prefix="10.2.0.0/24")
    converge(net)
    return net, prov, s1, s2


class TestVpnIgpRecovery:
    def test_vpn_survives_reconvergence(self):
        net, prov, s1, s2 = diamond_vpn()
        run_ldp(net)
        prov.converge_bgp()
        h1, h2 = s1.hosts[0], s2.hosts[0]
        sink = FlowSink(net.sim).attach(h2)
        src = CbrSource(net.sim, h1.send, "f", str(h1.loopback),
                        str(h2.loopback), payload_bytes=400, rate_bps=1e6)
        src.start(0.0, stop_at=4.0)

        def fail_and_recover():
            net.link_between("pe1", "p-up").set_up(False)
            # Reconvergence after 0.5 s: IGP + fresh LDP bindings.  The BGP
            # routes (PE loopback next hops) are untouched — only the
            # transport tunnel moves, which is the VPN layering working.
            def recover():
                reconverge(net)
                reset_ldp(net)
                run_ldp(net)
            net.sim.schedule(0.5, recover)
        net.sim.schedule(2.0, fail_and_recover)
        net.run(until=5.0)

        rec = sink.record("f")
        lost = src.sent - rec.count
        # Outage = 0.5 s at ~297 pps.
        assert lost == pytest.approx(0.5 * 1e6 / (420 * 8), rel=0.25)
        # Service resumed: arrivals exist well after the recovery instant.
        assert rec.arrival_times[-1] > 3.5

    def test_vrf_routes_untouched_by_igp_events(self):
        net, prov, s1, s2 = diamond_vpn()
        run_ldp(net)
        prov.converge_bgp()
        before = dict(s1.pe.vrfs["c"].routes())
        net.link_between("pe1", "p-up").set_up(False)
        reconverge(net)
        reset_ldp(net)
        run_ldp(net)
        assert dict(s1.pe.vrfs["c"].routes()) == before


class TestVpnFrrRecovery:
    def test_vpn_hitless_over_protected_tunnel(self):
        """VPN traffic rides a protected TE tunnel: link cut, zero loss."""
        net, prov, s1, s2 = diamond_vpn()
        # Use an explicit protected tunnel pe1->pe2 via the up path instead
        # of LDP (php=False so every hop is protectable), and autoroute the
        # remote PE loopback onto it (what the VPN resolves through).
        te = TrafficEngineering(net)
        lsp_fwd = te.signal("t-fwd", ["pe1", "p-up", "pe2"], 1e6, php=False)
        lsp_rev = te.signal("t-rev", ["pe2", "p-up", "pe1"], 1e6, php=False)
        te.autoroute(lsp_fwd, [Prefix.of(s2.pe.loopback, 32)])
        te.autoroute(lsp_rev, [Prefix.of(s1.pe.loopback, 32)])
        prov.converge_bgp()
        frr = FastReroute(te)
        frr.protect_lsp(lsp_fwd)
        frr.protect_lsp(lsp_rev)

        h1, h2 = s1.hosts[0], s2.hosts[0]
        sink = FlowSink(net.sim).attach(h2)
        src = CbrSource(net.sim, h1.send, "f", str(h1.loopback),
                        str(h2.loopback), payload_bytes=400, rate_bps=1e6)
        src.start(0.0, stop_at=4.0)

        def fail():
            net.link_between("p-up", "pe2").set_up(False)
            assert frr.trigger_link_failure("p-up", "pe2") >= 1
        net.sim.schedule(2.0, fail)
        net.run(until=5.0)

        rec = sink.record("f")
        # At most the packets in flight on the cut link are lost.
        assert src.sent - rec.count <= 2

    def test_bypass_keeps_vpn_label_stack_intact(self):
        """During repair the packet carries 3 labels (bypass over tunnel
        over VPN) and still lands in the right VRF."""
        net, prov, s1, s2 = diamond_vpn()
        te = TrafficEngineering(net)
        run_ldp(net)   # reverse direction via LDP is fine
        lsp = te.signal("t", ["pe1", "p-up", "pe2"], 1e6, php=False)
        # Autoroute after LDP so the TE binding wins the FTN for pe2.
        te.autoroute(lsp, [Prefix.of(s2.pe.loopback, 32)])
        prov.converge_bgp()
        frr = FastReroute(te)
        frr.protect_lsp(lsp)
        net.link_between("p-up", "pe2").set_up(False)
        frr.trigger_link_failure("p-up", "pe2")

        # Spy on the detour node to observe the deepest stack.
        depths = []
        down = net.node("p-down")
        orig = down.handle
        def spy(pk, ifn):
            depths.append(len(pk.mpls_stack))
            orig(pk, ifn)
        down.handle = spy

        h1, h2 = s1.hosts[0], s2.hosts[0]
        got = []
        h2.add_local_sink(got.append)
        net.sim.schedule(0.0, lambda: h1.send(
            Packet(ip=IPHeader(h1.loopback, h2.loopback), payload_bytes=60)))
        net.run(until=1.0)
        assert len(got) == 1
        assert max(depths) == 3   # bypass + tunnel + VPN label
