"""Hypothesis round-trip properties for repro.sim.snapshot.

Random PE/LSR topologies with a random VPN plan are converged (SPF + LDP
+ MP-BGP), loaded with pending future events, snapshotted, and restored —
and the restored graph must be indistinguishable from the original:

* FIB/LFIB/FTN *contents* per router (routes, label ops, FEC bindings),
* every generation counter (tables, VRFs, DomainView vs topology),
* the pending-event schedule, including same-timestamp FIFO order,
* GenCache coherence reports (restore neither invents staleness nor
  discards warm state),
* RNG stream states — mid-stream draws continue identically.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.mpls import Lsr, run_ldp
from repro.routing import converge
from repro.sim.engine import bind
from repro.sim.snapshot import (
    pending_schedule,
    restore_network,
    snapshot_network,
    verify_cache_coherence,
)
from repro.topology import Network
from repro.vpn import PeRouter, VpnProvisioner

slow_settings = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def provisioned_networks(draw):
    """Connected LSR/PE graph + random VPN plan, fully converged."""
    n = draw(st.integers(min_value=3, max_value=7))
    pe_count = draw(st.integers(min_value=2, max_value=min(4, n)))
    extra = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)), max_size=5,
    ))
    net = Network(seed=draw(st.integers(0, 2**16)))
    nodes = []
    for i in range(n):
        cls = PeRouter if i < pe_count else Lsr
        nodes.append(net.add_node(cls(net.sim, f"n{i}")))
    for i in range(n - 1):
        net.connect(nodes[i], nodes[i + 1], 10e6, 1e-3)
    for a, b in extra:
        if a != b and net.link_between(f"n{a}", f"n{b}") is None:
            net.connect(nodes[a], nodes[b], 10e6, 1e-3)

    prov = VpnProvisioner(net)
    n_vpns = draw(st.integers(min_value=1, max_value=2))
    for v in range(n_vpns):
        vpn = prov.create_vpn(f"vpn{v}", supernet=f"10.{40 + v}.0.0/16")
        sites = draw(st.integers(min_value=1, max_value=3))
        for s in range(sites):
            pe = nodes[draw(st.integers(0, pe_count - 1))]
            prov.add_site(vpn, pe, num_hosts=draw(st.integers(0, 1)))
    converge(net)
    run_ldp(net)
    prov.converge_bgp()

    # Pending future events, including deliberate same-timestamp pairs
    # (FIFO order within a bucket is part of the schedule contract).
    times = draw(st.lists(
        st.floats(min_value=0.001, max_value=5.0,
                  allow_nan=False, allow_infinity=False),
        min_size=0, max_size=6,
    ))
    for i, t in enumerate(times):
        net.sim.schedule(t, bind(net.counters.incr, f"probe.{i}"))
        if draw(st.booleans()):
            net.sim.schedule(t, bind(net.counters.incr, f"probe.{i}.twin"))
    return net, prov


def _fib_contents(net: Network) -> dict:
    """JSON-able dump of every router's FIB/LFIB/FTN + generations."""
    out: dict = {}
    for name, node in sorted(net.nodes.items()):
        fib = getattr(node, "fib", None)
        if fib is None:
            continue
        entry: dict = {
            "fib_gen": fib.generation,
            "routes": sorted(
                (str(prefix), r.out_ifname, str(r.next_hop), r.source)
                for prefix, r in fib.routes()
            ),
        }
        lfib = getattr(node, "lfib", None)
        if lfib is not None:
            entry["lfib_gen"] = lfib.generation
            entry["lfib"] = sorted(
                (label, repr(e)) for label, e in lfib.entries().items()
            )
        ftn = getattr(node, "ftn", None)
        if ftn is not None:
            entry["ftn_gen"] = ftn.generation
            entry["ftn"] = sorted(
                (str(f), repr(e)) for f, e in ftn.entries().items()
            )
        vrfs = getattr(node, "vrfs", None)
        if vrfs:
            entry["vrfs"] = {
                vname: {
                    "gen": vrf.generation,
                    "label": vrf.vpn_label,
                    "rd": str(vrf.rd),
                    "routes": sorted(
                        (str(p), r.kind, r.out_ifname, str(r.next_hop),
                         str(r.remote_pe), r.vpn_label)
                        for p, r in vrf.routes().items()
                    ),
                }
                for vname, vrf in sorted(vrfs.items())
            }
        out[name] = entry
    return out


class TestSnapshotRoundTrip:
    @slow_settings
    @given(provisioned_networks())
    def test_tables_generations_and_schedule_survive(self, built) -> None:
        net, _prov = built
        # Materialize a domain view so its cached generation is part of
        # the round-trip subject.
        view = net.domain_view()
        before_tables = _fib_contents(net)
        before_sched = pending_schedule(net.sim)
        before_caches = verify_cache_coherence(net)

        net2, _ = restore_network(snapshot_network(net))

        assert _fib_contents(net2) == before_tables
        assert pending_schedule(net2.sim) == before_sched
        assert verify_cache_coherence(net2) == before_caches
        assert net2.topology_generation == net.topology_generation
        view2 = net2.domain_view()
        assert view2.generation == view.generation
        assert view2.order_names == view.order_names
        # The restored view is a cache *hit*: its generation matches the
        # restored topology counter, so no SPF state was thrown away.
        assert view2.generation == net2.topology_generation

    @slow_settings
    @given(provisioned_networks(), st.integers(0, 2**16))
    def test_rng_streams_continue_identically(self, built, draws_seed) -> None:
        net, _prov = built
        g = net.streams.stream("prop.traffic")
        g.random(7)  # advance mid-stream before the checkpoint
        blob = snapshot_network(net)
        expect = g.random(5).tolist()
        net2, _ = restore_network(blob)
        assert net2.streams.stream("prop.traffic").random(5).tolist() == expect
        assert net2.streams.names() == net.streams.names()

    @slow_settings
    @given(provisioned_networks())
    def test_pending_events_fire_identically(self, built) -> None:
        net, _prov = built
        net2, _ = restore_network(snapshot_network(net))
        net.sim.run(until=6.0)
        net2.sim.run(until=6.0)
        probes = {k: v for k, v in net.counters if k.startswith("probe.")}
        probes2 = {k: v for k, v in net2.counters if k.startswith("probe.")}
        assert probes2 == probes
        assert net2.sim.events_processed == net.sim.events_processed
