"""Tests for the Network container, topology builders, and SPF convergence."""

import pytest

from repro.net.address import IPv4Address, Prefix
from repro.net.packet import IPHeader, Packet
from repro.routing.spf import advertised_prefixes, converge, spf_paths
from repro.topology import (
    Network,
    attach_host,
    build_backbone,
    build_fish,
    build_full_mesh,
    build_line,
    build_star,
)


class TestNetworkWiring:
    def test_duplicate_node_rejected(self):
        net = Network()
        net.add_router("r1")
        with pytest.raises(ValueError):
            net.add_router("r1")

    def test_loopback_autoassigned_unique(self):
        net = Network()
        a, b = net.add_router("a"), net.add_router("b")
        assert a.loopback is not None and b.loopback is not None
        assert a.loopback != b.loopback
        assert Network.LOOPBACK_POOL.contains(a.loopback)

    def test_connect_creates_interfaces_and_addresses(self):
        net = Network()
        a, b = net.add_router("a"), net.add_router("b")
        dl = net.connect(a, b, 1e6, 0.001)
        assert dl.if_ab.name == "to-b" and dl.if_ba.name == "to-a"
        # Both ends addressed from one /30.
        subnet = next(iter(a.connected_prefixes))
        assert subnet.length == 30
        assert subnet in b.connected_prefixes

    def test_parallel_links_get_distinct_ifnames(self):
        net = Network()
        a, b = net.add_router("a"), net.add_router("b")
        net.connect(a, b)
        dl2 = net.connect(a, b)
        assert dl2.if_ab.name == "to-b.2"

    def test_connect_by_name(self):
        net = Network()
        net.add_router("a"); net.add_router("b")
        dl = net.connect("a", "b")
        assert dl.a.name == "a"

    def test_link_between(self):
        net = Network()
        net.add_router("a"); net.add_router("b"); net.add_router("c")
        net.connect("a", "b")
        assert net.link_between("a", "b") is not None
        assert net.link_between("b", "a") is not None
        assert net.link_between("a", "c") is None

    def test_graph_export(self):
        net = Network()
        build_line(net, 3)
        g = net.graph()
        assert g.number_of_nodes() == 3
        assert g.number_of_edges() == 2
        assert g["r0"]["r1"]["metric"] == 1.0

    def test_set_up_down(self):
        net = Network()
        build_line(net, 2)
        dl = net.link_between("r0", "r1")
        dl.set_up(False)
        assert not dl.link_ab.up and not dl.link_ba.up


class TestBuilders:
    def test_line(self):
        net = Network()
        routers = build_line(net, 5)
        assert len(routers) == 5
        assert len(net.duplex_links) == 4

    def test_star(self):
        net = Network()
        hub, leaves = build_star(net, 6)
        assert len(leaves) == 6
        assert len(net.duplex_links) == 6
        assert all(net.link_between("hub", leaf.name) for leaf in leaves)

    def test_full_mesh(self):
        net = Network()
        routers = build_full_mesh(net, 5)
        assert len(net.duplex_links) == 10  # 5*4/2

    def test_fish_shape(self):
        net = Network()
        nodes = build_fish(net)
        assert set(nodes) == set("ABCDEFGH")
        assert len(net.duplex_links) == 8
        # Top branch carries metric 2.
        assert net.link_between("B", "C").metric == 2

    def test_backbone_shape(self):
        net = Network()
        nodes = build_backbone(net)
        assert len(nodes) == 12
        assert len(net.duplex_links) == 22
        # Core is a full mesh of P1..P4.
        for i in range(1, 5):
            for j in range(i + 1, 5):
                assert net.link_between(f"P{i}", f"P{j}") is not None

    def test_backbone_rates(self):
        net = Network()
        build_backbone(net, core_rate_bps=45e6, edge_rate_bps=10e6)
        assert net.link_between("P1", "P2").rate_bps == 45e6
        assert net.link_between("E1", "P1").rate_bps == 10e6


class TestSpf:
    def test_full_reachability_after_converge(self):
        net = Network()
        build_backbone(net)
        converge(net)
        routers = net.routers()
        for src in routers:
            for dst in routers:
                if src is dst:
                    continue
                entry = src.fib.lookup(dst.loopback)
                assert entry is not None, f"{src.name} cannot reach {dst.name}"

    def test_shortest_path_respects_metric(self):
        net = Network()
        a, b, c = build_line(net, 3)
        # Add a direct a-c link with a huge metric: must not be used.
        net.connect(a, c, metric=10)
        converge(net)
        assert spf_paths(net, "r0", "r2") == ["r0", "r1", "r2"]

    def test_direct_link_used_when_cheap(self):
        net = Network()
        a, b, c = build_line(net, 3)
        net.connect(a, c, metric=1)
        converge(net)
        assert spf_paths(net, "r0", "r2") == ["r0", "r2"]

    def test_deterministic_tiebreak(self):
        """Equal-cost paths resolve to the lexicographically smallest."""
        net = Network()
        s = net.add_router("s"); t = net.add_router("t")
        m1 = net.add_router("m1"); m2 = net.add_router("m2")
        net.connect(s, m1); net.connect(m1, t)
        net.connect(s, m2); net.connect(m2, t)
        converge(net)
        assert spf_paths(net, "s", "t") == ["s", "m1", "t"]

    def test_customer_domain_excluded(self):
        net = Network()
        a, b = build_line(net, 2)
        ce = net.add_router("ce")
        ce.domain = "customer"
        net.connect(ce, a)
        converge(net)
        # Core routers have no route to the CE's loopback.
        assert b.fib.lookup(ce.loopback) is None
        # And the CE got no SPF routes at all.
        assert all(e.source != "spf" for _, e in ce.fib.routes())

    def test_connected_routes_installed(self):
        net = Network()
        a, b = build_line(net, 2)
        converge(net)
        subnet = next(iter(a.connected_prefixes))
        entry = a.fib.get(subnet)
        assert entry is not None and entry.source == "connected"
        assert entry.next_hop is None

    def test_advertised_prefixes_reachable(self):
        net = Network()
        a, b, c = build_line(net, 3)
        a.advertised_prefixes.add(Prefix.parse("10.42.0.0/24"))
        converge(net)
        entry = c.fib.lookup(IPv4Address.parse("10.42.0.7"))
        assert entry is not None and entry.source == "spf"

    def test_advertised_prefixes_helper(self):
        net = Network()
        a, b = build_line(net, 2)
        a.advertised_prefixes.add(Prefix.parse("10.1.0.0/24"))
        prefixes = advertised_prefixes(a)
        assert Prefix.of(a.loopback, 32) in prefixes
        assert Prefix.parse("10.1.0.0/24") in prefixes

    def test_spf_paths_raises_when_partitioned(self):
        import networkx as nx
        net = Network()
        net.add_router("a"); net.add_router("b")
        with pytest.raises(nx.NetworkXNoPath):
            spf_paths(net, "a", "b")


class TestEndToEndIpForwarding:
    def test_ping_across_backbone(self):
        net = Network()
        nodes = build_backbone(net)
        h1 = attach_host(net, nodes["E1"], "10.10.0.1")
        h2 = attach_host(net, nodes["E8"], "10.10.0.2")
        converge(net)
        got = []
        h2.add_local_sink(got.append)
        p = Packet(ip=IPHeader(IPv4Address.parse("10.10.0.1"),
                               IPv4Address.parse("10.10.0.2")), payload_bytes=100)
        net.sim.schedule(0.0, lambda: h1.send(p))
        net.run(until=1.0)
        assert len(got) == 1

    def test_ttl_expiry_drops(self):
        net = Network()
        routers = build_line(net, 5)
        h1 = attach_host(net, routers[0], "10.10.0.1")
        h2 = attach_host(net, routers[4], "10.10.0.2")
        converge(net)
        got = []
        h2.add_local_sink(got.append)
        p = Packet(ip=IPHeader(IPv4Address.parse("10.10.0.1"),
                               IPv4Address.parse("10.10.0.2"), ttl=2),
                   payload_bytes=100)
        net.sim.schedule(0.0, lambda: h1.send(p))
        net.run(until=1.0)
        assert got == []
        assert sum(r.stats.dropped_ttl for r in routers) == 1

    def test_no_route_drop(self):
        net = Network()
        routers = build_line(net, 2)
        h1 = attach_host(net, routers[0], "10.10.0.1")
        converge(net)
        p = Packet(ip=IPHeader(IPv4Address.parse("10.10.0.1"),
                               IPv4Address.parse("99.9.9.9")), payload_bytes=100)
        net.sim.schedule(0.0, lambda: h1.send(p))
        net.run(until=1.0)
        assert routers[0].stats.dropped_no_route == 1

    def test_utilization_report(self):
        net = Network()
        routers = build_line(net, 2, rate_bps=1e6)
        h1 = attach_host(net, routers[0], "10.10.0.1")
        h2 = attach_host(net, routers[1], "10.10.0.2")
        converge(net)
        from repro.traffic.generators import CbrSource
        src = CbrSource(net.sim, h1.send, "f", "10.10.0.1", "10.10.0.2",
                        rate_bps=0.5e6, payload_bytes=500)
        src.start(0.0, stop_at=2.0)
        net.run(until=2.0)
        util = net.link_utilization(2.0)
        assert util["r0->r1"] == pytest.approx(0.5, rel=0.1)
        assert util["r1->r0"] == 0.0
