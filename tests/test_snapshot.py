"""Converged-state snapshots: format, fail-fast header, restore parity.

The two contracts under test:

* **Format**: a snapshot is magic + versioned JSON header + pickle; any
  mismatch of magic, schema, or repro version fails fast with a clear
  :class:`~repro.sim.snapshot.SnapshotError` before the payload is
  touched.
* **Parity**: a seeded run that passes through snapshot→restore is
  bit-identical to the uninterrupted run — both the warm-start shape
  (snapshot the converged build, restore, then run) and the true resume
  shape (snapshot *mid-run*, with packets in flight and events pending,
  and run the rest from the image).
"""

from __future__ import annotations

import json
import struct
from typing import Any, Callable

import pytest

import repro
from repro.obs import runtime
from repro.obs.flightrec import FlightRecorder
from repro.sim.engine import Simulator, _BOUND_CODE, bind
from repro.sim.randomness import RandomStreams
from repro.sim.snapshot import (
    MAGIC,
    SCHEMA,
    SnapshotError,
    load,
    pending_schedule,
    read_header,
    restore_network,
    save,
    snapshot_network,
    verify_cache_coherence,
)
from repro.topology import Network


# ----------------------------------------------------------------------
# Format + header


def _small_net() -> Network:
    net = Network(seed=5)
    net.add_router("a")
    net.add_router("b")
    net.connect("a", "b", 10e6, 1e-3)
    return net


def test_roundtrip_small_topology() -> None:
    net = _small_net()
    blob = snapshot_network(net, {"note": "hi"})
    net2, extras = restore_network(blob)
    assert sorted(net2.nodes) == sorted(net.nodes)
    assert extras == {"note": "hi"}
    assert net2.topology_generation == net.topology_generation
    assert net2.sim.now == net.sim.now
    # The restored graph is internally consistent: extras/nodes reference
    # the same objects, not parallel copies.
    assert net2.duplex_links[0].a is net2.nodes["a"]


def test_header_fields(tmp_path) -> None:
    net = _small_net()
    path = str(tmp_path / "n.snap")
    size = save(path, net)
    assert size > len(MAGIC)
    header = read_header(path)
    assert header["schema"] == SCHEMA
    assert header["repro_version"] == repro.__version__
    assert "python" in header and "pickle_protocol" in header


def _tamper_header(blob: bytes, **overrides: Any) -> bytes:
    """Rewrite the snapshot's JSON header, keeping payload intact."""
    off = len(MAGIC)
    (hlen,) = struct.unpack_from("<I", blob, off)
    start = off + 4
    header = json.loads(blob[start : start + hlen].decode())
    header.update(overrides)
    new = json.dumps(header, sort_keys=True).encode()
    return MAGIC + struct.pack("<I", len(new)) + new + blob[start + hlen :]


def test_bad_magic_fails_fast() -> None:
    with pytest.raises(SnapshotError, match="bad magic"):
        restore_network(b"not a snapshot at all")


def test_schema_mismatch_fails_fast() -> None:
    blob = snapshot_network(_small_net())
    bad = _tamper_header(blob, schema="repro.snapshot/99")
    with pytest.raises(SnapshotError, match="schema"):
        restore_network(bad)


def test_version_mismatch_fails_fast() -> None:
    blob = snapshot_network(_small_net())
    bad = _tamper_header(blob, repro_version="0.0.1")
    with pytest.raises(SnapshotError, match="repro '?0.0.1'?"):
        restore_network(bad)


def test_python_mismatch_fails_fast() -> None:
    blob = snapshot_network(_small_net())
    bad = _tamper_header(blob, python="2.7")
    with pytest.raises(SnapshotError, match="Python"):
        restore_network(bad)


def test_truncated_blob_fails_fast() -> None:
    blob = snapshot_network(_small_net())
    with pytest.raises(SnapshotError):
        restore_network(blob[: len(MAGIC) + 2])


def test_generator_in_graph_rejected() -> None:
    net = _small_net()
    net.nodes["a"].oops = (i for i in range(3))  # type: ignore[attr-defined]
    with pytest.raises(SnapshotError, match="generator"):
        snapshot_network(net)


def test_attached_telemetry_rejected() -> None:
    runtime.reset()
    runtime.enable(profile=False)
    try:
        net = _small_net()
        assert net.telemetry is not None
        with pytest.raises(SnapshotError, match="telemetry"):
            snapshot_network(net)
    finally:
        runtime.reset()


def test_restore_reattaches_telemetry_when_enabled() -> None:
    blob = snapshot_network(_small_net())
    runtime.reset()
    runtime.enable(profile=False)
    try:
        net, _ = restore_network(blob)
        assert net.telemetry is not None
        assert net.trace.flight is net.telemetry.flight
    finally:
        runtime.reset()


# ----------------------------------------------------------------------
# RNG stream state


def test_rng_get_set_state_roundtrip() -> None:
    rs = RandomStreams(seed=9)
    g = rs.stream("x")
    g.random(10)
    state = rs.get_state()
    ahead = g.random(5).tolist()
    rs2 = RandomStreams(seed=0)
    rs2.set_state(state)
    assert rs2.seed == 9
    assert rs2.stream("x").random(5).tolist() == ahead
    # ...and an untouched stream keeps deriving from the restored seed.
    assert rs2.stream("y").random() == RandomStreams(seed=9).stream("y").random()


def test_rng_reseed_only_before_first_draw() -> None:
    rs = RandomStreams(seed=1)
    rs.reseed(7)
    assert rs.seed == 7
    rs.stream("a")
    with pytest.raises(RuntimeError, match="reseed"):
        rs.reseed(8)


# ----------------------------------------------------------------------
# bind() closures survive with profiler-recognisable identity


def test_bind_closure_survives_snapshot() -> None:
    net = _small_net()
    hits: list[int] = []  # local list → the callback must be rebuilt

    net.sim.schedule(1.0, bind(hits.append, 1))
    blob = snapshot_network(net)
    net2, _ = restore_network(blob)
    (t, desc, _args), = pending_schedule(net2.sim)
    assert t == 1.0
    bucket = net2.sim._buckets[1.0]
    assert bucket.callback.__code__ is _BOUND_CODE
    net2.sim.run(until=2.0)


def test_pending_schedule_lists_live_events_in_order() -> None:
    sim = Simulator()
    sim.schedule(2.0, bind(print, "late"))
    sim.schedule(1.0, bind(print, "early"))
    doomed = sim.schedule(1.5, bind(print, "never"))
    doomed.cancel()
    times = [t for t, _d, _a in pending_schedule(sim)]
    assert times == [1.0, 2.0]


# ----------------------------------------------------------------------
# Parity: warm-start shape (snapshot the converged build, then run)


def _trace(run_fn: Callable[[], object]) -> list[tuple]:
    """Run under a big flight recorder; normalized per-hop event tuples.

    Same first-appearance uid normalization as tests/test_engine_parity —
    packet uids come from a process-global counter, so absolute values
    differ between runs while the structure must not.
    """
    runtime.reset()
    runtime.enable(flight_capacity=1 << 20, profile=False)
    try:
        run_fn()
        records = []
        for session in runtime.sessions():
            records.extend(session.flight._ring)
    finally:
        runtime.reset()
    ids: dict[int, int] = {}
    out = []
    for r in records:
        u = ids.setdefault(r.uid, len(ids))
        out.append((
            r.time, r.node, r.event, u, r.flow, r.seq, r.ifname,
            r.labels, r.in_label, r.out_label, r.reason, r.backlog,
        ))
    return out


def test_e2_restored_run_trace_bit_identical() -> None:
    from repro.experiments.e2_qos import _build, run_config

    net, src, dst = _build("mpls-diffserv", seed=0)
    blob = snapshot_network(net, {"src": src.name, "dst": dst.name})
    before = verify_cache_coherence(net)

    def cold() -> None:
        run_config("mpls-diffserv", seed=77, measure_s=1.5)

    def warm() -> None:
        net2, extras = restore_network(blob)
        assert verify_cache_coherence(net2) == before
        run_config(
            "mpls-diffserv", seed=77, measure_s=1.5,
            prebuilt=(net2, net2.nodes[extras["src"]], net2.nodes[extras["dst"]]),
        )

    a, b = _trace(cold), _trace(warm)
    assert len(a) > 1000
    assert a == b


def test_e5_restored_run_trace_bit_identical() -> None:
    from repro.experiments.e5_sla import _build, run_stage

    ctx = _build("full", seed=0)
    net = ctx.pop("net")
    blob = snapshot_network(net, ctx)

    def cold() -> None:
        run_stage("full", seed=93, measure_s=1.5)

    def warm() -> None:
        net2, extras = restore_network(blob)
        run_stage("full", seed=93, measure_s=1.5,
                  prebuilt={"net": net2, **extras})

    a, b = _trace(cold), _trace(warm)
    assert len(a) > 1000
    assert a == b


# ----------------------------------------------------------------------
# Parity: true resume (snapshot mid-run, packets in flight, finish from
# the image) — the tentpole's bit-identical resumed-trace contract.


def _armed_e2(seed: int) -> Network:
    """Converged e2 backbone with sources + a manual flight recorder."""
    from repro.experiments.common import ExperimentRun
    from repro.experiments.e2_qos import _build
    from repro.qos.dscp import DSCP
    from repro.traffic.generators import OnOffSource, voice_source

    net, src, dst = _build("mpls-diffserv", seed)
    net.trace.flight = FlightRecorder(capacity=1 << 20)
    run = ExperimentRun(net, warmup_s=0.2, measure_s=1.4)
    run.sink_at(dst)
    run.add_source(
        voice_source(net.sim, src.send, "voice", "10.50.0.1", "10.50.0.2")
    )
    run.add_source(
        OnOffSource(
            net.sim, src.send, "data", "10.50.0.1", "10.50.0.2",
            payload_bytes=700, dscp=int(DSCP.AF11), proto="tcp",
            peak_bps=4e6, mean_on_s=0.2, mean_off_s=0.3,
            rng=net.streams.stream("e2.data"),
        )
    )
    return net


def _normalized(rec: FlightRecorder) -> list[tuple]:
    ids: dict[int, int] = {}
    return [
        (r.time, r.node, r.event, ids.setdefault(r.uid, len(ids)), r.flow,
         r.seq, r.ifname, r.labels, r.in_label, r.out_label, r.reason,
         r.backlog)
        for r in rec._ring
    ]


def test_mid_run_snapshot_resumes_bit_identically() -> None:
    # Uninterrupted reference run.
    net_a = _armed_e2(seed=31)
    net_a.run(until=2.0)
    ref = _normalized(net_a.trace.flight)
    assert len(ref) > 1000

    # Identical twin, paused mid-measurement with traffic in flight...
    net_b = _armed_e2(seed=31)
    net_b.run(until=0.9)
    assert net_b.sim.pending > 0  # there really is a schedule to carry
    blob = snapshot_network(net_b)

    # ...finished from the image (flight recorder rides in the snapshot,
    # so the restored run's ring holds the whole [0, 2] history).
    net_c, _ = restore_network(blob)
    assert pending_schedule(net_c.sim) == pending_schedule(net_b.sim)
    net_c.run(until=2.0)
    assert _normalized(net_c.trace.flight) == ref


def test_save_load_file_roundtrip(tmp_path) -> None:
    from repro.experiments.e5_sla import _build

    ctx = _build("full", seed=3)
    net = ctx.pop("net")
    path = str(tmp_path / "e5.snap")
    save(path, net, ctx)
    net2, extras = load(path)
    assert set(extras) == set(ctx)
    assert extras["s1"].hosts[0] is net2.nodes[extras["s1"].hosts[0].name]
    assert verify_cache_coherence(net2) == verify_cache_coherence(net)
