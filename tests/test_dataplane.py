"""Tests for the unified data-plane pipeline (repro.dataplane).

Covers the refactor's contracts:

* Router, Lsr, and PeRouter all forward through one shared
  :class:`~repro.dataplane.ForwardingPipeline` (parity suite);
* the generation-stamped flow/label/VRF caches go cold after every
  control-plane event that changed a forwarding table — SPF
  reconvergence with a real topology delta, ``reset_ldp``, FRR bypass
  activation, VRF route churn — and stay warm when the tables are
  untouched (a no-op ``reconverge`` leaves FIB generations alone);
* ``POP_PROCESS`` label stacks are processed iteratively (no recursion);
* ``flow_hash`` is memoized on the packet.
"""

import sys
import zlib

from repro.dataplane import ForwardingPipeline, GenCache, flow_hash
from repro.mpls import (
    FastReroute,
    Lsr,
    TrafficEngineering,
    reset_ldp,
    run_ldp,
)
from repro.mpls.lfib import LabelOp, LfibEntry
from repro.net.address import IPv4Address, Prefix
from repro.net.packet import IPHeader, Packet
from repro.routing.router import Router
from repro.routing.router import flow_hash as flow_hash_reexport
from repro.routing.spf import converge, reconverge
from repro.topology import Network, attach_host, build_fish
from repro.vpn.pe import PeRouter
from repro.vpn.provision import VpnProvisioner


def pkt(src="10.0.0.1", dst="10.0.0.2", ttl=64, sport=0, dport=0):
    return Packet(
        ip=IPHeader(IPv4Address.parse(src), IPv4Address.parse(dst), ttl=ttl,
                    src_port=sport, dst_port=dport),
        payload_bytes=100,
    )


# ----------------------------------------------------------------------
# flow_hash memoization
# ----------------------------------------------------------------------
class TestFlowHashMemoization:
    def test_memoizes_crc32_on_packet(self):
        p = pkt(sport=1234, dport=80)
        assert p.flow_hash_cache is None
        h = flow_hash(p)
        ip = p.ip
        key = f"{ip.src.value}|{ip.dst.value}|{ip.proto}|{ip.src_port}|{ip.dst_port}"
        assert h == zlib.crc32(key.encode("ascii"))
        assert p.flow_hash_cache == h

    def test_cached_value_wins_over_header(self):
        # The 5-tuple is immutable in flight, so the memo is never
        # invalidated — even a (non-modeled) header rewrite keeps the hash.
        p = pkt()
        h = flow_hash(p)
        p.ip.dst = IPv4Address.parse("10.99.99.99")
        assert flow_hash(p) == h

    def test_distinct_flows_distinct_hashes(self):
        assert flow_hash(pkt(sport=1)) != flow_hash(pkt(sport=2))

    def test_router_reexport_is_same_function(self):
        assert flow_hash_reexport is flow_hash


# ----------------------------------------------------------------------
# GenCache
# ----------------------------------------------------------------------
class _FakeTable:
    def __init__(self):
        self.generation = 0


class TestGenCache:
    def test_hit_miss_counters(self):
        t = _FakeTable()
        c = GenCache(t)
        assert c.get("k") is None and c.misses == 1
        c.put("k", "v")
        assert c.get("k") == "v" and c.hits == 1

    def test_primary_generation_bump_flushes(self):
        t = _FakeTable()
        c = GenCache(t)
        c.get("k"); c.put("k", "v")
        t.generation += 1
        assert c.get("k") is None
        assert c.invalidations == 1 and len(c) == 0

    def test_secondary_generation_bump_flushes(self):
        t, u = _FakeTable(), _FakeTable()
        c = GenCache(t, u)
        c.get("k"); c.put("k", "v")
        u.generation += 1
        assert c.get("k") is None and c.invalidations == 1

    def test_stable_generation_keeps_entries(self):
        t = _FakeTable()
        c = GenCache(t)
        c.get("k"); c.put("k", "v")
        for _ in range(5):
            assert c.get("k") == "v"
        assert c.invalidations == 0 and c.hits == 5


# ----------------------------------------------------------------------
# POP_PROCESS: iterative label-stack processing
# ----------------------------------------------------------------------
class TestPopProcessIterative:
    def _lsr_with_stack(self, depth):
        net = Network()
        a = net.add_node(Lsr(net.sim, "a"))
        b = net.add_node(Lsr(net.sim, "b"))
        net.connect(a, b, 10e6, 0.001)
        p = pkt(dst=str(a.loopback))
        labels = range(100, 100 + depth)
        for label in labels:
            a.lfib.install(label, LfibEntry(LabelOp.POP_PROCESS))
        # Stack bottom-up so label 100+depth-1 is on top and popped first.
        for label in labels:
            p.push_label(label)
        return net, a, p

    def test_depth_10_stack_delivered(self):
        net, a, p = self._lsr_with_stack(10)
        a.handle(p, "in")
        assert a.stats.delivered == 1
        assert not p.mpls_stack

    def test_deep_stack_needs_no_python_stack(self):
        # Regression guard for the old recursive _handle_mpls: with one
        # Python frame per popped label a 200-deep stack would blow the
        # tightened recursion limit; the iterative loop runs in O(1) frames.
        net, a, p = self._lsr_with_stack(200)
        frame, depth = sys._getframe(), 0
        while frame is not None:
            depth += 1
            frame = frame.f_back
        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(depth + 60)
        try:
            a.handle(p, "in")
        finally:
            sys.setrecursionlimit(limit)
        assert a.stats.delivered == 1


# ----------------------------------------------------------------------
# Cache invalidation on control-plane events
# ----------------------------------------------------------------------
class TestCacheInvalidation:
    def _router_line(self):
        net = Network()
        r = [net.add_router(f"r{i}") for i in range(3)]
        net.connect(r[0], r[1]); net.connect(r[1], r[2])
        converge(net)
        return net, r

    def test_flow_cache_hits_on_repeat_destination(self):
        net, r = self._router_line()
        dst = str(r[2].loopback)
        for _ in range(3):
            net.sim.schedule(0.0, lambda: r[0].handle(pkt(dst=dst), "in"))
            net.run(until=net.sim.now + 1.0)
        fc = r[0].pipeline.flow_cache
        assert fc.misses == 1 and fc.hits == 2
        assert r[2].stats.delivered == 3

    def test_flow_cache_cold_after_reconverge(self):
        # A reconverge that actually rewrote r0's FIB (link flap on the
        # r1-r2 hop withdraws and reinstalls the r2 routes) must flush.
        net, r = self._router_line()
        dst = str(r[2].loopback)
        net.sim.schedule(0.0, lambda: r[0].handle(pkt(dst=dst), "in"))
        net.run(until=net.sim.now + 1.0)
        fc = r[0].pipeline.flow_cache
        before = fc.invalidations
        dl = net.link_between("r1", "r2")
        dl.set_up(False)
        reconverge(net)
        dl.set_up(True)
        reconverge(net)
        net.sim.schedule(0.0, lambda: r[0].handle(pkt(dst=dst), "in"))
        net.run(until=net.sim.now + 1.0)
        assert fc.invalidations == before + 1
        assert fc.misses == 2 and fc.hits == 0
        assert r[2].stats.delivered == 2

    def test_flow_cache_warm_after_noop_reconverge(self):
        # No topology change -> no FIB change -> generations hold and the
        # cached decision keeps serving (it is provably still valid).
        net, r = self._router_line()
        dst = str(r[2].loopback)
        net.sim.schedule(0.0, lambda: r[0].handle(pkt(dst=dst), "in"))
        net.run(until=net.sim.now + 1.0)
        fc = r[0].pipeline.flow_cache
        before = fc.invalidations
        reconverge(net)
        net.sim.schedule(0.0, lambda: r[0].handle(pkt(dst=dst), "in"))
        net.run(until=net.sim.now + 1.0)
        assert fc.invalidations == before
        assert fc.misses == 1 and fc.hits == 1
        assert r[2].stats.delivered == 2

    def test_lookup_census_counts_cache_hits(self):
        # E8's per-node lookup counters must keep meaning "packets that
        # consulted this table" whether or not the cache answered.
        net, r = self._router_line()
        dst = str(r[2].loopback)
        for _ in range(4):
            net.sim.schedule(0.0, lambda: r[0].handle(pkt(dst=dst), "in"))
            net.run(until=net.sim.now + 1.0)
        assert r[0].fib.lookups == 4

    def _ldp_line(self):
        net = Network()
        r = [net.add_node(Lsr(net.sim, f"r{i}")) for i in range(3)]
        net.connect(r[0], r[1]); net.connect(r[1], r[2])
        converge(net)
        run_ldp(net)
        return net, r

    def test_label_cache_hits_on_lsp(self):
        net, r = self._ldp_line()
        dst = str(r[2].loopback)
        for _ in range(3):
            net.sim.schedule(0.0, lambda: r[0].handle(pkt(dst=dst), "in"))
            net.run(until=net.sim.now + 1.0)
        lc = r[1].pipeline.label_cache
        assert lc.hits == 2 and lc.misses == 1
        assert r[1].lfib.lookups == 3
        assert r[2].stats.delivered == 3

    def test_caches_cold_after_reset_ldp(self):
        net, r = self._ldp_line()
        dst = str(r[2].loopback)
        net.sim.schedule(0.0, lambda: r[0].handle(pkt(dst=dst), "in"))
        net.run(until=net.sim.now + 1.0)
        before = r[0].pipeline.flow_cache.invalidations
        reset_ldp(net)
        # The ingress flow cache watches the FTN generation: the cached
        # (route, nhlfe) decision must not keep imposing withdrawn labels.
        net.sim.schedule(0.0, lambda: r[0].handle(pkt(dst=dst), "in"))
        net.run(until=net.sim.now + 1.0)
        assert r[0].pipeline.flow_cache.invalidations == before + 1
        assert r[2].stats.delivered == 2        # second packet went plain IP
        assert r[1].lfib.lookups == 1           # no labeled packet reached r1

    def test_label_cache_cold_after_lfib_churn(self):
        net = Network()
        a = net.add_node(Lsr(net.sim, "a"))
        b = net.add_node(Lsr(net.sim, "b"))
        net.connect(a, b)
        a.lfib.install(16, LfibEntry(LabelOp.SWAP, out_label=17, out_ifname="to-b"))
        for _ in range(2):
            p = pkt()
            p.push_label(16)
            net.sim.schedule(0.0, lambda q=p: a.handle(q, "in"))
            net.run(until=net.sim.now + 1.0)
        lc = a.pipeline.label_cache
        assert lc.hits == 1
        before = lc.invalidations
        a.lfib.install(18, LfibEntry(LabelOp.SWAP, out_label=19, out_ifname="to-b"))
        p = pkt()
        p.push_label(16)
        net.sim.schedule(0.0, lambda: a.handle(p, "in"))
        net.run(until=net.sim.now + 1.0)
        assert lc.invalidations == before + 1

    def test_label_cache_cold_after_frr_activation(self):
        net = Network()
        nodes = build_fish(net, rate_bps=10e6, trunk_rate_bps=30e6,
                           node_factory=lambda n, name: n.add_node(Lsr(n.sim, name)))
        tx = attach_host(net, nodes["A"], "10.71.0.1", name="tx")
        attach_host(net, nodes["F"], "10.71.0.2", name="rx")
        converge(net)
        te = TrafficEngineering(net)
        lsp = te.signal("prim", ["A", "B", "G", "H", "E", "F"], 2e6, php=False)
        te.autoroute(lsp, [Prefix.parse("10.71.0.2/32")])
        frr = FastReroute(te)
        frr.protect_lsp(lsp)
        g = nodes["G"]

        net.sim.schedule(0.0, lambda: tx.send(pkt("10.71.0.1", "10.71.0.2")))
        net.run(until=net.sim.now + 1.0)
        assert g.pipeline.label_cache.misses >= 1
        before = g.pipeline.label_cache.invalidations

        net.link_between("G", "H").set_up(False)
        assert frr.trigger_link_failure("G", "H") == 1
        net.sim.schedule(0.0, lambda: tx.send(pkt("10.71.0.1", "10.71.0.2")))
        net.run(until=net.sim.now + 1.0)
        # The PLR's swapped-in SWAP_PUSH entry bumped its LFIB generation;
        # a stale cached SWAP toward the dead link must not survive.
        assert g.pipeline.label_cache.invalidations == before + 1
        assert nodes["F"].interfaces["to-rx"].stats.tx_packets == 2

    def test_vrf_cache_cold_after_route_churn(self):
        net = Network(seed=5)
        pe1 = net.add_node(PeRouter(net.sim, "pe1"))
        p = net.add_node(Lsr(net.sim, "p"))
        pe2 = net.add_node(PeRouter(net.sim, "pe2"))
        net.connect(pe1, p); net.connect(p, pe2)
        prov = VpnProvisioner(net)
        vpn = prov.create_vpn("corp")
        s1 = prov.add_site(vpn, pe1, prefix="10.1.0.0/24")
        s2 = prov.add_site(vpn, pe2, prefix="10.2.0.0/24")
        converge(net)
        run_ldp(net)
        prov.converge_bgp()
        h1, h2 = s1.hosts[0], s2.hosts[0]
        dst = str(next(a for a in h2.addresses if str(a).startswith("10.2.0.")))

        for _ in range(2):
            net.sim.schedule(0.0, lambda: h1.send(pkt("10.1.0.1", dst)))
            net.run(until=net.sim.now + 1.0)
        cache = pe1.pipeline.vrf_caches["corp"]
        assert cache.hits >= 1
        before = cache.invalidations

        pe1.vrfs["corp"].withdraw("10.2.0.0/24")
        net.sim.schedule(0.0, lambda: h1.send(pkt("10.1.0.1", dst)))
        net.run(until=net.sim.now + 1.0)
        assert cache.invalidations == before + 1


# ----------------------------------------------------------------------
# Pipeline parity: one engine, three node classes
# ----------------------------------------------------------------------
class TestPipelineParity:
    def _one_of_each(self):
        net = Network()
        return (
            net.add_router("r"),
            net.add_node(Lsr(net.sim, "lsr")),
            net.add_node(PeRouter(net.sim, "pe")),
        )

    def test_all_nodes_share_the_engine_class(self):
        for node in self._one_of_each():
            assert type(node.pipeline) is ForwardingPipeline

    def test_no_subclass_overrides_handle(self):
        # The refactor's core claim: per-hop logic lives in the pipeline,
        # not in three divergent handle() reimplementations.
        assert "handle" not in vars(Lsr)
        assert "handle" not in vars(PeRouter)
        assert Lsr.handle is Router.handle
        assert PeRouter.handle is Router.handle

    def test_stage_composition_per_class(self):
        r, lsr, pe = self._one_of_each()
        assert r.pipeline.stages() == ("ingress", "lookup", "egress")
        assert lsr.pipeline.stages() == (
            "ingress", "label-op", "lookup", "qos-mark", "egress")
        assert pe.pipeline.stages() == (
            "ingress", "vrf-demux", "label-op", "lookup", "qos-mark", "egress")

    def _line_of(self, factory):
        net = Network()
        n = [net.add_node(factory(net.sim, f"n{i}")) for i in range(3)]
        net.connect(n[0], n[1]); net.connect(n[1], n[2])
        converge(net)
        return net, n

    def test_plain_ip_forwarding_identical_across_classes(self):
        # Without MPLS/VPN configuration all three classes must make the
        # exact same per-hop decisions for an IP packet.
        results = {}
        for factory in (Router, Lsr, PeRouter):
            net, n = self._line_of(factory)
            got = []
            n[2].add_local_sink(got.append)
            p = pkt(dst=str(n[2].loopback), ttl=64)
            net.sim.schedule(0.0, lambda: n[0].handle(p, "in"))
            net.run(until=net.sim.now + 1.0)
            assert len(got) == 1
            results[factory.__name__] = (got[0].ip.ttl, got[0].hops,
                                         n[1].stats.forwarded)
        assert len(set(results.values())) == 1

    def test_labeled_packet_at_ip_router_is_config_error(self):
        net = Network()
        r = net.add_router("r")
        p = pkt()
        p.push_label(500)
        r.handle(p, "in")
        assert r.stats.dropped_other == 1
