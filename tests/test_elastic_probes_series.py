"""Tests for elastic (AIMD) sources, probe agents, time series, and Waxman."""

import numpy as np
import pytest

from repro.metrics.probes import ProbeAgent
from repro.metrics.sla import VOICE_SLA
from repro.metrics.timeseries import TimeSeries, attach_flow_series, attach_link_series
from repro.routing import converge
from repro.topology import Network, attach_host, build_line, build_waxman
from repro.traffic import CbrSource, FlowSink
from repro.traffic.elastic import ElasticSource


def bottleneck(rate=5e6, seed=12):
    net = Network(seed=seed)
    routers = build_line(net, 3, rate_bps=rate)
    tx = attach_host(net, routers[0], "10.77.0.1", name="tx", rate_bps=100e6)
    rx = attach_host(net, routers[2], "10.77.0.2", name="rx", rate_bps=100e6)
    converge(net)
    return net, tx, rx, routers


class TestElasticSource:
    def test_fills_the_pipe(self):
        net, tx, rx, _ = bottleneck()
        flow = ElasticSource(net.sim, tx, rx, "10.77.0.1", "10.77.0.2")
        flow.start(0.0)
        net.run(until=10.0)
        assert flow.goodput_bps(10.0) > 0.8 * 5e6

    def test_in_order_delivery_only(self):
        net, tx, rx, _ = bottleneck()
        flow = ElasticSource(net.sim, tx, rx, "10.77.0.1", "10.77.0.2")
        flow.start(0.0)
        net.run(until=5.0)
        # Receiver counter only advances in order: delivered <= max seq sent.
        assert flow.delivered_segments <= flow._next_seq

    def test_backs_off_on_congestion(self):
        """Two flows share fairly-ish: each gets a substantial share and
        the sum does not exceed the bottleneck."""
        net, tx, rx, _ = bottleneck()
        f1 = ElasticSource(net.sim, tx, rx, "10.77.0.1", "10.77.0.2",
                           flow="t1", dst_port=81)
        f2 = ElasticSource(net.sim, tx, rx, "10.77.0.1", "10.77.0.2",
                           flow="t2", dst_port=82)
        f1.start(0.0)
        f2.start(0.5)
        net.run(until=15.0)
        g1, g2 = f1.goodput_bps(15.0), f2.goodput_bps(15.0)
        assert g1 + g2 < 5e6 * 1.01
        assert min(g1, g2) > 0.15 * 5e6  # no starvation

    def test_losses_trigger_backoff(self):
        """A tiny buffer forces drops: the flow must register recovery
        events and still make progress."""
        net = Network(seed=13)
        from repro.qos.queues import DropTailFifo
        net.default_qdisc_factory = lambda n, i: DropTailFifo(capacity_packets=5)
        routers = build_line(net, 3, rate_bps=2e6)
        tx = attach_host(net, routers[0], "10.78.0.1", name="tx", rate_bps=100e6)
        rx = attach_host(net, routers[2], "10.78.0.2", name="rx", rate_bps=100e6)
        converge(net)
        flow = ElasticSource(net.sim, tx, rx, "10.78.0.1", "10.78.0.2")
        flow.start(0.0)
        net.run(until=10.0)
        assert flow.fast_retransmits + flow.timeouts > 0
        assert flow.goodput_bps(10.0) > 0.5 * 2e6

    def test_stop_halts(self):
        net, tx, rx, _ = bottleneck()
        flow = ElasticSource(net.sim, tx, rx, "10.77.0.1", "10.77.0.2")
        flow.start(0.0)
        net.run(until=1.0)
        sent_at_stop = flow._next_seq
        flow.stop()
        net.run(until=3.0)
        assert flow._next_seq == sent_at_stop

    def test_rtt_estimator_converges(self):
        net, tx, rx, _ = bottleneck(rate=50e6)  # uncongested
        flow = ElasticSource(net.sim, tx, rx, "10.77.0.1", "10.77.0.2")
        flow.start(0.0)
        net.run(until=3.0)
        # Path RTT ~ 2*(2 links * 1ms + host links) + serialization ≈ 5 ms.
        assert flow._srtt is not None
        assert 0.001 < flow._srtt < 0.05


class TestProbeAgent:
    def test_probe_tracks_ground_truth(self):
        """Probe delay estimate matches a parallel real flow's delay."""
        net, tx, rx, _ = bottleneck(rate=5e6)
        real = CbrSource(net.sim, tx.send, "real", "10.77.0.1", "10.77.0.2",
                         payload_bytes=200, rate_bps=1e6)
        sink = FlowSink(net.sim).attach(rx)
        probe = ProbeAgent(net.sim, tx, rx, "10.77.0.1", "10.77.0.2",
                           dscp=0, interval_s=0.05)
        real.start(0.0, stop_at=5.0)
        probe.start(0.0, stop_at=5.0)
        net.run(until=6.0)
        from repro.metrics import summarize_flow
        truth = summarize_flow(real, sink, duration_s=5.0)
        est = probe.stats(duration_s=5.0)
        assert est.mean_delay_s == pytest.approx(truth.mean_delay_s, rel=0.5)

    def test_probe_sla_check(self):
        net, tx, rx, _ = bottleneck(rate=50e6)
        probe = ProbeAgent(net.sim, tx, rx, "10.77.0.1", "10.77.0.2", dscp=46)
        probe.start(0.0, stop_at=3.0)
        net.run(until=4.0)
        verdict = probe.check(VOICE_SLA, duration_s=3.0)
        assert verdict.conformant
        assert probe.loss_ratio() == 0.0

    def test_probe_flows_are_distinct(self):
        net, tx, rx, _ = bottleneck()
        p1 = ProbeAgent(net.sim, tx, rx, "10.77.0.1", "10.77.0.2")
        p2 = ProbeAgent(net.sim, tx, rx, "10.77.0.1", "10.77.0.2")
        assert p1.flow != p2.flow

    def test_probe_ids_are_per_simulator(self):
        """Probe flow names must be deterministic per run, not global:
        creating probes in one network must not shift the names another
        (fresh) network's probes get — that would leak state across
        repetitions in a single process."""
        def first_flow():
            net, tx, rx, _ = bottleneck()
            return ProbeAgent(net.sim, tx, rx, "10.77.0.1", "10.77.0.2").flow

        a = first_flow()
        b = first_flow()  # same construction order -> same name
        assert a == b == "__probe1"

    def test_percentile_nan_when_empty(self):
        net, tx, rx, _ = bottleneck()
        probe = ProbeAgent(net.sim, tx, rx, "10.77.0.1", "10.77.0.2")
        assert np.isnan(probe.delay_percentile(95))


class TestTimeSeries:
    def test_binning(self):
        ts = TimeSeries(bin_s=1.0, horizon_s=5.0)
        ts.add(0.5, 10)
        ts.add(0.9, 5)
        ts.add(2.1, 7)
        totals = ts.totals()
        assert totals[0] == 15 and totals[2] == 7

    def test_rate(self):
        ts = TimeSeries(bin_s=0.5)
        ts.add(0.1, 100)
        assert ts.rate()[0] == 200.0

    def test_grows_past_horizon(self):
        ts = TimeSeries(bin_s=1.0, horizon_s=2.0)
        ts.add(50.0, 1)
        assert ts.totals()[50] == 1

    def test_growth_preserves_earlier_bins(self):
        """Extending past the horizon must not disturb recorded data."""
        ts = TimeSeries(bin_s=1.0, horizon_s=2.0)
        ts.add(0.5, 10)
        ts.add(1.5, 20)
        before = ts.totals()[:2].copy()
        ts.add(99.0, 5)  # forces a large extension
        totals = ts.totals()
        np.testing.assert_array_equal(totals[:2], before)
        assert totals[99] == 5
        assert len(totals) >= 100

    def test_growth_is_incremental(self):
        ts = TimeSeries(bin_s=0.5, horizon_s=1.0)
        for i in range(10):
            ts.add(i * 0.5, 1)
        assert ts.totals().sum() == 10
        assert all(t == 1 for t in ts.totals()[:10])

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeSeries(bin_s=0)
        ts = TimeSeries(bin_s=1.0)
        with pytest.raises(ValueError):
            ts.add(-1.0, 1)

    def test_nonzero_span(self):
        ts = TimeSeries(bin_s=1.0, horizon_s=10.0)
        assert ts.nonzero_span() == (0.0, 0.0)
        ts.add(2.5, 1)
        ts.add(7.5, 1)
        assert ts.nonzero_span() == (2.0, 7.0)

    def test_link_series_records_transmissions(self):
        net, tx, rx, routers = bottleneck(rate=5e6)
        dl = net.link_between("r0", "r1")
        series = attach_link_series(dl.if_ab, bin_s=0.5, horizon_s=5.0)
        src = CbrSource(net.sim, tx.send, "f", "10.77.0.1", "10.77.0.2",
                        payload_bytes=480, rate_bps=2e6)
        src.start(0.0, stop_at=2.0)
        net.run(until=3.0)
        rates = series.rate()
        # Bins during the transmission carry ~2 Mb/s; later bins are ~0.
        assert rates[1] == pytest.approx(2e6, rel=0.15)
        assert rates[-1] == 0.0

    def test_flow_series_sees_failure_gap(self):
        """The E11-style figure: goodput drops to zero during an outage."""
        # Use the existing experiment path but tap a series via sink wrap.
        net, tx, rx, routers = bottleneck(rate=5e6)
        sink = FlowSink(net.sim).attach(rx)
        series = attach_flow_series(sink, "f", bin_s=0.25, horizon_s=6.0)
        src = CbrSource(net.sim, tx.send, "f", "10.77.0.1", "10.77.0.2",
                        payload_bytes=480, rate_bps=1e6)
        src.start(0.0, stop_at=5.0)
        dl = net.link_between("r1", "r2")
        net.sim.schedule(2.0, lambda: dl.set_up(False))
        net.sim.schedule(3.0, lambda: dl.set_up(True))
        net.run(until=6.0)
        rates = series.rate()
        # Bin at t=1s busy; bin at t=2.5s silent; bin at t=4s busy again.
        assert rates[int(1.0 / 0.25)] > 0.5e6
        assert rates[int(2.5 / 0.25)] == 0.0
        assert rates[int(4.0 / 0.25)] > 0.5e6


class TestWaxman:
    def test_connected_and_seeded(self):
        net = Network(seed=42)
        routers = build_waxman(net, 15)
        converge(net)
        from repro.routing.spf import spf_paths
        # Chain guarantee: every pair reachable.
        path = spf_paths(net, "w0", "w14")
        assert path[0] == "w0" and path[-1] == "w14"

    def test_deterministic_given_seed(self):
        def edges(seed):
            net = Network(seed=seed)
            build_waxman(net, 12)
            return sorted((dl.a.name, dl.b.name) for dl in net.duplex_links)
        assert edges(3) == edges(3)
        assert edges(3) != edges(4)

    def test_alpha_controls_density(self):
        def n_links(alpha):
            net = Network(seed=5)
            build_waxman(net, 20, alpha=alpha)
            return len(net.duplex_links)
        assert n_links(0.9) > n_links(0.1)

    def test_parameter_validation(self):
        net = Network(seed=1)
        with pytest.raises(ValueError):
            build_waxman(net, 5, alpha=0.0)
        with pytest.raises(ValueError):
            build_waxman(net, 5, beta=-1.0)

    def test_delay_scales_with_distance(self):
        net = Network(seed=6)
        build_waxman(net, 10, delay_per_unit_s=10e-3)
        delays = [dl.delay_s for dl in net.duplex_links]
        assert max(delays) > min(delays)  # geometry actually matters
