"""Tests for DSCP/PHB mappings, classifiers, and RED/WRED."""

import numpy as np
import pytest

from repro.net.address import IPv4Address, Prefix
from repro.net.packet import IPHeader, Packet
from repro.qos.classifier import (
    FlowMatch,
    MultiFieldClassifier,
    ba_classifier,
    exp_classifier,
)
from repro.qos.dscp import (
    DEFAULT_CLASS_ORDER,
    DSCP,
    class_of_dscp_name,
    dscp_to_class,
    dscp_to_exp,
    exp_to_class,
)
from repro.qos.red import RedParams, RedQueueManager, WredQueueManager, standard_wred


def pkt(dscp=0, src="10.0.0.1", dst="10.0.0.2", proto="udp", sport=0, dport=0):
    return Packet(ip=IPHeader(IPv4Address.parse(src), IPv4Address.parse(dst),
                              dscp=dscp, proto=proto, src_port=sport, dst_port=dport),
                  payload_bytes=80)


class TestDscpMappings:
    def test_class_order(self):
        assert DEFAULT_CLASS_ORDER == ("EF", "AF", "BE")

    def test_ef_maps_to_class_0(self):
        assert dscp_to_class(int(DSCP.EF)) == 0
        assert class_of_dscp_name(int(DSCP.EF)) == "EF"

    def test_af_maps_to_class_1(self):
        for d in (DSCP.AF11, DSCP.AF22, DSCP.AF33, DSCP.AF41):
            assert dscp_to_class(int(d)) == 1

    def test_be_and_unknown_map_to_class_2(self):
        assert dscp_to_class(int(DSCP.BE)) == 2
        assert dscp_to_class(63) == 2  # unknown codepoint

    def test_exp_mapping_ef(self):
        assert dscp_to_exp(int(DSCP.EF)) == 5

    def test_exp_mapping_af_drop_precedence(self):
        assert dscp_to_exp(int(DSCP.AF11)) == 4
        assert dscp_to_exp(int(DSCP.AF12)) == 3
        assert dscp_to_exp(int(DSCP.AF13)) == 2

    def test_exp_mapping_be(self):
        assert dscp_to_exp(int(DSCP.BE)) == 0

    def test_exp_to_class_inverse_consistent(self):
        for d in (DSCP.EF, DSCP.AF11, DSCP.AF13, DSCP.BE):
            assert exp_to_class(dscp_to_exp(int(d))) == dscp_to_class(int(d))


class TestClassifiers:
    def test_ba_uses_outer_dscp(self):
        inner = pkt(dscp=int(DSCP.EF))
        outer = Packet(ip=IPHeader(IPv4Address(1), IPv4Address(2), dscp=0),
                       inner=inner, encrypted=True)
        assert ba_classifier(inner) == 0
        assert ba_classifier(outer) == 2  # encrypted tunnel hides EF

    def test_exp_classifier_prefers_label(self):
        p = pkt(dscp=int(DSCP.BE))
        p.push_label(100, exp=5)
        assert exp_classifier(p) == 0   # EXP says EF despite BE DSCP

    def test_exp_classifier_falls_back_to_dscp(self):
        assert exp_classifier(pkt(dscp=int(DSCP.EF))) == 0
        assert exp_classifier(pkt(dscp=int(DSCP.BE))) == 2

    def test_multifield_first_match_wins(self):
        mf = MultiFieldClassifier(default_class=2)
        mf.add_rule(FlowMatch(dst_port=5004), 0)
        mf.add_rule(FlowMatch(proto="tcp"), 1)
        assert mf(pkt(dport=5004, proto="tcp")) == 0
        assert mf(pkt(proto="tcp")) == 1
        assert mf(pkt()) == 2
        assert len(mf) == 2

    def test_multifield_prefix_match(self):
        mf = MultiFieldClassifier()
        mf.add_rule(FlowMatch(dst=Prefix.parse("10.2.0.0/16")), 1)
        assert mf(pkt(dst="10.2.3.4")) == 1
        assert mf(pkt(dst="10.3.0.1")) == 0

    def test_flowmatch_all_fields(self):
        m = FlowMatch(src=Prefix.parse("10.1.0.0/16"), dst=Prefix.parse("10.2.0.0/16"),
                      proto="udp", src_port=10, dst_port=20, dscp=46)
        good = pkt(dscp=46, src="10.1.0.1", dst="10.2.0.1", sport=10, dport=20)
        assert m.matches(good)
        for field, bad in [
            ("src", pkt(dscp=46, src="10.9.0.1", dst="10.2.0.1", sport=10, dport=20)),
            ("dst", pkt(dscp=46, src="10.1.0.1", dst="10.9.0.1", sport=10, dport=20)),
            ("proto", pkt(dscp=46, src="10.1.0.1", dst="10.2.0.1", proto="tcp", sport=10, dport=20)),
            ("sport", pkt(dscp=46, src="10.1.0.1", dst="10.2.0.1", sport=11, dport=20)),
            ("dport", pkt(dscp=46, src="10.1.0.1", dst="10.2.0.1", sport=10, dport=21)),
            ("dscp", pkt(dscp=0, src="10.1.0.1", dst="10.2.0.1", sport=10, dport=20)),
        ]:
            assert not m.matches(bad), field


class TestRed:
    def test_params_validation(self):
        with pytest.raises(ValueError):
            RedParams(min_th=0, max_th=10)
        with pytest.raises(ValueError):
            RedParams(min_th=10, max_th=5)
        with pytest.raises(ValueError):
            RedParams(min_th=1, max_th=2, max_p=0.0)

    def test_no_drops_below_min_threshold(self):
        rng = np.random.default_rng(0)
        red = RedQueueManager(RedParams(min_th=1000, max_th=2000), rng)
        for _ in range(200):
            assert not red.should_drop(pkt(), backlog_bytes=100, now=0.0)

    def test_forced_drop_above_max_threshold(self):
        rng = np.random.default_rng(0)
        red = RedQueueManager(RedParams(min_th=100, max_th=200, weight=1.0), rng)
        assert red.should_drop(pkt(), backlog_bytes=500, now=0.0)
        assert red.forced_drops == 1

    def test_probabilistic_region_drops_some(self):
        rng = np.random.default_rng(0)
        red = RedQueueManager(RedParams(min_th=100, max_th=1000, max_p=0.5, weight=1.0), rng)
        decisions = [red.should_drop(pkt(), backlog_bytes=800, now=0.0) for _ in range(500)]
        dropped = sum(decisions)
        assert 0 < dropped < 500
        assert red.random_drops == dropped

    def test_drop_probability_monotone_in_avg(self):
        def rate(backlog):
            rng = np.random.default_rng(7)
            red = RedQueueManager(
                RedParams(min_th=100, max_th=1000, max_p=0.3, weight=1.0), rng
            )
            return sum(
                red.should_drop(pkt(), backlog_bytes=backlog, now=0.0)
                for _ in range(800)
            )
        assert rate(200) < rate(600) < rate(950)

    def test_ewma_smooths(self):
        rng = np.random.default_rng(0)
        red = RedQueueManager(RedParams(min_th=100, max_th=200, weight=0.01), rng)
        # One huge instantaneous backlog barely moves the slow average.
        red.should_drop(pkt(), backlog_bytes=10_000, now=0.0)
        assert red.avg < 150


class TestWred:
    def test_precedence_ordering(self):
        """AF13 (prec 2) must drop no less than AF11 (prec 0) at equal load."""
        def drops(dscp):
            rng = np.random.default_rng(3)
            wred = standard_wred(10_000, rng)
            return sum(
                wred.should_drop(pkt(dscp=dscp), backlog_bytes=4_000, now=0.0)
                for _ in range(600)
            )
        d11, d13 = drops(int(DSCP.AF11)), drops(int(DSCP.AF13))
        assert d13 > d11

    def test_empty_curves_rejected(self):
        with pytest.raises(ValueError):
            WredQueueManager({}, np.random.default_rng(0))

    def test_unknown_precedence_uses_most_aggressive(self):
        rng = np.random.default_rng(0)
        wred = WredQueueManager(
            {0: RedParams(min_th=5000, max_th=9000, weight=1.0)}, rng
        )
        # BE has precedence 0 here; just ensure dispatch works and counts.
        assert not wred.should_drop(pkt(dscp=0), backlog_bytes=100, now=0.0)
        assert wred.total_drops == 0
