"""System-level property-based tests (hypothesis).

These go beyond per-module invariants: they generate random topologies,
random LSP churn, and random VPN provisioning plans, and assert the
architectural guarantees the experiments rely on — reservation accounting,
LDP binding consistency, VPN isolation, and packet conservation.
"""

import itertools

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.mpls import IMPLICIT_NULL, AdmissionError, Lsr, TrafficEngineering, run_ldp
from repro.mpls.lfib import LabelOp
from repro.net.address import IPv4Address
from repro.net.packet import IPHeader, Packet
from repro.routing import converge
from repro.topology import Network, build_backbone
from repro.vpn import PeRouter, VpnProvisioner

slow_settings = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


# ---------------------------------------------------------------------------
# Random LSR topologies
# ---------------------------------------------------------------------------

@st.composite
def lsr_topologies(draw):
    """A random connected LSR graph: a spanning chain + extra chords."""
    n = draw(st.integers(min_value=3, max_value=8))
    extra = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        max_size=6,
    ))
    net = Network(seed=draw(st.integers(0, 2**16)))
    lsrs = [net.add_node(Lsr(net.sim, f"n{i}")) for i in range(n)]
    for i in range(n - 1):
        net.connect(lsrs[i], lsrs[i + 1], 10e6, 1e-3)
    for a, b in extra:
        if a != b and net.link_between(f"n{a}", f"n{b}") is None:
            net.connect(lsrs[a], lsrs[b], 10e6, 1e-3)
    converge(net)
    return net, lsrs


class TestLdpConsistency:
    @slow_settings
    @given(lsr_topologies())
    def test_every_binding_chain_reaches_its_egress(self, topo):
        """From any LSR holding a binding for a FEC, following LFIB swaps
        hop by hop must reach the FEC's egress in < n steps, never hitting
        a missing entry."""
        net, lsrs = topo
        result = run_ldp(net)
        for fec, bindings in result.bindings.items():
            egress = next(
                name for name, lbl in bindings.items() if lbl == IMPLICIT_NULL
            )
            for start, in_label in bindings.items():
                if start == egress:
                    continue
                node = net.nodes[start]
                label = in_label
                for _hop in range(len(lsrs) + 1):
                    assert isinstance(node, Lsr)
                    entry = node.lfib.lookup(label)
                    assert entry is not None, f"broken chain at {node.name}"
                    iface = node.interfaces[entry.out_ifname]
                    nxt = iface.peer_node
                    if entry.op is LabelOp.POP:
                        assert nxt.name == egress
                        break
                    assert entry.op is LabelOp.SWAP
                    node, label = nxt, entry.out_label
                else:
                    pytest.fail("label chain did not terminate")

    @slow_settings
    @given(lsr_topologies())
    def test_bindings_unique_per_platform(self, topo):
        """No two FECs may share an incoming label on one LSR."""
        net, lsrs = topo
        result = run_ldp(net)
        per_node: dict[str, list[int]] = {}
        for fec, bindings in result.bindings.items():
            for name, label in bindings.items():
                if label == IMPLICIT_NULL:
                    continue
                per_node.setdefault(name, []).append(label)
        for name, labels in per_node.items():
            assert len(labels) == len(set(labels)), f"label collision on {name}"


# ---------------------------------------------------------------------------
# TE reservation accounting under random churn
# ---------------------------------------------------------------------------

class TestTeReservationInvariant:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(
        st.tuples(st.sampled_from(["up", "down"]),
                  st.floats(min_value=0.5e6, max_value=6e6)),
        min_size=1, max_size=25,
    ))
    def test_reservations_never_exceed_capacity_and_teardown_restores(self, ops):
        net = Network(seed=1)
        lsrs = [net.add_node(Lsr(net.sim, f"r{i}")) for i in range(4)]
        for i in range(3):
            net.connect(lsrs[i], lsrs[i + 1], 10e6, 1e-3)
        net.connect(lsrs[0], lsrs[3], 10e6, 1e-3)  # alternate path
        converge(net)
        te = TrafficEngineering(net)
        live: list[str] = []
        counter = itertools.count()
        for action, bw in ops:
            if action == "up":
                name = f"lsp{next(counter)}"
                try:
                    te.setup(name, "r0", "r3", bw)
                    live.append(name)
                except AdmissionError:
                    pass
            elif live:
                te.teardown(live.pop())
            # Invariant: no directed link over-reserved.
            for (u, v), reserved in te.reserved.items():
                assert reserved <= te._capacity(u, v) + 1e-6
                assert reserved >= -1e-6
        # Teardown everything: accounting returns to zero, labels freed.
        for name in live:
            te.teardown(name)
        assert all(abs(r) < 1e-6 for r in te.reserved.values())
        assert all(r.labels.in_use == 0 for r in lsrs)
        assert all(len(r.lfib) == 0 for r in lsrs)


# ---------------------------------------------------------------------------
# VPN isolation over random provisioning plans
# ---------------------------------------------------------------------------

@st.composite
def provisioning_plans(draw):
    """2-3 VPNs, each with 2-4 sites on random edge PEs, prefixes chosen
    from a *shared* pool so overlap across VPNs is common."""
    n_vpns = draw(st.integers(2, 3))
    pool = [f"10.0.{i}.0/24" for i in range(4)]
    plans = []
    for v in range(n_vpns):
        n_sites = draw(st.integers(2, 4))
        sites = []
        used = set()
        for _ in range(n_sites):
            pe = draw(st.sampled_from([f"E{i}" for i in range(1, 9)]))
            pfx = draw(st.sampled_from([p for p in pool if p not in used] or pool))
            used.add(pfx)
            sites.append((pe, pfx))
        plans.append(sites)
    return plans


class TestVpnIsolationProperty:
    @slow_settings
    @given(provisioning_plans())
    def test_no_vrf_ever_resolves_to_a_foreign_vpn(self, plans):
        """For every VPN and every address in every other VPN's sites, the
        VRF lookup must resolve to *this* VPN's own site (overlap) or miss —
        never to a route originated by another VPN."""
        net = Network(seed=9)

        def factory(n, name):
            cls = PeRouter if name.startswith("E") else Lsr
            return n.add_node(cls(n.sim, name))

        nodes = build_backbone(net, node_factory=factory)
        prov = VpnProvisioner(net)
        all_sites = {}
        for v, plan in enumerate(plans):
            vpn = prov.create_vpn(f"vpn{v}")
            for pe_name, pfx in plan:
                site = prov.add_site(vpn, nodes[pe_name], prefix=pfx, num_hosts=0)
                all_sites.setdefault(f"vpn{v}", []).append(site)
        converge(net)
        run_ldp(net)
        prov.converge_bgp()

        own_sites = {
            name: {s.site_id for s in sites} for name, sites in all_sites.items()
        }
        for vpn_name, sites in all_sites.items():
            for pe in prov.pes():
                vrf = pe.vrfs.get(vpn_name)
                if vrf is None:
                    continue
                for other_name, other_sites in all_sites.items():
                    for osite in other_sites:
                        route = vrf.lookup(osite.prefix.host(10))
                        if route is None or route.origin_site is None:
                            continue
                        assert route.origin_site in own_sites[vpn_name], (
                            f"{vpn_name} VRF resolved {osite.prefix} to a "
                            f"route from site {route.origin_site}"
                        )


# ---------------------------------------------------------------------------
# Packet conservation across a loaded backbone
# ---------------------------------------------------------------------------

class TestConservation:
    def test_sent_equals_delivered_plus_accounted_drops(self):
        """Soak the reference backbone with 8 random flows and verify
        every packet is either delivered or shows up in a drop counter —
        the simulator neither loses nor duplicates packets."""
        from repro.topology import attach_host
        from repro.traffic import CbrSource, FlowSink

        net = Network(seed=77)
        nodes = build_backbone(net, core_rate_bps=3e6, edge_rate_bps=2e6)
        hosts = {}
        for i, e in enumerate([f"E{k}" for k in range(1, 9)]):
            hosts[e] = attach_host(net, nodes[e], f"10.99.0.{i + 1}")
        converge(net)

        sinks = {e: FlowSink(net.sim).attach(h) for e, h in hosts.items()}
        pairs = [("E1", "E8"), ("E2", "E7"), ("E3", "E6"), ("E4", "E5"),
                 ("E8", "E1"), ("E7", "E2"), ("E6", "E3"), ("E5", "E4")]
        sources = []
        for i, (a, b) in enumerate(pairs):
            src = CbrSource(net.sim, hosts[a].send, f"f{i}",
                            str(hosts[a].loopback), str(hosts[b].loopback),
                            payload_bytes=700, rate_bps=2.5e6)
            src.start(0.0, stop_at=2.0)
            sources.append((src, sinks[b]))
        net.run(until=5.0)

        total_sent = sum(s.sent for s, _ in sources)
        total_recv = sum(sink.received(f"f{i}") for i, (_s, sink) in enumerate(sources))
        queue_drops = net.total_drops()
        node_drops = sum(
            n.stats.dropped_no_route + n.stats.dropped_ttl + n.stats.dropped_other
            for n in net.nodes.values()
        )
        assert total_sent == total_recv + queue_drops + node_drops
        assert total_recv > 0 and queue_drops > 0  # actually congested


class TestTtlUniformModel:
    """RFC 3443 uniform-model property: total hop count is conserved in
    the TTL regardless of how many push/pop/decrement cycles happen."""

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.sampled_from(["push", "pop", "dec"]),
                    min_size=1, max_size=40))
    def test_ttl_decrements_equal_dec_operations(self, ops):
        from repro.net.packet import IPHeader, Packet
        p = Packet(ip=IPHeader(IPv4Address(1), IPv4Address(2), ttl=255),
                   payload_bytes=10)
        decs = 0
        for op in ops:
            if op == "push":
                if len(p.mpls_stack) < 8:
                    p.push_label(16 + len(p.mpls_stack))
            elif op == "pop":
                if p.mpls_stack:
                    p.pop_label()
            else:
                p.decrement_ttl()
                decs += 1
        # Unwind the stack: the effective TTL must be exactly 255 - decs.
        while p.mpls_stack:
            p.pop_label()
        assert p.ip.ttl == 255 - decs


class TestCbqLongRunShares:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=1, max_value=4))
    def test_priority_class_gets_its_allocation(self, ratio):
        """Whatever the competing load, a no-borrow class drains at most
        (and under saturation, almost exactly) its allocated rate."""
        from repro.net.packet import IPHeader, Packet
        from repro.qos.cbq import CbqClass, CbqScheduler

        alloc = 8e3 * ratio  # bytes/s = 1000*ratio
        classes = [
            CbqClass("a", rate_bps=alloc, priority=0, can_borrow=False,
                     burst_bytes=500, capacity_packets=100000),
            CbqClass("b", rate_bps=8e3, priority=1, can_borrow=True,
                     capacity_packets=100000),
        ]
        sched = CbqScheduler(classes, lambda p: p.flow)
        for _ in range(3000):
            sched.enqueue(Packet(ip=IPHeader(IPv4Address(1), IPv4Address(2)),
                                 payload_bytes=80, flow=0), 0.0)
            sched.enqueue(Packet(ip=IPHeader(IPv4Address(1), IPv4Address(2)),
                                 payload_bytes=80, flow=1), 0.0)
        # Serve for 10 simulated seconds at fine steps.
        sent = {0: 0, 1: 0}
        t = 0.0
        while t < 10.0:
            pkt = sched.dequeue(t)
            if pkt is not None:
                sent[pkt.flow] += pkt.wire_bytes
            t += 0.001
        expected = 500 + alloc / 8.0 * 10.0   # burst + rate * time
        assert sent[0] <= expected * 1.05
        assert sent[0] >= expected * 0.8
