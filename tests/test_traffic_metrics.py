"""Tests for traffic generators, sinks, flow statistics, SLAs, and tables."""

import numpy as np
import pytest

from repro.metrics.sla import (
    BEST_EFFORT_SLA,
    DATA_SLA,
    VOICE_SLA,
    SlaSpec,
    evaluate,
)
from repro.metrics.stats import FlowStats, rfc3550_jitter, summarize_flow
from repro.metrics.table import render_table
from repro.net.address import IPv4Address
from repro.net.packet import IPHeader, Packet
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.traffic.generators import (
    CbrSource,
    OnOffSource,
    ParetoOnOffSource,
    PoissonSource,
    voice_source,
)
from repro.traffic.sink import FlowSink


class Collector:
    """Captures packets a generator emits."""

    def __init__(self):
        self.packets = []

    def __call__(self, pkt):
        self.packets.append(pkt)


class TestCbr:
    def test_rate_is_exact(self):
        sim = Simulator()
        out = Collector()
        src = CbrSource(sim, out, "f", "10.0.0.1", "10.0.0.2",
                        payload_bytes=480, rate_bps=1e6)
        src.start(0.0, stop_at=1.0)
        sim.run(until=2.0)
        sent_bits = sum(p.wire_bytes * 8 for p in out.packets)
        assert sent_bits == pytest.approx(1e6, rel=0.01)

    def test_sequence_numbers_monotone(self):
        sim = Simulator()
        out = Collector()
        src = CbrSource(sim, out, "f", "10.0.0.1", "10.0.0.2", rate_bps=1e6)
        src.start(0.0, stop_at=0.1)
        sim.run(until=1.0)
        assert [p.seq for p in out.packets] == list(range(len(out.packets)))

    def test_headers_stamped(self):
        sim = Simulator()
        out = Collector()
        src = CbrSource(sim, out, "f", "10.1.0.1", "10.2.0.2",
                        dscp=46, proto="udp", src_port=9, dst_port=5004,
                        rate_bps=1e6)
        src.start(0.0, stop_at=0.05)
        sim.run(until=1.0)
        p = out.packets[0]
        assert p.ip.dscp == 46 and p.ip.dst_port == 5004
        assert str(p.ip.src) == "10.1.0.1"
        assert p.flow == "f" and p.created == 0.0

    def test_stop_at_respected(self):
        sim = Simulator()
        out = Collector()
        src = CbrSource(sim, out, "f", "10.0.0.1", "10.0.0.2", rate_bps=1e6)
        src.start(0.5, stop_at=1.0)
        sim.run(until=5.0)
        assert all(0.5 <= p.created < 1.0 for p in out.packets)

    def test_manual_stop(self):
        sim = Simulator()
        out = Collector()
        src = CbrSource(sim, out, "f", "10.0.0.1", "10.0.0.2", rate_bps=1e6)
        src.start(0.0)
        sim.schedule(0.1, src.stop)
        sim.run(until=1.0)
        assert all(p.created <= 0.1 for p in out.packets)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            CbrSource(Simulator(), lambda p: None, "f", "10.0.0.1", "10.0.0.2",
                      rate_bps=0)

    def test_voice_profile(self):
        sim = Simulator()
        out = Collector()
        src = voice_source(sim, out, "v", "10.0.0.1", "10.0.0.2")
        src.start(0.0, stop_at=1.0)
        sim.run(until=2.0)
        assert len(out.packets) == 50  # one per 20 ms
        assert out.packets[0].payload_bytes == 160
        assert out.packets[0].ip.dscp == 46


class TestStochasticSources:
    def test_poisson_mean_rate(self):
        sim = Simulator()
        out = Collector()
        rng = RandomStreams(1).stream("t")
        src = PoissonSource(sim, out, "f", "10.0.0.1", "10.0.0.2",
                            payload_bytes=480, rate_bps=1e6, rng=rng)
        src.start(0.0, stop_at=20.0)
        sim.run(until=21.0)
        bits = sum(p.wire_bytes * 8 for p in out.packets)
        assert bits / 20.0 == pytest.approx(1e6, rel=0.1)

    def test_poisson_deterministic_given_stream(self):
        def run():
            sim = Simulator()
            out = Collector()
            rng = RandomStreams(5).stream("p")
            src = PoissonSource(sim, out, "f", "10.0.0.1", "10.0.0.2",
                                rate_bps=1e6, rng=rng)
            src.start(0.0, stop_at=2.0)
            sim.run(until=3.0)
            return [p.created for p in out.packets]
        assert run() == run()

    def test_onoff_mean_rate(self):
        sim = Simulator()
        out = Collector()
        rng = RandomStreams(2).stream("oo")
        src = OnOffSource(sim, out, "f", "10.0.0.1", "10.0.0.2",
                          payload_bytes=480, peak_bps=2e6,
                          mean_on_s=0.1, mean_off_s=0.1, rng=rng)
        src.start(0.0, stop_at=40.0)
        sim.run(until=41.0)
        bits = sum(p.wire_bytes * 8 for p in out.packets)
        assert src.offered_rate_bps == pytest.approx(1e6)
        assert bits / 40.0 == pytest.approx(1e6, rel=0.25)

    def test_onoff_is_bursty(self):
        """Inter-packet gaps must be bimodal: peak-rate gaps and off gaps."""
        sim = Simulator()
        out = Collector()
        rng = RandomStreams(3).stream("oo")
        src = OnOffSource(sim, out, "f", "10.0.0.1", "10.0.0.2",
                          payload_bytes=480, peak_bps=2e6,
                          mean_on_s=0.05, mean_off_s=0.2, rng=rng)
        src.start(0.0, stop_at=10.0)
        sim.run(until=11.0)
        gaps = np.diff([p.created for p in out.packets])
        peak_gap = 500 * 8 / 2e6
        assert (gaps < peak_gap * 1.01).sum() > 0
        assert (gaps > peak_gap * 10).sum() > 0

    def test_pareto_shape_validation(self):
        with pytest.raises(ValueError):
            ParetoOnOffSource(Simulator(), lambda p: None, "f",
                              "10.0.0.1", "10.0.0.2", shape=1.0,
                              rng=RandomStreams(0).stream("x"))

    def test_pareto_emits(self):
        sim = Simulator()
        out = Collector()
        rng = RandomStreams(4).stream("par")
        src = ParetoOnOffSource(sim, out, "f", "10.0.0.1", "10.0.0.2",
                                peak_bps=2e6, mean_on_s=0.05, mean_off_s=0.1,
                                shape=1.5, rng=rng)
        src.start(0.0, stop_at=5.0)
        sim.run(until=6.0)
        assert src.sent > 10
        assert len(out.packets) == src.sent

    def test_onoff_validation(self):
        with pytest.raises(ValueError):
            OnOffSource(Simulator(), lambda p: None, "f", "10.0.0.1", "10.0.0.2",
                        peak_bps=0, rng=RandomStreams(0).stream("x"))


class TestSinkAndStats:
    def _run_flow(self, drop_every=None, jitter=False):
        sim = Simulator()
        sink = FlowSink(sim)
        src_collector = []
        src = CbrSource(sim, src_collector.append, "f", "10.0.0.1", "10.0.0.2",
                        payload_bytes=480, rate_bps=1e6)
        # Pipe generator output through a fake network with fixed delay.
        def deliver(p, i=[0]):
            i[0] += 1
            if drop_every and i[0] % drop_every == 0:
                return
            delay = 0.01 + (0.002 if jitter and i[0] % 2 else 0.0)
            sim.schedule(delay, lambda: sink.on_delivery(p))
        src._send = deliver
        src.start(0.0, stop_at=1.0)
        sim.run(until=2.0)
        return src, sink

    def test_delay_measured(self):
        src, sink = self._run_flow()
        stats = summarize_flow(src, sink, duration_s=1.0)
        assert stats.mean_delay_s == pytest.approx(0.01)
        assert stats.p99_delay_s == pytest.approx(0.01)
        assert stats.loss_ratio == 0.0

    def test_loss_ratio(self):
        src, sink = self._run_flow(drop_every=4)
        stats = summarize_flow(src, sink, duration_s=1.0)
        assert stats.loss_ratio == pytest.approx(0.25, abs=0.01)

    def test_jitter_zero_for_constant_delay(self):
        src, sink = self._run_flow()
        stats = summarize_flow(src, sink, duration_s=1.0)
        assert stats.jitter_rfc3550_s == pytest.approx(0.0, abs=1e-12)

    def test_jitter_positive_for_varying_delay(self):
        src, sink = self._run_flow(jitter=True)
        stats = summarize_flow(src, sink, duration_s=1.0)
        assert stats.jitter_rfc3550_s > 0.001

    def test_throughput(self):
        src, sink = self._run_flow()
        stats = summarize_flow(src, sink, duration_s=1.0)
        assert stats.throughput_bps == pytest.approx(1e6, rel=0.02)

    def test_empty_flow_stats(self):
        sim = Simulator()
        sink = FlowSink(sim)
        src = CbrSource(sim, lambda p: None, "f", "10.0.0.1", "10.0.0.2",
                        rate_bps=1e6)
        src.start(0.0, stop_at=0.1)
        sim.run(until=1.0)
        stats = summarize_flow(src, sink, duration_s=0.1)
        assert stats.received == 0 and stats.loss_ratio == 1.0
        assert np.isnan(stats.mean_delay_s)

    def test_sink_unwraps_encapsulation(self):
        sim = Simulator()
        sink = FlowSink(sim)
        inner = Packet(ip=IPHeader(IPv4Address(1), IPv4Address(2)),
                       payload_bytes=10, flow="f", seq=0, created=0.0)
        outer = Packet(ip=IPHeader(IPv4Address(3), IPv4Address(4)),
                       inner=inner, encrypted=True, flow="f", created=0.0)
        sim.schedule(0.25, lambda: sink.on_delivery(outer))
        sim.run()
        rec = sink.record("f")
        assert rec.count == 1
        assert rec.delays[0] == pytest.approx(0.25)

    def test_rfc3550_formula(self):
        send = np.array([0.0, 0.02, 0.04])
        arrive = np.array([0.01, 0.031, 0.05])  # transit 10, 11, 10 ms
        j = rfc3550_jitter(send, arrive)
        # J1 = 0 + (1ms-0)/16 ; J2 = J1 + (1ms-J1)/16
        j1 = 0.001 / 16
        j2 = j1 + (0.001 - j1) / 16
        assert j == pytest.approx(j2)

    def test_rfc3550_short_series(self):
        assert rfc3550_jitter(np.array([0.0]), np.array([0.01])) == 0.0


class TestSla:
    def _stats(self, **kw):
        base = dict(flow="f", sent=100, received=100, mean_delay_s=0.01,
                    p50_delay_s=0.01, p95_delay_s=0.02, p99_delay_s=0.03,
                    max_delay_s=0.04, jitter_rfc3550_s=0.001, delay_std_s=0.002,
                    loss_ratio=0.0, throughput_bps=1e6, duration_s=1.0)
        base.update(kw)
        return FlowStats(**base)

    def test_conformant(self):
        v = evaluate(VOICE_SLA, self._stats())
        assert v.conformant and v.violations() == []

    def test_delay_violation(self):
        v = evaluate(VOICE_SLA, self._stats(p99_delay_s=0.2))
        assert not v.conformant and not v.delay_ok
        assert any("p99 delay" in s for s in v.violations())

    def test_jitter_violation(self):
        v = evaluate(VOICE_SLA, self._stats(jitter_rfc3550_s=0.05))
        assert not v.jitter_ok

    def test_loss_violation(self):
        v = evaluate(VOICE_SLA, self._stats(loss_ratio=0.1))
        assert not v.loss_ok

    def test_throughput_bound(self):
        spec = SlaSpec("t", min_throughput_bps=2e6)
        v = evaluate(spec, self._stats(throughput_bps=1e6))
        assert not v.throughput_ok

    def test_best_effort_always_passes(self):
        v = evaluate(BEST_EFFORT_SLA, self._stats(
            p99_delay_s=9.0, loss_ratio=0.9, jitter_rfc3550_s=1.0))
        assert v.conformant

    def test_nan_fails_bounded_metric(self):
        v = evaluate(VOICE_SLA, self._stats(p99_delay_s=float("nan")))
        assert not v.delay_ok

    def test_data_sla_ignores_jitter(self):
        v = evaluate(DATA_SLA, self._stats(jitter_rfc3550_s=9.0))
        assert v.jitter_ok


class TestTable:
    def test_render_basic(self):
        text = render_table([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "22" in lines[3]

    def test_column_selection_and_order(self):
        text = render_table([{"a": 1, "b": 2}], columns=["b", "a"])
        assert text.splitlines()[0].startswith("b")

    def test_title(self):
        text = render_table([{"a": 1}], title="T1")
        assert text.splitlines()[0] == "T1"

    def test_missing_cells_blank(self):
        text = render_table([{"a": 1}, {"b": 2}])
        assert "a" in text and "b" in text

    def test_float_formatting(self):
        text = render_table([{"x": 0.123456, "y": float("nan"), "z": 123456.0}])
        assert "0.123" in text and "nan" in text
