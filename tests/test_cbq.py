"""Tests for the CBQ link-sharing scheduler."""

import pytest

from repro.net.address import IPv4Address
from repro.net.packet import IPHeader, Packet
from repro.qos.cbq import CbqClass, CbqScheduler


def pkt(size=100, cls=0):
    return Packet(ip=IPHeader(IPv4Address(1), IPv4Address(2)),
                  payload_bytes=max(0, size - 20), flow=cls)


def by_tag(p):
    return p.flow


def sched(classes=None):
    if classes is None:
        classes = [
            CbqClass("voice", rate_bps=8e3, priority=0, can_borrow=False, burst_bytes=400),
            CbqClass("data", rate_bps=16e3, priority=1, can_borrow=True, burst_bytes=800),
            CbqClass("bulk", rate_bps=8e3, priority=2, can_borrow=True, burst_bytes=400),
        ]
    return CbqScheduler(classes, by_tag)


class TestBasics:
    def test_requires_classes(self):
        with pytest.raises(ValueError):
            CbqScheduler([], by_tag)

    def test_enqueue_classifies(self):
        q = sched()
        q.enqueue(pkt(cls=1), 0.0)
        assert len(q.cbq_classes[1].queue) == 1
        assert len(q) == 1

    def test_unknown_class_to_last(self):
        q = sched()
        q.enqueue(pkt(cls=42), 0.0)
        assert len(q.cbq_classes[-1].queue) == 1

    def test_empty_dequeue(self):
        assert sched().dequeue(0.0) is None

    def test_backlog_bytes(self):
        q = sched()
        q.enqueue(pkt(100, cls=0), 0.0)
        q.enqueue(pkt(60, cls=1), 0.0)
        assert q.backlog_bytes == 160


class TestPriorityAndUnderlimit:
    def test_underlimit_priority_class_served_first(self):
        q = sched()
        q.enqueue(pkt(100, cls=2), 0.0)
        q.enqueue(pkt(100, cls=0), 0.0)
        assert q.dequeue(0.0).flow == 0

    def test_overlimit_no_borrow_class_waits(self):
        """Voice (no borrow) exhausted its allocation: bulk gets the link."""
        q = sched()
        voice = q.cbq_classes[0]
        # Exhaust voice's bucket.
        voice.bucket.conforms(400, 0.0)
        q.enqueue(pkt(100, cls=0), 0.0)
        q.enqueue(pkt(100, cls=2), 0.0)
        out = q.dequeue(0.0)
        assert out.flow == 2

    def test_regulated_class_resumes_after_refill(self):
        q = sched()
        voice = q.cbq_classes[0]
        voice.bucket.conforms(400, 0.0)
        q.enqueue(pkt(100, cls=0), 0.0)
        # At 8 kb/s = 1 kB/s, 100 B refill in 0.1 s.
        assert q.dequeue(0.0) is None
        assert q.dequeue(0.11).flow == 0

    def test_next_eligible_reports_refill_time(self):
        q = sched()
        voice = q.cbq_classes[0]
        voice.bucket.conforms(400, 0.0)
        q.enqueue(pkt(100, cls=0), 0.0)
        t = q.next_eligible(0.0)
        assert t == pytest.approx(0.1, rel=0.01)

    def test_next_eligible_infinite_when_empty(self):
        assert sched().next_eligible(0.0) == float("inf")

    def test_next_eligible_now_for_borrowers(self):
        q = sched()
        q.enqueue(pkt(100, cls=2), 0.0)
        assert q.next_eligible(5.0) == 5.0


class TestBorrowing:
    def test_borrower_uses_idle_link(self):
        """Bulk may exceed its allocation when nothing else is queued."""
        q = sched()
        for _ in range(20):
            q.enqueue(pkt(100, cls=2), 0.0)
        got = 0
        while q.dequeue(0.0) is not None:
            got += 1
        assert got == 20  # 2000 B sent despite a 400 B allocation

    def test_non_borrower_cannot_exceed(self):
        q = sched()
        for _ in range(20):
            q.enqueue(pkt(100, cls=0), 0.0)
        got = 0
        while q.dequeue(0.0) is not None:
            got += 1
        assert got == 4  # exactly the 400 B burst allocation

    def test_borrow_respects_priority_order(self):
        """Among borrowers both overlimit, lower priority number wins."""
        classes = [
            CbqClass("a", rate_bps=8e3, priority=1, can_borrow=True, burst_bytes=100),
            CbqClass("b", rate_bps=8e3, priority=2, can_borrow=True, burst_bytes=100),
        ]
        q = CbqScheduler(classes, by_tag)
        classes[0].bucket.conforms(100, 0.0)
        classes[1].bucket.conforms(100, 0.0)
        q.enqueue(pkt(100, cls=1), 0.0)
        q.enqueue(pkt(100, cls=0), 0.0)
        assert q.dequeue(0.0).flow == 0


class TestStats:
    def test_class_stats(self):
        q = sched()
        q.enqueue(pkt(100, cls=1), 0.0)
        q.dequeue(0.0)
        stats = q.class_stats()
        assert stats["data"] == (1, 1, 0)
        assert stats["voice"] == (0, 0, 0)

    def test_capacity_drop_counted(self):
        classes = [CbqClass("only", rate_bps=8e3, capacity_packets=1)]
        q = CbqScheduler(classes, by_tag)
        assert q.enqueue(pkt(cls=0), 0.0)
        assert not q.enqueue(pkt(cls=0), 0.0)
        assert q.class_stats()["only"][2] == 1
