#!/usr/bin/env python3
"""Benchmark trend gate: diff fresh BENCH_*.json against committed baselines.

The perf suites under ``benchmarks/`` emit machine-readable result files
(``BENCH_forwarding.json``, ``BENCH_engine.json``, ...).  Each section
carries the measured ratio *and* the floor the suite asserted against,
so a checked-in copy doubles as the trend baseline: this tool reloads
both, prints the per-section delta, and fails when a freshly measured
ratio dropped below its recorded floor — the same contract the suites
enforce locally, replayed against the committed history so a silent
floor edit or a stale baseline shows up in review.

Usage::

    python tools/bench_trend.py [--baseline-dir benchmarks/baselines]
                                [--out bench-trend.txt] [--nonblocking]
                                BENCH_forwarding.json BENCH_engine.json

Rules, per section of each fresh file:

* the measured value is the first key present among ``speedup_vs_scalar``,
  ``speedup``, ``on_over_off``, ``scaling`` (all "higher is better");
* the floor is ``floor`` or ``min_required``; a section carrying
  ``"floor_enforced": false`` (e.g. single-core sweep scaling) is
  reported but never fails the gate;
* fresh value < floor ⇒ FLOOR regression (blocking);
* fresh value < baseline value ⇒ the delta is reported as a drift
  warning only — run-to-run noise on shared runners is expected, the
  floor is the contract;
* sections without a ratio key (raw timings like ``smoke_grid``) are
  listed for the record.

``--nonblocking`` or ``BENCH_PERF_NONBLOCKING=1`` in the environment
downgrades every failure to a report line with exit status 0, matching
the perf suites' behaviour on shared CI runners.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

_RATIO_KEYS = ("speedup_vs_scalar", "speedup", "on_over_off", "scaling")


def _ratio(section: dict) -> tuple[str, float] | None:
    for key in _RATIO_KEYS:
        value = section.get(key)
        if isinstance(value, (int, float)):
            return key, float(value)
    return None


def _floor(section: dict) -> float | None:
    for key in ("floor", "min_required"):
        value = section.get(key)
        if isinstance(value, (int, float)):
            return float(value)
    return None


def diff_file(fresh_path: Path, baseline_path: Path, lines: list[str]) -> list[str]:
    """Compare one fresh result file against its baseline.

    Appends human-readable rows to ``lines``; returns the list of
    blocking regression descriptions (empty when the gate passes).
    """
    regressions: list[str] = []
    fresh = json.loads(fresh_path.read_text())
    baseline: dict = {}
    if baseline_path.is_file():
        baseline = json.loads(baseline_path.read_text())
    else:
        lines.append(f"{fresh_path.name}: no baseline at {baseline_path} "
                     "(first run?) — floor check only")

    lines.append(f"== {fresh_path.name} ==")
    for name in sorted(fresh):
        section = fresh[name]
        if not isinstance(section, dict):
            continue
        found = _ratio(section)
        if found is None:
            lines.append(f"  {name}: (no ratio metric — recorded only)")
            continue
        key, value = found
        floor = _floor(section)
        enforced = section.get("floor_enforced", True) is not False
        base_section = baseline.get(name, {})
        base_value = None
        if isinstance(base_section, dict):
            base = _ratio(base_section)
            if base is not None and base[0] == key:
                base_value = base[1]

        status = "ok"
        if floor is not None and value < floor and enforced:
            status = "FLOOR-REGRESSION"
            regressions.append(
                f"{fresh_path.name}:{name}: {key}={value:.3f} "
                f"below floor {floor:.3f}"
            )
        elif floor is not None and value < floor:
            status = "below-floor (not enforced)"
        elif base_value is not None and value < base_value:
            status = f"drift ({100 * (value / base_value - 1):+.1f}% vs baseline)"

        base_txt = f"{base_value:.3f}" if base_value is not None else "—"
        floor_txt = f"{floor:.3f}" if floor is not None else "—"
        lines.append(
            f"  {name}: {key}={value:.3f}  baseline={base_txt}  "
            f"floor={floor_txt}  [{status}]"
        )
    return regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", nargs="+", type=Path,
                        help="freshly emitted BENCH_*.json files")
    parser.add_argument("--baseline-dir", type=Path,
                        default=Path("benchmarks/baselines"),
                        help="directory holding the committed baselines")
    parser.add_argument("--out", type=Path, default=None,
                        help="also write the report to this file")
    parser.add_argument("--nonblocking", action="store_true",
                        help="report regressions but exit 0 "
                             "(implied by BENCH_PERF_NONBLOCKING=1)")
    args = parser.parse_args(argv)

    nonblocking = args.nonblocking or bool(
        int(os.environ.get("BENCH_PERF_NONBLOCKING", "0") or "0")
    )

    lines: list[str] = []
    regressions: list[str] = []
    missing: list[str] = []
    for fresh_path in args.fresh:
        if not fresh_path.is_file():
            missing.append(str(fresh_path))
            lines.append(f"{fresh_path}: MISSING (benchmark suite not run?)")
            continue
        regressions.extend(
            diff_file(fresh_path, args.baseline_dir / fresh_path.name, lines)
        )

    if regressions:
        lines.append("")
        lines.append(f"{len(regressions)} floor regression(s):")
        lines.extend(f"  - {r}" for r in regressions)
    else:
        lines.append("")
        lines.append("no floor regressions")

    report = "\n".join(lines) + "\n"
    sys.stdout.write(report)
    if args.out is not None:
        args.out.write_text(report)

    failed = bool(regressions or missing)
    if failed and nonblocking:
        sys.stdout.write("BENCH_PERF_NONBLOCKING: regressions reported, "
                         "exit 0\n")
        return 0
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
