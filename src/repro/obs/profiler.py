"""Sampling profiler for the discrete-event kernel.

The kernel's hot loop (``Simulator.run``) routes every fired event through
``sim._profile_hook`` when one is installed; this module is that hook.  It
answers the questions ROADMAP's scaling PRs keep asking: *which event kinds
dominate*, *how expensive is one callback*, *how deep does the heap get*,
and *how many events per wall-second does the kernel sustain*.

Costs are kept proportional to what is measured:

* per event — one kind resolution (a couple of dict hits after warm-up)
  and a counter bump;
* every ``sample_every``-th event — a ``perf_counter`` pair plus two
  histogram observations (callback wall time, heap depth).

With no profiler attached the kernel pays exactly one ``is None`` check
per event (see ``sim/engine.py``).

Kind resolution understands the kernel's callback shapes: bound methods
(``Node.receive``), plain functions, callable objects — and crucially
``bind(...)`` closures, which all share one code object and are unwrapped
through their closure cell so attribution lands on the *inner* callback.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any

from repro.obs.registry import DEFAULT_TIME_BUCKETS, Histogram
from repro.sim.engine import _BOUND_CODE, Event, Simulator

__all__ = ["KernelProfiler", "DEPTH_BUCKETS"]

#: Heap-depth histogram bounds (events pending), powers of two to 64k.
DEPTH_BUCKETS: tuple[float, ...] = tuple(float(2**i) for i in range(17))

_CB_CELL = _BOUND_CODE.co_freevars.index("callback")


class KernelProfiler:
    """Attachable event-loop profiler (see module docstring)."""

    def __init__(
        self,
        sim: Simulator,
        sample_every: int = 64,
        time_buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS,
        depth_buckets: tuple[float, ...] = DEPTH_BUCKETS,
    ) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sim = sim
        self.sample_every = int(sample_every)
        self._time_buckets = time_buckets
        self._events = 0
        self._sampled = 0
        # kind -> [event_count, sampled_count]
        self._counts: dict[str, list[int]] = {}
        self._times: dict[str, Histogram] = {}
        self._heap = Histogram(depth_buckets)
        self._kind_cache: dict[Any, str] = {}
        self._wall_start: float | None = None
        self._wall_total = 0.0
        # Bind the hook once: attribute access on a method builds a fresh
        # bound-method object, so identity checks need a stable reference.
        self._hook = self._run_event

    # ------------------------------------------------------------------
    @property
    def attached(self) -> bool:
        return self.sim._profile_hook is self._hook

    def attach(self) -> "KernelProfiler":
        """Install this profiler as the kernel's event hook."""
        hook = self.sim._profile_hook
        if hook is not None and hook is not self._hook:
            raise RuntimeError("another profiler is already attached")
        self.sim._profile_hook = self._hook
        if self._wall_start is None:
            self._wall_start = perf_counter()
        return self

    def detach(self) -> None:
        """Remove the hook; counters and histograms are retained."""
        if self.sim._profile_hook is self._hook:
            self.sim._profile_hook = None
        if self._wall_start is not None:
            self._wall_total += perf_counter() - self._wall_start
            self._wall_start = None

    # ------------------------------------------------------------------
    def _run_event(self, event: Event) -> None:
        cb = event.callback
        args = event.args
        kind = self._resolve(cb)
        counts = self._counts.get(kind)
        if counts is None:
            counts = self._counts[kind] = [0, 0]
        counts[0] += 1
        self._events += 1
        if self._events % self.sample_every:
            cb(*args)
            return
        t0 = perf_counter()
        cb(*args)
        dt = perf_counter() - t0
        counts[1] += 1
        self._sampled += 1
        hist = self._times.get(kind)
        if hist is None:
            hist = self._times[kind] = Histogram(self._time_buckets)
        hist.observe(dt)
        self._heap.observe(float(self.sim.pending))

    def _resolve(self, cb: Any) -> str:
        """Human-readable kind for a callback (cached by code object)."""
        func = getattr(cb, "__func__", None)
        code = func.__code__ if func is not None else getattr(cb, "__code__", None)
        while code is _BOUND_CODE:
            cb = cb.__closure__[_CB_CELL].cell_contents
            func = getattr(cb, "__func__", None)
            code = (
                func.__code__ if func is not None else getattr(cb, "__code__", None)
            )
        key = code if code is not None else type(cb)
        name = self._kind_cache.get(key)
        if name is None:
            name = code.co_qualname if code is not None else type(cb).__qualname__
            self._kind_cache[key] = name
        return name

    # ------------------------------------------------------------------
    def wall_seconds(self) -> float:
        total = self._wall_total
        if self._wall_start is not None:
            total += perf_counter() - self._wall_start
        return total

    def snapshot(self) -> dict[str, Any]:
        """Profile summary, sorted by estimated total callback time.

        ``est_total_s`` extrapolates each kind's sampled wall time by the
        sampling factor; kinds never sampled report 0 there but still show
        their dispatch counts.
        """
        wall = self.wall_seconds()
        kinds = []
        for kind, (events, sampled) in self._counts.items():
            hist = self._times.get(kind)
            wall_sampled = hist.sum if hist is not None else 0.0
            kinds.append(
                {
                    "kind": kind,
                    "events": events,
                    "sampled": sampled,
                    "sampled_wall_s": wall_sampled,
                    "est_total_s": wall_sampled * self.sample_every,
                    "mean_s": (wall_sampled / sampled) if sampled else None,
                    "p95_s": hist.percentile(95) if hist is not None else None,
                }
            )
        kinds.sort(key=lambda k: (-k["est_total_s"], -k["events"], k["kind"]))
        return {
            "events": self._events,
            "sampled": self._sampled,
            "sample_every": self.sample_every,
            "wall_s": wall,
            "events_per_sec": (self._events / wall) if wall > 0 else None,
            "heap_depth": self._heap.snapshot(),
            "kinds": kinds,
        }
