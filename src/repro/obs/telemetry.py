"""One telemetry session per :class:`~repro.topology.Network`.

A :class:`Telemetry` object is the glue between the passive collectors in
this package and one simulated network: constructing it installs the
flight recorder and flow accountant on the network's TraceBus and attaches
the kernel profiler to its simulator; :meth:`scrape` walks the live
node/interface/class counters into labeled gauge families; and
:meth:`manifest` folds everything — seed, git revision, config, metrics,
kernel profile, flow tables, flight-recorder summary — into one
JSON-serialisable run manifest (schema ``repro.telemetry/v1``, checked by
:mod:`repro.obs.schema`).

Scrapes populate *gauges* with absolute values so re-scraping is
idempotent: calling :meth:`scrape` twice does not double-count anything.
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.obs.flightrec import FlightRecorder
from repro.obs.flows import FlowAccountant
from repro.obs.profiler import KernelProfiler
from repro.obs.registry import MetricsRegistry
from repro.qos.cbq import CbqScheduler
from repro.qos.queues import DropTailFifo, _ClassfulBase
from repro.qos.shaper import TokenBucketShaper

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (topology imports us)
    from repro.topology import Network

__all__ = ["Telemetry", "SCHEMA_ID"]

SCHEMA_ID = "repro.telemetry/v1"

_git_rev_cache: str | None | bool = False  # False = not looked up yet


def _git_rev() -> str | None:
    """Current git revision of the repo this module lives in (cached)."""
    global _git_rev_cache
    if _git_rev_cache is False:
        try:
            out = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=Path(__file__).resolve().parent,
                capture_output=True,
                text=True,
                timeout=5,
                check=True,
            )
            _git_rev_cache = out.stdout.strip() or None
        except Exception:
            _git_rev_cache = None
    return _git_rev_cache


class Telemetry:
    """Measurement session bound to one network (see module docstring)."""

    def __init__(
        self,
        net: "Network",
        sample_every: int = 64,
        flight_capacity: int = 65536,
        profile: bool = True,
        slo: bool = False,
        spans: bool = False,
        slo_window_s: float = 0.5,
    ) -> None:
        self.net = net
        self.registry = MetricsRegistry()
        self.flight = FlightRecorder(capacity=flight_capacity)
        self.flows = FlowAccountant()
        self.profiler: KernelProfiler | None = (
            KernelProfiler(net.sim, sample_every=sample_every) if profile else None
        )
        self.slo = None
        self.tracer = None
        if slo:
            from repro.obs.slo import SloEngine

            self.slo = SloEngine(net.sim, window_s=slo_window_s).attach(net)
        if spans:
            from repro.obs.spans import ConvergenceTracer

            self.tracer = ConvergenceTracer(net).attach()
        net.trace.flight = self.flight
        net.trace.flows = self.flows
        if self.profiler is not None:
            self.profiler.attach()

    # ------------------------------------------------------------------
    def detach(self) -> None:
        """Stop collecting; gathered data stays readable."""
        if self.net.trace.flight is self.flight:
            self.net.trace.flight = None
        if self.net.trace.flows is self.flows:
            self.net.trace.flows = None
        if self.slo is not None:
            self.slo.detach(self.net)
        if self.tracer is not None:
            self.tracer.detach()
        if self.profiler is not None:
            self.profiler.detach()

    # ------------------------------------------------------------------
    # Scrape: live counters -> labeled gauge families
    # ------------------------------------------------------------------
    def scrape(self) -> MetricsRegistry:
        """Walk the network's counters into the registry (idempotent)."""
        reg = self.registry
        self._scrape_sim(reg)
        self._scrape_nodes(reg)
        self._scrape_interfaces(reg)
        self._scrape_counters(reg)
        self._scrape_caches(reg)
        self._scrape_pool(reg)
        self._scrape_slo(reg)
        self._scrape_convergence(reg)
        return reg

    def _scrape_sim(self, reg: MetricsRegistry) -> None:
        sim = self.net.sim
        reg.gauge("repro_sim_now_seconds", "Simulation clock").set(sim.now)
        reg.gauge(
            "repro_sim_events_processed", "Callbacks executed by the kernel"
        ).set(sim.events_processed)
        reg.gauge("repro_sim_events_pending", "Events still in the heap").set(
            sim.pending
        )

    def _scrape_nodes(self, reg: MetricsRegistry) -> None:
        rx = reg.gauge("repro_node_rx_packets", "Packets received", ("node",))
        fwd = reg.gauge("repro_node_forwarded_packets", "Packets forwarded", ("node",))
        dlv = reg.gauge(
            "repro_node_delivered_packets", "Packets delivered locally", ("node",)
        )
        drops = reg.gauge(
            "repro_node_dropped_packets",
            "Packets dropped, by DropReason",
            ("node", "reason"),
        )
        for name, node in sorted(self.net.nodes.items()):
            s = node.stats
            rx.labels(node=name).set(s.rx_packets)
            fwd.labels(node=name).set(s.forwarded)
            dlv.labels(node=name).set(s.delivered)
            for reason, n in sorted(s.by_reason.items()):
                drops.labels(node=name, reason=reason).set(n)

    def _scrape_interfaces(self, reg: MetricsRegistry) -> None:
        ifl = ("node", "iface")
        tx_p = reg.gauge("repro_iface_tx_packets", "Packets transmitted", ifl)
        tx_b = reg.gauge("repro_iface_tx_bytes", "Bytes transmitted", ifl)
        enq = reg.gauge("repro_iface_enqueued_packets", "Packets enqueued", ifl)
        drp = reg.gauge("repro_iface_dropped_packets", "Queue drops", ifl)
        cnd = reg.gauge(
            "repro_iface_conditioner_dropped_packets", "Conditioner drops", ifl
        )
        busy = reg.gauge("repro_iface_busy_seconds", "Transmitter busy time", ifl)
        backlog = reg.gauge(
            "repro_iface_backlog_packets", "Instantaneous queue depth", ifl
        )
        cl = ("node", "iface", "cls")
        c_enq = reg.gauge("repro_class_enqueued_packets", "Per-class enqueues", cl)
        c_deq = reg.gauge("repro_class_dequeued_packets", "Per-class dequeues", cl)
        c_drp = reg.gauge("repro_class_dropped_packets", "Per-class drops", cl)
        c_byt = reg.gauge("repro_class_sent_bytes", "Per-class bytes sent", cl)
        for nname, node in sorted(self.net.nodes.items()):
            for ifname, iface in sorted(node.interfaces.items()):
                s = iface.stats
                lab = {"node": nname, "iface": ifname}
                tx_p.labels(**lab).set(s.tx_packets)
                tx_b.labels(**lab).set(s.tx_bytes)
                enq.labels(**lab).set(s.enqueued)
                drp.labels(**lab).set(s.dropped)
                cnd.labels(**lab).set(s.conditioner_dropped)
                busy.labels(**lab).set(s.busy_time)
                backlog.labels(**lab).set(len(iface.qdisc))
                for cls, cs in self._class_stats(iface.qdisc):
                    clab = {"node": nname, "iface": ifname, "cls": cls}
                    c_enq.labels(**clab).set(cs.enqueued)
                    c_deq.labels(**clab).set(cs.dequeued)
                    c_drp.labels(**clab).set(cs.dropped)
                    c_byt.labels(**clab).set(cs.bytes_sent)

    @staticmethod
    def _class_stats(qdisc: Any):
        """Yield ``(class_name, ClassStats)`` for any known discipline."""
        if isinstance(qdisc, DropTailFifo):
            yield "fifo", qdisc.stats
        elif isinstance(qdisc, _ClassfulBase):
            for i, cq in enumerate(qdisc.classes):
                yield cq.name or f"class{i}", cq.stats
        elif isinstance(qdisc, CbqScheduler):
            for cls in qdisc.cbq_classes:
                yield cls.name, cls.queue.stats
        elif isinstance(qdisc, TokenBucketShaper):
            yield "shaper", qdisc.stats

    def _scrape_counters(self, reg: MetricsRegistry) -> None:
        fam = reg.gauge(
            "repro_control_counter", "Control-plane message/state counters", ("name",)
        )
        for name, n in self.net.counters:
            fam.labels(name=name).set(n)

    def _scrape_caches(self, reg: MetricsRegistry) -> None:
        """GenCache counters from every router's forwarding pipeline.

        VRF route caches are labeled ``vrf:<name>`` so one gauge family
        covers flow/label/tunnel/VRF caches uniformly.
        """
        lab = ("node", "cache")
        hits = reg.gauge("repro_cache_hits", "Forwarding-cache hits", lab)
        miss = reg.gauge("repro_cache_misses", "Forwarding-cache misses", lab)
        inval = reg.gauge(
            "repro_cache_invalidations", "Generation-bump invalidations", lab
        )
        evict = reg.gauge("repro_cache_evictions", "Capacity evictions", lab)
        entries = reg.gauge("repro_cache_entries", "Entries currently cached", lab)

        def emit(node_name: str, cache_name: str, stats: dict[str, int]) -> None:
            clab = {"node": node_name, "cache": cache_name}
            hits.labels(**clab).set(stats["hits"])
            miss.labels(**clab).set(stats["misses"])
            inval.labels(**clab).set(stats["invalidations"])
            evict.labels(**clab).set(stats["evictions"])
            entries.labels(**clab).set(stats["entries"])

        for router in sorted(self.net.routers(), key=lambda r: r.name):
            for cache_name, stats in sorted(router.pipeline.cache_stats().items()):
                if cache_name == "vrf":
                    for vrf_name, vstats in sorted(stats.items()):
                        emit(router.name, f"vrf:{vrf_name}", vstats)
                else:
                    emit(router.name, cache_name, stats)

    def _scrape_pool(self, reg: MetricsRegistry) -> None:
        """Process-wide packet-freelist health (``repro.net.packet.POOL``).

        Occupancy and hit/miss/release counters expose whether high-rate
        sources actually recycle shells (hit ratio ~1 in steady state) or
        the pool is thrashing (drops are never released, so a lossy run
        leaks shells by design — visible here as misses outpacing
        releases).
        """
        from repro.net.packet import POOL

        reg.gauge(
            "repro_pool_occupancy", "Packet shells on the freelist"
        ).set(len(POOL))
        reg.gauge(
            "repro_pool_capacity", "Freelist size bound"
        ).set(POOL.max_size)
        reg.gauge(
            "repro_pool_hits", "Acquires served from the freelist"
        ).set(POOL.hits)
        reg.gauge(
            "repro_pool_misses", "Acquires that built a fresh Packet"
        ).set(POOL.misses)
        reg.gauge(
            "repro_pool_releases", "Shells returned to the freelist"
        ).set(POOL.releases)

    def _scrape_slo(self, reg: MetricsRegistry) -> None:
        """Streaming SLO conformance state, when an engine is attached."""
        engine = self.slo
        if engine is None:
            return
        lab = ("stream",)
        recv = reg.gauge("repro_slo_received_packets", "Packets observed", lab)
        p99 = reg.gauge("repro_slo_p99_delay_seconds", "Streaming p99 delay", lab)
        jit = reg.gauge("repro_slo_jitter_seconds", "Streaming RFC3550 jitter", lab)
        viol = reg.gauge(
            "repro_slo_violation_seconds", "Seconds of violating windows", lab
        )
        first = reg.gauge(
            "repro_slo_first_violation_seconds",
            "Sim time of the first violating window (-1: none)",
            lab,
        )
        streams = list(engine.flows.values()) + list(engine.classes.values())
        for stream in streams:
            slab = {"stream": stream.key}
            recv.labels(**slab).set(stream.count)
            if stream.count:
                p99.labels(**slab).set(stream.quantile(99))
            jit.labels(**slab).set(stream.jitter.value)
            viol.labels(**slab).set(stream.violation_seconds)
            fv = stream.first_violation_s
            first.labels(**slab).set(-1.0 if fv is None else fv)

    def _scrape_convergence(self, reg: MetricsRegistry) -> None:
        """Control-plane vs data-plane healing time per churn trace."""
        tracer = self.tracer
        if tracer is None:
            return
        summary = tracer.summary()
        reg.gauge("repro_convergence_traces", "Churn traces recorded").set(
            len(summary["traces"])
        )
        reg.gauge("repro_convergence_spans", "Spans recorded").set(
            summary["spans"]
        )
        lab = ("trace", "link")
        cp = reg.gauge(
            "repro_convergence_cp_healing_seconds",
            "Link-down to last control-plane recovery action",
            lab,
        )
        dp = reg.gauge(
            "repro_convergence_dp_healing_seconds",
            "Link-down to first correctly-forwarded packet",
            lab,
        )
        for trace in summary["traces"]:
            tlab = {"trace": trace["trace_id"], "link": trace["link"] or ""}
            if trace["cp_healing_s"] is not None:
                cp.labels(**tlab).set(trace["cp_healing_s"])
            if trace["dp_healing_s"] is not None:
                dp.labels(**tlab).set(trace["dp_healing_s"])

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    def manifest(self, config: dict[str, Any] | None = None) -> dict[str, Any]:
        """One JSON-serialisable document describing this run."""
        # Late import: repro.obs.runtime imports this module at its top.
        from repro.obs import runtime

        if self.slo is not None:
            self.slo.finalize()
        self.scrape()
        sim = self.net.sim
        return {
            "schema": SCHEMA_ID,
            "kind": "run",
            "seed": self.net.streams.seed,
            "git_rev": _git_rev(),
            "config": config,
            "sim": {
                "now_s": sim.now,
                "events_processed": sim.events_processed,
                "events_pending": sim.pending,
                "nodes": len(self.net.nodes),
                "links": len(self.net.duplex_links),
            },
            "metrics": self.registry.snapshot(),
            "profile": (
                self.profiler.snapshot() if self.profiler is not None else None
            ),
            "flows": self.flows.table(),
            "flight": self.flight.summary(),
            # Process-wide observability switches, with the SLO/span flags
            # overridden by this session's actual attachments — the
            # manifest must describe what *this* run collected even when a
            # session was constructed with explicit kwargs rather than
            # through the runtime switch.
            "obs_runtime": {
                **runtime.flags(),
                "slo": self.slo is not None,
                "spans": self.tracer is not None,
            },
            "slo": self.slo.summary() if self.slo is not None else None,
            "spans": self.tracer.summary() if self.tracer is not None else None,
        }

    def write(self, path: str | Path, config: dict[str, Any] | None = None) -> Path:
        """Write :meth:`manifest` to ``path`` as pretty-printed JSON."""
        p = Path(path)
        p.write_text(json.dumps(self.manifest(config=config), indent=2) + "\n")
        return p
