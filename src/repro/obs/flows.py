"""NetFlow-style per-VRF/per-class flow accounting at the VPN edge.

The paper's operator-facing promise (§5) is that an MPLS VPN backbone can
"measure, monitor, and meet" per-customer service levels.  This module is
the measuring part: the PE data plane calls :meth:`FlowAccountant.ingress`
when a customer packet enters its VRF and :meth:`FlowAccountant.egress`
when a packet leaves the backbone into a VRF, and the accountant keeps
packet/byte counts keyed by

    (PE node, VRF, direction, traffic class)

where the class is the PHB name derived from the customer DSCP (EF / AF /
BE).  That turns the E1/E7 isolation claims into queryable numbers: bytes
VPN green injected at pe1 in class EF, bytes that came out at pe2, and so
on.  Only edge hops account — core hops see aggregates, exactly as a real
NetFlow deployment at the PE would.
"""

from __future__ import annotations

from typing import Any

from repro.net.packet import Packet
from repro.qos.dscp import class_of_dscp_name

__all__ = ["FlowAccountant"]


class FlowAccountant:
    """Accumulates per-(pe, vrf, direction, class) packet/byte counts."""

    def __init__(self) -> None:
        # (pe, vrf, direction, class) -> [packets, bytes]
        self._table: dict[tuple[str, str, str, str], list[int]] = {}

    # ------------------------------------------------------------------
    # Producers (called from the PE data plane)
    # ------------------------------------------------------------------
    def _account(self, pe: str, vrf: str, direction: str, pkt: Packet) -> None:
        cls = class_of_dscp_name(pkt.ip.dscp)
        key = (pe, vrf, direction, cls)
        cell = self._table.get(key)
        if cell is None:
            cell = self._table[key] = [0, 0]
        cell[0] += 1
        cell[1] += pkt.wire_bytes

    def ingress(self, pe: str, vrf: str, pkt: Packet) -> None:
        """Customer packet entering its VPN at ``pe`` (pre-label wire size)."""
        self._account(pe, vrf, "ingress", pkt)

    def egress(self, pe: str, vrf: str, pkt: Packet) -> None:
        """Packet leaving the backbone into ``vrf`` at ``pe``."""
        self._account(pe, vrf, "egress", pkt)

    # ------------------------------------------------------------------
    # Consumers
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._table)

    def table(self) -> list[dict[str, Any]]:
        """Sorted row dump for manifests and pretty-printing."""
        rows = []
        for (pe, vrf, direction, cls), (pkts, nbytes) in sorted(
            self._table.items()
        ):
            rows.append(
                {
                    "pe": pe,
                    "vrf": vrf,
                    "direction": direction,
                    "class": cls,
                    "packets": pkts,
                    "bytes": nbytes,
                }
            )
        return rows

    def totals(self, vrf: str, direction: str) -> tuple[int, int]:
        """(packets, bytes) across all PEs and classes for one VRF+direction."""
        pkts = nbytes = 0
        for (p, v, d, c), (n, b) in self._table.items():
            if v == vrf and d == direction:
                pkts += n
                nbytes += b
        return pkts, nbytes
