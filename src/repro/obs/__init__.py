"""Unified observability layer (the backbone's "NMS").

Everything the simulator can measure flows through this package:

* :mod:`repro.obs.registry` — labeled counter/gauge/histogram families
  with JSON and Prometheus-text exporters.
* :mod:`repro.obs.profiler` — sampling kernel profiler for the event loop
  (per-kind dispatch counts, callback wall time, heap depth).
* :mod:`repro.obs.flightrec` — bounded per-hop packet flight recorder
  (enqueue/dequeue/label ops/drops) for post-mortem path reconstruction.
* :mod:`repro.obs.flows` — NetFlow-style per-PE/per-VRF/per-class
  accounting at VPN ingress and egress.
* :mod:`repro.obs.telemetry` — one session object tying the above to a
  :class:`~repro.topology.Network` and emitting a run manifest.
* :mod:`repro.obs.runtime` — process-wide enable/disable switch the CLI
  uses so experiments need no signature changes.
* :mod:`repro.obs.sketch` — bounded-memory streaming estimators
  (deterministic compacting quantile sketch, RFC 3550 jitter).
* :mod:`repro.obs.slo` — live SLO engine: continuous windowed SLA
  conformance per flow and per VRF×class over the streaming estimators.
* :mod:`repro.obs.spans` — convergence tracer: causal span chains from
  link state change to first correctly-forwarded packet.

Everything is strictly opt-in: with telemetry disabled the only residue on
the hot paths is a ``None`` check (same budget as the TraceBus fast path).
"""

from repro.obs.flightrec import FlightRecorder, HopRecord
from repro.obs.flows import FlowAccountant
from repro.obs.profiler import KernelProfiler
from repro.obs.registry import MetricsRegistry
from repro.obs.sketch import QuantileSketch, StreamingJitter
from repro.obs.slo import SloEngine, SloStream
from repro.obs.spans import ConvergenceTracer, HealingWatch, Span
from repro.obs.telemetry import Telemetry

__all__ = [
    "FlightRecorder",
    "HopRecord",
    "FlowAccountant",
    "KernelProfiler",
    "MetricsRegistry",
    "QuantileSketch",
    "StreamingJitter",
    "SloEngine",
    "SloStream",
    "ConvergenceTracer",
    "HealingWatch",
    "Span",
    "Telemetry",
]
