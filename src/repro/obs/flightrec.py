"""Packet flight recorder: a bounded ring buffer of per-hop events.

Every instrumented touch point (receive, queue enqueue/dequeue, label
push/swap/pop, local delivery, drop) appends one :class:`HopRecord`.  The
buffer is a ``deque(maxlen=...)`` so memory is bounded no matter how long
the run: old hops fall off the back, which is exactly the black-box
behaviour the name promises — after something goes wrong you read out the
recent past.

Records are keyed by the *innermost* packet (the original customer
datagram), so one flow's journey can be reconstructed across label
imposition, VPN encapsulation, and FRR detours: :meth:`path_of` returns
the ordered hop list for a flow and :meth:`explain` renders it.

Hot-path producers call the ``rx``/``enqueue``/``dequeue``/``label_op``/
``deliver``/``drop`` methods directly (no TraceBus dict round-trip); they
are only reachable when a telemetry session installed the recorder on
``trace.flight``, so the disabled cost is one ``None`` check at each site.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Iterable

from repro.net.packet import Packet

__all__ = ["FlightRecorder", "HopRecord"]


@dataclass(slots=True, frozen=True)
class HopRecord:
    """One per-hop event of one packet.

    ``labels`` is the MPLS stack *after* the event, bottom→top; ``uid`` is
    the innermost packet's id (stable across encapsulation).
    """

    time: float
    node: str
    event: str              # rx | enqueue | dequeue | deliver | drop | push | swap | pop
    uid: int
    flow: Any
    seq: int
    ifname: str | None = None
    labels: tuple[int, ...] = ()
    in_label: int | None = None
    out_label: int | None = None
    reason: str | None = None
    backlog: int | None = None

    def to_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {
            "time": self.time,
            "node": self.node,
            "event": self.event,
            "uid": self.uid,
            "flow": self.flow,
            "seq": self.seq,
            "labels": list(self.labels),
        }
        if self.ifname is not None:
            d["ifname"] = self.ifname
        if self.in_label is not None:
            d["in_label"] = self.in_label
        if self.out_label is not None:
            d["out_label"] = self.out_label
        if self.reason is not None:
            d["reason"] = self.reason
        if self.backlog is not None:
            d["backlog"] = self.backlog
        return d


class FlightRecorder:
    """Bounded ring buffer of :class:`HopRecord` (see module docstring)."""

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self._ring: deque[HopRecord] = deque(maxlen=self.capacity)
        self.recorded = 0  # total appended, including those aged out

    # ------------------------------------------------------------------
    # Producers (hot paths)
    # ------------------------------------------------------------------
    def _append(self, rec: HopRecord) -> None:
        self._ring.append(rec)
        self.recorded += 1

    @staticmethod
    def _stack(pkt: Packet) -> tuple[int, ...]:
        return tuple(e.label for e in pkt.mpls_stack)

    def rx(self, time: float, node: str, pkt: Packet, ifname: str) -> None:
        inner = pkt.innermost()
        self._append(
            HopRecord(time, node, "rx", inner.uid, inner.flow, inner.seq,
                      ifname=ifname, labels=self._stack(pkt))
        )

    def enqueue(
        self, time: float, node: str, pkt: Packet, ifname: str, backlog: int
    ) -> None:
        inner = pkt.innermost()
        self._append(
            HopRecord(time, node, "enqueue", inner.uid, inner.flow, inner.seq,
                      ifname=ifname, labels=self._stack(pkt), backlog=backlog)
        )

    def dequeue(
        self, time: float, node: str, pkt: Packet, ifname: str, backlog: int
    ) -> None:
        inner = pkt.innermost()
        self._append(
            HopRecord(time, node, "dequeue", inner.uid, inner.flow, inner.seq,
                      ifname=ifname, labels=self._stack(pkt), backlog=backlog)
        )

    def deliver(self, time: float, node: str, pkt: Packet) -> None:
        inner = pkt.innermost()
        self._append(
            HopRecord(time, node, "deliver", inner.uid, inner.flow, inner.seq,
                      labels=self._stack(pkt))
        )

    def drop(
        self,
        time: float,
        node: str,
        pkt: Packet,
        reason: str,
        ifname: str | None = None,
    ) -> None:
        inner = pkt.innermost()
        self._append(
            HopRecord(time, node, "drop", inner.uid, inner.flow, inner.seq,
                      ifname=ifname, labels=self._stack(pkt), reason=reason)
        )

    def label_op(
        self,
        time: float,
        node: str,
        pkt: Packet,
        op: str,
        old: int | None = None,
        new: int | None = None,
    ) -> None:
        """Record a push/swap/pop.  Called *before* the stack mutation, so
        ``labels`` shows the pre-op stack and ``in_label``/``out_label``
        carry the transition."""
        inner = pkt.innermost()
        self._append(
            HopRecord(time, node, op, inner.uid, inner.flow, inner.seq,
                      labels=self._stack(pkt), in_label=old, out_label=new)
        )

    # ------------------------------------------------------------------
    # Consumers (post-mortem)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ring)

    def records(self) -> list[HopRecord]:
        return list(self._ring)

    def path_of(self, flow: Any, seq: int | None = None) -> list[HopRecord]:
        """Ordered hop records of one flow (optionally one sequence number)."""
        return [
            r
            for r in self._ring
            if r.flow == flow and (seq is None or r.seq == seq)
        ]

    def packets_of(self, flow: Any) -> list[int]:
        """Distinct sequence numbers of ``flow`` still in the buffer."""
        seen: dict[int, None] = {}
        for r in self._ring:
            if r.flow == flow:
                seen.setdefault(r.seq)
        return list(seen)

    def explain(self, flow: Any, seq: int | None = None) -> str:
        """Human-readable hop-by-hop account of a flow's journey."""
        recs = self.path_of(flow, seq)
        if not recs:
            return f"flight recorder: no records for flow {flow!r}"
        lines = [f"flow {flow!r}: {len(recs)} recorded events"]
        for r in recs:
            stack = "+".join(str(x) for x in reversed(r.labels)) or "ip"
            detail = ""
            if r.event == "swap":
                detail = f" {r.in_label}->{r.out_label}"
            elif r.event == "push":
                detail = f" +{r.out_label}"
            elif r.event == "pop":
                detail = f" -{r.in_label}"
            elif r.event == "drop":
                detail = f" reason={r.reason}"
            elif r.backlog is not None:
                detail = f" backlog={r.backlog}"
            where = f"{r.node}" + (f".{r.ifname}" if r.ifname else "")
            lines.append(
                f"  t={r.time:.6f} seq={r.seq:<5d} {r.event:<8s} {where:<16s}"
                f" [{stack}]{detail}"
            )
        return "\n".join(lines)

    def to_json(self, flow: Any = None) -> list[dict[str, Any]]:
        recs: Iterable[HopRecord] = (
            self._ring if flow is None else self.path_of(flow)
        )
        return [r.to_dict() for r in recs]

    def summary(self) -> dict[str, Any]:
        return {
            "capacity": self.capacity,
            "buffered": len(self._ring),
            "recorded_total": self.recorded,
            "aged_out": self.recorded - len(self._ring),
        }
