"""Metrics registry: labeled counter/gauge/histogram families.

A deliberately small re-implementation of the Prometheus client data model
(no external dependency): a :class:`MetricsRegistry` holds *families*, a
family has fixed label names, and ``family.labels(node="p1")`` returns the
child series for one label combination.  Two exporters are provided —
:meth:`MetricsRegistry.snapshot` (JSON-friendly dict, the manifest format)
and :meth:`MetricsRegistry.to_prometheus` (the text exposition format, so a
snapshot can be diffed with standard tooling or scraped off disk).

Semantics follow Prometheus: counters only go up, gauges are set to
absolute values (telemetry scrapes use gauges so re-scraping is
idempotent), histograms have cumulative le-inclusive buckets.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterable, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
]

#: Default histogram bounds for durations in seconds: 1 µs ... 10 s.
DEFAULT_TIME_BUCKETS: tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, by: float = 1.0) -> None:
        if by < 0:
            raise ValueError("counters only go up")
        self.value += by

    def get(self) -> float:
        return self.value


class Gauge:
    """Value that can be set to anything (absolute scrapes, levels)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = float(v)

    def inc(self, by: float = 1.0) -> None:
        self.value += by

    def dec(self, by: float = 1.0) -> None:
        self.value -= by

    def get(self) -> float:
        return self.value


class Histogram:
    """Fixed-bucket histogram with le-inclusive upper bounds.

    ``bounds`` are the finite bucket upper bounds in increasing order; an
    implicit +Inf bucket catches the overflow.  Observation is O(log n) via
    bisect — cheap enough for the profiler's sampled path.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Sequence[float] = DEFAULT_TIME_BUCKETS) -> None:
        b = tuple(float(x) for x in bounds)
        if not b:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b[i] >= b[i + 1] for i in range(len(b) - 1)):
            raise ValueError("bucket bounds must be strictly increasing")
        self.bounds = b
        self.counts = [0] * (len(b) + 1)  # last slot = +Inf overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, v: float) -> None:
        self.counts[bisect_left(self.bounds, v)] += 1
        self.sum += v
        self.count += 1

    def percentile(self, q: float) -> float:
        """Approximate q-th percentile (0..100) from bucket upper bounds."""
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if self.count == 0:
            return float("nan")
        target = self.count * q / 100.0
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= target and n:
                return self.bounds[i] if i < len(self.bounds) else float("inf")
        return float("inf")

    def snapshot(self) -> dict[str, Any]:
        cumulative = []
        running = 0
        for le, n in zip(self.bounds, self.counts):
            running += n
            cumulative.append([le, running])
        cumulative.append(["+Inf", self.count])
        return {"buckets": cumulative, "sum": self.sum, "count": self.count}


class MetricFamily:
    """One named metric with fixed label names and per-labelset children."""

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = tuple(label_names)
        self._buckets = tuple(buckets)
        self._children: dict[tuple[str, ...], Any] = {}

    def labels(self, **labels: Any) -> Any:
        """Child series for one label combination (created on first use)."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[n]) for n in self.label_names)
        child = self._children.get(key)
        if child is None:
            if self.kind == "counter":
                child = Counter()
            elif self.kind == "gauge":
                child = Gauge()
            else:
                child = Histogram(self._buckets)
            self._children[key] = child
        return child

    # Convenience for label-less families.
    def inc(self, by: float = 1.0) -> None:
        self.labels().inc(by)

    def set(self, v: float) -> None:
        self.labels().set(v)

    def observe(self, v: float) -> None:
        self.labels().observe(v)

    def series(self) -> Iterable[tuple[dict[str, str], Any]]:
        for key, child in sorted(self._children.items()):
            yield dict(zip(self.label_names, key)), child


class MetricsRegistry:
    """Collection of metric families with JSON / Prometheus exporters."""

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}

    # ------------------------------------------------------------------
    def _register(
        self,
        name: str,
        kind: str,
        help: str,
        label_names: Sequence[str],
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> MetricFamily:
        fam = self._families.get(name)
        if fam is not None:
            if fam.kind != kind or fam.label_names != tuple(label_names):
                raise ValueError(
                    f"metric {name!r} re-registered with a different "
                    f"kind/labels ({fam.kind}{fam.label_names} vs "
                    f"{kind}{tuple(label_names)})"
                )
            return fam
        fam = MetricFamily(name, kind, help, label_names, buckets)
        self._families[name] = fam
        return fam

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        return self._register(name, "counter", help, labels)

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        return self._register(name, "gauge", help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> MetricFamily:
        return self._register(name, "histogram", help, labels, buckets)

    def __iter__(self) -> Iterable[MetricFamily]:
        return iter(self._families.values())

    def __len__(self) -> int:
        return len(self._families)

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """JSON-friendly dump of every family and series."""
        out: dict[str, Any] = {}
        for name in sorted(self._families):
            fam = self._families[name]
            series = []
            for labels, child in fam.series():
                if fam.kind == "histogram":
                    entry: dict[str, Any] = {"labels": labels}
                    entry.update(child.snapshot())
                else:
                    entry = {"labels": labels, "value": child.get()}
                series.append(entry)
            out[name] = {
                "type": fam.kind,
                "help": fam.help,
                "label_names": list(fam.label_names),
                "series": series,
            }
        return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (0.0.4)."""
        lines: list[str] = []
        for name in sorted(self._families):
            fam = self._families[name]
            if fam.help:
                lines.append(f"# HELP {name} {_escape_help(fam.help)}")
            lines.append(f"# TYPE {name} {fam.kind}")
            for labels, child in fam.series():
                if fam.kind == "histogram":
                    snap = child.snapshot()
                    for le, n in snap["buckets"]:
                        le_txt = le if isinstance(le, str) else _fmt(le)
                        lines.append(
                            f"{name}_bucket"
                            f"{_labelset(labels, extra=('le', le_txt))} {n}"
                        )
                    lines.append(f"{name}_sum{_labelset(labels)} {_fmt(snap['sum'])}")
                    lines.append(f"{name}_count{_labelset(labels)} {snap['count']}")
                else:
                    lines.append(f"{name}{_labelset(labels)} {_fmt(child.get())}")
        return "\n".join(lines) + "\n"


def _fmt(v: float) -> str:
    if isinstance(v, float) and v.is_integer():
        return str(int(v))
    return repr(v)


def _escape_help(s: str) -> str:
    return s.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(s: str) -> str:
    return s.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labelset(
    labels: dict[str, str], extra: tuple[str, str] | None = None
) -> str:
    items = list(labels.items())
    if extra is not None:
        items.append(extra)
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in items)
    return "{" + body + "}"
