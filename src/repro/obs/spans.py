"""Convergence tracer: causal spans from link event to healed data plane.

When the backbone churns, three different clocks tell three different
stories: the *topology* clock (when the link state changed), the
*control-plane* clock (when SPF reconverged and the FIB/LFIB/FTN batches
were installed), and the *data-plane* clock (when a customer packet
actually made it through again).  The paper's restoration claims (C5/C7)
are about the last one; most tooling only reports the middle one.

A :class:`ConvergenceTracer` stitches all three into one **causal span
chain** per failure event:

::

    link.down  A<->B                       (root — opens the trace)
    ├─ frr.repair                          (if a bypass PLR fired)
    ├─ spf.reconverge   domain=core        (edge diff → batched installs)
    ├─ ldp.reset                           (label state flushed)
    ├─ ldp.converge     lfib=… ftn=…       (batched label installs)
    └─ heal.first_packet  watch=…          (first correctly-forwarded
                                            packet per watched VRF path)

Spans use **simulation time** for causality (``t_start_s``/``t_end_s``)
and carry wall-clock compute cost as attributes (``wall_ms``) — the two
must never be mixed.  Control-plane spans are instantaneous in sim time
(the simulator models reconvergence as an atomic event at its scheduled
time); the healing span stretches from link-down to the first delivered
probe, which is why data-plane healing time is ≥ the control-plane time
by construction *for affected paths*.

Healing detection is a cheap post-churn probe: a :class:`HealingWatch`
keeps a dormant CBR micro-probe per watched (src, dst) pair and only
starts emitting when a link goes down, stopping again at first delivery
— zero packets on the wire while the network is healthy.  Probe flows
are named ``__heal…`` and excluded from SLO customer streams.

Everything is deterministic: span/trace ids are sequential per tracer,
probe flow names come from the simulator's scoped id counter, and all
timestamps are simulation time (wall-clock lives only in attrs, which
the schema validator treats as free-form).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["SPAN_SCHEMA", "Span", "HealingWatch", "ConvergenceTracer"]

SPAN_SCHEMA = "repro.spans/v1"

#: Span kinds in causal order within one trace (used by tests and docs).
SPAN_KINDS = (
    "link.down",
    "link.up",
    "frr.repair",
    "spf.reconverge",
    "ldp.reset",
    "ldp.converge",
    "heal.first_packet",
)


@dataclass(slots=True)
class Span:
    """One span of a convergence trace (OpenTelemetry-shaped, sim time)."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    kind: str
    name: str
    t_start_s: float
    t_end_s: float
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.t_end_s - self.t_start_s

    def to_doc(self) -> dict[str, Any]:
        """JSON-able document (one JSONL line), schema-stamped."""
        return {
            "schema": SPAN_SCHEMA,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "kind": self.kind,
            "name": self.name,
            "t_start_s": self.t_start_s,
            "t_end_s": self.t_end_s,
            "attrs": self.attrs,
        }


class HealingWatch:
    """Data-plane healing detector for one (src → dst) path.

    Dormant until the tracer arms it on a link-down event; then a small
    CBR probe stream runs until the first probe is delivered at the far
    end, which closes the ``heal.first_packet`` span.  A fresh probe flow
    id is drawn per failure so repeated flaps yield distinct, unambiguous
    healing measurements.
    """

    def __init__(
        self,
        tracer: "ConvergenceTracer",
        src_node,
        dst_node,
        src_addr,
        dst_addr,
        label: str,
        dscp: int = 46,
        interval_s: float = 0.020,
        payload_bytes: int = 64,
    ) -> None:
        self.tracer = tracer
        self.src_node = src_node
        self.dst_node = dst_node
        self.src_addr = src_addr
        self.dst_addr = dst_addr
        self.label = label
        self.dscp = dscp
        self.interval_s = interval_s
        self.payload_bytes = payload_bytes
        self.flow: str | None = None
        self.source = None
        self.healings: list[dict[str, Any]] = []
        self._armed = False
        self._t_down = 0.0
        self._trace_id: str | None = None
        self._root_id: str | None = None
        dst_node.add_local_sink(self._on_delivery)

    # ------------------------------------------------------------------
    def arm(self, t_down: float, trace_id: str, root_id: str) -> None:
        """Link went down: start probing until the path heals."""
        from repro.traffic.generators import CbrSource

        self._armed = True
        self._t_down = t_down
        self._trace_id = trace_id
        self._root_id = root_id
        if self.source is None:
            sim = self.tracer.sim
            self.flow = f"__heal{sim.next_id('heal')}"
            wire = self.payload_bytes + 20
            self.source = CbrSource(
                sim, self.src_node.send, self.flow,
                self.src_addr, self.dst_addr,
                payload_bytes=self.payload_bytes, dscp=self.dscp,
                proto="udp", dst_port=7,
                rate_bps=wire * 8 / self.interval_s,
            )
            self.source.start(at=sim.now)

    def _on_delivery(self, pkt) -> None:
        if not self._armed:
            return
        original = pkt.innermost()
        if original.flow != self.flow:
            return
        now = self.tracer.sim.now
        self._armed = False
        if self.source is not None:
            self.source.stop()
            self.source = None
        healing_s = now - self._t_down
        self.healings.append(
            {
                "trace_id": self._trace_id,
                "watch": self.label,
                "t_down_s": self._t_down,
                "t_healed_s": now,
                "dp_healing_s": healing_s,
            }
        )
        self.tracer._heal_detected(
            self._trace_id, self._root_id, self.label, self.flow,
            self._t_down, now,
        )


class ConvergenceTracer:
    """Per-network causal convergence tracing (see module docstring).

    Attach with :meth:`attach` — this registers on the network's
    ``link_listeners`` and publishes itself as ``net.convergence_tracer``
    so the control-plane hook points (``reconverge``, ``run_ldp``,
    ``reset_ldp``, FRR repair) can notify without importing this module.
    Detached networks pay one ``getattr(..., None)`` per control-plane
    event and nothing per packet.
    """

    def __init__(self, net) -> None:
        self.net = net
        self.sim = net.sim
        self.spans: list[Span] = []
        self.watches: list[HealingWatch] = []
        self._trace_seq = 0
        self._span_seq = 0
        # Active trace: (trace_id, root span id, t_down).  One failure
        # event at a time — a new link.down opens a new trace.
        self._active: tuple[str, str, float] | None = None
        # DuplexLink.set_up writes both simplex directions; both fire the
        # network hook at the same sim time for the same canonical pair.
        self._last_key: tuple[float, str, bool] | None = None

    # ------------------------------------------------------------------
    def attach(self) -> "ConvergenceTracer":
        self.net.convergence_tracer = self
        self.net.link_listeners.append(self._on_link_state)
        return self

    def detach(self) -> None:
        if getattr(self.net, "convergence_tracer", None) is self:
            self.net.convergence_tracer = None
        try:
            self.net.link_listeners.remove(self._on_link_state)
        except ValueError:
            pass

    def add_watch(
        self,
        src_node,
        dst_node,
        src_addr,
        dst_addr,
        label: str | None = None,
        dscp: int = 46,
        interval_s: float = 0.020,
    ) -> HealingWatch:
        """Watch data-plane healing on the (src → dst) path."""
        watch = HealingWatch(
            self, src_node, dst_node, src_addr, dst_addr,
            label or f"{src_node.name}->{dst_node.name}",
            dscp=dscp, interval_s=interval_s,
        )
        self.watches.append(watch)
        return watch

    # ------------------------------------------------------------------
    def _new_span(
        self,
        trace_id: str,
        parent_id: Optional[str],
        kind: str,
        name: str,
        t_start: float,
        t_end: float,
        attrs: dict[str, Any],
    ) -> Span:
        self._span_seq += 1
        span = Span(
            trace_id=trace_id,
            span_id=f"s{self._span_seq}",
            parent_id=parent_id,
            kind=kind,
            name=name,
            t_start_s=t_start,
            t_end_s=t_end,
            attrs=attrs,
        )
        self.spans.append(span)
        return span

    # -- topology hook (wired via Network.link_listeners) ---------------
    def _on_link_state(self, link) -> None:
        now = self.sim.now
        a, _, b = link.name.partition("->")
        canon = "<->".join(sorted((a, b)))
        key = (now, canon, link.up)
        if key == self._last_key:
            return  # second simplex direction of the same duplex event
        self._last_key = key
        if not link.up:
            self._trace_seq += 1
            trace_id = f"t{self._trace_seq}"
            root = self._new_span(
                trace_id, None, "link.down", canon, now, now, {"link": canon}
            )
            self._active = (trace_id, root.span_id, now)
            for watch in self.watches:
                watch.arm(now, trace_id, root.span_id)
        else:
            if self._active is not None:
                trace_id, root_id, _ = self._active
                self._new_span(
                    trace_id, root_id, "link.up", canon, now, now, {"link": canon}
                )
            else:
                self._trace_seq += 1
                trace_id = f"t{self._trace_seq}"
                root = self._new_span(
                    trace_id, None, "link.up", canon, now, now, {"link": canon}
                )
                self._active = (trace_id, root.span_id, now)

    # -- control-plane hooks (called by routing/mpls when tracer set) ---
    def _child(self, kind: str, name: str, attrs: dict[str, Any]) -> None:
        if self._active is None:
            return  # steady-state control-plane run, not churn recovery
        trace_id, root_id, _ = self._active
        now = self.sim.now
        self._new_span(trace_id, root_id, kind, name, now, now, attrs)

    def on_reconverge(self, domain: str, installs: int, wall_s: float) -> None:
        self._child(
            "spf.reconverge",
            domain,
            {"domain": domain, "installs": installs,
             "wall_ms": round(wall_s * 1e3, 3)},
        )

    def on_ldp_reset(self, removed: int) -> None:
        self._child("ldp.reset", "ldp", {"removed": removed})

    def on_ldp_converged(
        self,
        sessions: int,
        lfib_entries: int,
        ftn_entries: int,
        fecs: int,
        wall_s: float,
    ) -> None:
        self._child(
            "ldp.converge",
            "ldp",
            {"sessions": sessions, "lfib_entries": lfib_entries,
             "ftn_entries": ftn_entries, "fecs": fecs,
             "wall_ms": round(wall_s * 1e3, 3)},
        )

    def on_frr_repair(self, a: str, b: str, repaired: int) -> None:
        self._child(
            "frr.repair",
            f"{a}<->{b}",
            {"link": "<->".join(sorted((a, b))), "repaired": repaired},
        )

    # -- data-plane healing (called by HealingWatch) --------------------
    def _heal_detected(
        self,
        trace_id: str | None,
        root_id: str | None,
        label: str,
        flow: str | None,
        t_down: float,
        t_healed: float,
    ) -> None:
        self._new_span(
            trace_id or "t0", root_id, "heal.first_packet", label,
            t_down, t_healed,
            {"watch": label, "flow": flow,
             "dp_healing_s": round(t_healed - t_down, 9)},
        )

    # ------------------------------------------------------------------
    def trace_spans(self, trace_id: str) -> list[Span]:
        return [s for s in self.spans if s.trace_id == trace_id]

    def summary(self) -> dict[str, Any]:
        """Per-trace healing summary: control-plane vs data-plane clocks.

        ``cp_healing_s`` is the latest control-plane recovery action
        (SPF / LDP / FRR span) relative to link-down; ``dp_healing_s``
        the latest watched first-healed-packet.  Either is ``None`` when
        the trace saw no such span.
        """
        cp_kinds = {"spf.reconverge", "ldp.reset", "ldp.converge", "frr.repair"}
        traces: list[dict[str, Any]] = []
        by_trace: dict[str, list[Span]] = {}
        for span in self.spans:
            by_trace.setdefault(span.trace_id, []).append(span)
        for trace_id in sorted(by_trace, key=lambda t: int(t[1:])):
            spans = by_trace[trace_id]
            root = spans[0]
            t0 = root.t_start_s
            cp_ends = [s.t_end_s for s in spans if s.kind in cp_kinds]
            dp_ends = [s.t_end_s for s in spans if s.kind == "heal.first_packet"]
            traces.append(
                {
                    "trace_id": trace_id,
                    "event": root.kind,
                    "link": root.attrs.get("link"),
                    "t_event_s": t0,
                    "spans": len(spans),
                    "cp_healing_s": (max(cp_ends) - t0) if cp_ends else None,
                    "dp_healing_s": (max(dp_ends) - t0) if dp_ends else None,
                }
            )
        return {
            "schema": SPAN_SCHEMA,
            "traces": traces,
            "watches": [w.label for w in self.watches],
            "spans": len(self.spans),
        }

    def span_docs(self) -> list[dict[str, Any]]:
        return [s.to_doc() for s in self.spans]

    def to_jsonl(self, path: str) -> int:
        """Write one span per line; returns the number of spans written."""
        docs = self.span_docs()
        with open(path, "w", encoding="utf-8") as fh:
            for doc in docs:
                fh.write(json.dumps(doc, separators=(",", ":")) + "\n")
        return len(docs)
