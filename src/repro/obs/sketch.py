"""Streaming estimators: bounded-memory quantiles and RFC 3550 jitter.

The batch metrics path (:mod:`repro.metrics.stats`) keeps every raw delay
sample and asks NumPy for exact percentiles — fine for a few thousand
packets, impossible for the ROADMAP's million-flow hybrid data plane.
This module provides the streaming replacements the live SLO engine
(:mod:`repro.obs.slo`) maintains per VRF×class:

* :class:`QuantileSketch` — a deterministic KLL/MRL-style compacting
  sketch.  Samples accumulate in a level-0 buffer of ``k`` items; when a
  level fills it is sorted and every other item (alternating offset,
  weight doubled) is promoted to the next level.  Memory is
  ``O(k · log(n/k))`` regardless of stream length.  While the stream is
  short (``n ≤ k``, nothing compacted yet) queries are *exactly* NumPy's
  linear-interpolation percentile; once compaction starts the answer
  carries a rank error that grows like ``log2(n/k) / (2k)`` of the
  stream length (each compaction of a level holding weight-``w`` items
  can displace a rank by at most ``w/2``, and level ``l`` compacts about
  ``n / (k·2^l)`` times).  ``tests/test_obs_sketch.py`` pins the
  documented bound empirically on seeded experiment traces.
* :class:`StreamingJitter` — RFC 3550 §6.4.1 interarrival jitter.  Fed
  one-way delays in arrival order it is *bit-identical* to the batch
  :func:`repro.metrics.stats.rfc3550_jitter` oracle, because the transit
  differences D(i−1, i) in the RFC are exactly the consecutive delay
  differences.

Both are deliberately free of randomness: compaction offsets alternate
deterministically, so the same stream always yields the same sketch —
required for sweep determinism at any worker count.
"""

from __future__ import annotations

from bisect import insort
from math import ceil, log2, nan

__all__ = ["QuantileSketch", "StreamingJitter", "rank_error_bound"]


def rank_error_bound(n: int, k: int) -> float:
    """Documented worst-case rank error (fraction of ``n``) at stream
    length ``n`` for a sketch with buffer size ``k``.

    Zero while nothing has compacted (``n ≤ k`` — queries are exact).
    Afterwards ``log2(n/k)`` levels have each compacted, and every
    compaction pass over the stream costs at most ``1/(2k)`` of the
    stream in displaced rank; a 2× safety factor absorbs the pessimistic
    constant.
    """
    if n <= k:
        return 0.0
    return 2.0 * ceil(log2(n / k)) / (2.0 * k)


class QuantileSketch:
    """Deterministic compacting quantile sketch (see module docstring).

    ``k`` is the per-level buffer size: the exactness horizon (streams
    shorter than ``k`` are answered exactly) and the error knob (rank
    error ∝ 1/k once compaction starts).
    """

    __slots__ = ("k", "n", "_levels", "_offsets", "_cache")

    def __init__(self, k: int = 2048) -> None:
        if k < 8:
            raise ValueError("sketch buffer k must be at least 8")
        self.k = int(k)
        self.n = 0
        self._levels: list[list[float]] = [[]]
        self._offsets: list[bool] = [False]
        self._cache: tuple[list[float], list[float]] | None = None

    # ------------------------------------------------------------------
    def insert(self, value: float) -> None:
        """Add one sample (amortised O(log k) per item)."""
        self.n += 1
        self._cache = None
        level0 = self._levels[0]
        # Level 0 is kept sorted by insertion (cheap: bisect into ≤ k
        # items) so an uncompacted sketch can answer without re-sorting
        # and compaction skips its sort entirely.
        insort(level0, value)
        if len(level0) >= self.k:
            self._compact(0)

    def _compact(self, level: int) -> None:
        while len(self._levels[level]) >= self.k:
            items = self._levels[level]
            if level > 0:
                items.sort()
            # Deterministic alternation: keep odd-indexed items on one
            # pass, even-indexed on the next, so promoted ranks are
            # unbiased without an RNG (reproducibility contract).
            offset = 1 if self._offsets[level] else 0
            self._offsets[level] = not self._offsets[level]
            survivors = items[offset::2]
            self._levels[level] = []
            if level + 1 == len(self._levels):
                self._levels.append([])
                self._offsets.append(False)
            self._levels[level + 1].extend(survivors)
            level += 1

    # ------------------------------------------------------------------
    def _materialize(self) -> tuple[list[float], list[float]]:
        """Sorted ``(values, center_positions)`` over all levels.

        Each retained item of weight ``w = 2^level`` represents ``w``
        original samples; its *center position* is the 0-based rank of
        the middle of that mass.  With all weights 1 the positions are
        ``0, 1, …, n−1`` — interpolating between them reproduces NumPy's
        linear percentile exactly.
        """
        if self._cache is not None:
            return self._cache
        weighted: list[tuple[float, int]] = []
        for level, items in enumerate(self._levels):
            w = 1 << level
            weighted.extend((v, w) for v in items)
        weighted.sort(key=lambda t: t[0])
        values: list[float] = []
        positions: list[float] = []
        cum = 0
        for v, w in weighted:
            values.append(v)
            positions.append(cum + (w - 1) / 2.0)
            cum += w
        self._cache = (values, positions)
        return self._cache

    def query(self, q: float) -> float:
        """The ``q``-th percentile (0–100); NaN on an empty or invalid
        query, mirroring the NaN-consistency contract of
        :func:`repro.metrics.stats.delay_percentile`."""
        if self.n == 0 or not 0.0 <= q <= 100.0:
            return nan
        values, positions = self._materialize()
        target = q / 100.0 * (self.n - 1)
        if target <= positions[0]:
            return values[0]
        if target >= positions[-1]:
            return values[-1]
        # Binary search for the bracketing pair, then linear interpolation
        # (identical arithmetic to numpy.percentile's default method).
        lo, hi = 0, len(positions) - 1
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if positions[mid] <= target:
                lo = mid
            else:
                hi = mid
        span = positions[hi] - positions[lo]
        if span <= 0.0:
            return values[lo]
        frac = (target - positions[lo]) / span
        # NumPy's _lerp, replicated operation-for-operation so that an
        # uncompacted sketch is bit-identical to np.percentile.
        a, b = values[lo], values[hi]
        diff = b - a
        if frac >= 0.5:
            return b - diff * (1.0 - frac)
        return a + diff * frac

    # ------------------------------------------------------------------
    @property
    def retained(self) -> int:
        """Items currently held across all levels (the memory footprint)."""
        return sum(len(items) for items in self._levels)

    def error_bound(self) -> float:
        """Current documented rank-error bound as a fraction of ``n``."""
        return rank_error_bound(self.n, self.k)

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<QuantileSketch n={self.n} k={self.k} retained={self.retained} "
            f"levels={len(self._levels)}>"
        )


class StreamingJitter:
    """RFC 3550 §6.4.1 smoothed interarrival jitter, fed one-way delays
    in arrival order.

    ``J ← J + (|D| − J)/16`` where ``D`` is the transit-time difference
    of consecutive packets — which *is* the difference of consecutive
    delay samples, so this matches the batch oracle bit for bit.
    """

    __slots__ = ("value", "count", "_last")

    def __init__(self) -> None:
        self.value = 0.0
        self.count = 0
        self._last: float | None = None

    def update(self, delay_s: float) -> float:
        self.count += 1
        last = self._last
        self._last = delay_s
        if last is not None:
            d = delay_s - last
            if d < 0.0:
                d = -d
            self.value += (d - self.value) / 16.0
        return self.value
