"""Live SLO engine: continuous SLA conformance from streaming estimators.

The batch path (:func:`repro.metrics.stats.summarize_flow` →
:func:`repro.metrics.sla.evaluate`) renders one verdict after the run
from raw sample arrays.  The :class:`SloEngine` instead observes every
local delivery *as it happens* — via the ``TraceBus.slo`` attachment
checked in :meth:`repro.net.node.Node.deliver_local` — and maintains
per-flow and per-VRF×class :class:`SloStream` s built on the bounded
estimators of :mod:`repro.obs.sketch`:

* **quantiles** from a :class:`~repro.obs.sketch.QuantileSketch` (exact
  up to ``k`` samples, documented rank error beyond);
* **jitter** from the RFC 3550 streaming estimator (bit-identical to
  the batch oracle);
* **loss** two ways — in-band (sequence gaps, available live) and
  end-of-run (against the generator's send counter, identical to the
  oracle when the generator is known).

On top of the estimators sits *continuous conformance*: time is cut
into fixed windows (``window_s``) and each closed window is judged
against the stream's bound :class:`~repro.metrics.sla.SlaSpec` —
producing the **first-violation timestamp**, cumulative
**violation-seconds**, and the **worst window** by severity.  Windowed
verdicts are in-band estimates (a window's "p99 proxy" is the fraction
of packets over the delay budget; an *empty* window after traffic has
started counts as full loss); the end-of-run :meth:`SloEngine.verdict`
— computed from the same streaming state — is the authoritative answer
and is verdict-identical to the batch oracle on the seeded experiments
(``tests/test_obs_slo.py``).

The engine never touches the hot path unless attached: ``trace.slo`` is
``None`` by default and ``deliver_local`` does one attribute check.
"""

from __future__ import annotations

from math import nan
from typing import Any, Optional

from repro.metrics.sla import SlaSpec, SlaVerdict, evaluate
from repro.metrics.stats import FlowStats
from repro.obs.sketch import QuantileSketch, StreamingJitter
from repro.qos.dscp import class_of_dscp_name

__all__ = ["SloStream", "SloEngine"]

#: Fraction of a window's packets allowed over the delay budget before
#: the window counts as a delay violation — the windowed p99 proxy.
WINDOW_DELAY_QUANTILE = 0.01


class SloStream:
    """Streaming state for one measurement key (a flow, or a VRF×class).

    All per-packet state is O(1) except the sketch (bounded by design);
    nothing here retains raw samples.
    """

    __slots__ = (
        "key", "spec", "window_s", "sketch", "jitter",
        "count", "bytes", "sum_delay", "max_delay", "_mean", "_m2",
        "min_seq", "max_seq", "first_t", "last_t",
        "_win_index", "_win_count", "_win_over", "_win_min_seq", "_win_max_seq",
        "first_violation_s", "violation_seconds", "worst_window",
        "windows_closed", "windows_violated",
    )

    def __init__(
        self,
        key: str,
        spec: Optional[SlaSpec] = None,
        window_s: float = 0.5,
        sketch_k: int = 2048,
    ) -> None:
        self.key = key
        self.spec = spec
        self.window_s = window_s
        self.sketch = QuantileSketch(k=sketch_k)
        self.jitter = StreamingJitter()
        self.count = 0
        self.bytes = 0
        self.sum_delay = 0.0
        self.max_delay = 0.0
        self._mean = 0.0
        self._m2 = 0.0
        self.min_seq: int | None = None
        self.max_seq: int | None = None
        self.first_t: float | None = None
        self.last_t: float | None = None
        self._win_index: int | None = None
        self._win_count = 0
        self._win_over = 0
        self._win_min_seq: int | None = None
        self._win_max_seq: int | None = None
        self.first_violation_s: float | None = None
        self.violation_seconds = 0.0
        self.worst_window: dict[str, Any] | None = None
        self.windows_closed = 0
        self.windows_violated = 0

    # ------------------------------------------------------------------
    def observe(self, now: float, delay_s: float, seq: int, wire_bytes: int) -> None:
        idx = int(now / self.window_s)
        if self._win_index is None:
            self._win_index = idx
        while idx > self._win_index:
            self._close_window()
            self._win_index += 1

        self.count += 1
        self.bytes += wire_bytes
        self.sum_delay += delay_s
        if delay_s > self.max_delay:
            self.max_delay = delay_s
        # Welford's online variance (for delay_std without raw samples).
        d = delay_s - self._mean
        self._mean += d / self.count
        self._m2 += d * (delay_s - self._mean)
        self.sketch.insert(delay_s)
        # The batch oracle derives transit = arrival − (arrival − delay),
        # which is not bit-identical to the raw delay under IEEE rounding.
        # Reproduce its arithmetic so the streaming jitter matches the
        # oracle to the last bit.
        self.jitter.update(now - (now - delay_s))
        if self.min_seq is None or seq < self.min_seq:
            self.min_seq = seq
        if self.max_seq is None or seq > self.max_seq:
            self.max_seq = seq
        if self.first_t is None:
            self.first_t = now
        self.last_t = now

        self._win_count += 1
        spec = self.spec
        if spec is not None and spec.max_p99_delay_s is not None:
            if delay_s > spec.max_p99_delay_s:
                self._win_over += 1
        if self._win_min_seq is None or seq < self._win_min_seq:
            self._win_min_seq = seq
        if self._win_max_seq is None or seq > self._win_max_seq:
            self._win_max_seq = seq

    # ------------------------------------------------------------------
    def _close_window(self) -> None:
        spec = self.spec
        wcount = self._win_count
        wover = self._win_over
        wmin, wmax = self._win_min_seq, self._win_max_seq
        self._win_count = 0
        self._win_over = 0
        self._win_min_seq = None
        self._win_max_seq = None
        if spec is None:
            return
        self.windows_closed += 1
        metrics: list[str] = []
        severity = 0.0
        if wcount == 0:
            # Silence after traffic has started is the strongest in-band
            # loss signal a receiver has (a dead LSP looks exactly like
            # this) — judge it as 100% loss if loss is committed.
            if spec.max_loss_ratio is not None:
                metrics.append("loss")
                severity = max(severity, 1.0 / spec.max_loss_ratio)
        else:
            if spec.max_p99_delay_s is not None:
                frac_over = wover / wcount
                if frac_over > WINDOW_DELAY_QUANTILE:
                    metrics.append("delay")
                    severity = max(severity, frac_over / WINDOW_DELAY_QUANTILE)
            if (
                spec.max_jitter_s is not None
                and self.jitter.count >= 2
                and self.jitter.value > spec.max_jitter_s
            ):
                metrics.append("jitter")
                severity = max(severity, self.jitter.value / spec.max_jitter_s)
            if spec.max_loss_ratio is not None and wmin is not None:
                expected = wmax - wmin + 1  # type: ignore[operator]
                loss_w = 1.0 - wcount / expected if expected > 0 else 0.0
                if loss_w > spec.max_loss_ratio:
                    metrics.append("loss")
                    severity = max(severity, loss_w / spec.max_loss_ratio)
        if not metrics:
            return
        t_start = self._win_index * self.window_s  # type: ignore[operator]
        self.windows_violated += 1
        self.violation_seconds += self.window_s
        if self.first_violation_s is None:
            self.first_violation_s = t_start
        if self.worst_window is None or severity > self.worst_window["severity"]:
            self.worst_window = {
                "t_start_s": t_start,
                "severity": round(severity, 4),
                "metrics": metrics,
            }

    def finalize(self, now: float | None = None) -> None:
        """Close the trailing window at end of run.

        With ``now`` the silent windows up to ``now`` are judged too;
        without it only the window containing the last packet is closed.
        The engine calls the latter: once traffic stops, end-of-run drain
        silence is indistinguishable from end-of-service and must not be
        booked as an outage.  *Mid-run* silence is still always counted —
        when traffic resumes, :meth:`observe` rolls over the empty
        windows and judges each one.
        """
        if self._win_index is None:
            return
        if now is not None:
            idx = int(now / self.window_s)
            while idx > self._win_index:
                self._close_window()
                self._win_index += 1
        self._close_window()

    # ------------------------------------------------------------------
    @property
    def mean_delay_s(self) -> float:
        return self.sum_delay / self.count if self.count else nan

    @property
    def delay_std_s(self) -> float:
        return (self._m2 / self.count) ** 0.5 if self.count else nan

    def quantile(self, q: float) -> float:
        return self.sketch.query(q)

    def inband_loss_ratio(self) -> float:
        """Loss estimated from sequence gaps (no generator needed)."""
        if self.count == 0 or self.min_seq is None:
            return nan
        expected = self.max_seq - self.min_seq + 1  # type: ignore[operator]
        return 1.0 - self.count / expected if expected > 0 else 0.0

    def stats(self, flow: str, sent: int, duration_s: float | None = None) -> FlowStats:
        """A :class:`FlowStats` built from streaming state, mirroring
        :func:`repro.metrics.stats.summarize_flow` — including its NaN
        semantics for empty streams — so the same SLA evaluator applies."""
        if duration_s is None:
            duration_s = (
                float(self.last_t - self.first_t)  # type: ignore[operator]
                if self.count >= 2
                else 0.0
            )
        if self.count == 0:
            return FlowStats(
                flow=flow, sent=sent, received=0,
                mean_delay_s=nan, p50_delay_s=nan, p95_delay_s=nan,
                p99_delay_s=nan, max_delay_s=nan, jitter_rfc3550_s=nan,
                delay_std_s=nan, loss_ratio=1.0 if sent else 0.0,
                throughput_bps=0.0, duration_s=duration_s or 0.0,
            )
        loss = 1.0 - self.count / sent if sent else 0.0
        thru = self.bytes * 8.0 / duration_s if duration_s > 0 else 0.0
        return FlowStats(
            flow=flow,
            sent=sent,
            received=self.count,
            mean_delay_s=self.mean_delay_s,
            p50_delay_s=self.quantile(50),
            p95_delay_s=self.quantile(95),
            p99_delay_s=self.quantile(99),
            max_delay_s=self.max_delay,
            jitter_rfc3550_s=self.jitter.value if self.count >= 2 else 0.0,
            delay_std_s=self.delay_std_s,
            loss_ratio=max(0.0, loss),
            throughput_bps=thru,
            duration_s=duration_s,
        )

    def row(self) -> dict[str, Any]:
        """Flat live-report row (table / sweep / JSON friendly)."""
        fv = self.first_violation_s
        worst = self.worst_window
        return {
            "key": self.key,
            "spec": self.spec.name if self.spec else "",
            "recv": self.count,
            "p50_ms": round(1e3 * self.quantile(50), 3) if self.count else nan,
            "p95_ms": round(1e3 * self.quantile(95), 3) if self.count else nan,
            "p99_ms": round(1e3 * self.quantile(99), 3) if self.count else nan,
            "jitter_ms": round(1e3 * self.jitter.value, 3),
            "inband_loss%": (
                round(100 * self.inband_loss_ratio(), 3) if self.count else nan
            ),
            "first_viol_s": round(fv, 3) if fv is not None else "",
            "viol_s": round(self.violation_seconds, 3),
            "worst_win": (
                f"{worst['t_start_s']:.2f}s:{'+'.join(worst['metrics'])}"
                if worst
                else ""
            ),
        }


class SloEngine:
    """Per-network live SLO state: a :class:`SloStream` per flow and per
    VRF×class, fed by ``Node.deliver_local`` through ``trace.slo``.

    VRF attribution happens at the delivery node — register receiver
    nodes with :meth:`map_node_vrf` — so the PE forwarding pipeline is
    never touched.  Flows named ``__heal*``/``__probe*`` (the tracer's
    healing probes and ProbeAgent streams) are synthetic measurement
    traffic and are excluded from customer streams.
    """

    def __init__(self, sim, window_s: float = 0.5, sketch_k: int = 2048) -> None:
        self.sim = sim
        self.window_s = window_s
        self.sketch_k = sketch_k
        self.flows: dict[Any, SloStream] = {}
        self.classes: dict[tuple[str, str], SloStream] = {}
        self._flow_specs: dict[Any, SlaSpec] = {}
        self._class_specs: dict[tuple[str, str], SlaSpec] = {}
        self._node_vrf: dict[str, str] = {}
        self.delivered = 0
        #: flow -> {"packets", "bytes", "delay_s"} analytic deliveries
        #: reported by a FluidRouter for fully-fluid aggregates.
        self.fluid: dict[Any, dict[str, Any]] = {}

    # -- configuration --------------------------------------------------
    def bind(self, flow: Any, spec: SlaSpec) -> None:
        """Commit ``spec`` for ``flow`` (continuous windowed checking)."""
        self._flow_specs[flow] = spec
        stream = self.flows.get(flow)
        if stream is not None:
            stream.spec = spec

    def bind_class(self, vrf: str, cls: str, spec: SlaSpec) -> None:
        self._class_specs[(vrf, cls)] = spec
        stream = self.classes.get((vrf, cls))
        if stream is not None:
            stream.spec = spec

    def map_node_vrf(self, node_name: str, vrf: str) -> None:
        """Attribute deliveries at ``node_name`` to ``vrf`` for the
        per-VRF×class aggregate streams."""
        self._node_vrf[node_name] = vrf

    def attach(self, net) -> "SloEngine":
        net.trace.slo = self
        return self

    def detach(self, net) -> None:
        if getattr(net.trace, "slo", None) is self:
            net.trace.slo = None

    # -- hot path (only when attached) ----------------------------------
    def deliver(self, now: float, node_name: str, pkt) -> None:
        """TraceBus.slo protocol: called once per local delivery."""
        original = pkt.innermost()
        flow = original.flow
        if isinstance(flow, str) and flow.startswith(("__heal", "__probe")):
            return
        self.delivered += 1
        delay = now - original.created
        stream = self.flows.get(flow)
        if stream is None:
            stream = self.flows[flow] = SloStream(
                str(flow), self._flow_specs.get(flow),
                self.window_s, self.sketch_k,
            )
        stream.observe(now, delay, original.seq, original.wire_bytes)
        vrf = self._node_vrf.get(node_name)
        if vrf is not None:
            cls = class_of_dscp_name(original.ip.dscp)
            ckey = (vrf, cls)
            cstream = self.classes.get(ckey)
            if cstream is None:
                cstream = self.classes[ckey] = SloStream(
                    f"{vrf}×{cls}", self._class_specs.get(ckey),
                    self.window_s, self.sketch_k,
                )
            cstream.observe(now, delay, original.seq, original.wire_bytes)

    def account_fluid(
        self, flow: Any, *, packets: int, bytes_: int, delay_s: float, now: float
    ) -> None:
        """Fold a fluid-regime delivery delta into the engine.

        Called by :class:`repro.traffic.fluid.FluidRouter` once per
        envelope epoch for aggregates that stayed fully fluid.  Analytic
        deliveries are tallied separately from packet streams — they
        carry a single deterministic delay, so pushing them through the
        windowed conformance sketches would only dilute the percentile
        state real packets earned.  ``summary()`` exposes them under
        ``"fluid"`` so manifests show the merged picture.
        """
        rec = self.fluid.get(flow)
        if rec is None:
            rec = self.fluid[flow] = {
                "packets": 0, "bytes": 0, "delay_s": delay_s, "last_s": now,
            }
        rec["packets"] += packets
        rec["bytes"] += bytes_
        rec["delay_s"] = delay_s
        rec["last_s"] = now

    # -- reporting ------------------------------------------------------
    def finalize(self) -> None:
        """Close trailing windows on every stream (call once, at end).

        Deliberately does *not* judge the silence between each stream's
        last packet and the end of the run — see
        :meth:`SloStream.finalize`."""
        for stream in self.flows.values():
            stream.finalize()
        for stream in self.classes.values():
            stream.finalize()

    def stats(self, flow: Any, sent: int, duration_s: float | None = None) -> FlowStats:
        stream = self.flows.get(flow)
        if stream is None:
            stream = SloStream(str(flow), None, self.window_s, self.sketch_k)
        return stream.stats(str(flow), sent, duration_s)

    def verdict(
        self,
        flow: Any,
        sent: int,
        duration_s: float | None = None,
        spec: SlaSpec | None = None,
    ) -> SlaVerdict:
        """End-of-run authoritative verdict from streaming state, via the
        same :func:`repro.metrics.sla.evaluate` as the batch path."""
        if spec is None:
            spec = self._flow_specs[flow]
        return evaluate(spec, self.stats(flow, sent, duration_s))

    def report(self) -> list[dict[str, Any]]:
        """Live rows: one per flow stream, then one per VRF×class."""
        rows = [s.row() for _k, s in sorted(self.flows.items(), key=lambda kv: str(kv[0]))]
        rows.extend(s.row() for _k, s in sorted(self.classes.items()))
        return rows

    def summary(self) -> dict[str, Any]:
        """JSON-able manifest fragment: conformance state per bound stream."""
        streams: dict[str, Any] = {}
        for _key, stream in sorted(self.flows.items(), key=lambda kv: str(kv[0])):
            if stream.spec is None:
                continue
            streams[stream.key] = {
                "spec": stream.spec.name,
                "received": stream.count,
                "first_violation_s": stream.first_violation_s,
                "violation_seconds": round(stream.violation_seconds, 6),
                "windows_closed": stream.windows_closed,
                "windows_violated": stream.windows_violated,
                "worst_window": stream.worst_window,
            }
        out: dict[str, Any] = {
            "window_s": self.window_s,
            "sketch_k": self.sketch_k,
            "delivered": self.delivered,
            "flows": len(self.flows),
            "class_streams": len(self.classes),
            "streams": streams,
        }
        if self.fluid:
            out["fluid"] = {
                str(flow): {
                    "packets": rec["packets"],
                    "bytes": rec["bytes"],
                    "delay_s": round(rec["delay_s"], 9),
                }
                for flow, rec in sorted(
                    self.fluid.items(), key=lambda kv: str(kv[0])
                )
            }
        return out
