"""Hand-rolled validators for the observability document schemas.

No ``jsonschema`` dependency: each validator walks a decoded JSON
document and returns a list of human-readable problems (empty when the
document is valid).

:func:`validate_manifest` checks ``repro.telemetry/v1``; two document
kinds share that schema id:

* ``kind == "run"`` — one network's manifest, produced by
  :meth:`repro.obs.telemetry.Telemetry.manifest`;
* ``kind == "bundle"`` — what ``repro run ... --telemetry out.json``
  writes: CLI options plus a list of run manifests.

:func:`validate_spans` checks ``repro.spans/v1`` — the JSONL span
documents the convergence tracer (:mod:`repro.obs.spans`) emits, one
object per line.
"""

from __future__ import annotations

from typing import Any

from repro.obs.telemetry import SCHEMA_ID

__all__ = ["validate_manifest", "validate_spans", "SCHEMA_ID", "SPAN_SCHEMA_ID"]

SPAN_SCHEMA_ID = "repro.spans/v1"

_FLOW_KEYS = {"pe", "vrf", "direction", "class", "packets", "bytes"}
_FLIGHT_KEYS = {"capacity", "buffered", "recorded_total", "aged_out"}
_OBS_RUNTIME_KEYS = {"vector_mode", "packet_counters", "slo", "spans"}


def _err(errors: list[str], where: str, msg: str) -> None:
    errors.append(f"{where}: {msg}")


def _require(
    errors: list[str], doc: dict, where: str, key: str, types: tuple | type
) -> Any:
    if key not in doc:
        _err(errors, where, f"missing key {key!r}")
        return None
    v = doc[key]
    if not isinstance(v, types):
        tname = getattr(types, "__name__", "/".join(t.__name__ for t in types))
        _err(errors, where, f"{key!r} must be {tname}, got {type(v).__name__}")
        return None
    return v


def validate_manifest(doc: Any) -> list[str]:
    """Return a list of problems with ``doc`` (empty == valid)."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return [f"document must be an object, got {type(doc).__name__}"]
    if doc.get("schema") != SCHEMA_ID:
        _err(errors, "$", f"schema must be {SCHEMA_ID!r}, got {doc.get('schema')!r}")
    kind = doc.get("kind")
    if kind == "bundle":
        _validate_bundle(doc, errors)
    elif kind == "run":
        _validate_run(doc, "$", errors)
    else:
        _err(errors, "$", f"kind must be 'run' or 'bundle', got {kind!r}")
    return errors


def _validate_bundle(doc: dict, errors: list[str]) -> None:
    exps = _require(errors, doc, "$", "experiments", list)
    if exps is not None and not all(isinstance(e, str) for e in exps):
        _err(errors, "$.experiments", "entries must be strings")
    _require(errors, doc, "$", "options", dict)
    runs = _require(errors, doc, "$", "runs", list)
    if runs is not None:
        for i, run in enumerate(runs):
            where = f"$.runs[{i}]"
            if not isinstance(run, dict):
                _err(errors, where, "must be an object")
                continue
            if run.get("kind") != "run":
                _err(errors, where, f"kind must be 'run', got {run.get('kind')!r}")
            if run.get("schema") != SCHEMA_ID:
                _err(errors, where, "schema id mismatch")
            _validate_run(run, where, errors)


def _validate_run(doc: dict, where: str, errors: list[str]) -> None:
    seed = doc.get("seed")
    if seed is not None and not isinstance(seed, int):
        _err(errors, where, "seed must be int or null")
    rev = doc.get("git_rev")
    if rev is not None and not isinstance(rev, str):
        _err(errors, where, "git_rev must be string or null")
    cfg = doc.get("config")
    if cfg is not None and not isinstance(cfg, dict):
        _err(errors, where, "config must be object or null")

    sim = _require(errors, doc, where, "sim", dict)
    if sim is not None:
        for key in ("now_s", "events_processed", "events_pending", "nodes", "links"):
            _require(errors, sim, f"{where}.sim", key, (int, float))

    metrics = _require(errors, doc, where, "metrics", dict)
    if metrics is not None:
        for name, fam in metrics.items():
            _validate_family(name, fam, f"{where}.metrics", errors)

    profile = doc.get("profile")
    if profile is not None:
        _validate_profile(profile, f"{where}.profile", errors)

    flows = _require(errors, doc, where, "flows", list)
    if flows is not None:
        for i, row in enumerate(flows):
            if not isinstance(row, dict) or set(row) != _FLOW_KEYS:
                _err(errors, f"{where}.flows[{i}]",
                     f"must be an object with keys {sorted(_FLOW_KEYS)}")

    flight = _require(errors, doc, where, "flight", dict)
    if flight is not None and set(flight) != _FLIGHT_KEYS:
        _err(errors, f"{where}.flight",
             f"must have keys {sorted(_FLIGHT_KEYS)}")

    obs_rt = _require(errors, doc, where, "obs_runtime", dict)
    if obs_rt is not None:
        if set(obs_rt) != _OBS_RUNTIME_KEYS:
            _err(errors, f"{where}.obs_runtime",
                 f"must have keys {sorted(_OBS_RUNTIME_KEYS)}")
        for key, v in obs_rt.items():
            if not isinstance(v, bool):
                _err(errors, f"{where}.obs_runtime",
                     f"{key!r} must be bool, got {type(v).__name__}")

    # Optional streaming-SLO / convergence-span summaries (null when the
    # session ran without the corresponding engine attached).
    slo = doc.get("slo")
    if slo is not None and not isinstance(slo, dict):
        _err(errors, where, "slo must be object or null")
    spans = doc.get("spans")
    if spans is not None and not isinstance(spans, dict):
        _err(errors, where, "spans must be object or null")


def _validate_family(name: Any, fam: Any, where: str, errors: list[str]) -> None:
    where = f"{where}[{name!r}]"
    if not isinstance(fam, dict):
        _err(errors, where, "must be an object")
        return
    kind = fam.get("type")
    if kind not in ("counter", "gauge", "histogram"):
        _err(errors, where, f"type must be counter/gauge/histogram, got {kind!r}")
    label_names = _require(errors, fam, where, "label_names", list)
    series = _require(errors, fam, where, "series", list)
    if series is None:
        return
    for i, s in enumerate(series):
        swhere = f"{where}.series[{i}]"
        if not isinstance(s, dict):
            _err(errors, swhere, "must be an object")
            continue
        labels = _require(errors, s, swhere, "labels", dict)
        if (
            labels is not None
            and label_names is not None
            and set(labels) != set(label_names)
        ):
            _err(errors, swhere, "labels do not match family label_names")
        if kind == "histogram":
            _require(errors, s, swhere, "buckets", list)
            _require(errors, s, swhere, "sum", (int, float))
            _require(errors, s, swhere, "count", int)
        elif kind in ("counter", "gauge"):
            _require(errors, s, swhere, "value", (int, float))


def validate_spans(docs: Any) -> list[str]:
    """Validate a sequence of ``repro.spans/v1`` span documents.

    ``docs`` is what a JSONL span file decodes to line by line (or
    :meth:`repro.obs.spans.ConvergenceTracer.span_docs` returns).
    """
    errors: list[str] = []
    if not isinstance(docs, list):
        return [f"span documents must be a list, got {type(docs).__name__}"]
    for i, doc in enumerate(docs):
        where = f"$[{i}]"
        if not isinstance(doc, dict):
            _err(errors, where, "must be an object")
            continue
        if doc.get("schema") != SPAN_SCHEMA_ID:
            _err(errors, where,
                 f"schema must be {SPAN_SCHEMA_ID!r}, got {doc.get('schema')!r}")
        for key in ("trace_id", "span_id", "kind", "name"):
            _require(errors, doc, where, key, str)
        parent = doc.get("parent_id")
        if parent is not None and not isinstance(parent, str):
            _err(errors, where, "parent_id must be string or null")
        t0 = _require(errors, doc, where, "t_start_s", (int, float))
        t1 = _require(errors, doc, where, "t_end_s", (int, float))
        if t0 is not None and t1 is not None and t1 < t0:
            _err(errors, where, f"t_end_s {t1} < t_start_s {t0}")
        _require(errors, doc, where, "attrs", dict)
    return errors


def _validate_profile(profile: Any, where: str, errors: list[str]) -> None:
    if not isinstance(profile, dict):
        _err(errors, where, "must be an object or null")
        return
    for key in ("events", "sampled", "sample_every"):
        _require(errors, profile, where, key, int)
    _require(errors, profile, where, "wall_s", (int, float))
    kinds = _require(errors, profile, where, "kinds", list)
    if kinds is not None:
        for i, k in enumerate(kinds):
            kwhere = f"{where}.kinds[{i}]"
            if not isinstance(k, dict):
                _err(errors, kwhere, "must be an object")
                continue
            _require(errors, k, kwhere, "kind", str)
            _require(errors, k, kwhere, "events", int)
            _require(errors, k, kwhere, "est_total_s", (int, float))
