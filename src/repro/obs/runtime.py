"""Process-wide telemetry switch.

The experiment harnesses construct their own :class:`~repro.topology.Network`
objects deep inside ``run_eN()`` functions, so the CLI cannot hand a
telemetry session to them directly.  Instead the CLI flips this module's
switch before running and every ``Network.__init__`` asks
:func:`attach_if_enabled`; sessions accumulate here and the CLI collects
their manifests afterwards.

Disabled (the default) this costs one module-level boolean check per
*network construction* — nothing at all per event or per packet.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.obs.telemetry import Telemetry

if TYPE_CHECKING:  # pragma: no cover
    from repro.topology import Network

__all__ = [
    "enable",
    "disable",
    "is_enabled",
    "attach_if_enabled",
    "sessions",
    "reset",
    "set_packet_counters",
    "packet_counters_enabled",
    "set_vector_mode",
    "vector_mode_enabled",
    "set_slo",
    "slo_enabled",
    "set_spans",
    "spans_enabled",
    "flags",
]

_enabled = False
_options: dict[str, Any] = {}
_sessions: list[Telemetry] = []
_vector_mode = True
_slo = False
_spans = False


def enable(**options: Any) -> None:
    """Turn telemetry on; ``options`` are passed to every new session
    (``sample_every``, ``flight_capacity``, ``profile``)."""
    global _enabled, _options
    _enabled = True
    _options = dict(options)
    # Telemetry scrapes the per-class packet counters, so enabling a
    # session always re-enables them even if a sweep turned them off.
    set_packet_counters(True)


def disable() -> None:
    """Stop attaching to new networks (existing sessions keep collecting)."""
    global _enabled
    _enabled = False


def is_enabled() -> bool:
    return _enabled


def attach_if_enabled(net: "Network") -> Telemetry | None:
    """Called by ``Network.__init__``; returns the session or ``None``."""
    if not _enabled:
        return None
    opts = dict(_options)
    # The SLO/span switches ride along unless the caller pinned them in
    # enable(**options) explicitly.
    opts.setdefault("slo", _slo)
    opts.setdefault("spans", _spans)
    session = Telemetry(net, **opts)
    _sessions.append(session)
    return session


def sessions() -> list[Telemetry]:
    """Sessions created since the last :func:`reset`, in creation order."""
    return list(_sessions)


def reset() -> None:
    """Disable and forget all sessions (detaching them first)."""
    global _options, _slo, _spans
    disable()
    for s in _sessions:
        s.detach()
    _sessions.clear()
    _options = {}
    _slo = False
    _spans = False
    set_packet_counters(True)


def set_packet_counters(on: bool) -> None:
    """Flip the per-packet ``ClassStats``/drop-hook switch in the qdiscs.

    On (the default) every enqueue/dequeue maintains per-class counters and
    notifies the interface's drop callback — the behaviour tests and
    telemetry sessions rely on.  Off is the sweep/benchmark fast path: an
    unobserved run skips the bookkeeping entirely.  Flow metrics come from
    sinks, so experiment results are identical either way; only the
    counters (and queue-drop trace records) go dark.
    """
    from repro.qos import queues

    queues.COUNTERS = bool(on)


def packet_counters_enabled() -> bool:
    from repro.qos import queues

    return queues.COUNTERS


def set_vector_mode(on: bool) -> None:
    """Choose the data-plane dispatch for *subsequently built* networks.

    On (the default), ``Network.__init__`` installs the kernel's burst
    extraction (``repro.net.node.install_vector_dispatch``): same-time
    arrivals at one node are fused into a ``receive_batch`` vector.  Off
    forces pure scalar dispatch — the parity oracle.  Both paths are
    required to produce bit-identical traces (tests/test_dataplane_batch.py),
    so this switch changes speed, never results.  Existing networks are
    unaffected; flip their simulator directly via
    ``install_vector_dispatch``/``remove_vector_dispatch``.
    """
    global _vector_mode
    _vector_mode = bool(on)


def vector_mode_enabled() -> bool:
    return _vector_mode


def set_slo(on: bool) -> None:
    """Arm the streaming SLO engine for subsequently attached sessions.

    When on, every new :class:`Telemetry` session builds an
    :class:`~repro.obs.slo.SloEngine` and attaches it to the network's
    ``trace.slo`` hook (one per-delivery callback).  Off — the default —
    the hot path pays a single ``None`` check per delivery.
    """
    global _slo
    _slo = bool(on)


def slo_enabled() -> bool:
    return _slo


def set_spans(on: bool) -> None:
    """Arm the convergence tracer for subsequently attached sessions.

    When on, every new :class:`Telemetry` session attaches a
    :class:`~repro.obs.spans.ConvergenceTracer` to the network's link
    state-change listeners and control-plane hook points.  Costs nothing
    per packet; only link flaps and reconvergence events are observed.
    """
    global _spans
    _spans = bool(on)


def spans_enabled() -> bool:
    return _spans


def flags() -> dict[str, bool]:
    """The process-wide observability switch state, for manifests.

    A manifest must fully determine the run configuration; these four
    switches are the ones that change what a run collects (or how it
    dispatches packets) without appearing anywhere else in the config.
    """
    return {
        "vector_mode": _vector_mode,
        "packet_counters": packet_counters_enabled(),
        "slo": _slo,
        "spans": _spans,
    }
