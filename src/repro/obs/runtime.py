"""Process-wide telemetry switch.

The experiment harnesses construct their own :class:`~repro.topology.Network`
objects deep inside ``run_eN()`` functions, so the CLI cannot hand a
telemetry session to them directly.  Instead the CLI flips this module's
switch before running and every ``Network.__init__`` asks
:func:`attach_if_enabled`; sessions accumulate here and the CLI collects
their manifests afterwards.

Disabled (the default) this costs one module-level boolean check per
*network construction* — nothing at all per event or per packet.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.obs.telemetry import Telemetry

if TYPE_CHECKING:  # pragma: no cover
    from repro.topology import Network

__all__ = [
    "enable",
    "disable",
    "is_enabled",
    "attach_if_enabled",
    "sessions",
    "reset",
]

_enabled = False
_options: dict[str, Any] = {}
_sessions: list[Telemetry] = []


def enable(**options: Any) -> None:
    """Turn telemetry on; ``options`` are passed to every new session
    (``sample_every``, ``flight_capacity``, ``profile``)."""
    global _enabled, _options
    _enabled = True
    _options = dict(options)


def disable() -> None:
    """Stop attaching to new networks (existing sessions keep collecting)."""
    global _enabled
    _enabled = False


def is_enabled() -> bool:
    return _enabled


def attach_if_enabled(net: "Network") -> Telemetry | None:
    """Called by ``Network.__init__``; returns the session or ``None``."""
    if not _enabled:
        return None
    session = Telemetry(net, **_options)
    _sessions.append(session)
    return session


def sessions() -> list[Telemetry]:
    """Sessions created since the last :func:`reset`, in creation order."""
    return list(_sessions)


def reset() -> None:
    """Disable and forget all sessions (detaching them first)."""
    global _options
    disable()
    for s in _sessions:
        s.detach()
    _sessions.clear()
    _options = {}
