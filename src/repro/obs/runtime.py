"""Process-wide telemetry switch.

The experiment harnesses construct their own :class:`~repro.topology.Network`
objects deep inside ``run_eN()`` functions, so the CLI cannot hand a
telemetry session to them directly.  Instead the CLI flips this module's
switch before running and every ``Network.__init__`` asks
:func:`attach_if_enabled`; sessions accumulate here and the CLI collects
their manifests afterwards.

Disabled (the default) this costs one module-level boolean check per
*network construction* — nothing at all per event or per packet.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.obs.telemetry import Telemetry

if TYPE_CHECKING:  # pragma: no cover
    from repro.topology import Network

__all__ = [
    "enable",
    "disable",
    "is_enabled",
    "attach_if_enabled",
    "sessions",
    "reset",
    "set_packet_counters",
    "packet_counters_enabled",
    "set_vector_mode",
    "vector_mode_enabled",
]

_enabled = False
_options: dict[str, Any] = {}
_sessions: list[Telemetry] = []
_vector_mode = True


def enable(**options: Any) -> None:
    """Turn telemetry on; ``options`` are passed to every new session
    (``sample_every``, ``flight_capacity``, ``profile``)."""
    global _enabled, _options
    _enabled = True
    _options = dict(options)
    # Telemetry scrapes the per-class packet counters, so enabling a
    # session always re-enables them even if a sweep turned them off.
    set_packet_counters(True)


def disable() -> None:
    """Stop attaching to new networks (existing sessions keep collecting)."""
    global _enabled
    _enabled = False


def is_enabled() -> bool:
    return _enabled


def attach_if_enabled(net: "Network") -> Telemetry | None:
    """Called by ``Network.__init__``; returns the session or ``None``."""
    if not _enabled:
        return None
    session = Telemetry(net, **_options)
    _sessions.append(session)
    return session


def sessions() -> list[Telemetry]:
    """Sessions created since the last :func:`reset`, in creation order."""
    return list(_sessions)


def reset() -> None:
    """Disable and forget all sessions (detaching them first)."""
    global _options
    disable()
    for s in _sessions:
        s.detach()
    _sessions.clear()
    _options = {}
    set_packet_counters(True)


def set_packet_counters(on: bool) -> None:
    """Flip the per-packet ``ClassStats``/drop-hook switch in the qdiscs.

    On (the default) every enqueue/dequeue maintains per-class counters and
    notifies the interface's drop callback — the behaviour tests and
    telemetry sessions rely on.  Off is the sweep/benchmark fast path: an
    unobserved run skips the bookkeeping entirely.  Flow metrics come from
    sinks, so experiment results are identical either way; only the
    counters (and queue-drop trace records) go dark.
    """
    from repro.qos import queues

    queues.COUNTERS = bool(on)


def packet_counters_enabled() -> bool:
    from repro.qos import queues

    return queues.COUNTERS


def set_vector_mode(on: bool) -> None:
    """Choose the data-plane dispatch for *subsequently built* networks.

    On (the default), ``Network.__init__`` installs the kernel's burst
    extraction (``repro.net.node.install_vector_dispatch``): same-time
    arrivals at one node are fused into a ``receive_batch`` vector.  Off
    forces pure scalar dispatch — the parity oracle.  Both paths are
    required to produce bit-identical traces (tests/test_dataplane_batch.py),
    so this switch changes speed, never results.  Existing networks are
    unaffected; flip their simulator directly via
    ``install_vector_dispatch``/``remove_vector_dispatch``.
    """
    global _vector_mode
    _vector_mode = bool(on)


def vector_mode_enabled() -> bool:
    return _vector_mode
