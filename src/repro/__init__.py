"""Reproduction of the ICPP 2000 MPLS VPN QoS architecture paper."""
