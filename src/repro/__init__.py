"""Reproduction of the ICPP 2000 MPLS VPN QoS architecture paper."""

__version__ = "1.0.0"
