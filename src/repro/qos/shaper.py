"""Token-bucket traffic shaping.

A shaper differs from a policer in *where* the excess goes: a policer
drops out-of-profile packets, a shaper holds them until the bucket refills
— turning bursts into a smooth conformant stream at the cost of delay.
Providers shape at the PE egress toward the customer so the access link's
contract is honoured; customers shape toward the PE so their ingress
policer never fires.

The shaper is a non-work-conserving queue discipline: ``dequeue`` refuses
out-of-profile heads and reports the refill time through
:meth:`next_eligible`, which the driving interface uses to schedule its
retry (same mechanism CBQ regulation uses).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.net.drops import DropReason
from repro.net.packet import Packet
from repro.qos.meter import TokenBucket
from repro.qos.queues import ClassStats, DropCallback, QueueDiscipline

__all__ = ["TokenBucketShaper"]


class TokenBucketShaper(QueueDiscipline):
    """FIFO + token-bucket release gate.

    Parameters
    ----------
    rate_bps / burst_bytes:
        The shaping profile.  The bucket starts full, so an initial burst
        up to ``burst_bytes`` passes unshaped (standard behaviour).
    capacity_packets / capacity_bytes:
        Backlog bounds; excess arrivals tail-drop (a shaper has finite
        buffer — unbounded shaping would just move the loss to memory).
    """

    def __init__(
        self,
        rate_bps: float,
        burst_bytes: int,
        capacity_packets: int | None = 200,
        capacity_bytes: int | None = None,
    ) -> None:
        self.bucket = TokenBucket(rate_bps, burst_bytes)
        self._q: deque[Packet] = deque()
        self._bytes = 0
        self.capacity_packets = capacity_packets
        self.capacity_bytes = capacity_bytes
        self.stats = ClassStats()
        self.on_drop: DropCallback | None = None

    def set_drop_callback(self, cb: DropCallback | None) -> None:
        self.on_drop = cb

    # ------------------------------------------------------------------
    def enqueue(self, pkt: Packet, now: float) -> bool:
        if (
            self.capacity_packets is not None and len(self._q) >= self.capacity_packets
        ) or (
            self.capacity_bytes is not None
            and self._bytes + pkt.wire_bytes > self.capacity_bytes
        ):
            self.stats.dropped += 1
            if self.on_drop is not None:
                self.on_drop(pkt, DropReason.QUEUE_TAIL, now)
            return False
        self._q.append(pkt)
        self._bytes += pkt.wire_bytes
        self.stats.enqueued += 1
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        if not self._q:
            return None
        head = self._q[0]
        if not self.bucket.conforms(head.wire_bytes, now):
            return None  # out of profile: interface will retry at next_eligible
        self._q.popleft()
        self._bytes -= head.wire_bytes
        self.stats.dequeued += 1
        self.stats.bytes_sent += head.wire_bytes
        return head

    def next_eligible(self, now: float) -> float:
        if not self._q:
            return float("inf")
        return now + self.bucket.time_until(self._q[0].wire_bytes, now)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._q)

    @property
    def backlog_bytes(self) -> int:
        return self._bytes
