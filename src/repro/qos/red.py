"""Random Early Detection (RED) and Weighted RED.

RED (Floyd & Jacobson 1993) keeps an EWMA of queue occupancy and drops
arriving packets with a probability that ramps from 0 at ``min_th`` to
``max_p`` at ``max_th`` (then 1 above).  WRED runs one RED curve per drop
precedence so AFx3 traffic is shed before AFx1 — the mechanism that makes
the srTCM remarking at the edge (repro.qos.meter) actually bite in the
core.

Implemented as :class:`DropPolicy` objects pluggable into any queue in
:mod:`repro.qos.queues`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.packet import Packet
from repro.qos.dscp import PHB_OF_DSCP

__all__ = ["RedParams", "RedQueueManager", "WredQueueManager"]


@dataclass(frozen=True, slots=True)
class RedParams:
    """One RED drop curve (thresholds in bytes)."""

    min_th: int
    max_th: int
    max_p: float = 0.1
    weight: float = 0.002  # EWMA gain

    def __post_init__(self) -> None:
        if not 0 < self.min_th < self.max_th:
            raise ValueError("need 0 < min_th < max_th")
        if not 0.0 < self.max_p <= 1.0:
            raise ValueError("max_p must be in (0, 1]")
        if not 0.0 < self.weight <= 1.0:
            raise ValueError("weight must be in (0, 1]")


class RedQueueManager:
    """Classic RED with the gentle ramp and count-based spacing of drops.

    The inter-drop count adjustment (``1/(1 - count*p)``) spreads drops
    uniformly instead of in bursts, per the original paper.
    """

    def __init__(self, params: RedParams, rng) -> None:
        self.params = params
        self.rng = rng
        self.avg = 0.0
        self._count = 0  # packets since last drop while in drop region
        self.forced_drops = 0
        self.random_drops = 0

    # -- DropPolicy protocol -------------------------------------------
    def should_drop(self, pkt: Packet, backlog_bytes: int, now: float) -> bool:
        p = self.params
        self.avg += p.weight * (backlog_bytes - self.avg)
        if self.avg < p.min_th:
            self._count = 0
            return False
        if self.avg >= p.max_th:
            self.forced_drops += 1
            self._count = 0
            return True
        base = p.max_p * (self.avg - p.min_th) / (p.max_th - p.min_th)
        denom = 1.0 - self._count * base
        prob = base / denom if denom > 0 else 1.0
        self._count += 1
        if self.rng.random() < prob:
            self.random_drops += 1
            self._count = 0
            return True
        return False

    def notify_dequeue(self, backlog_bytes: int, now: float) -> None:
        # EWMA updates on arrivals only (standard RED); nothing to do here.
        return None


class WredQueueManager:
    """Weighted RED: one RED curve per AF drop precedence in a shared queue.

    The packet's drop precedence is derived from its DSCP (AFx1=0, AFx2=1,
    AFx3=2); each precedence has progressively tighter thresholds.
    """

    def __init__(self, curves: dict[int, RedParams], rng) -> None:
        if not curves:
            raise ValueError("need at least one curve")
        self.managers = {
            prec: RedQueueManager(params, rng) for prec, params in curves.items()
        }
        self._fallback = max(self.managers)  # most aggressive curve

    @staticmethod
    def precedence_of(pkt: Packet) -> int:
        return PHB_OF_DSCP.get(pkt.classifiable_dscp(), ("BE", 0))[1]

    def should_drop(self, pkt: Packet, backlog_bytes: int, now: float) -> bool:
        prec = self.precedence_of(pkt)
        mgr = self.managers.get(prec) or self.managers[self._fallback]
        # All curves must track the same average; update the others' EWMA
        # without a drop decision so their state stays coherent.
        for p, other in self.managers.items():
            if other is not mgr:
                other.avg += other.params.weight * (backlog_bytes - other.avg)
        return mgr.should_drop(pkt, backlog_bytes, now)

    def notify_dequeue(self, backlog_bytes: int, now: float) -> None:
        return None

    @property
    def total_drops(self) -> int:
        return sum(m.forced_drops + m.random_drops for m in self.managers.values())


def standard_wred(capacity_bytes: int, rng) -> WredQueueManager:
    """Three-precedence WRED tuned to a queue of ``capacity_bytes``.

    AFx1 keeps the widest headroom; AFx3 is shed first.  Ratios follow
    common vendor defaults (min at ~30/25/20 % and max at ~80/70/60 %).
    """
    def curve(lo: float, hi: float, p: float) -> RedParams:
        return RedParams(
            min_th=max(1, int(capacity_bytes * lo)),
            max_th=max(2, int(capacity_bytes * hi)),
            max_p=p,
        )

    return WredQueueManager(
        {0: curve(0.30, 0.80, 0.05), 1: curve(0.25, 0.70, 0.10), 2: curve(0.20, 0.60, 0.20)},
        rng,
    )
