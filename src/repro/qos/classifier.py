"""Packet classifiers.

Two classifier species exist in DiffServ (RFC 2475):

* **Multi-field (MF)** — matches on the 5-tuple plus DSCP; only usable where
  the IP header of the *customer* packet is visible (CPE, PE ingress).
* **Behaviour-aggregate (BA)** — matches only the DSCP (or, in the MPLS
  core, the EXP bits).  This is all an interior node can do, and for an
  encrypted IPsec tunnel it sees only the *outer* header — the structural
  fact behind claim C3.

Classifiers here produce scheduler class indices (ints) for the queue
disciplines, via small composable callables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.net.address import Prefix
from repro.net.packet import Packet
from repro.qos.dscp import dscp_to_class, exp_to_class

__all__ = [
    "ba_classifier",
    "exp_classifier",
    "mpls_aware_classifier",
    "llsp_classifier",
    "FlowMatch",
    "MultiFieldClassifier",
]


def ba_classifier(pkt: Packet) -> int:
    """Behaviour-aggregate classification on the *visible* (outer) DSCP.

    For an ESP-encrypted packet this is the tunnel header's DSCP — if the
    tunnel ingress did not copy the inner DSCP out, every flow lands in the
    same class and per-flow QoS is gone (claim C3).
    """
    return dscp_to_class(pkt.classifiable_dscp())


def exp_classifier(pkt: Packet) -> int:
    """Core-LSR classification on the MPLS EXP bits (E-LSP model)."""
    top = pkt.top_label
    if top is None:
        return dscp_to_class(pkt.classifiable_dscp())
    return exp_to_class(top.exp)


def mpls_aware_classifier(pkt: Packet) -> int:
    """EXP bits when labeled, outer DSCP otherwise — what a modern LSR does."""
    return exp_classifier(pkt)


def llsp_classifier(node) -> "ClassifierFn":
    """RFC 3270 L-LSP classification: the *label* implies the class.

    Returns a per-node classifier closure: labeled packets whose top label
    appears in the node's ``label_class`` map take that class; everything
    else falls back to EXP/DSCP (E-LSP behaviour), so both models coexist
    on one box.
    """

    def _classify(pkt: Packet) -> int:
        top = pkt.top_label
        if top is not None:
            cls = node.label_class.get(top.label)
            if cls is not None:
                return cls
        return exp_classifier(pkt)

    return _classify


ClassifierFn = Callable[[Packet], int]


@dataclass(frozen=True, slots=True)
class FlowMatch:
    """One multi-field match rule.  ``None`` fields are wildcards."""

    src: Optional[Prefix] = None
    dst: Optional[Prefix] = None
    proto: Optional[str] = None
    src_port: Optional[int] = None
    dst_port: Optional[int] = None
    dscp: Optional[int] = None

    def matches(self, pkt: Packet) -> bool:
        ip = pkt.ip
        if self.src is not None and not self.src.contains(ip.src):
            return False
        if self.dst is not None and not self.dst.contains(ip.dst):
            return False
        if self.proto is not None and ip.proto != self.proto:
            return False
        if self.src_port is not None and ip.src_port != self.src_port:
            return False
        if self.dst_port is not None and ip.dst_port != self.dst_port:
            return False
        if self.dscp is not None and ip.dscp != self.dscp:
            return False
        return True


class MultiFieldClassifier:
    """Ordered rule list mapping packets to class indices (first match wins).

    This is the CPE classifier of §5: the customer premises device inspects
    the full 5-tuple of its own cleartext traffic and assigns it to a CBQ
    class / DSCP marking.
    """

    def __init__(self, default_class: int = 0) -> None:
        self.rules: list[tuple[FlowMatch, int]] = []
        self.default_class = default_class

    def add_rule(self, match: FlowMatch, class_index: int) -> None:
        self.rules.append((match, class_index))

    def __call__(self, pkt: Packet) -> int:
        for match, idx in self.rules:
            if match.matches(pkt):
                return idx
        return self.default_class

    def __len__(self) -> int:
        return len(self.rules)
