"""DiffServ codepoints, per-hop behaviours, and MPLS EXP mappings.

The paper's end-to-end QoS chain (§5) is: CPE marks DSCP → provider edge
maps DSCP into the 3-bit MPLS EXP field → core LSRs schedule on EXP.  This
module defines the standard codepoints (RFC 2474/2597/3246), the service
classes the experiments use, and the DSCP↔EXP mapping tables (the "E-LSP"
model of RFC 3270, where one LSP carries all classes distinguished by EXP).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

__all__ = [
    "DSCP",
    "ServiceClass",
    "PHB_OF_DSCP",
    "dscp_to_exp",
    "exp_to_class",
    "dscp_to_class",
    "class_of_dscp_name",
    "DEFAULT_CLASS_ORDER",
]


class DSCP(IntEnum):
    """Standard DiffServ codepoints (6-bit values)."""

    BE = 0          # best effort / default PHB
    CS1 = 8
    AF11 = 10
    AF12 = 12
    AF13 = 14
    CS2 = 16
    AF21 = 18
    AF22 = 20
    AF23 = 22
    CS3 = 24
    AF31 = 26
    AF32 = 28
    AF33 = 30
    CS4 = 32
    AF41 = 34
    AF42 = 36
    AF43 = 38
    CS5 = 40
    EF = 46         # expedited forwarding (voice)
    CS6 = 48
    CS7 = 56


@dataclass(frozen=True, slots=True)
class ServiceClass:
    """One of the simulator's scheduling classes.

    ``index`` is the scheduler class number: 0 is highest priority by
    convention (EF), the last index is best effort.  ``drop_precedence``
    distinguishes AFx1/AFx2/AFx3 inside one queue for WRED.
    """

    name: str
    index: int
    drop_precedence: int = 0


# Scheduling-class order used throughout the experiments:
#   0 = EF (voice), 1 = AF (assured data), 2 = BE (best effort)
DEFAULT_CLASS_ORDER: tuple[str, ...] = ("EF", "AF", "BE")

# Map every codepoint to (class name, drop precedence).
PHB_OF_DSCP: dict[int, tuple[str, int]] = {
    int(DSCP.EF): ("EF", 0),
    int(DSCP.CS5): ("EF", 0),
    int(DSCP.AF11): ("AF", 0), int(DSCP.AF12): ("AF", 1), int(DSCP.AF13): ("AF", 2),
    int(DSCP.AF21): ("AF", 0), int(DSCP.AF22): ("AF", 1), int(DSCP.AF23): ("AF", 2),
    int(DSCP.AF31): ("AF", 0), int(DSCP.AF32): ("AF", 1), int(DSCP.AF33): ("AF", 2),
    int(DSCP.AF41): ("AF", 0), int(DSCP.AF42): ("AF", 1), int(DSCP.AF43): ("AF", 2),
    int(DSCP.BE): ("BE", 0),
    int(DSCP.CS1): ("BE", 1),
}


def dscp_to_class(dscp: int) -> int:
    """Scheduler class index for a DSCP (unknown codepoints → best effort)."""
    name, _prec = PHB_OF_DSCP.get(int(dscp), ("BE", 0))
    return DEFAULT_CLASS_ORDER.index(name)


def class_of_dscp_name(dscp: int) -> str:
    """Class name ("EF"/"AF"/"BE") for a DSCP."""
    return PHB_OF_DSCP.get(int(dscp), ("BE", 0))[0]


# ---------------------------------------------------------------------------
# MPLS EXP mapping (E-LSP model).  The 3-bit EXP field carries the class:
#   EXP 5 = EF, EXP 4..1 = AF (4 minus drop precedence), EXP 0 = BE.
# This is the edge mapping of claim C6: the provider edge copies the
# CPE-specified DSCP service level into the MPLS header so that core LSRs —
# which never look at the (possibly encrypted) IP header — still schedule
# correctly.
# ---------------------------------------------------------------------------

def dscp_to_exp(dscp: int) -> int:
    """Map a DSCP to the MPLS EXP bits used across the backbone."""
    name, prec = PHB_OF_DSCP.get(int(dscp), ("BE", 0))
    if name == "EF":
        return 5
    if name == "AF":
        return 4 - min(prec, 3)
    return 0


def exp_to_class(exp: int) -> int:
    """Scheduler class index for an EXP value (core LSR classification)."""
    if exp >= 5:
        return DEFAULT_CLASS_ORDER.index("EF")
    if exp >= 1:
        return DEFAULT_CLASS_ORDER.index("AF")
    return DEFAULT_CLASS_ORDER.index("BE")
