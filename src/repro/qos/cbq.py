"""Class-Based Queueing (CBQ) with borrowing.

The paper (§5) puts CBQ at the customer premises: "the customer premises
device could use technologies such as CBQ to classify traffic and
DiffServ/ToS to mark it".  We implement the two-level link-sharing model of
Floyd & Van Jacobson (1995) in its estimator/scheduler essentials:

* Each leaf class has an **allocated rate** (a share of the access link), a
  **priority**, and a ``can_borrow`` flag.
* A class is *underlimit* while its recent throughput is within its
  allocation (tracked with a token bucket — equivalent to the EWMA
  estimator for our purposes and exactly reproducible).
* The scheduler serves, in priority order, backlogged classes that are
  underlimit; when none are, classes with ``can_borrow`` may use the spare
  link capacity (borrowing from the root), again in priority order with
  weighted round-robin among equals.
* A backlogged class that is overlimit and may not borrow is **regulated**:
  its packets wait until its bucket refills.

The net effect the E5 experiment relies on: voice gets its configured share
with priority, bulk data cannot crowd it out, yet idle bandwidth is never
wasted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.net.packet import Packet
from repro.qos.meter import TokenBucket
from repro.qos.queues import ClassifyFn, ClassQueue, DropCallback, QueueDiscipline

__all__ = ["CbqClass", "CbqScheduler"]


@dataclass
class CbqClass:
    """One CBQ leaf class.

    Parameters
    ----------
    name:
        Human-readable label ("voice", "critical-data", ...).
    rate_bps:
        Allocated share of the link.
    priority:
        Lower number = served first (0 is the highest).
    can_borrow:
        Whether the class may exceed its allocation when the link has
        spare capacity.
    burst_bytes:
        Token-bucket depth of the allocation estimator.
    """

    name: str
    rate_bps: float
    priority: int = 1
    can_borrow: bool = True
    burst_bytes: int = 8000
    capacity_packets: int | None = 200
    queue: ClassQueue = field(init=False)
    bucket: TokenBucket = field(init=False)

    def __post_init__(self) -> None:
        self.queue = ClassQueue(
            name=self.name, capacity_packets=self.capacity_packets
        )
        self.bucket = TokenBucket(self.rate_bps, self.burst_bytes)

    def underlimit(self, nbytes: int, now: float) -> bool:
        """Would sending ``nbytes`` now keep the class within allocation?"""
        return self.bucket.tokens(now) >= nbytes


class CbqScheduler(QueueDiscipline):
    """Two-level CBQ link-sharing scheduler (see module docstring).

    ``classify`` maps packets to indices into ``classes``.
    """

    def __init__(self, classes: Sequence[CbqClass], classify: ClassifyFn) -> None:
        if not classes:
            raise ValueError("need at least one CBQ class")
        self.cbq_classes = list(classes)
        self.classify = classify
        # Round-robin pointer per priority level for fairness among equals.
        self._rr_pointer: dict[int, int] = {}
        # Total backlog, maintained on push/pop so len() is O(1) — the
        # driving interface checks it every transmit cycle.
        self._count = 0

    # ------------------------------------------------------------------
    def enqueue(self, pkt: Packet, now: float) -> bool:
        idx = self.classify(pkt)
        if not 0 <= idx < len(self.cbq_classes):
            idx = len(self.cbq_classes) - 1
        ok = self.cbq_classes[idx].queue.push(pkt, now)
        if ok:
            self._count += 1
        return ok

    def set_drop_callback(self, cb: DropCallback | None) -> None:
        for cls in self.cbq_classes:
            cls.queue.on_drop = cb

    def dequeue(self, now: float) -> Optional[Packet]:
        # Pass 1: underlimit classes, in priority order (guaranteed shares).
        pick = self._select(now, borrowing=False)
        if pick is None:
            # Pass 2: borrowing classes use spare capacity.
            pick = self._select(now, borrowing=True)
        if pick is None:
            return None
        cls = self.cbq_classes[pick]
        pkt = cls.queue.pop(now)
        self._count -= 1
        # Consume allocation; when borrowing this drives the bucket negative
        # conceptually — we clamp by consuming what is there, which keeps the
        # class overlimit until it has been idle long enough.  (The original
        # CBQ "avgidle" estimator has the same steady-state behaviour.)
        cls.bucket.conforms(pkt.wire_bytes, now)
        return pkt

    # ------------------------------------------------------------------
    def _select(self, now: float, borrowing: bool) -> Optional[int]:
        """Pick a class index, or None.

        ``borrowing=False`` considers only backlogged+underlimit classes;
        ``borrowing=True`` considers backlogged classes allowed to borrow.
        Within one priority level, round-robin.
        """
        by_prio: dict[int, list[int]] = {}
        for i, cls in enumerate(self.cbq_classes):
            if not cls.queue.q:
                continue
            head_bytes = cls.queue.head().wire_bytes
            if borrowing:
                if not cls.can_borrow:
                    continue
            else:
                if not cls.underlimit(head_bytes, now):
                    continue
            by_prio.setdefault(cls.priority, []).append(i)
        if not by_prio:
            return None
        prio = min(by_prio)
        candidates = by_prio[prio]
        start = self._rr_pointer.get(prio, 0)
        # Rotate candidates so the pointer advances fairly.
        ordered = sorted(candidates, key=lambda i: (i <= start, i))
        chosen = ordered[0]
        self._rr_pointer[prio] = chosen
        return chosen

    def next_eligible(self, now: float) -> float:
        """Earliest time any backlogged class becomes servable.

        Borrow-capable classes are always eligible; regulated (no-borrow)
        classes become eligible when their bucket refills to cover the head
        packet.  Returns ``inf`` when nothing is queued.
        """
        best = float("inf")
        for cls in self.cbq_classes:
            if not cls.queue.q:
                continue
            if cls.can_borrow:
                return now
            wait = cls.bucket.time_until(cls.queue.head().wire_bytes, now)
            best = min(best, now + wait)
        return best

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    @property
    def backlog_bytes(self) -> int:
        return sum(c.queue.bytes for c in self.cbq_classes)

    def class_stats(self) -> dict[str, tuple[int, int, int]]:
        """Per-class (enqueued, dequeued, dropped) counters."""
        return {
            c.name: (c.queue.stats.enqueued, c.queue.stats.dequeued, c.queue.stats.dropped)
            for c in self.cbq_classes
        }
