"""IntServ / RSVP per-flow reservations — the other road not taken.

§2.2 of the paper: "A number of activities, including work on the
Resource Reservation Protocol (RSVP) have been directed at adding QoS
selectivity, but many carriers and users are uncomfortable with
individually selectable QoS ... users question the size of the
administration task."  This module quantifies that discomfort.

The model implements the Guaranteed-Service essentials:

* a reservation is a 5-tuple filter + a rate, admitted hop by hop along
  the IGP path against per-link reservable bandwidth;
* **every router on the path holds per-flow state** (filter + rate) and
  classifies packets against it — multi-field classification in the core,
  the thing DiffServ's aggregation exists to avoid;
* RSVP is soft state: PATH + RESV per flow per hop at setup, and the same
  pair again every refresh interval, forever.

The E13 experiment counts what this costs as flows grow — per-router
state O(flows) and refresh messages O(flows × hops / 30 s) — against the
DiffServ/MPLS architecture's O(classes) core state, while delivering the
same protection to the reserved flows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.net.packet import Packet
from repro.qos.classifier import FlowMatch, exp_classifier
from repro.routing.spf import _deterministic_dijkstra, _domain_graph

if TYPE_CHECKING:  # pragma: no cover
    from repro.topology import Network

__all__ = [
    "RSVP_REFRESH_S",
    "Reservation",
    "IntServ",
    "intserv_classifier",
]

#: RFC 2205 default refresh period.
RSVP_REFRESH_S = 30.0


class AdmissionError(RuntimeError):
    """Insufficient reservable bandwidth on the flow's path."""


@dataclass(frozen=True, slots=True)
class Reservation:
    """One admitted per-flow reservation."""

    flow_id: int
    match: FlowMatch
    rate_bps: float
    path: tuple[str, ...]

    @property
    def hops(self) -> int:
        return len(self.path) - 1


class IntServ:
    """Per-flow guaranteed-service manager over plain IP routers.

    Routers gain a ``rsvp_flows`` list (installed lazily); the interior
    classifier built by :func:`intserv_classifier` linearly matches
    against it — faithfully expensive, because that *is* the IntServ data
    plane's problem.
    """

    def __init__(self, net: "Network", domain: str = "core", subscription: float = 1.0) -> None:
        self.net = net
        self.domain = domain
        self.subscription = subscription
        self.reserved: dict[tuple[str, str], float] = {}
        self.reservations: list[Reservation] = []
        self._next_id = 1

    # ------------------------------------------------------------------
    def _capacity(self, u: str, v: str) -> float:
        dl = self.net.link_between(u, v)
        if dl is None:
            raise KeyError(f"no link {u}-{v}")
        return dl.rate_bps * self.subscription

    def residual(self, u: str, v: str) -> float:
        return self._capacity(u, v) - self.reserved.get((u, v), 0.0)

    # ------------------------------------------------------------------
    def reserve(
        self,
        src_router: str,
        dst_router: str,
        match: FlowMatch,
        rate_bps: float,
    ) -> Reservation:
        """Admit one flow along the IGP path; install state at every hop.

        Counts one PATH + one RESV message per hop (``rsvp.*`` counters).
        Raises :class:`AdmissionError` without side effects when a hop
        lacks bandwidth.
        """
        g = _domain_graph(self.net, self.domain)
        _dist, paths = _deterministic_dijkstra(g, src_router)
        path = paths.get(dst_router)
        if path is None or len(path) < 2:
            raise AdmissionError(f"no path {src_router}->{dst_router}")
        hops = list(zip(path, path[1:]))
        for u, v in hops:
            if self.residual(u, v) < rate_bps:
                raise AdmissionError(
                    f"link {u}->{v}: {self.residual(u, v):.0f} < {rate_bps:.0f}bps"
                )
        for u, v in hops:
            self.reserved[(u, v)] = self.reserved.get((u, v), 0.0) + rate_bps

        res = Reservation(self._next_id, match, rate_bps, tuple(path))
        self._next_id += 1
        self.reservations.append(res)
        for name in path:
            node = self.net.nodes[name]
            if not hasattr(node, "rsvp_flows"):
                node.rsvp_flows = []  # type: ignore[attr-defined]
            node.rsvp_flows.append(res)  # type: ignore[attr-defined]
        self.net.counters.incr("rsvp.path_msgs", len(hops))
        self.net.counters.incr("rsvp.resv_msgs", len(hops))
        return res

    # ------------------------------------------------------------------
    # Cost accounting (the §2.2 "administration task")
    # ------------------------------------------------------------------
    def state_per_router(self) -> dict[str, int]:
        """Per-flow entries each router carries."""
        out: dict[str, int] = {}
        for res in self.reservations:
            for name in res.path:
                out[name] = out.get(name, 0) + 1
        return out

    def total_state(self) -> int:
        return sum(self.state_per_router().values())

    def refresh_messages_per_interval(self) -> int:
        """PATH+RESV pairs the soft state costs every RSVP_REFRESH_S."""
        return sum(2 * res.hops for res in self.reservations)


def intserv_classifier(node):
    """Interior per-flow classifier: reserved flows → class 0, else BE-ish.

    Linear scan over the router's reservation filters — the multi-field
    lookup *every* packet pays at *every* hop under IntServ.  Unreserved
    traffic falls back to the EXP/DSCP classifier.
    """

    def _classify(pkt: Packet) -> int:
        for res in getattr(node, "rsvp_flows", ()):
            if res.match.matches(pkt):
                return 0
        return max(1, exp_classifier(pkt))

    return _classify
