"""Queue disciplines (packet schedulers).

Every egress interface owns one :class:`QueueDiscipline`.  The reproduction
implements the scheduler family the paper's end-to-end QoS chain relies on:

* :class:`DropTailFifo` — the best-effort baseline (claim C2's "plain IP").
* :class:`PriorityScheduler` — strict priority across classes (EF gets the
  wire whenever it has a packet).
* :class:`WeightedRoundRobin` — packet-granularity weighted service.
* :class:`DeficitRoundRobin` — byte-accurate weighted service (Shreedhar &
  Varghese), the workhorse for AF classes.
* :class:`FairQueueing` — self-clocked fair queueing (SCFQ), a packetized
  approximation of GPS with per-class weights; the "WFQ" of vendor specs.

Class-based queueing with borrowing (CBQ), which the paper places at the
customer premises (§5), lives in :mod:`repro.qos.cbq` and composes these.

A discipline is a pure data structure driven by the interface: ``enqueue``
may refuse (tail drop or an active-queue-management decision), ``dequeue``
picks the next packet for the transmitter.  All byte accounting uses the
packet's wire size so MPLS shim and ESP overheads count against queues,
exactly as they would on a real box.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol, Sequence

from repro.net.drops import DropReason
from repro.net.packet import Packet

__all__ = [
    "ClassifyFn",
    "DropCallback",
    "QueueDiscipline",
    "DropPolicy",
    "ClassStats",
    "DropTailFifo",
    "ClassQueue",
    "PriorityScheduler",
    "WeightedRoundRobin",
    "DeficitRoundRobin",
    "FairQueueing",
]

# Maps a packet to a class index (0-based).  Interior nodes classify on the
# MPLS EXP field or outer DSCP; see repro.qos.classifier for builders.
ClassifyFn = Callable[[Packet], int]

#: Per-packet counter/drop-hook switch.  True (the default) keeps the
#: :class:`ClassStats` bumps and drop-callback notifications every test and
#: telemetry session expects.  The sweep runner and benchmarks flip it off
#: through :func:`repro.obs.runtime.set_packet_counters` so an unobserved
#: run pays nothing per packet for observability it is not using.  Flow
#: metrics (the experiment results) come from sinks, not these counters, so
#: the off-path changes no experiment output.
COUNTERS = True

# Invoked when a discipline refuses a packet: (pkt, reason, now).  Wired by
# the owning Interface so queue losses reach the TraceBus / flight recorder
# with a taxonomy (QUEUE_TAIL vs QUEUE_AQM) instead of only bumping
# ClassStats.dropped.
DropCallback = Callable[[Packet, DropReason, float], None]


class DropPolicy(Protocol):
    """Active-queue-management hook consulted on every enqueue.

    Implementations (RED/WRED in :mod:`repro.qos.red`) return True when the
    packet should be dropped *despite* buffer space remaining.
    """

    def should_drop(self, pkt: Packet, backlog_bytes: int, now: float) -> bool: ...

    def notify_dequeue(self, backlog_bytes: int, now: float) -> None: ...


@dataclass(slots=True)
class ClassStats:
    """Per-class counters every discipline maintains."""

    enqueued: int = 0
    dropped: int = 0
    dequeued: int = 0
    bytes_sent: int = 0


class QueueDiscipline:
    """Abstract scheduler; see module docstring for the contract."""

    #: Fluid background load (hybrid traffic plane): the analytic rate of
    #: fluid aggregates sharing this egress and the equivalent standing
    #: backlog they contribute.  Class-level zero defaults keep the
    #: pure-packet path cost-free; the FluidRouter writes instance values
    #: at envelope epochs via :meth:`set_fluid_background`.  Disciplines
    #: that consult AQM state fold ``fluid_standing_bytes`` into the
    #: backlog their drop policy sees (see :class:`DropTailFifo`) so RED
    #: reacts to congestion contributed by traffic it never enqueues.
    fluid_background_bps: float = 0.0
    fluid_standing_bytes: int = 0

    def set_fluid_background(self, bps: float, standing_bytes: int = 0) -> None:
        """Charge analytic fluid load on this discipline (hybrid mode).

        ``bps`` is the summed envelope rate crossing the egress;
        ``standing_bytes`` an M/M/1-style estimate of the backlog that
        load would keep resident.  Zeroing both restores exact
        pure-packet behaviour.
        """
        self.fluid_background_bps = float(bps)
        self.fluid_standing_bytes = int(standing_bytes)

    def enqueue(self, pkt: Packet, now: float) -> bool:
        raise NotImplementedError

    def enqueue_batch(
        self,
        pkts: Sequence[Packet],
        now: float,
        start: int = 0,
        wire: Sequence[int] | None = None,
    ) -> int:
        """Enqueue ``pkts[start:]`` in order; returns how many were accepted.

        Per-packet admission (AQM verdicts, tail-drop checks, drop
        callbacks) runs in arrival order exactly as repeated
        :meth:`enqueue` calls would — the batch form only amortizes
        attribute loads, so the driving interface may use it whenever the
        scalar path would do back-to-back enqueues with no dequeue in
        between (i.e. while the transmitter is busy).

        ``wire`` is the columnar pipeline's precomputed wire-bytes column
        aligned with ``pkts`` (``wire[i] == pkts[i].wire_bytes`` by the
        pipeline's invariant); disciplines may use it to batch their byte
        accounting without re-reading the packets.  The default
        implementation ignores it.
        """
        enqueue = self.enqueue
        ok = 0
        for i in range(start, len(pkts)):
            if enqueue(pkts[i], now):
                ok += 1
        return ok

    def dequeue(self, now: float) -> Optional[Packet]:
        raise NotImplementedError

    def next_eligible(self, now: float) -> float:
        """Earliest absolute time a queued packet may become dequeueable.

        Work-conserving disciplines always have something eligible whenever
        backlogged, so the default is ``now``.  Non-work-conserving ones
        (CBQ with a regulated class, shapers) override this so the driving
        interface knows when to retry instead of going idle forever.
        """
        return now

    def __len__(self) -> int:
        raise NotImplementedError

    @property
    def backlog_bytes(self) -> int:
        raise NotImplementedError

    def set_drop_callback(self, cb: DropCallback | None) -> None:
        """Install (or clear) the drop-notification callback.

        Default is a no-op so exotic disciplines keep working; concrete
        disciplines that can refuse packets override this.
        """


class DropTailFifo(QueueDiscipline):
    """Single FIFO with byte and packet capacity limits; optional AQM.

    Parameters
    ----------
    capacity_packets / capacity_bytes:
        Tail-drop thresholds; ``None`` disables that limit.
    drop_policy:
        Optional AQM (e.g. RED) consulted before the tail-drop check.
    """

    def __init__(
        self,
        capacity_packets: int | None = 100,
        capacity_bytes: int | None = None,
        drop_policy: DropPolicy | None = None,
    ) -> None:
        self._q: deque[Packet] = deque()
        self._bytes = 0
        self.capacity_packets = capacity_packets
        self.capacity_bytes = capacity_bytes
        self.drop_policy = drop_policy
        self.stats = ClassStats()
        self.on_drop: DropCallback | None = None

    def set_drop_callback(self, cb: DropCallback | None) -> None:
        self.on_drop = cb

    def enqueue(self, pkt: Packet, now: float) -> bool:
        # ``fluid_standing_bytes`` (class default 0) folds the hybrid
        # plane's analytic backlog into the AQM view and the shared-buffer
        # byte bound; pure-packet runs add a literal zero.
        if self.drop_policy is not None and self.drop_policy.should_drop(
            pkt, self._bytes + self.fluid_standing_bytes, now
        ):
            if COUNTERS:
                self.stats.dropped += 1
                if self.on_drop is not None:
                    self.on_drop(pkt, DropReason.QUEUE_AQM, now)
            return False
        if (
            self.capacity_packets is not None
            and len(self._q) >= self.capacity_packets
        ) or (
            self.capacity_bytes is not None
            and self._bytes + pkt.wire_bytes + self.fluid_standing_bytes
            > self.capacity_bytes
        ):
            if COUNTERS:
                self.stats.dropped += 1
                if self.on_drop is not None:
                    self.on_drop(pkt, DropReason.QUEUE_TAIL, now)
            return False
        self._q.append(pkt)
        self._bytes += pkt.wire_bytes
        if COUNTERS:
            self.stats.enqueued += 1
        return True

    def enqueue_batch(
        self,
        pkts: Sequence[Packet],
        now: float,
        start: int = 0,
        wire: Sequence[int] | None = None,
    ) -> int:
        # Columnar bulk admission: with no AQM, no byte bound, and packet
        # headroom for the whole tail, every verdict is "accept" and no
        # drop callback can fire — one deque.extend and a C-level sum over
        # the wire column replace the per-packet walk.  Any condition that
        # could produce a per-packet verdict falls through to the hoisted
        # loop below, which stays scalar-exact.
        if wire is not None and self.drop_policy is None and self.capacity_bytes is None:
            tail = len(pkts) - start
            if (
                self.capacity_packets is None
                or len(self._q) + tail <= self.capacity_packets
            ):
                if start:
                    pkts = pkts[start:]
                    wire = wire[start:]
                self._q.extend(pkts)
                self._bytes += sum(wire)
                if COUNTERS:
                    self.stats.enqueued += tail
                return tail
        # Hoisted vector form of enqueue(): verdicts (AQM first, then the
        # capacity limits) and drop callbacks stay per packet in arrival
        # order; only the byte counter and ClassStats bumps are batched.
        q = self._q
        policy = self.drop_policy
        cap_p = self.capacity_packets
        cap_b = self.capacity_bytes
        counters = COUNTERS
        stats = self.stats
        on_drop = self.on_drop
        nbytes = self._bytes
        fsb = self.fluid_standing_bytes
        ok = 0
        for i in range(start, len(pkts)):
            pkt = pkts[i]
            wb = pkt.wire_bytes
            if policy is not None and policy.should_drop(pkt, nbytes + fsb, now):
                if counters:
                    stats.dropped += 1
                    if on_drop is not None:
                        on_drop(pkt, DropReason.QUEUE_AQM, now)
                continue
            if (cap_p is not None and len(q) >= cap_p) or (
                cap_b is not None and nbytes + wb + fsb > cap_b
            ):
                if counters:
                    stats.dropped += 1
                    if on_drop is not None:
                        on_drop(pkt, DropReason.QUEUE_TAIL, now)
                continue
            q.append(pkt)
            nbytes += wb
            ok += 1
        self._bytes = nbytes
        if counters:
            stats.enqueued += ok
        return ok

    def dequeue(self, now: float) -> Optional[Packet]:
        if not self._q:
            return None
        pkt = self._q.popleft()
        self._bytes -= pkt.wire_bytes
        if COUNTERS:
            self.stats.dequeued += 1
            self.stats.bytes_sent += pkt.wire_bytes
        if self.drop_policy is not None:
            self.drop_policy.notify_dequeue(
                self._bytes + self.fluid_standing_bytes, now
            )
        return pkt

    def __len__(self) -> int:
        return len(self._q)

    @property
    def backlog_bytes(self) -> int:
        return self._bytes


@dataclass
class ClassQueue:
    """One class's FIFO inside a classful scheduler."""

    name: str = ""
    capacity_packets: int | None = 100
    capacity_bytes: int | None = None
    drop_policy: DropPolicy | None = None
    q: deque[Packet] = field(default_factory=deque)
    bytes: int = 0
    stats: ClassStats = field(default_factory=ClassStats)
    on_drop: DropCallback | None = field(default=None, repr=False)

    def push(self, pkt: Packet, now: float) -> bool:
        if self.drop_policy is not None and self.drop_policy.should_drop(
            pkt, self.bytes, now
        ):
            if COUNTERS:
                self.stats.dropped += 1
                if self.on_drop is not None:
                    self.on_drop(pkt, DropReason.QUEUE_AQM, now)
            return False
        if (
            self.capacity_packets is not None and len(self.q) >= self.capacity_packets
        ) or (
            self.capacity_bytes is not None
            and self.bytes + pkt.wire_bytes > self.capacity_bytes
        ):
            if COUNTERS:
                self.stats.dropped += 1
                if self.on_drop is not None:
                    self.on_drop(pkt, DropReason.QUEUE_TAIL, now)
            return False
        self.q.append(pkt)
        self.bytes += pkt.wire_bytes
        if COUNTERS:
            self.stats.enqueued += 1
        return True

    def pop(self, now: float) -> Packet:
        pkt = self.q.popleft()
        self.bytes -= pkt.wire_bytes
        if COUNTERS:
            self.stats.dequeued += 1
            self.stats.bytes_sent += pkt.wire_bytes
        if self.drop_policy is not None:
            self.drop_policy.notify_dequeue(self.bytes, now)
        return pkt

    def head(self) -> Packet:
        return self.q[0]

    def __len__(self) -> int:
        return len(self.q)


class _ClassfulBase(QueueDiscipline):
    """Shared plumbing for classful schedulers: classify + per-class FIFOs.

    Total backlog is tracked in ``_count`` (every subclass bumps it on a
    successful push and drops it on a successful pop), so ``len(qdisc)`` —
    which the driving interface consults on every transmit cycle — is O(1)
    instead of a sum over class queues.
    """

    def __init__(self, classes: Sequence[ClassQueue], classify: ClassifyFn) -> None:
        if not classes:
            raise ValueError("need at least one class queue")
        self.classes = list(classes)
        self.classify = classify
        self._count = 0

    def _class_for(self, pkt: Packet) -> ClassQueue:
        idx = self.classify(pkt)
        if not 0 <= idx < len(self.classes):
            idx = len(self.classes) - 1  # unknown traffic -> last (best effort)
        return self.classes[idx]

    def enqueue(self, pkt: Packet, now: float) -> bool:
        ok = self._class_for(pkt).push(pkt, now)
        if ok:
            self._count += 1
        return ok

    def set_drop_callback(self, cb: DropCallback | None) -> None:
        for cq in self.classes:
            cq.on_drop = cb

    def __len__(self) -> int:
        return self._count

    @property
    def backlog_bytes(self) -> int:
        return sum(c.bytes for c in self.classes)


class PriorityScheduler(_ClassfulBase):
    """Strict priority: class 0 is served whenever non-empty, then 1, ...

    Gives EF the tightest delay bound but can starve lower classes — the
    E9a ablation quantifies exactly that trade-off.
    """

    def dequeue(self, now: float) -> Optional[Packet]:
        for cq in self.classes:
            if cq.q:
                self._count -= 1
                return cq.pop(now)
        return None


class WeightedRoundRobin(_ClassfulBase):
    """Weighted round robin at packet granularity.

    Each round, class *i* may send up to ``weights[i]`` packets.  Simple and
    cheap, but unfair for mixed packet sizes (big packets buy bandwidth) —
    which is precisely why DRR/WFQ exist; the ablation shows the difference.
    """

    def __init__(
        self,
        classes: Sequence[ClassQueue],
        classify: ClassifyFn,
        weights: Sequence[int],
    ) -> None:
        super().__init__(classes, classify)
        if len(weights) != len(self.classes):
            raise ValueError("weights/classes length mismatch")
        if any(w <= 0 for w in weights):
            raise ValueError("weights must be positive")
        self.weights = list(weights)
        self._current = 0
        self._credit = self.weights[0]

    def dequeue(self, now: float) -> Optional[Packet]:
        if self._count == 0:
            return None
        n = len(self.classes)
        for _ in range(2 * n):  # at most one full rotation + restarts
            cq = self.classes[self._current]
            if cq.q and self._credit > 0:
                self._credit -= 1
                self._count -= 1
                return cq.pop(now)
            self._current = (self._current + 1) % n
            self._credit = self.weights[self._current]
        return None  # pragma: no cover - unreachable when backlog > 0


class DeficitRoundRobin(_ClassfulBase):
    """Deficit round robin (byte-accurate weighted service).

    ``quanta[i]`` bytes of credit are added to class *i* each time the
    round-robin pointer reaches it; a class may send packets while its
    deficit covers them.  O(1) per packet provided each quantum is at least
    one MTU.
    """

    def __init__(
        self,
        classes: Sequence[ClassQueue],
        classify: ClassifyFn,
        quanta: Sequence[int],
    ) -> None:
        super().__init__(classes, classify)
        if len(quanta) != len(self.classes):
            raise ValueError("quanta/classes length mismatch")
        if any(q <= 0 for q in quanta):
            raise ValueError("quanta must be positive")
        self.quanta = list(quanta)
        self.deficits = [0] * len(self.classes)
        self._active: deque[int] = deque()
        self._in_active = [False] * len(self.classes)

    def enqueue(self, pkt: Packet, now: float) -> bool:
        idx = self.classify(pkt)
        if not 0 <= idx < len(self.classes):
            idx = len(self.classes) - 1
        ok = self.classes[idx].push(pkt, now)
        if ok:
            self._count += 1
            if not self._in_active[idx]:
                self._active.append(idx)
                self._in_active[idx] = True
                self.deficits[idx] = 0
        return ok

    def dequeue(self, now: float) -> Optional[Packet]:
        while self._active:
            idx = self._active[0]
            cq = self.classes[idx]
            if not cq.q:  # drained during its turn
                self._active.popleft()
                self._in_active[idx] = False
                continue
            if self.deficits[idx] < cq.head().wire_bytes:
                # Head does not fit: grant quantum and rotate to back.
                self._active.rotate(-1)
                new_head = self._active[0]
                if new_head == idx:
                    self.deficits[idx] += self.quanta[idx]
                else:
                    self.deficits[new_head] += self.quanta[new_head]
                # Ensure progress even for a single active class whose head
                # exceeds one quantum: keep granting on each visit.
                continue
            pkt = cq.pop(now)
            self._count -= 1
            self.deficits[idx] -= pkt.wire_bytes
            if not cq.q:
                self._active.popleft()
                self._in_active[idx] = False
                self.deficits[idx] = 0
            return pkt
        return None


class FairQueueing(_ClassfulBase):
    """Self-clocked fair queueing (SCFQ) — packetized weighted fair queueing.

    Each arriving packet gets a finish tag ``F = max(V, F_prev(class)) +
    size/weight`` where ``V`` is the tag of the packet in service; the
    scheduler always sends the smallest finish tag.  Approximates GPS within
    one packet per class, which is what vendors ship as "WFQ".
    """

    def __init__(
        self,
        classes: Sequence[ClassQueue],
        classify: ClassifyFn,
        weights: Sequence[float],
    ) -> None:
        super().__init__(classes, classify)
        if len(weights) != len(self.classes):
            raise ValueError("weights/classes length mismatch")
        if any(w <= 0 for w in weights):
            raise ValueError("weights must be positive")
        self.weights = [float(w) for w in weights]
        self._virtual = 0.0
        self._last_finish = [0.0] * len(self.classes)
        self._tags: list[deque[float]] = [deque() for _ in self.classes]

    def enqueue(self, pkt: Packet, now: float) -> bool:
        idx = self.classify(pkt)
        if not 0 <= idx < len(self.classes):
            idx = len(self.classes) - 1
        cq = self.classes[idx]
        if not cq.push(pkt, now):
            return False
        self._count += 1
        start = max(self._virtual, self._last_finish[idx])
        finish = start + pkt.wire_bytes / self.weights[idx]
        self._last_finish[idx] = finish
        self._tags[idx].append(finish)
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        best = -1
        best_tag = float("inf")
        for idx, tags in enumerate(self._tags):
            if tags and tags[0] < best_tag:
                best_tag = tags[0]
                best = idx
        if best < 0:
            if self._count == 0:
                self._virtual = 0.0  # idle system: reset virtual clock
            return None
        self._tags[best].popleft()
        self._virtual = best_tag
        self._count -= 1
        return self.classes[best].pop(now)
