"""DiffServ QoS: codepoints, classifiers, meters, schedulers, AQM."""

from repro.qos.cbq import CbqClass, CbqScheduler
from repro.qos.classifier import (
    FlowMatch,
    MultiFieldClassifier,
    ba_classifier,
    exp_classifier,
    llsp_classifier,
    mpls_aware_classifier,
)
from repro.qos.dscp import (
    DEFAULT_CLASS_ORDER,
    DSCP,
    PHB_OF_DSCP,
    ServiceClass,
    class_of_dscp_name,
    dscp_to_class,
    dscp_to_exp,
    exp_to_class,
)
from repro.qos.meter import (
    Color,
    SrTCM,
    TokenBucket,
    TrTCM,
    dscp_marker,
    exp_from_dscp_marker,
    policer,
    srtcm_remarker,
    trtcm_remarker,
)
from repro.qos.intserv import RSVP_REFRESH_S, IntServ, Reservation, intserv_classifier
from repro.qos.shaper import TokenBucketShaper
from repro.qos.queues import (
    ClassQueue,
    ClassStats,
    DeficitRoundRobin,
    DropTailFifo,
    FairQueueing,
    PriorityScheduler,
    QueueDiscipline,
    WeightedRoundRobin,
)
from repro.qos.red import RedParams, RedQueueManager, WredQueueManager, standard_wred

__all__ = [
    "CbqClass", "CbqScheduler",
    "FlowMatch", "MultiFieldClassifier", "ba_classifier", "exp_classifier",
    "mpls_aware_classifier", "llsp_classifier",
    "RSVP_REFRESH_S", "IntServ", "Reservation", "intserv_classifier",
    "DEFAULT_CLASS_ORDER", "DSCP", "PHB_OF_DSCP", "ServiceClass",
    "class_of_dscp_name", "dscp_to_class", "dscp_to_exp", "exp_to_class",
    "Color", "SrTCM", "TokenBucket", "TrTCM", "TokenBucketShaper",
    "dscp_marker", "exp_from_dscp_marker",
    "policer", "srtcm_remarker", "trtcm_remarker",
    "ClassQueue", "ClassStats", "DeficitRoundRobin", "DropTailFifo",
    "FairQueueing", "PriorityScheduler", "QueueDiscipline", "WeightedRoundRobin",
    "RedParams", "RedQueueManager", "WredQueueManager", "standard_wred",
]
