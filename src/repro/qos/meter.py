"""Traffic meters, policers, shapers, and markers.

The DiffServ traffic-conditioning block (RFC 2475) at the provider edge
meters each customer's traffic against its SLA profile and polices (drops),
re-marks (demotes drop precedence), or shapes (delays) the excess.  These
are the "granular Service Level Agreements" of the paper's §3.1.

* :class:`TokenBucket` — the basic (rate, burst) meter.
* :class:`SrTCM` — single-rate three-color marker (RFC 2697): green/yellow/
  red against CIR, CBS, EBS; drives AF drop-precedence remarking.
* :func:`policer` / :func:`remarker` / :func:`dscp_marker` — conditioner
  callables pluggable into an interface's egress chain.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Optional

from repro.net.packet import Packet

__all__ = [
    "TokenBucket",
    "Color",
    "SrTCM",
    "TrTCM",
    "policer",
    "dscp_marker",
    "srtcm_remarker",
    "trtcm_remarker",
    "exp_from_dscp_marker",
]


class TokenBucket:
    """Classic token bucket: ``rate_bps`` fill, ``burst_bytes`` depth.

    Tokens are lazily accrued on each call, so there is no per-tick event —
    essential for simulation performance (one O(1) update per packet).
    """

    def __init__(self, rate_bps: float, burst_bytes: int, start_full: bool = True) -> None:
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        if burst_bytes <= 0:
            raise ValueError("burst must be positive")
        self.rate_bps = float(rate_bps)
        self.burst_bytes = float(burst_bytes)
        self._tokens = float(burst_bytes) if start_full else 0.0
        self._last = 0.0

    def _refill(self, now: float) -> None:
        if now > self._last:
            self._tokens = min(
                self.burst_bytes,
                self._tokens + (now - self._last) * self.rate_bps / 8.0,
            )
            self._last = now

    def tokens(self, now: float) -> float:
        """Current token level in bytes."""
        self._refill(now)
        return self._tokens

    def conforms(self, nbytes: int, now: float) -> bool:
        """True and consume if ``nbytes`` fit in the bucket; else False."""
        self._refill(now)
        if self._tokens >= nbytes:
            self._tokens -= nbytes
            return True
        return False

    def time_until(self, nbytes: int, now: float) -> float:
        """Seconds until ``nbytes`` of tokens will be available (0 if now)."""
        self._refill(now)
        deficit = nbytes - self._tokens
        if deficit <= 0:
            return 0.0
        return deficit * 8.0 / self.rate_bps


class Color(Enum):
    """srTCM marking result."""

    GREEN = "green"
    YELLOW = "yellow"
    RED = "red"


class SrTCM:
    """Single-rate three-color marker (RFC 2697), color-blind mode.

    Two buckets share one fill rate (CIR): the committed bucket (depth CBS)
    colors green; overflow tokens spill into the excess bucket (depth EBS)
    which colors yellow; everything else is red.
    """

    def __init__(self, cir_bps: float, cbs_bytes: int, ebs_bytes: int) -> None:
        if cir_bps <= 0 or cbs_bytes <= 0 or ebs_bytes < 0:
            raise ValueError("invalid srTCM parameters")
        self.cir_bps = float(cir_bps)
        self.cbs = float(cbs_bytes)
        self.ebs = float(ebs_bytes)
        self._tc = float(cbs_bytes)
        self._te = float(ebs_bytes)
        self._last = 0.0
        self.marked = {Color.GREEN: 0, Color.YELLOW: 0, Color.RED: 0}

    def _refill(self, now: float) -> None:
        if now <= self._last:
            return
        add = (now - self._last) * self.cir_bps / 8.0
        self._last = now
        room_c = self.cbs - self._tc
        if add <= room_c:
            self._tc += add
        else:
            self._tc = self.cbs
            self._te = min(self.ebs, self._te + (add - room_c))

    def color(self, nbytes: int, now: float) -> Color:
        """Color a packet of ``nbytes`` and consume the matching tokens."""
        self._refill(now)
        if self._tc >= nbytes:
            self._tc -= nbytes
            c = Color.GREEN
        elif self._te >= nbytes:
            self._te -= nbytes
            c = Color.YELLOW
        else:
            c = Color.RED
        self.marked[c] += 1
        return c

    def counts(self) -> dict[str, int]:
        """Per-color packet counts since creation (for telemetry scrapes)."""
        return {c.value: n for c, n in self.marked.items()}


class TrTCM:
    """Two-rate three-color marker (RFC 2698), color-blind mode.

    Unlike srTCM's single rate with an excess *burst*, trTCM has two
    independent rates: traffic above the peak rate (PIR bucket empty) is
    red; within PIR but above the committed rate (CIR bucket empty) is
    yellow; within both is green.  This is the meter behind the classic
    "CIR/PIR" service contract the paper's SLA discussion implies.
    """

    def __init__(self, cir_bps: float, cbs_bytes: int, pir_bps: float, pbs_bytes: int) -> None:
        if cir_bps <= 0 or pir_bps <= 0 or cbs_bytes <= 0 or pbs_bytes <= 0:
            raise ValueError("invalid trTCM parameters")
        if pir_bps < cir_bps:
            raise ValueError("PIR must be >= CIR")
        self.committed = TokenBucket(cir_bps, cbs_bytes)
        self.peak = TokenBucket(pir_bps, pbs_bytes)
        self.marked = {Color.GREEN: 0, Color.YELLOW: 0, Color.RED: 0}

    def color(self, nbytes: int, now: float) -> Color:
        """Color a packet and consume tokens per RFC 2698 §3 (color-blind)."""
        # Check peak first: exceeding PIR is red regardless of CIR credit,
        # and red packets consume nothing.
        if self.peak.tokens(now) < nbytes:
            self.marked[Color.RED] += 1
            return Color.RED
        if self.committed.tokens(now) < nbytes:
            self.peak.conforms(nbytes, now)
            self.marked[Color.YELLOW] += 1
            return Color.YELLOW
        self.peak.conforms(nbytes, now)
        self.committed.conforms(nbytes, now)
        self.marked[Color.GREEN] += 1
        return Color.GREEN

    def counts(self) -> dict[str, int]:
        """Per-color packet counts since creation (for telemetry scrapes)."""
        return {c.value: n for c, n in self.marked.items()}


# ---------------------------------------------------------------------------
# Conditioner builders — return callables with the Interface conditioner
# signature: (pkt, now) -> pkt | None (None = drop).
# ---------------------------------------------------------------------------

def policer(
    bucket: TokenBucket,
    match: Callable[[Packet], bool] | None = None,
) -> Callable[[Packet, float], Optional[Packet]]:
    """Hard policer: drop packets exceeding the bucket profile.

    ``match`` restricts which packets are metered (others pass untouched);
    the PE ingress uses one policer per customer class.
    """

    def _police(pkt: Packet, now: float) -> Optional[Packet]:
        if match is not None and not match(pkt):
            return pkt
        return pkt if bucket.conforms(pkt.wire_bytes, now) else None

    return _police


def dscp_marker(
    dscp: int,
    match: Callable[[Packet], bool] | None = None,
) -> Callable[[Packet, float], Optional[Packet]]:
    """Set the DSCP of (matching) packets — the CPE marking stage of §5."""

    def _mark(pkt: Packet, now: float) -> Optional[Packet]:
        if match is None or match(pkt):
            pkt.ip.dscp = dscp
        return pkt

    return _mark


def srtcm_remarker(
    meter: SrTCM,
    green_dscp: int,
    yellow_dscp: int,
    red_action: str = "drop",
    red_dscp: int | None = None,
    match: Callable[[Packet], bool] | None = None,
) -> Callable[[Packet, float], Optional[Packet]]:
    """Three-color conditioner: green/yellow remark, red drop or remark."""
    if red_action not in ("drop", "remark"):
        raise ValueError(f"unknown red_action {red_action!r}")
    if red_action == "remark" and red_dscp is None:
        raise ValueError("red_action='remark' requires red_dscp")

    def _condition(pkt: Packet, now: float) -> Optional[Packet]:
        if match is not None and not match(pkt):
            return pkt
        color = meter.color(pkt.wire_bytes, now)
        if color is Color.GREEN:
            pkt.ip.dscp = green_dscp
        elif color is Color.YELLOW:
            pkt.ip.dscp = yellow_dscp
        else:
            if red_action == "drop":
                return None
            pkt.ip.dscp = red_dscp  # type: ignore[assignment]
        return pkt

    return _condition


def trtcm_remarker(
    meter: TrTCM,
    green_dscp: int,
    yellow_dscp: int,
    red_action: str = "drop",
    red_dscp: int | None = None,
    match: Callable[[Packet], bool] | None = None,
) -> Callable[[Packet, float], Optional[Packet]]:
    """Two-rate conditioner: the CIR/PIR contract as an egress stage."""
    if red_action not in ("drop", "remark"):
        raise ValueError(f"unknown red_action {red_action!r}")
    if red_action == "remark" and red_dscp is None:
        raise ValueError("red_action='remark' requires red_dscp")

    def _condition(pkt: Packet, now: float) -> Optional[Packet]:
        if match is not None and not match(pkt):
            return pkt
        color = meter.color(pkt.wire_bytes, now)
        if color is Color.GREEN:
            pkt.ip.dscp = green_dscp
        elif color is Color.YELLOW:
            pkt.ip.dscp = yellow_dscp
        else:
            if red_action == "drop":
                return None
            pkt.ip.dscp = red_dscp  # type: ignore[assignment]
        return pkt

    return _condition


def exp_from_dscp_marker() -> Callable[[Packet, float], Optional[Packet]]:
    """Copy the (visible) DSCP into the top MPLS label's EXP bits.

    Installed on PE egress toward the core *after* label imposition; no-op
    for unlabeled packets.  This is the DSCP→EXP edge mapping of claim C6.
    """
    from repro.qos.dscp import dscp_to_exp

    def _map(pkt: Packet, now: float) -> Optional[Packet]:
        top = pkt.top_label
        if top is not None:
            top.exp = dscp_to_exp(pkt.classifiable_dscp())
        return pkt

    return _map
