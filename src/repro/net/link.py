"""Interfaces and links.

An :class:`Interface` is a node's attachment point with an *output queue*
and a transmitter; a :class:`Link` is a simplex channel with a bit rate and
propagation delay.  Duplex connectivity is two simplex links.

Transmission is store-and-forward: the egress interface serializes one
packet at a time (``wire_bytes * 8 / rate_bps`` seconds) and the link then
delays it by its propagation time before handing it to the remote node.
Queueing behaviour is delegated to a pluggable queue discipline (see
``repro.qos.queues``); the interface only drives the
enqueue → (idle?) → dequeue → transmit → repeat cycle.

Egress *conditioners* (classifier/meter/marker chains from ``repro.qos``)
run before the queue discipline and may drop or remark packets — this is
where the DiffServ traffic-conditioning block of claim C6 attaches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.net.drops import DropReason
from repro.net.packet import Packet
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node
    from repro.qos.queues import QueueDiscipline

__all__ = ["Interface", "Link", "InterfaceStats"]

Conditioner = Callable[[Packet, float], Optional[Packet]]


@dataclass(slots=True)
class InterfaceStats:
    """Egress counters for one interface."""

    tx_packets: int = 0
    tx_bytes: int = 0
    enqueued: int = 0
    dropped: int = 0
    conditioner_dropped: int = 0
    busy_time: float = 0.0

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` the transmitter was busy."""
        return self.busy_time / elapsed if elapsed > 0 else 0.0


class Link:
    """Simplex channel: delivers packets to ``dst_node`` after ``delay_s``.

    The serialisation time lives in the sending :class:`Interface`; the link
    adds only propagation delay (so back-to-back packets can be "in flight"
    simultaneously, as on a real wire).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        dst_node: "Node",
        dst_ifname: str,
        delay_s: float,
    ) -> None:
        self.sim = sim
        self.name = name
        self.dst_node = dst_node
        self.dst_ifname = dst_ifname
        self.delay_s = float(delay_s)
        self._up = True
        # Link state is routing-topology state: the owning Network wires
        # this to its topology-generation bump so *any* ``link.up`` write —
        # not just DuplexLink.set_up — invalidates cached domain views.
        # The changed link rides on the callback so listeners (e.g. the
        # convergence tracer) know *which* link flipped.
        self.on_state_change: Optional[Callable[["Link"], None]] = None

    @property
    def up(self) -> bool:
        return self._up

    @up.setter
    def up(self, value: bool) -> None:
        value = bool(value)
        changed = value != self._up
        self._up = value
        if changed and self.on_state_change is not None:
            self.on_state_change(self)

    def carry(self, pkt: Packet) -> None:
        """Propagate ``pkt`` to the far end (silently lost if link is down)."""
        if not self._up:
            return
        self.sim.schedule_call(self.delay_s, self.dst_node.receive, pkt, self.dst_ifname)

    def carry_batch(self, pkts: "list[Packet]") -> None:
        """Propagate a burst: one arrival event per packet, same timestamp.

        The scheduled events are bound ``Node.receive`` calls on one
        receiver, which is exactly what the kernel's burst extraction
        fuses back into a single ``receive_batch`` at the far end.
        """
        if not self._up:
            return
        schedule_call = self.sim.schedule_call
        delay = self.delay_s
        receive = self.dst_node.receive
        ifname = self.dst_ifname
        for pkt in pkts:
            schedule_call(delay, receive, pkt, ifname)


class Interface:
    """A node's egress attachment: conditioners + queue discipline + transmitter.

    Parameters
    ----------
    sim:
        The simulation kernel.
    node:
        Owning node (used for naming and receive dispatch on the peer).
    name:
        Interface name, unique within the node (``"eth0"``...).
    rate_bps:
        Transmit rate in bits per second.
    qdisc:
        Queue discipline instance; defaults are installed by the topology
        builder (a plain DropTail FIFO unless QoS is configured).
    """

    def __init__(
        self,
        sim: Simulator,
        node: "Node",
        name: str,
        rate_bps: float,
        qdisc: "QueueDiscipline",
    ) -> None:
        self.sim = sim
        self.node = node
        self.name = name
        # Fluid background load (hybrid traffic plane): analytic rate of
        # fluid aggregates currently crossing this interface.  Packets
        # share the transmitter with that load, so serialization runs at
        # the *effective* residual rate.  ``_eff_rate_bps`` is precomputed
        # whenever either input changes (the ``rate_bps`` property setter
        # and ``set_fluid_load``) so the hot path pays nothing when no
        # fluid is charged (it equals rate_bps exactly, same float).
        self.fluid_load_bps = 0.0
        self._rate_bps = float(rate_bps)
        self._eff_rate_bps = self._rate_bps
        self.qdisc = qdisc  # property setter: also wires the drop callback
        self.link: Link | None = None
        self.conditioners: list[Conditioner] = []
        self.stats = InterfaceStats()
        self._busy = False
        # Pending wake-up for non-work-conserving qdiscs: one coalesced
        # timer at the earliest eligible time, not one per blocked enqueue.
        self._retry_event = None
        self._retry_time = math.inf
        # Populated by the topology builder: far-end node/interface names,
        # used by routing to translate next-hop decisions into interfaces.
        self.peer_node: "Node | None" = None
        self.peer_ifname: str | None = None

    # ------------------------------------------------------------------
    def attach(self, link: Link, peer_node: "Node", peer_ifname: str) -> None:
        """Wire this interface to its outgoing simplex link."""
        self.link = link
        self.peer_node = peer_node
        self.peer_ifname = peer_ifname

    def add_conditioner(self, fn: Conditioner) -> None:
        """Append an egress conditioner (classify/meter/mark/police stage)."""
        self.conditioners.append(fn)

    @property
    def rate_bps(self) -> float:
        """Line rate.  Assignment (tests reshape links post-construction)
        re-derives the effective serialization rate under any fluid load."""
        return self._rate_bps

    @rate_bps.setter
    def rate_bps(self, value: float) -> None:
        self._rate_bps = float(value)
        self.set_fluid_load(self.fluid_load_bps)

    def set_fluid_load(self, bps: float) -> None:
        """Charge ``bps`` of analytic (fluid) background load on this egress.

        Called by the hybrid traffic plane's FluidRouter at envelope
        epochs.  Real packets then serialize at the residual rate
        ``rate_bps - bps`` (floored at 0.1% of line rate so a transient
        overshoot cannot stall the transmitter), which is how packet-mode
        queues *see* fluid utilization they never enqueue.  ``bps = 0``
        restores the exact original rate — the pure-packet hot path is
        untouched (``Interface.rate_bps`` itself is never rewritten).
        """
        self.fluid_load_bps = float(bps)
        if bps <= 0.0:
            self._eff_rate_bps = self._rate_bps
        else:
            self._eff_rate_bps = max(self._rate_bps - bps, self._rate_bps * 1e-3)

    # ------------------------------------------------------------------
    # Queue discipline: assignment (including post-construction swaps by
    # experiments/tests) re-wires the drop callback so queue and AQM losses
    # always reach the TraceBus/flight recorder with their taxonomy.
    # Hot methods read ``_qdisc`` directly to skip the property descriptor.
    @property
    def qdisc(self) -> "QueueDiscipline":
        return self._qdisc

    @qdisc.setter
    def qdisc(self, q: "QueueDiscipline") -> None:
        self._qdisc = q
        q.set_drop_callback(self._queue_drop)

    def _queue_drop(self, pkt: Packet, reason: DropReason, now: float) -> None:
        """Called by the queue discipline when it refuses a packet.

        With telemetry off (no flight recorder, no drop subscribers) this
        is two attribute loads and two jumps — congestion experiments that
        drop thousands of packets pay nothing for the unobserved hooks.
        """
        trace = self.node.trace
        fl = trace.flight
        if fl is not None:
            fl.drop(now, self.node.name, pkt, reason.value, ifname=self.name)
        if trace.active("drop"):
            trace.publish(
                "drop",
                now,
                node=self.node.name,
                iface=self.name,
                reason=reason.value,
                pkt=pkt,
            )

    # ------------------------------------------------------------------
    def send(self, pkt: Packet) -> bool:
        """Run conditioners, enqueue, and kick the transmitter.

        Returns False when the packet was dropped (by a conditioner or the
        queue discipline).
        """
        now = self.sim.now
        if self.conditioners:
            for fn in self.conditioners:
                out = fn(pkt, now)
                if out is None:
                    self.stats.conditioner_dropped += 1
                    self._queue_drop(pkt, DropReason.CONDITIONER, now)
                    return False
                pkt = out
        if not self._qdisc.enqueue(pkt, now):
            self.stats.dropped += 1
            return False
        self.stats.enqueued += 1
        fl = self.node.trace.flight
        if fl is not None:
            fl.enqueue(now, self.node.name, pkt, self.name, len(self._qdisc))
        if not self._busy:
            if self._retry_event is None:
                self._transmit_next()
            else:
                # Transmitter idle but regulated: a retry timer is already
                # armed at the earliest eligible time.  Only act if this
                # arrival made something eligible sooner — either right now
                # (a borrow-capable / conformant class was empty until this
                # packet) or earlier than the armed wake-up.  Everything
                # else keeps the one coalesced timer instead of paying a
                # cancel + re-schedule + failed dequeue per blocked
                # enqueue.
                t = self._qdisc.next_eligible(now)
                if t <= now:
                    self._transmit_next()
                elif t < self._retry_time:
                    self._retry_event.cancel()
                    self._retry_time = t
                    self._retry_event = self.sim.schedule(
                        t - now, self._transmit_next
                    )
        return True

    def send_batch(self, pkts: "list[Packet]", wire: "list[int] | None" = None) -> None:
        """Enqueue a burst of packets; scalar-exact, loads hoisted.

        While the transmitter is idle (or regulated) each enqueue may
        trigger an immediate dequeue, so the prefix runs packet-at-a-time
        with the same kick logic as :meth:`send`.  Once the transmitter is
        busy the scalar path would do nothing but back-to-back enqueues —
        that tail goes through the queue discipline's vector enqueue (per-
        packet AQM verdicts preserved), or a hoisted loop when the flight
        recorder needs its per-packet backlog records.

        ``wire``, when given, is the columnar pipeline's wire-bytes column
        aligned with ``pkts``: per-row it always equals ``pkt.wire_bytes``
        (the pipeline maintains both), so the queue discipline's bulk
        admission can sum bytes without touching the packet objects.
        """
        if self.conditioners:
            send = self.send
            for pkt in pkts:
                send(pkt)
            return
        now = self.sim.now
        stats = self.stats
        fl = self.node.trace.flight
        n = len(pkts)
        i = 0
        while i < n and (not self._busy or self._retry_event is not None):
            pkt = pkts[i]
            i += 1
            if self._retry_event is not None:
                self.send(pkt)  # regulated: full coalesced-timer logic
                continue
            qdisc = self._qdisc
            if not qdisc.enqueue(pkt, now):
                stats.dropped += 1
                continue
            stats.enqueued += 1
            if fl is not None:
                fl.enqueue(now, self.node.name, pkt, self.name, len(qdisc))
            if not self._busy:
                self._transmit_next()
        if i == n:
            return
        qdisc = self._qdisc
        if fl is not None:
            nname = self.node.name
            iname = self.name
            enqueue = qdisc.enqueue
            while i < n:
                pkt = pkts[i]
                i += 1
                if enqueue(pkt, now):
                    stats.enqueued += 1
                    fl.enqueue(now, nname, pkt, iname, len(qdisc))
                else:
                    stats.dropped += 1
            return
        ok = qdisc.enqueue_batch(pkts, now, i, wire)
        stats.enqueued += ok
        stats.dropped += (n - i) - ok

    # ------------------------------------------------------------------
    def _transmit_next(self) -> None:
        if self._retry_event is not None:
            self._retry_event.cancel()
            self._retry_event = None
            self._retry_time = math.inf
        now = self.sim.now
        pkt = self._qdisc.dequeue(now)
        if pkt is None:
            self._busy = False
            # Non-work-conserving discipline with backlog: wake up when the
            # earliest regulated packet becomes eligible (e.g. CBQ class
            # waiting for its allocation bucket to refill).
            if len(self._qdisc) > 0:
                t = self._qdisc.next_eligible(now)
                if t != float("inf"):
                    self._retry_time = t
                    self._retry_event = self.sim.schedule(
                        max(t - now, 1e-9), self._transmit_next
                    )
            return
        fl = self.node.trace.flight
        if fl is not None:
            fl.dequeue(now, self.node.name, pkt, self.name, len(self._qdisc))
        self._busy = True
        tx_time = pkt.wire_bytes * 8.0 / self._eff_rate_bps
        self.stats.busy_time += tx_time
        self.sim.schedule_call(tx_time, self._transmit_done, pkt)

    def _transmit_done(self, pkt: Packet) -> None:
        # ``Link.carry`` is fused inline: one call frame per forwarded
        # packet matters at millions of packet-hops per experiment.
        self.stats.tx_packets += 1
        self.stats.tx_bytes += pkt.wire_bytes
        link = self.link
        if link is not None and link._up:
            self.sim.schedule_call(
                link.delay_s, link.dst_node.receive, pkt, link.dst_ifname
            )
        self._transmit_next()

    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        return self._busy

    @property
    def backlog_packets(self) -> int:
        return len(self.qdisc)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Interface {self.node.name}.{self.name} {self.rate_bps/1e6:g}Mbps>"
