"""Node base classes.

A :class:`Node` owns a set of interfaces and receives packets from links.
Concrete behaviours (IP router, LSR, PE, host) subclass :meth:`Node.handle`.

Per-packet *processing cost* is modeled explicitly because claim C4 of the
paper is about exactly this: a conventional router spends ``ip_lookup_s``
per packet on longest-prefix match and header inspection, while an LSR
spends ``label_lookup_s`` on an exact-match label lookup.  Costs default to
zero (infinite-speed lookup) so QoS experiments are not confounded; the
forwarding-cost experiment (E3) turns them on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.net.address import IPv4Address, Prefix
from repro.net.drops import DropReason
from repro.net.link import Interface
from repro.net.packet import POOL, Packet
from repro.sim.engine import Simulator
from repro.sim.trace import TraceBus

__all__ = [
    "Node",
    "Host",
    "ProcessingModel",
    "NodeStats",
    "install_vector_dispatch",
    "remove_vector_dispatch",
]


@dataclass(slots=True)
class ProcessingModel:
    """Per-packet CPU costs, in seconds.

    ``crypto_bps`` models IPsec encrypt/decrypt throughput (bits/second of
    payload through the crypto engine); 0 disables crypto cost.
    """

    ip_lookup_s: float = 0.0
    label_lookup_s: float = 0.0
    crypto_bps: float = 0.0

    def crypto_time(self, nbytes: int) -> float:
        """Seconds to push ``nbytes`` through the crypto engine."""
        if self.crypto_bps <= 0:
            return 0.0
        return nbytes * 8.0 / self.crypto_bps


@dataclass(slots=True)
class NodeStats:
    """Aggregate per-node counters.

    The three ``dropped_*`` buckets are the legacy coarse view (kept for
    the experiment harnesses); ``by_reason`` holds the full
    :class:`~repro.net.drops.DropReason` breakdown keyed by reason string.
    """

    rx_packets: int = 0
    forwarded: int = 0
    delivered: int = 0
    dropped_no_route: int = 0
    dropped_ttl: int = 0
    dropped_other: int = 0
    by_reason: dict[str, int] = field(default_factory=dict)

    @property
    def dropped_total(self) -> int:
        return self.dropped_no_route + self.dropped_ttl + self.dropped_other


class Node:
    """Base network element: interfaces + address ownership + dispatch."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        trace: TraceBus | None = None,
        processing: ProcessingModel | None = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.trace = trace or TraceBus()
        self.processing = processing or ProcessingModel()
        self.interfaces: dict[str, Interface] = {}
        self.addresses: dict[IPv4Address, str] = {}  # address -> ifname ('' = loopback)
        self.connected_prefixes: dict[Prefix, str] = {}  # subnet -> ifname
        self.loopback: IPv4Address | None = None
        # Routing domain tag: provider routers are "core"; customer equipment
        # is "customer" and stays out of the provider IGP (its addresses may
        # overlap other customers').
        self.domain: str = "core"
        self.stats = NodeStats()
        self.local_sinks: list[Callable[[Packet], None]] = []

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def add_interface(self, iface: Interface) -> Interface:
        if iface.name in self.interfaces:
            raise ValueError(f"{self.name}: duplicate interface {iface.name}")
        self.interfaces[iface.name] = iface
        return iface

    def set_loopback(self, addr: IPv4Address | str) -> None:
        """Assign the node's stable loopback address (used as router id)."""
        a = IPv4Address.parse(addr)
        self.loopback = a
        self.addresses[a] = ""

    def add_address(
        self, addr: IPv4Address | str, ifname: str, subnet: Prefix | None = None
    ) -> None:
        a = IPv4Address.parse(addr)
        self.addresses[a] = ifname
        if subnet is not None:
            self.connected_prefixes[subnet] = ifname

    def owns(self, addr: IPv4Address) -> bool:
        """True when ``addr`` is one of this node's own addresses."""
        return addr in self.addresses

    def add_local_sink(self, fn: Callable[[Packet], None]) -> None:
        """Register a callback for packets addressed to this node."""
        self.local_sinks.append(fn)

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def receive(self, pkt: Packet, ifname: str) -> None:
        """Entry point called by the incoming link."""
        self.stats.rx_packets += 1
        pkt.hops += 1
        fl = self.trace.flight
        if fl is not None:
            fl.rx(self.sim.now, self.name, pkt, ifname)
        self.handle(pkt, ifname)

    def handle(self, pkt: Packet, ifname: str) -> None:
        """Forward/deliver/drop ``pkt``; overridden by concrete nodes."""
        raise NotImplementedError

    def receive_batch(self, items: list[tuple[Packet, str]]) -> None:
        """Vector arrival entry point: a burst of same-time ``(pkt, ifname)``
        arrivals fused by the kernel (see ``install_vector_dispatch``).

        The base implementation is the scalar loop, so any node type is
        batch-safe by construction; fast-path nodes (``Host`` here,
        ``Router`` via the forwarding pipeline) override it with a hoisted
        loop that must stay observationally identical — the flight-recorder
        interleave per packet is part of the contract
        (``tests/test_dataplane_batch.py``).
        """
        receive = self.receive
        for pkt, ifname in items:
            receive(pkt, ifname)

    def handle_batch(self, items: list[tuple[Packet, str]]) -> None:
        """Dispatch a received burst; scalar-exact default."""
        handle = self.handle
        for pkt, ifname in items:
            handle(pkt, ifname)

    # ------------------------------------------------------------------
    # Helpers for subclasses
    # ------------------------------------------------------------------
    def deliver_local(self, pkt: Packet) -> None:
        """Hand a packet addressed to this node to the local application(s).

        Delivery ends a pooled packet's life-cycle: once every sink has
        run, the shell goes back to the freelist for the next emission.
        """
        self.stats.delivered += 1
        fl = self.trace.flight
        if fl is not None:
            fl.deliver(self.sim.now, self.name, pkt)
        slo = self.trace.slo
        if slo is not None:
            slo.deliver(self.sim.now, self.name, pkt)
        for sink in self.local_sinks:
            sink(pkt)
        if pkt.pooled:
            POOL.release(pkt)

    def drop(self, pkt: Packet, reason: "DropReason | str") -> None:
        """Account and trace a packet drop.

        ``reason`` is normally a :class:`DropReason`; legacy string reasons
        are parsed through the taxonomy (unknown strings land in OTHER but
        keep their verbatim text in ``by_reason`` and on the trace record).
        """
        r = DropReason.parse(reason)
        cat = r.category
        if cat == "no_route":
            self.stats.dropped_no_route += 1
        elif cat == "ttl":
            self.stats.dropped_ttl += 1
        else:
            self.stats.dropped_other += 1
        text = reason if isinstance(reason, str) else r.value
        by = self.stats.by_reason
        by[text] = by.get(text, 0) + 1
        fl = self.trace.flight
        if fl is not None:
            fl.drop(self.sim.now, self.name, pkt, text)
        if self.trace.active("drop"):
            self.trace.publish(
                "drop", self.sim.now, node=self.name, reason=text, pkt=pkt
            )

    def transmit(self, pkt: Packet, ifname: str) -> None:
        """Queue ``pkt`` on interface ``ifname`` for transmission."""
        iface = self.interfaces.get(ifname)
        if iface is None or iface.link is None:
            self.drop(pkt, DropReason.NO_IFACE)
            return
        self.stats.forwarded += 1
        iface.send(pkt)

    def transmit_batch(
        self, pkts: list[Packet], ifname: str, wire: list[int] | None = None
    ) -> None:
        """Queue a burst of packets on one egress interface.

        Same per-packet semantics as :meth:`transmit` (the interface keeps
        enqueue→kick ordering scalar-exact); the batch form exists so the
        pipeline's vector path pays one interface call per egress run.
        ``wire`` threads the columnar pipeline's wire-bytes column through
        to the queue discipline's bulk byte accounting.
        """
        iface = self.interfaces.get(ifname)
        if iface is None or iface.link is None:
            drop = self.drop
            for pkt in pkts:
                drop(pkt, DropReason.NO_IFACE)
            return
        self.stats.forwarded += len(pkts)
        iface.send_batch(pkts, wire)

    def after_processing(self, cost_s: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` after a modeled CPU cost (immediately when zero).

        Zero-cost processing bypasses the scheduler entirely — the common
        case — so experiments that do not model CPU pay nothing for the
        hook.  The forwarding pipeline (``repro.dataplane``) applies the
        same rule inline with ``Simulator.schedule_call`` to avoid the
        per-packet closure; this thunk-based variant is kept for gateways
        and tests that already hold a zero-argument callable.
        """
        if cost_s <= 0.0:
            fn()
        else:
            self.sim.schedule(cost_s, fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class Host(Node):
    """End system: sources/sinks traffic, forwards everything to a gateway.

    A host delivers packets addressed to itself and sends everything else
    out its single interface (the access link towards its CE/router).
    """

    def __init__(self, sim: Simulator, name: str, **kw) -> None:
        super().__init__(sim, name, **kw)
        self.gateway_ifname: str | None = None

    def handle(self, pkt: Packet, ifname: str) -> None:
        if self.owns(pkt.ip.dst):
            self.deliver_local(pkt)
            return
        self.send(pkt)

    def receive_batch(self, items: list[tuple[Packet, str]]) -> None:
        # Hoisted deliver-or-forward loop.  With the flight recorder
        # attached the scalar path runs instead: the per-packet rx record
        # must interleave with delivery records exactly as in scalar mode.
        if self.trace.flight is not None:
            receive = self.receive
            for pkt, ifname in items:
                receive(pkt, ifname)
            return
        self.stats.rx_packets += len(items)
        addresses = self.addresses
        deliver = self.deliver_local
        send = self.send
        for pkt, _ifname in items:
            pkt.hops += 1
            if pkt.ip.dst in addresses:
                deliver(pkt)
            else:
                send(pkt)

    def send(self, pkt: Packet) -> None:
        """Originate (or forward) a packet via the configured gateway."""
        out = self.gateway_ifname
        if out is None:
            if len(self.interfaces) != 1:
                self.drop(pkt, DropReason.NO_ROUTE)
                return
            out = next(iter(self.interfaces))
        self.transmit(pkt, out)

    def send_batch(self, pkts: list[Packet]) -> None:
        """Originate a burst via the gateway with one interface call.

        Detected by the traffic sources (``repro.traffic.generators``):
        a multi-packet emission tick funnels through here instead of N
        ``send`` calls.
        """
        out = self.gateway_ifname
        if out is None:
            if len(self.interfaces) != 1:
                drop = self.drop
                for pkt in pkts:
                    drop(pkt, DropReason.NO_ROUTE)
                return
            out = next(iter(self.interfaces))
        self.transmit_batch(pkts, out)


def _vector_dispatch(owner: Node, batch: list[tuple[Packet, str]]) -> None:
    owner.receive_batch(batch)


def install_vector_dispatch(sim: Simulator) -> None:
    """Enable burst extraction on ``sim``: same-time ``Node.receive``
    arrivals at one node are fused into a ``receive_batch`` call.

    Wired by ``Network.__init__`` when ``obs.runtime.vector_mode_enabled()``
    (the default); ``remove_vector_dispatch`` restores pure scalar dispatch
    (the parity oracle in ``tests/test_dataplane_batch.py`` runs both).
    No-op on kernels without burst extraction (the frozen reference engine
    in ``repro.sim.reference``, which is scalar by definition).
    """
    set_target = getattr(sim, "set_batch_target", None)
    if set_target is not None:
        set_target(Node.receive, _vector_dispatch)


def remove_vector_dispatch(sim: Simulator) -> None:
    """Disable burst extraction on ``sim`` (see ``install_vector_dispatch``)."""
    set_target = getattr(sim, "set_batch_target", None)
    if set_target is not None:
        set_target(None)
