"""IPv4 addresses and prefixes.

We implement our own minimal IPv4 types (rather than ``ipaddress``) for two
reasons: (1) the VPN experiments need *overlapping* customer address spaces
handled as plain integers with no global-uniqueness assumptions, and (2) the
forwarding hot path compares and masks millions of addresses — plain ints
with precomputed masks profile ~3x faster than ``ipaddress.IPv4Address``
objects.

Addresses are 32-bit ints wrapped in a tiny value type; prefixes are
(network-int, length) pairs.  Everything is hashable and immutable so they
can key FIB/VRF dictionaries.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

__all__ = ["IPv4Address", "Prefix", "AddressError", "MASKS"]

# MASKS[p] is the netmask for prefix length p (host bits cleared).
MASKS: tuple[int, ...] = tuple(
    (0xFFFFFFFF << (32 - p)) & 0xFFFFFFFF if p else 0 for p in range(33)
)

_DOTTED_RE = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")


class AddressError(ValueError):
    """Malformed address or prefix."""


@dataclass(frozen=True, slots=True, order=True)
class IPv4Address:
    """A 32-bit IPv4 address.

    Accepts an ``int`` or dotted-quad ``str`` via :meth:`parse`.
    """

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= 0xFFFFFFFF:
            raise AddressError(f"address out of range: {self.value:#x}")

    def __hash__(self) -> int:
        # The dataclass-generated hash allocates a (value,) tuple per call;
        # addresses key FIB/VRF dicts on the control-plane hot path, so
        # hash the int directly (identical equality semantics).
        return hash(self.value)

    @classmethod
    def parse(cls, text: str | int | "IPv4Address") -> "IPv4Address":
        """Parse a dotted quad, an int, or pass through an address."""
        if isinstance(text, IPv4Address):
            return text
        if isinstance(text, int):
            return cls(text)
        m = _DOTTED_RE.match(text.strip())
        if not m:
            raise AddressError(f"not a dotted quad: {text!r}")
        octets = [int(g) for g in m.groups()]
        if any(o > 255 for o in octets):
            raise AddressError(f"octet out of range in {text!r}")
        return cls((octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3])

    def __str__(self) -> str:
        v = self.value
        return f"{v >> 24 & 255}.{v >> 16 & 255}.{v >> 8 & 255}.{v & 255}"

    def __repr__(self) -> str:
        return f"IPv4Address({self})"

    def __int__(self) -> int:
        return self.value

    def __add__(self, offset: int) -> "IPv4Address":
        return IPv4Address(self.value + offset)

    def in_prefix(self, prefix: "Prefix") -> bool:
        """True when this address falls inside ``prefix``."""
        return (self.value & MASKS[prefix.length]) == prefix.network


@dataclass(frozen=True, slots=True, order=True)
class Prefix:
    """An IPv4 prefix: masked network int + prefix length.

    The constructor *normalises* (clears host bits), so ``Prefix.parse``
    accepts e.g. ``10.1.2.3/8`` and stores ``10.0.0.0/8``.
    """

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise AddressError(f"prefix length out of range: {self.length}")
        if not 0 <= self.network <= 0xFFFFFFFF:
            raise AddressError(f"network out of range: {self.network:#x}")
        masked = self.network & MASKS[self.length]
        if masked != self.network:
            object.__setattr__(self, "network", masked)

    def __hash__(self) -> int:
        # (network << 6) | length is injective over valid prefixes, so this
        # is a perfect hash — and ~3x cheaper than the dataclass-generated
        # tuple hash, which the route-install hot path felt.
        return hash((self.network << 6) | self.length)

    @classmethod
    def parse(cls, text: str | "Prefix") -> "Prefix":
        """Parse ``a.b.c.d/len`` notation (host bits tolerated and cleared)."""
        if isinstance(text, Prefix):
            return text
        addr_part, sep, len_part = text.partition("/")
        if not sep:
            raise AddressError(f"missing /length in {text!r}")
        addr = IPv4Address.parse(addr_part)
        try:
            length = int(len_part)
        except ValueError:
            raise AddressError(f"bad prefix length in {text!r}") from None
        if not 0 <= length <= 32:
            raise AddressError(f"prefix length out of range in {text!r}")
        return cls(addr.value & MASKS[length], length)

    @classmethod
    def of(cls, addr: IPv4Address | str, length: int) -> "Prefix":
        """Prefix containing ``addr`` with the given length."""
        a = IPv4Address.parse(addr)
        return cls(a.value & MASKS[length], length)

    def __str__(self) -> str:
        return f"{IPv4Address(self.network)}/{self.length}"

    def __repr__(self) -> str:
        return f"Prefix({self})"

    @property
    def mask(self) -> int:
        return MASKS[self.length]

    @property
    def num_addresses(self) -> int:
        return 1 << (32 - self.length)

    @property
    def first(self) -> IPv4Address:
        return IPv4Address(self.network)

    @property
    def last(self) -> IPv4Address:
        return IPv4Address(self.network | (~MASKS[self.length] & 0xFFFFFFFF))

    def contains(self, addr: IPv4Address | str) -> bool:
        """True when ``addr`` is inside this prefix."""
        a = IPv4Address.parse(addr)
        return (a.value & MASKS[self.length]) == self.network

    def contains_prefix(self, other: "Prefix") -> bool:
        """True when ``other`` is equal to or more specific than this prefix."""
        return other.length >= self.length and (
            other.network & MASKS[self.length]
        ) == self.network

    def overlaps(self, other: "Prefix") -> bool:
        """True when the two prefixes share any address."""
        return self.contains_prefix(other) or other.contains_prefix(self)

    def subnets(self, new_length: int) -> Iterator["Prefix"]:
        """Iterate the subnets of this prefix at ``new_length``.

        Used by the provisioning helpers to carve per-site subnets out of a
        customer supernet.
        """
        if new_length < self.length:
            raise AddressError(
                f"new length {new_length} shorter than prefix {self.length}"
            )
        if new_length > 32:
            raise AddressError(f"new length {new_length} > 32")
        step = 1 << (32 - new_length)
        for net in range(self.network, self.network + self.num_addresses, step):
            yield Prefix(net, new_length)

    def host(self, index: int) -> IPv4Address:
        """The ``index``-th address inside the prefix (0-based)."""
        if not 0 <= index < self.num_addresses:
            raise AddressError(f"host index {index} out of {self}")
        return IPv4Address(self.network + index)
