"""Network substrate: addresses, packets, links, nodes."""

from repro.net.address import AddressError, IPv4Address, Prefix
from repro.net.link import Interface, InterfaceStats, Link
from repro.net.node import Host, Node, NodeStats, ProcessingModel
from repro.net.packet import (
    IPV4_HEADER_BYTES,
    MPLS_SHIM_BYTES,
    IPHeader,
    MplsEntry,
    Packet,
    PacketError,
)

__all__ = [
    "AddressError", "IPv4Address", "Prefix",
    "Interface", "InterfaceStats", "Link",
    "Host", "Node", "NodeStats", "ProcessingModel",
    "IPV4_HEADER_BYTES", "MPLS_SHIM_BYTES",
    "IPHeader", "MplsEntry", "Packet", "PacketError",
]
