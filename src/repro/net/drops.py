"""Packet-drop taxonomy.

Every drop in the simulator is tagged with a :class:`DropReason` so that
loss can be *attributed*, not just counted.  Before this enum existed each
call site passed a freeform string and :meth:`Node.drop` string-matched a
few of them — a typo silently landed in ``dropped_other`` and queue/AQM
drops were invisible outside ``ClassStats``.  The taxonomy is the contract
between the data plane (which produces drops), the TraceBus (which carries
them), and the observability layer (``repro.obs``), whose flight recorder
and metrics registry key on ``reason.value``.

Reasons are grouped into coarse *categories* (``"no_route"``, ``"ttl"``,
``"queue"``, ``"other"``) used by the legacy :class:`~repro.net.node.NodeStats`
counters; the full per-reason breakdown lives in ``NodeStats.by_reason``.
"""

from __future__ import annotations

from enum import Enum

__all__ = ["DropReason"]


class DropReason(Enum):
    """Why a packet died.  ``value`` is the stable wire/trace string."""

    # -- routing ---------------------------------------------------------
    NO_ROUTE = "no_route"                  # FIB miss
    NO_VRF_ROUTE = "no_vrf_route"          # VRF table miss at a PE
    NO_TUNNEL = "no_tunnel"                # no LSP toward the remote PE
    NO_VC = "no_vc"                        # overlay: unknown virtual circuit
    # -- lifetime --------------------------------------------------------
    TTL = "ttl"                            # TTL expired in transit
    # -- MPLS ------------------------------------------------------------
    NO_LABEL = "no_label"                  # LFIB miss
    VPN_LABEL_NO_VRF = "vpn_label_no_vrf"  # VPN label on a non-PE LSR
    UNKNOWN_VRF = "unknown_vrf"            # VPN label bound to a missing VRF
    BAD_LFIB_OP = "bad_lfib_op"            # corrupt LFIB entry
    LABELED_AT_IP_ROUTER = "labeled_at_ip_router"  # shim at a plain router
    # -- interface / queueing --------------------------------------------
    NO_IFACE = "no_iface"                  # transmit on a missing interface
    QUEUE_TAIL = "queue_tail"              # buffer full (packet/byte cap)
    QUEUE_AQM = "queue_aqm"                # RED/WRED early drop
    CONDITIONER = "conditioner"            # policer / meter red action
    # -- IPsec -----------------------------------------------------------
    SA_PENDING = "sa_pending"              # IKE not yet established
    NO_SA = "no_sa"                        # no security association
    # -- catch-all -------------------------------------------------------
    OTHER = "other"

    @property
    def category(self) -> str:
        """Coarse bucket for the legacy ``NodeStats`` counters."""
        return _CATEGORY[self]

    @classmethod
    def parse(cls, reason: "DropReason | str") -> "DropReason":
        """Coerce a legacy string (or an enum member) into the taxonomy.

        Unknown strings map to :attr:`OTHER` — the old behaviour, but now
        the unknown string is still preserved verbatim on the trace record
        by the caller, so a typo is visible instead of silent.
        """
        if isinstance(reason, cls):
            return reason
        try:
            return cls(reason)
        except ValueError:
            return cls.OTHER


# NO_TUNNEL / NO_VC stay in "other" — that is where the pre-taxonomy string
# matching put them, and experiment baselines read those buckets.
_CATEGORY: dict[DropReason, str] = {
    DropReason.NO_ROUTE: "no_route",
    DropReason.NO_VRF_ROUTE: "no_route",
    DropReason.NO_TUNNEL: "other",
    DropReason.NO_VC: "other",
    DropReason.TTL: "ttl",
    DropReason.QUEUE_TAIL: "queue",
    DropReason.QUEUE_AQM: "queue",
    DropReason.CONDITIONER: "queue",
    DropReason.NO_LABEL: "other",
    DropReason.VPN_LABEL_NO_VRF: "other",
    DropReason.UNKNOWN_VRF: "other",
    DropReason.BAD_LFIB_OP: "other",
    DropReason.LABELED_AT_IP_ROUTER: "other",
    DropReason.NO_IFACE: "other",
    DropReason.SA_PENDING: "other",
    DropReason.NO_SA: "other",
    DropReason.OTHER: "other",
}
