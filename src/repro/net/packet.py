"""Packets and protocol headers.

A :class:`Packet` models one L3 datagram.  Its wire representation is

    [ MPLS shim * k ] [ IPv4 header ] [ payload ]

where the payload may itself be an encapsulated inner packet (IPsec ESP
tunnel mode, or a plain IP-in-IP overlay circuit).  Encapsulation is modeled
structurally with an ``inner`` reference plus an ``encap_overhead`` byte
count, which is exactly the information the QoS experiments need: byte
overhead on the wire, and *which headers an interior classifier can see*.

Crucially for claim C3 of the paper, an encrypted packet's ``inner`` headers
are flagged unreadable (``encrypted=True``): DiffServ classifiers in the
core then can only act on the *outer* header, which is how IPsec "erases any
hope one may have to control QoS" unless the DSCP was copied out before
encryption.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.net.address import IPv4Address

__all__ = [
    "IPV4_HEADER_BYTES",
    "MPLS_SHIM_BYTES",
    "IPHeader",
    "MplsEntry",
    "Packet",
    "PacketError",
    "PacketPool",
    "POOL",
]

IPV4_HEADER_BYTES = 20
MPLS_SHIM_BYTES = 4

_packet_ids = itertools.count()


class PacketError(RuntimeError):
    """Malformed packet operation (pop on empty stack, TTL underflow...)."""


@dataclass(slots=True)
class IPHeader:
    """IPv4 header fields the simulator cares about.

    ``dscp`` is the 6-bit DiffServ codepoint; ``proto`` is a free-form
    protocol tag (``"udp"``, ``"tcp"``, ``"esp"`` ...); ``src_port``/
    ``dst_port`` live here too since the 5-tuple classifier needs them and a
    separate L4 object buys nothing.
    """

    src: IPv4Address
    dst: IPv4Address
    dscp: int = 0
    ttl: int = 64
    proto: str = "udp"
    src_port: int = 0
    dst_port: int = 0

    def copy(self) -> "IPHeader":
        return IPHeader(
            self.src, self.dst, self.dscp, self.ttl, self.proto,
            self.src_port, self.dst_port,
        )


@dataclass(slots=True)
class MplsEntry:
    """One MPLS label-stack entry (RFC 3032 shim): label, EXP bits, TTL.

    The bottom-of-stack S bit is implicit — the entry at index 0 of the
    packet's ``mpls_stack`` is the bottom.
    """

    label: int
    exp: int = 0
    ttl: int = 64

    def __post_init__(self) -> None:
        if not 0 <= self.label <= 0xFFFFF:
            raise PacketError(f"label out of 20-bit range: {self.label}")
        if not 0 <= self.exp <= 7:
            raise PacketError(f"EXP out of 3-bit range: {self.exp}")


@dataclass(slots=True)
class Packet:
    """One simulated datagram.

    Attributes
    ----------
    ip:
        The outermost IPv4 header.
    payload_bytes:
        L4 payload size in bytes (not counting any header this object
        models explicitly).
    mpls_stack:
        Label stack; ``mpls_stack[-1]`` is the top entry the next LSR
        examines.  Empty list = unlabeled IP packet.
    flow:
        Opaque flow identifier used by metrics; survives encapsulation via
        ``innermost()``.
    seq:
        Per-flow sequence number assigned by the generator.
    inner:
        Encapsulated packet, if this one is a tunnel envelope.
    encrypted:
        When True, the ``inner`` headers are opaque to classifiers.
    encap_overhead:
        Extra wire bytes the encapsulation adds beyond the inner packet and
        this packet's own IP header (ESP header+IV+pad+ICV, etc.).
    created:
        Simulation time the *original* packet entered the network; copied
        through encapsulation so end-to-end delay is measured correctly.
    """

    ip: IPHeader
    payload_bytes: int = 0
    mpls_stack: list[MplsEntry] = field(default_factory=list)
    flow: Any = None
    seq: int = 0
    inner: Optional["Packet"] = None
    encrypted: bool = False
    encap_overhead: int = 0
    created: float = 0.0
    vc_id: int | None = None
    uid: int = field(default_factory=lambda: next(_packet_ids))
    hops: int = 0
    # Memoized CRC32 ECMP key (repro.dataplane.flow_hash).  Never
    # invalidated: the 5-tuple is immutable for the packet's lifetime.
    flow_hash_cache: int | None = field(default=None, repr=False, compare=False)
    # True while the packet is owned by the PacketPool life-cycle: acquired
    # from POOL, recycled at local delivery.  Dropped packets keep the flag
    # but are never released (trace subscribers may retain them).
    pooled: bool = field(default=False, repr=False, compare=False)
    # Memoized wire size; invalidated by the label-stack mutators (the only
    # post-construction size changes — payload/encap are set at creation).
    _wire: int | None = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------
    @property
    def wire_bytes(self) -> int:
        """Total bytes this packet occupies on a link.

        Memoized: queues, shapers, meters and the transmitter all ask per
        hop, but the size only changes on a label push/pop (which clears
        the memo).
        """
        w = self._wire
        if w is None:
            w = IPV4_HEADER_BYTES + MPLS_SHIM_BYTES * len(self.mpls_stack)
            inner = self.inner
            if inner is not None:
                w += inner.wire_bytes + self.encap_overhead
            else:
                w += self.payload_bytes + self.encap_overhead
            self._wire = w
        return w

    # ------------------------------------------------------------------
    # MPLS label-stack operations
    # ------------------------------------------------------------------
    @property
    def top_label(self) -> MplsEntry | None:
        """Top-of-stack entry, or None for unlabeled packets."""
        return self.mpls_stack[-1] if self.mpls_stack else None

    def push_label(self, label: int, exp: int = 0, ttl: int | None = None) -> MplsEntry:
        """Push a label; TTL defaults to the header below (RFC 3443 uniform model)."""
        if ttl is None:
            below = self.mpls_stack[-1].ttl if self.mpls_stack else self.ip.ttl
            ttl = below
        entry = MplsEntry(label, exp, ttl)
        self.mpls_stack.append(entry)
        self._wire = None
        return entry

    def swap_label(self, label: int, exp: int | None = None) -> MplsEntry:
        """Replace the top label in place (the per-LSR swap of claim C4)."""
        if not self.mpls_stack:
            raise PacketError("swap on unlabeled packet")
        top = self.mpls_stack[-1]
        top.label = label
        if not 0 <= label <= 0xFFFFF:
            raise PacketError(f"label out of 20-bit range: {label}")
        if exp is not None:
            top.exp = exp
        return top

    def pop_label(self) -> MplsEntry:
        """Pop the top entry, propagating TTL down (uniform model)."""
        if not self.mpls_stack:
            raise PacketError("pop on empty label stack")
        entry = self.mpls_stack.pop()
        self._wire = None
        if self.mpls_stack:
            self.mpls_stack[-1].ttl = entry.ttl
        else:
            self.ip.ttl = entry.ttl
        return entry

    def decrement_ttl(self) -> int:
        """Decrement the active TTL (top label if present, else IP).

        Returns the new TTL; the caller drops the packet when it hits 0.
        """
        if self.mpls_stack:
            self.mpls_stack[-1].ttl -= 1
            return self.mpls_stack[-1].ttl
        self.ip.ttl -= 1
        return self.ip.ttl

    # ------------------------------------------------------------------
    # Encapsulation
    # ------------------------------------------------------------------
    def innermost(self) -> "Packet":
        """Follow ``inner`` links to the original customer packet."""
        pkt = self
        while pkt.inner is not None:
            pkt = pkt.inner
        return pkt

    def visible_header(self) -> IPHeader:
        """The header a multi-field classifier at this point can act on.

        For cleartext tunnels the classifier could in principle look inside,
        but interior DiffServ equipment classifies on the outer header; for
        *encrypted* tunnels the inner header is unreadable by construction.
        Either way the answer is the outer ``ip`` — the distinction that
        matters is captured by :meth:`classifiable_dscp`.
        """
        return self.ip

    def classifiable_dscp(self) -> int:
        """DSCP available to an interior Behaviour-Aggregate classifier."""
        return self.ip.dscp

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lbl = (
            "+".join(str(e.label) for e in reversed(self.mpls_stack))
            if self.mpls_stack
            else "ip"
        )
        return (
            f"<Packet #{self.uid} flow={self.flow} seq={self.seq} {lbl} "
            f"{self.ip.src}->{self.ip.dst} dscp={self.ip.dscp} "
            f"{self.wire_bytes}B>"
        )


class PacketPool:
    """Freelist of :class:`Packet` shells for high-rate traffic sources.

    Under heavy traffic the dominant allocation is one Packet (plus its
    empty label-stack list) per generated datagram, almost all of which
    die at the far-end sink a few simulated milliseconds later.  The pool
    recycles those shells: traffic sources ``acquire`` instead of
    constructing, and :meth:`repro.net.node.Node.deliver_local` releases a
    pooled packet once every local sink has run.

    Life-cycle rules (see docs/ARCHITECTURE.md):

    * ``acquire`` re-initialises *every* field, including a fresh ``uid``
      drawn from the same global counter — so a pooled run and an
      unpooled run of the same seed produce identical uid sequences.
    * Only packets that reach ``deliver_local`` are recycled.  Dropped
      packets are never released: drop paths publish the object to the
      TraceBus, whose subscribers (and the experiment harnesses) may
      retain it indefinitely.
    * Tunnel envelopes and protocol messages are built directly and have
      ``pooled=False``; the flag travels with the customer packet through
      encap/decap because the envelope's ``inner`` is the same object.
    * The FlightRecorder is safe by construction: its HopRecords copy
      scalar fields out of the packet at record time.
    """

    __slots__ = ("_free", "max_size", "hits", "misses", "releases")

    def __init__(self, max_size: int = 4096) -> None:
        self._free: list[Packet] = []
        self.max_size = max_size
        #: freelist telemetry (exported as ``repro_pool_*`` gauges):
        #: ``hits`` counts acquires served from the freelist, ``misses``
        #: fresh constructions, ``releases`` shells returned.
        self.hits = 0
        self.misses = 0
        self.releases = 0

    def acquire(
        self,
        ip: IPHeader,
        payload_bytes: int,
        flow: Any,
        seq: int,
        created: float,
    ) -> Packet:
        """A fresh-looking Packet, recycled from the freelist when possible."""
        free = self._free
        if not free:
            self.misses += 1
            pkt = Packet(
                ip=ip, payload_bytes=payload_bytes, flow=flow, seq=seq,
                created=created,
            )
            pkt.pooled = True
            return pkt
        self.hits += 1
        pkt = free.pop()
        pkt.ip = ip
        pkt.payload_bytes = payload_bytes
        if pkt.mpls_stack:
            pkt.mpls_stack.clear()
        pkt.flow = flow
        pkt.seq = seq
        pkt.inner = None
        pkt.encrypted = False
        pkt.encap_overhead = 0
        pkt.created = created
        pkt.vc_id = None
        pkt.uid = next(_packet_ids)
        pkt.hops = 0
        pkt.flow_hash_cache = None
        pkt.pooled = True
        pkt._wire = None
        return pkt

    def release(self, pkt: Packet) -> None:
        """Return a delivered pooled packet to the freelist.  Idempotent:
        the flag flips off on release so a double release cannot alias.

        The shell is scrubbed *here*, not just at acquire: label stacks,
        the encap chain, and memoized flow-hash/wire state are per-flow
        identity a recycled packet must never leak, and clearing the
        object references (``ip``, ``flow``, ``inner``) also keeps the
        freelist from pinning headers and whole encap chains alive
        between uses."""
        if pkt.pooled and len(self._free) < self.max_size:
            pkt.pooled = False
            if pkt.mpls_stack:
                pkt.mpls_stack.clear()
            pkt.ip = None  # type: ignore[assignment]
            pkt.flow = None
            pkt.inner = None
            pkt.encrypted = False
            pkt.encap_overhead = 0
            pkt.vc_id = None
            pkt.flow_hash_cache = None
            pkt._wire = None
            self.releases += 1
            self._free.append(pkt)

    def __len__(self) -> int:
        return len(self._free)


#: Process-wide pool used by ``repro.traffic.generators`` (gated by its
#: ``POOLING`` flag) and drained back by ``Node.deliver_local``.
POOL = PacketPool()
