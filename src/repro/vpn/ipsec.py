"""IPsec tunnel-overlay baseline (ESP tunnel mode + IKE cost model).

The second baseline the paper discusses (§2.3/§3): secure site-to-site
tunnels over a plain IP backbone.  Three properties matter for the
experiments and are modeled faithfully; actual cryptography is not (see
DESIGN.md substitutions):

* **Byte overhead** — ESP tunnel mode adds a new outer IPv4 header plus
  SPI/sequence, IV, padding to the cipher block, pad-length/next-header
  trailer, and the integrity check value.  :func:`esp_overhead_bytes`
  computes the exact per-packet cost for a given cipher geometry
  (defaults: 3DES-era 8-byte blocks + HMAC-96, selectable AES-style
  16/16).
* **CPU cost** — encrypt/decrypt time scales with packet bytes through
  ``ProcessingModel.crypto_bps`` ("performing security functions such as
  encryption ... are processor intensive").
* **Header hiding** — the encapsulated packet is ``encrypted=True``; inner
  DSCP/ports are invisible to every interior classifier.  Whether the
  gateway copies the inner DSCP to the outer header (RFC 2983 uniform
  model) is per-SA: with ``copy_dscp=False`` the backbone sees one
  featureless aggregate and QoS is erased — claim C3's exact mechanism.

IKE is modeled as a message-count + latency budget: IKEv1 main mode (6
messages) + quick mode (3 messages) at one RTT per round trip, after which
the SA is usable; packets arriving earlier are dropped and counted (the
real-world behaviour of most implementations before buffering tricks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.address import IPv4Address, Prefix
from repro.net.drops import DropReason
from repro.net.packet import IPHeader, Packet
from repro.routing.router import Router
from repro.sim.engine import bind

__all__ = [
    "esp_overhead_bytes",
    "IKEV1_HANDSHAKE_MESSAGES",
    "SecurityAssociation",
    "IpsecGateway",
]

#: IKEv1: 6 main-mode + 3 quick-mode messages.
IKEV1_HANDSHAKE_MESSAGES = 9


def esp_overhead_bytes(
    inner_bytes: int, block: int = 8, iv: int = 8, icv: int = 12
) -> int:
    """ESP tunnel-mode overhead beyond the inner packet and outer IP header.

    SPI+sequence (8) + IV + padding to ``block`` + pad-length/next-header
    trailer (2) + ICV.  Defaults model 3DES-CBC/HMAC-SHA1-96; pass
    ``block=16, iv=16`` for AES-CBC.
    """
    if inner_bytes < 0:
        raise ValueError("inner_bytes must be non-negative")
    pad = (block - ((inner_bytes + 2) % block)) % block
    return 8 + iv + pad + 2 + icv


@dataclass
class SecurityAssociation:
    """One tunnel-mode SA pair (we model the bidirectional bundle)."""

    peer: IPv4Address
    copy_dscp: bool = False
    block: int = 8
    iv: int = 8
    icv: int = 12
    established_at: float = 0.0     # SA usable from this sim time
    ike_messages: int = 0
    encapsulated: int = 0
    decapsulated: int = 0
    dropped_pending: int = 0


class IpsecGateway(Router):
    """Site security gateway: SPD + SAs + ESP encap/decap.

    The gateway is an ordinary router for non-matching traffic; traffic to
    a protected remote prefix is encapsulated toward the peer gateway.
    Crypto CPU cost comes from ``self.processing.crypto_bps``.
    """

    def __init__(self, sim, name, **kw) -> None:
        super().__init__(sim, name, **kw)
        # Security policy database: ordered (selector prefix, peer addr).
        self.spd: list[tuple[Prefix, IPv4Address]] = []
        self.sas: dict[IPv4Address, SecurityAssociation] = {}

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def add_policy(self, dst_prefix: Prefix | str, peer: IPv4Address | str) -> None:
        """Protect traffic to ``dst_prefix`` via the SA with ``peer``."""
        self.spd.append(
            (
                Prefix.parse(dst_prefix) if isinstance(dst_prefix, str) else dst_prefix,
                IPv4Address.parse(peer),
            )
        )

    def establish_sa(
        self,
        peer: IPv4Address | str,
        rtt_s: float = 0.0,
        copy_dscp: bool = False,
        block: int = 8,
        iv: int = 8,
        icv: int = 12,
    ) -> SecurityAssociation:
        """Run (a cost model of) IKE with ``peer``.

        The SA becomes usable after the 9-message handshake completes:
        4.5 RTTs from now.  Message counts go to the network counters via
        the SA record (summed by the harness).
        """
        addr = IPv4Address.parse(peer)
        sa = SecurityAssociation(
            peer=addr,
            copy_dscp=copy_dscp,
            block=block,
            iv=iv,
            icv=icv,
            established_at=self.sim.now + (IKEV1_HANDSHAKE_MESSAGES / 2.0) * rtt_s,
            ike_messages=IKEV1_HANDSHAKE_MESSAGES,
        )
        self.sas[addr] = sa
        return sa

    def _policy_for(self, dst: IPv4Address) -> Optional[IPv4Address]:
        for prefix, peer in self.spd:
            if prefix.contains(dst):
                return peer
        return None

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def handle(self, pkt: Packet, ifname: str) -> None:
        if self.owns(pkt.ip.dst):
            if pkt.encrypted and pkt.inner is not None:
                self._decapsulate(pkt)
            else:
                self.deliver_local(pkt)
            return
        peer = None if pkt.encrypted else self._policy_for(pkt.ip.dst)
        if peer is not None:
            self._encapsulate(pkt, peer)
            return
        super().handle(pkt, ifname)

    def _encapsulate(self, pkt: Packet, peer: IPv4Address) -> None:
        sa = self.sas.get(peer)
        if sa is None or self.sim.now < sa.established_at:
            if sa is not None:
                sa.dropped_pending += 1
            self.drop(pkt, DropReason.SA_PENDING)
            return
        overhead = esp_overhead_bytes(pkt.wire_bytes, sa.block, sa.iv, sa.icv)
        outer_dscp = pkt.ip.dscp if sa.copy_dscp else 0
        assert self.loopback is not None, "IPsec gateway needs a loopback"
        outer = Packet(
            ip=IPHeader(
                src=self.loopback, dst=peer, dscp=outer_dscp, proto="esp"
            ),
            inner=pkt,
            encrypted=True,
            encap_overhead=overhead,
            flow=pkt.flow,
            seq=pkt.seq,
            created=pkt.created,
        )
        sa.encapsulated += 1
        cost = self.processing.crypto_time(outer.wire_bytes)
        self.after_processing(cost, bind(self._forward_outer, outer))

    def _forward_outer(self, pkt: Packet) -> None:
        entry = self.fib.lookup(pkt.ip.dst)
        if entry is None:
            self.drop(pkt, DropReason.NO_ROUTE)
            return
        self.dispatch(pkt, entry)

    def _decapsulate(self, pkt: Packet) -> None:
        sa = self.sas.get(pkt.ip.src)
        if sa is None:
            self.drop(pkt, DropReason.NO_SA)
            return
        sa.decapsulated += 1
        cost = self.processing.crypto_time(pkt.wire_bytes)
        inner = pkt.inner
        assert inner is not None
        self.after_processing(cost, bind(self._forward_inner, inner))

    def _forward_inner(self, pkt: Packet) -> None:
        if self.owns(pkt.ip.dst):
            self.deliver_local(pkt)
            return
        entry = self.fib.lookup(pkt.ip.dst)
        if entry is None:
            self.drop(pkt, DropReason.NO_ROUTE)
            return
        self.dispatch(pkt, entry)

    # ------------------------------------------------------------------
    def total_ike_messages(self) -> int:
        return sum(sa.ike_messages for sa in self.sas.values())
