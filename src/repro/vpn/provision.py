"""VPN provisioning: the ISP workflow of the paper's §4.

"An ISP can deploy a VPN by provisioning a set of LSPs to provide
connectivity among the different sites in the VPN.  Each site then
advertises to the ISP a set of prefixes that are reachable within the
local site."  :class:`VpnProvisioner` automates exactly that:

1. ``create_vpn``   — allocate RD/RT, pick the customer supernet.
2. ``add_site``     — create the CE (+ optional hosts), wire the access
   link, bind the PE interface into the VPN's VRF, and register the site
   prefix (the *membership discovery* + *reachability exchange* functions
   of §4.1/§4.2).
3. ``converge``     — run MP-BGP over the PEs; tunnels come from LDP or TE
   (run separately, once, for the whole provider — they are shared by all
   VPNs, which is the heart of the scalability claim C1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.net.address import IPv4Address, Prefix
from repro.net.node import Host
from repro.vpn.bgp import BgpResult, MpBgp
from repro.vpn.ce import CeRouter
from repro.vpn.pe import PeRouter
from repro.vpn.rd_rt import RouteDistinguisher, RouteTarget

if TYPE_CHECKING:  # pragma: no cover
    from repro.topology import Network

__all__ = ["Site", "Vpn", "VpnProvisioner"]

# Sentinel for "topology argument not given" on bgp_engine/converge_bgp:
# distinguishes a bare call (reuse the engine as built) from an explicit
# ``route_reflector=None, rr_clusters=None`` (request a full mesh).
_KEEP: object = object()


@dataclass
class Site:
    """One provisioned customer site."""

    vpn_name: str
    site_id: int
    pe: PeRouter
    ce: CeRouter
    prefix: Prefix
    pe_ifname: str       # PE's interface toward the CE
    ce_ifname: str       # CE's interface toward the PE
    hosts: list[Host] = field(default_factory=list)
    role: str = "mesh"   # "mesh" | "spoke" | "hub"
    extra: dict = field(default_factory=dict)  # hub: second-circuit names

    def host_addr(self, index: int = 0) -> IPv4Address:
        """Address of the ``index``-th host in this site."""
        return self.hosts[index].loopback or next(iter(self.hosts[index].addresses))


@dataclass
class Vpn:
    """One customer VPN: identity + policy + its sites.

    ``topology`` is ``"mesh"`` (any-to-any, import = export = ``rt``) or
    ``"hub-spoke"`` (spokes exchange routes only with the hub; spoke-to-
    spoke traffic hairpins through the hub site — the classic RFC 2547
    asymmetric-RT pattern, using ``rt_hub``/``rt_spoke``).
    """

    name: str
    rd: RouteDistinguisher
    rt: RouteTarget
    supernet: Prefix
    topology: str = "mesh"
    rt_hub: RouteTarget | None = None
    rt_spoke: RouteTarget | None = None
    sites: list[Site] = field(default_factory=list)
    # Cursor into the supernet's /24s — an index rather than a live
    # generator so a provisioned VPN can be snapshotted (pickled) and
    # keeps allocating where it left off after a restore.
    _next_site_prefix: int = field(default=0, repr=False)

    def next_site_prefix(self) -> Prefix:
        step = 1 << (32 - 24)
        base = self.supernet.network + self._next_site_prefix * step
        if base >= self.supernet.network + self.supernet.num_addresses:
            raise ValueError(f"VPN {self.name}: site-prefix pool exhausted")
        self._next_site_prefix += 1
        return Prefix(base, 24)


class VpnProvisioner:
    """Builds VPNs over an existing MPLS backbone."""

    def __init__(
        self,
        net: "Network",
        asn: int = 65000,
        access_rate_bps: float = 10e6,
        access_delay_s: float = 0.5e-3,
    ) -> None:
        self.net = net
        self.asn = asn
        self.access_rate_bps = access_rate_bps
        self.access_delay_s = access_delay_s
        self.vpns: dict[str, Vpn] = {}
        # Integer cursors (not itertools.count objects) so the provisioner
        # serializes with the network in a simulator snapshot.
        self._next_rd_number = 1
        self._next_site_id = 1
        # Persistent MP-BGP engine (created on first converge_bgp); its
        # Adj-RIB is what makes site/VPN churn incremental.  Rebuilt only
        # when the PE set or session topology changes.
        self._bgp: MpBgp | None = None
        self._bgp_sig: tuple | None = None

    def _alloc_rd_number(self) -> int:
        n = self._next_rd_number
        self._next_rd_number = n + 1
        return n

    def _alloc_site_id(self) -> int:
        n = self._next_site_id
        self._next_site_id = n + 1
        return n

    # ------------------------------------------------------------------
    def create_vpn(self, name: str, supernet: str | Prefix = "10.0.0.0/8") -> Vpn:
        """Register a VPN; note that *every* VPN may use the same supernet —
        overlapping plans are the E7 scenario and are fully supported."""
        if name in self.vpns:
            raise ValueError(f"duplicate VPN {name!r}")
        number = self._alloc_rd_number()
        vpn = Vpn(
            name=name,
            rd=RouteDistinguisher(self.asn, number),
            rt=RouteTarget(self.asn, number),
            supernet=Prefix.parse(supernet) if isinstance(supernet, str) else supernet,
        )
        self.vpns[name] = vpn
        return vpn

    def create_hub_spoke_vpn(
        self, name: str, supernet: str | Prefix = "10.0.0.0/8"
    ) -> Vpn:
        """Register a hub-and-spoke VPN (distinct hub/spoke route targets)."""
        vpn = self.create_vpn(name, supernet)
        number = self._alloc_rd_number()
        vpn.topology = "hub-spoke"
        vpn.rt_hub = RouteTarget(self.asn, number)
        vpn.rt_spoke = RouteTarget(self.asn, number + 50000)
        return vpn

    # ------------------------------------------------------------------
    def add_site(
        self,
        vpn: Vpn | str,
        pe: PeRouter,
        prefix: Prefix | str | None = None,
        num_hosts: int = 1,
        host_rate_bps: float = 100e6,
        role: str | None = None,
    ) -> Site:
        """Provision one site behind ``pe``.

        Creates the CE, the access link, the VRF binding, and ``num_hosts``
        hosts inside the site prefix.  For mesh VPNs the VRF is created on
        first use of this PE by this VPN (import = export = the VPN's RT);
        for hub-and-spoke VPNs ``role`` selects the RT policy (default
        "spoke"; use :meth:`add_hub_site` or ``role="hub"`` for the hub).
        """
        v = self.vpns[vpn] if isinstance(vpn, str) else vpn
        if v.topology == "hub-spoke":
            role = role or "spoke"
            if role == "hub":
                return self.add_hub_site(v, pe, prefix, num_hosts, host_rate_bps)
            if role != "spoke":
                raise ValueError(f"hub-spoke VPN sites are 'hub' or 'spoke', not {role!r}")
        else:
            if role not in (None, "mesh"):
                raise ValueError(f"mesh VPN sites cannot have role {role!r}")
            role = "mesh"

        site_id = self._alloc_site_id()
        site_prefix = self._pick_prefix(v, prefix)
        ce, dl = self._wire_ce(v, pe, site_id)
        ce_ifname, pe_ifname = dl.if_ab.name, dl.if_ba.name

        ce.add_site_prefix(site_prefix)
        if role == "spoke":
            vrf_name = f"{v.name}-spoke"
            if vrf_name not in pe.vrfs:
                pe.add_vrf(vrf_name, v.rd, {v.rt_hub}, {v.rt_spoke})
        else:
            vrf_name = v.name
            if vrf_name not in pe.vrfs:
                pe.add_vrf(vrf_name, v.rd, {v.rt}, {v.rt})
        pe.bind_circuit(pe_ifname, vrf_name)
        ce_addr_on_link = dl.addr_a  # CE is the `a` end of connect(ce, pe)
        pe.vrfs[vrf_name].add_local(
            site_prefix, pe_ifname, next_hop=ce_addr_on_link, origin_site=site_id
        )

        site = Site(v.name, site_id, pe, ce, site_prefix, pe_ifname, ce_ifname,
                    role=role)
        for h in range(num_hosts):
            site.hosts.append(self._add_host(site, h, host_rate_bps))
        v.sites.append(site)
        self.net.counters.incr("vpn.sites")
        return site

    def add_hub_site(
        self,
        vpn: Vpn | str,
        pe: PeRouter,
        prefix: Prefix | str | None = None,
        num_hosts: int = 1,
        host_rate_bps: float = 100e6,
    ) -> Site:
        """Provision the hub site of a hub-and-spoke VPN.

        The hub attaches with *two* circuits, the standard dual-VRF
        construction: the **down** VRF receives spoke traffic (it exports
        the VPN supernet + hub prefix with ``rt_hub`` and imports nothing),
        the **up** VRF carries traffic the hub CE sends back toward the
        spokes (it imports ``rt_spoke`` and exports nothing).  Spoke-to-
        spoke packets therefore hairpin through the hub CE — giving the
        customer a central enforcement point, the reason this topology
        exists.
        """
        v = self.vpns[vpn] if isinstance(vpn, str) else vpn
        if v.topology != "hub-spoke":
            raise ValueError(f"{v.name} is not a hub-spoke VPN")
        site_id = self._alloc_site_id()
        site_prefix = self._pick_prefix(v, prefix)

        ce = CeRouter(self.net.sim, self._node_name(f"ce-{v.name}-hub{site_id}"),
                      site_id=site_id)
        self.net.add_node(ce, loopback=False)
        dl_dn = self.net.connect(ce, pe, self.access_rate_bps, self.access_delay_s)
        dl_up = self.net.connect(ce, pe, self.access_rate_bps, self.access_delay_s)
        ce_dn, pe_dn = dl_dn.if_ab.name, dl_dn.if_ba.name
        ce_up, pe_up = dl_up.if_ab.name, dl_up.if_ba.name

        # CE: default route (spoke-bound traffic) via the UP circuit.
        pe_up_addr = dl_up.addr_b  # PE is the `b` end of connect(ce, pe)
        ce.set_default_route(ce_up, pe_up_addr)
        ce.add_site_prefix(site_prefix)

        dn_name, up_name = f"{v.name}-hub-dn", f"{v.name}-hub-up"
        if dn_name not in pe.vrfs:
            pe.add_vrf(dn_name, v.rd, set(), {v.rt_hub})
            pe.add_vrf(up_name, v.rd, {v.rt_spoke}, set())
        pe.bind_circuit(pe_dn, dn_name)
        pe.bind_circuit(pe_up, up_name)
        ce_dn_addr = dl_dn.addr_a
        # Down VRF owns the hub prefix AND the whole supernet: spokes learn
        # "everything lives at the hub".
        pe.vrfs[dn_name].add_local(site_prefix, pe_dn, next_hop=ce_dn_addr,
                                   origin_site=site_id)
        pe.vrfs[dn_name].add_local(v.supernet, pe_dn, next_hop=ce_dn_addr,
                                   origin_site=site_id)

        site = Site(v.name, site_id, pe, ce, site_prefix, pe_dn, ce_dn,
                    role="hub", extra={"pe_up_ifname": pe_up, "ce_up_ifname": ce_up})
        for h in range(num_hosts):
            site.hosts.append(self._add_host(site, h, host_rate_bps))
        v.sites.append(site)
        self.net.counters.incr("vpn.sites")
        return site

    # ------------------------------------------------------------------
    def _pick_prefix(self, v: Vpn, prefix: Prefix | str | None) -> Prefix:
        if prefix is None:
            return v.next_site_prefix()
        return Prefix.parse(prefix) if isinstance(prefix, str) else prefix

    def _node_name(self, base: str) -> str:
        """Prefer the short name; disambiguate by ASN when two providers
        provision same-named VPNs into one Network (inter-AS scenarios)."""
        if base not in self.net.nodes:
            return base
        return f"{base}-as{self.asn}"

    def _wire_ce(self, v: Vpn, pe: PeRouter, site_id: int):
        """Create the CE, its access link, and its default route."""
        ce = CeRouter(self.net.sim, self._node_name(f"ce-{v.name}-s{site_id}"),
                      site_id=site_id)
        self.net.add_node(ce, loopback=False)
        dl = self.net.connect(ce, pe, self.access_rate_bps, self.access_delay_s)
        # The link carries its endpoint addresses (addr_a = CE side,
        # addr_b = PE side) — no scan over pe.addresses, which is O(sites)
        # on a PE hosting many circuits.
        ce.set_default_route(dl.if_ab.name, dl.addr_b)
        return ce, dl

    def _add_host(self, site: Site, index: int, rate_bps: float) -> Host:
        host = Host(self.net.sim,
                    self._node_name(f"h-{site.vpn_name}-s{site.site_id}-{index}"))
        self.net.add_node(host, loopback=False)
        dl = self.net.connect(host, site.ce, rate_bps, 0.1e-3)
        host_ifname, ce_ifname = dl.if_ab.name, dl.if_ba.name
        host.gateway_ifname = host_ifname
        # Host address inside the site prefix (offset past the link /30s).
        addr = site.prefix.host(10 + index)
        host.add_address(addr, host_ifname)
        host.set_loopback(addr)
        site.ce.add_host_route(addr, ce_ifname)
        return host

    # ------------------------------------------------------------------
    def pes(self) -> list[PeRouter]:
        """All PEs hosting at least one site, in name order."""
        seen: dict[str, PeRouter] = {}
        for vpn in self.vpns.values():
            for site in vpn.sites:
                seen[site.pe.name] = site.pe
        return [seen[k] for k in sorted(seen)]

    def bgp_engine(
        self,
        route_reflector: str | None = _KEEP,
        rr_clusters=_KEEP,
    ) -> MpBgp:
        """The persistent MP-BGP engine for the current PE set.

        Reused across calls while the PE set is unchanged, so
        ``converge_bgp`` after churn is an incremental resync against
        the engine's Adj-RIB.  Leaving both topology arguments at their
        defaults means "the engine as built" — a bare ``bgp_engine()``
        never demotes an RR layout back to a full mesh (which would
        silently discard the Adj-RIB and orphan installed imports).
        A new PE, or an *explicitly* different reflector layout,
        rebuilds the engine (next converge is full).
        """
        pes = self.pes()
        pe_names = tuple(pe.name for pe in pes)
        if route_reflector is _KEEP and rr_clusters is _KEEP:
            if (
                self._bgp is not None
                and self._bgp_sig is not None
                and self._bgp_sig[0] == pe_names
            ):
                return self._bgp
            # No engine yet (or the PE set changed): default to full mesh.
            route_reflector, rr_clusters = None, None
        else:
            route_reflector = None if route_reflector is _KEEP else route_reflector
            rr_clusters = None if rr_clusters is _KEEP else rr_clusters
        sig = (
            pe_names,
            route_reflector,
            tuple(
                (c,) if isinstance(c, str) else tuple(c)
                for c in (rr_clusters or ())
            ),
        )
        if self._bgp is None or self._bgp_sig != sig:
            self._bgp = MpBgp(
                self.net, pes,
                route_reflector=route_reflector, rr_clusters=rr_clusters,
            )
            self._bgp_sig = sig
        return self._bgp

    def converge_bgp(
        self,
        route_reflector: str | None = _KEEP,
        rr_clusters=_KEEP,
    ) -> BgpResult:
        """Run MP-BGP over every involved PE (tunnels must already exist)."""
        return self.bgp_engine(
            route_reflector=route_reflector, rr_clusters=rr_clusters
        ).converge()

    # ------------------------------------------------------------------
    # Churn: de-provisioning and maintenance
    # ------------------------------------------------------------------
    def _site_vrf_names(self, v: Vpn, site: Site) -> list[str]:
        if site.role == "hub":
            return [f"{v.name}-hub-dn", f"{v.name}-hub-up"]
        if site.role == "spoke":
            return [f"{v.name}-spoke"]
        return [v.name]

    def remove_site(self, site: Site) -> Site:
        """De-provision one site: unbind its circuit(s) — which withdraws
        every local route learned over them — then push the withdrawal
        through MP-BGP as a delta.  The CE and hosts stay in the graph as
        decommissioned nodes (no VRF binding ⇒ unreachable from the VPN).
        """
        v = self.vpns[site.vpn_name]
        if site not in v.sites:
            raise ValueError(f"site {site.site_id} is not provisioned")
        pe = site.pe
        circuits = [site.pe_ifname]
        if site.role == "hub":
            circuits.append(site.extra["pe_up_ifname"])
        for ifname in circuits:
            pe.unbind_circuit(ifname)
        v.sites.remove(site)
        self.net.counters.incr("vpn.sites", -1)
        if self._bgp is not None:
            for vrf_name in self._site_vrf_names(v, site):
                vrf = pe.vrfs.get(vrf_name)
                if vrf is not None:
                    self._bgp.export_delta(pe, vrf)
        return site

    def remove_vpn(self, name: str) -> Vpn:
        """Tear down a whole VPN: every site, then every VRF it created."""
        v = self.vpns[name]
        holders = {site.pe.name: site.pe for site in v.sites}
        for site in list(reversed(v.sites)):
            self.remove_site(site)
        vrf_names = [name, f"{name}-spoke", f"{name}-hub-dn", f"{name}-hub-up"]
        for pe in holders.values():
            for vrf_name in vrf_names:
                if vrf_name not in pe.vrfs:
                    continue
                if self._bgp is not None:
                    self._bgp.withdraw(pe, vrf=vrf_name)
                    self._bgp.forget_vrf(pe, vrf_name)
                pe.remove_vrf(vrf_name)
        del self.vpns[name]
        return v

    def drain_pe(self, pe: PeRouter | str) -> BgpResult:
        """Maintenance drain: take the PE's iBGP sessions down (implicit
        withdraw of its routes everywhere, flush of its own imports)."""
        if self._bgp is None:
            raise ValueError("no BGP engine yet; run converge_bgp() first")
        return self._bgp.peer_down(pe)

    def restore_pe(self, pe: PeRouter | str) -> BgpResult:
        """Bring a drained PE back into the mesh and refresh its VRFs."""
        if self._bgp is None:
            raise ValueError("no BGP engine yet; run converge_bgp() first")
        return self._bgp.peer_up(pe)

    # ------------------------------------------------------------------
    def state_census(self) -> dict[str, int]:
        """Aggregate per-device VPN state for the E1 comparison."""
        pes = self.pes()
        vrf_entries = sum(pe.vrf_state_entries() for pe in pes)
        vrf_count = sum(len(pe.vrfs) for pe in pes)
        sites = sum(len(v.sites) for v in self.vpns.values())
        return {
            "sites": sites,
            "pes": len(pes),
            "vrfs": vrf_count,
            "vrf_routes_total": vrf_entries,
            "bgp_sessions": self.net.counters["bgp.sessions"],
            "bgp_updates": self.net.counters["bgp.updates"],
        }
