"""Route distinguishers and route targets (RFC 2547 §4.1/§4.3).

A *route distinguisher* (RD) makes customer routes globally unique even
when customers use overlapping address space: the VPN-IPv4 address family
is simply ``RD : IPv4-prefix``.  A *route target* (RT) is the extended
community controlling which VRFs import a route — RDs disambiguate, RTs
authorize.  The distinction matters: two VPNs can share an RT (extranet)
while keeping distinct RDs, which the E7 leak tests exercise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.address import Prefix

__all__ = ["RouteDistinguisher", "RouteTarget", "VpnPrefix"]


@dataclass(frozen=True, slots=True, order=True)
class RouteDistinguisher:
    """Type-0 RD: ``asn:assigned_number``."""

    asn: int
    number: int

    def __post_init__(self) -> None:
        if not 0 <= self.asn <= 0xFFFF:
            raise ValueError(f"ASN out of 16-bit range: {self.asn}")
        if not 0 <= self.number <= 0xFFFFFFFF:
            raise ValueError(f"RD number out of 32-bit range: {self.number}")

    def __str__(self) -> str:
        return f"{self.asn}:{self.number}"

    @classmethod
    def parse(cls, text: str) -> "RouteDistinguisher":
        asn, _, num = text.partition(":")
        return cls(int(asn), int(num))


@dataclass(frozen=True, slots=True, order=True)
class RouteTarget:
    """Route-target extended community, also written ``asn:number``."""

    asn: int
    number: int

    def __post_init__(self) -> None:
        if not 0 <= self.asn <= 0xFFFF:
            raise ValueError(f"ASN out of 16-bit range: {self.asn}")
        if not 0 <= self.number <= 0xFFFFFFFF:
            raise ValueError(f"RT number out of 32-bit range: {self.number}")

    def __str__(self) -> str:
        return f"target:{self.asn}:{self.number}"

    @classmethod
    def parse(cls, text: str) -> "RouteTarget":
        body = text.removeprefix("target:")
        asn, _, num = body.partition(":")
        return cls(int(asn), int(num))


@dataclass(frozen=True, slots=True, order=True)
class VpnPrefix:
    """A VPN-IPv4 route key: RD + customer prefix.

    Distinct VPNs announcing the *same* 10.0.0.0/8 produce distinct
    VpnPrefix values — the mechanism that lets one BGP system carry every
    customer's overlapping plan (claim C5).
    """

    rd: RouteDistinguisher
    prefix: Prefix

    def __str__(self) -> str:
        return f"{self.rd}:{self.prefix}"
