"""Provider Edge router.

The PE is where RFC 2547 happens: customer-facing interfaces are bound to
VRFs, customer packets are looked up in *their* VRF only, and remote
destinations get the two-level label stack — inner VPN label (selects the
VRF at the egress PE), outer tunnel label (the LDP/TE LSP to the egress
PE's loopback).  The core never sees customer addresses, which is both the
scalability argument (claim C1: P routers keep no per-VPN state) and the
isolation argument (claim C5).

QoS at the edge (claim C6): when ``qos_exp_mapping`` is on, the PE copies
the customer's DSCP into the EXP bits of both imposed labels, so the core
can schedule on EXP without ever parsing the customer header.

Data-plane mechanics (VRF demux, customer lookup, two-level imposition,
egress delivery) live in the shared
:class:`~repro.dataplane.ForwardingPipeline`; this class enables its
vrf-demux stage and keeps the control plane (VRF provisioning, circuit
binding).
"""

from __future__ import annotations

from typing import Optional

from repro.mpls.lfib import LabelOp, LfibEntry
from repro.mpls.lsr import Lsr
from repro.net.packet import Packet
from repro.vpn.rd_rt import RouteDistinguisher, RouteTarget
from repro.vpn.vrf import Vrf

__all__ = ["PeRouter"]


class PeRouter(Lsr):
    """LSR + VRFs + attachment circuits."""

    def __init__(self, sim, name, qos_exp_mapping: bool = True, **kw) -> None:
        super().__init__(sim, name, **kw)
        self.vrfs: dict[str, Vrf] = {}
        self._vrf_of_circuit: dict[str, Vrf] = {}
        self.qos_exp_mapping = qos_exp_mapping
        # Which stack entries carry the class: "both" (RFC 3270's safe
        # choice) or "outer-only" (loses the class at penultimate-hop pop —
        # the E9c ablation shows the resulting last-hop QoS hole).
        self.exp_mode = "both"
        self.vpn_deliver = self._vpn_deliver
        # Turn on the pipeline's vrf-demux stage: customer packets arriving
        # on attachment circuits are looked up in their VRF only.
        self.pipeline.enable_vrf_demux(self._vrf_of_circuit, self.vrfs)

    # ------------------------------------------------------------------
    # Control plane / provisioning
    # ------------------------------------------------------------------
    def add_vrf(
        self,
        name: str,
        rd: RouteDistinguisher,
        import_rts: frozenset[RouteTarget] | set[RouteTarget],
        export_rts: frozenset[RouteTarget] | set[RouteTarget],
    ) -> Vrf:
        """Create a VRF and allocate its aggregate VPN label.

        The label is installed in this PE's LFIB with the VPN op, so
        tunnel-decapsulated packets carrying it land in the right table.
        """
        if name in self.vrfs:
            raise ValueError(f"{self.name}: duplicate VRF {name!r}")
        label = self.labels.allocate()
        vrf = Vrf(name, rd, frozenset(import_rts), frozenset(export_rts), label)
        self.vrfs[name] = vrf
        self.lfib.install(label, LfibEntry(LabelOp.VPN, vrf=name, lsp_id=f"vrf:{name}"))
        return vrf

    def bind_circuit(self, ifname: str, vrf_name: str) -> None:
        """Attach a customer-facing interface to a VRF.

        The interface's connected subnet is *moved* out of the global
        routing context into the VRF so it never enters the provider IGP.
        """
        if ifname not in self.interfaces:
            raise ValueError(f"{self.name}: no interface {ifname!r}")
        vrf = self.vrfs[vrf_name]
        self._vrf_of_circuit[ifname] = vrf
        vrf.circuits.append(ifname)
        for subnet, owner_if in list(self.connected_prefixes.items()):
            if owner_if == ifname:
                del self.connected_prefixes[subnet]
                vrf.add_local(subnet, ifname)

    def unbind_circuit(self, ifname: str) -> list:
        """Detach a customer-facing interface from its VRF.

        Every local route learned over this circuit (the site prefixes
        *and* the access /30 that :meth:`bind_circuit` moved in) is
        withdrawn in one batch; the freed prefixes are returned so the
        provisioner can drive the MP-BGP withdraw.  The interface itself
        stays on the node — decommissioned, not unwired.
        """
        vrf = self._vrf_of_circuit.pop(ifname, None)
        if vrf is None:
            raise ValueError(f"{self.name}: {ifname!r} is not bound to a VRF")
        vrf.circuits.remove(ifname)
        gone = [
            p for p, r in vrf.routes().items()
            if r.kind == "local" and r.out_ifname == ifname
        ]
        vrf.remove_many(gone)
        return gone

    def remove_vrf(self, name: str) -> Vrf:
        """Delete a VRF: free its aggregate label and LFIB entry.

        All circuits must be unbound first — a VRF with live attachment
        circuits still owns customer traffic.
        """
        vrf = self.vrfs.get(name)
        if vrf is None:
            raise ValueError(f"{self.name}: no VRF {name!r}")
        if vrf.circuits:
            raise ValueError(f"{self.name}: VRF {name!r} still has circuits")
        del self.vrfs[name]
        self.lfib.remove(vrf.vpn_label)
        self.labels.release(vrf.vpn_label)
        return vrf

    def vrf_of_circuit(self, ifname: str) -> Optional[Vrf]:
        return self._vrf_of_circuit.get(ifname)

    # ------------------------------------------------------------------
    # Data plane (delegated to the pipeline)
    # ------------------------------------------------------------------
    def _vpn_deliver(self, pkt: Packet, vrf_name: str) -> None:
        """Egress side: tunnel label already removed, VPN label popped."""
        self.pipeline.vpn_egress(pkt, vrf_name)

    # ------------------------------------------------------------------
    def vrf_state_entries(self) -> int:
        """Total per-VPN state on this PE (for the E1 state census)."""
        return sum(len(v) for v in self.vrfs.values())
