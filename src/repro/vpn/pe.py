"""Provider Edge router.

The PE is where RFC 2547 happens: customer-facing interfaces are bound to
VRFs, customer packets are looked up in *their* VRF only, and remote
destinations get the two-level label stack — inner VPN label (selects the
VRF at the egress PE), outer tunnel label (the LDP/TE LSP to the egress
PE's loopback).  The core never sees customer addresses, which is both the
scalability argument (claim C1: P routers keep no per-VPN state) and the
isolation argument (claim C5).

QoS at the edge (claim C6): when ``qos_exp_mapping`` is on, the PE copies
the customer's DSCP into the EXP bits of both imposed labels, so the core
can schedule on EXP without ever parsing the customer header.
"""

from __future__ import annotations

from typing import Optional

from repro.mpls.label import IMPLICIT_NULL
from repro.mpls.lfib import LabelOp, LfibEntry
from repro.mpls.lsr import Lsr
from repro.net.address import Prefix
from repro.net.drops import DropReason
from repro.net.packet import Packet
from repro.qos.dscp import dscp_to_exp
from repro.sim.engine import bind
from repro.vpn.rd_rt import RouteDistinguisher, RouteTarget
from repro.vpn.vrf import Vrf, VrfRoute

__all__ = ["PeRouter"]


class PeRouter(Lsr):
    """LSR + VRFs + attachment circuits."""

    def __init__(self, sim, name, qos_exp_mapping: bool = True, **kw) -> None:
        super().__init__(sim, name, **kw)
        self.vrfs: dict[str, Vrf] = {}
        self._vrf_of_circuit: dict[str, Vrf] = {}
        self.qos_exp_mapping = qos_exp_mapping
        # Which stack entries carry the class: "both" (RFC 3270's safe
        # choice) or "outer-only" (loses the class at penultimate-hop pop —
        # the E9c ablation shows the resulting last-hop QoS hole).
        self.exp_mode = "both"
        self.vpn_deliver = self._vpn_deliver

    # ------------------------------------------------------------------
    # Control plane / provisioning
    # ------------------------------------------------------------------
    def add_vrf(
        self,
        name: str,
        rd: RouteDistinguisher,
        import_rts: frozenset[RouteTarget] | set[RouteTarget],
        export_rts: frozenset[RouteTarget] | set[RouteTarget],
    ) -> Vrf:
        """Create a VRF and allocate its aggregate VPN label.

        The label is installed in this PE's LFIB with the VPN op, so
        tunnel-decapsulated packets carrying it land in the right table.
        """
        if name in self.vrfs:
            raise ValueError(f"{self.name}: duplicate VRF {name!r}")
        label = self.labels.allocate()
        vrf = Vrf(name, rd, frozenset(import_rts), frozenset(export_rts), label)
        self.vrfs[name] = vrf
        self.lfib.install(label, LfibEntry(LabelOp.VPN, vrf=name, lsp_id=f"vrf:{name}"))
        return vrf

    def bind_circuit(self, ifname: str, vrf_name: str) -> None:
        """Attach a customer-facing interface to a VRF.

        The interface's connected subnet is *moved* out of the global
        routing context into the VRF so it never enters the provider IGP.
        """
        if ifname not in self.interfaces:
            raise ValueError(f"{self.name}: no interface {ifname!r}")
        vrf = self.vrfs[vrf_name]
        self._vrf_of_circuit[ifname] = vrf
        vrf.circuits.append(ifname)
        for subnet, owner_if in list(self.connected_prefixes.items()):
            if owner_if == ifname:
                del self.connected_prefixes[subnet]
                vrf.add_local(subnet, ifname)

    def vrf_of_circuit(self, ifname: str) -> Optional[Vrf]:
        return self._vrf_of_circuit.get(ifname)

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def handle(self, pkt: Packet, ifname: str) -> None:
        vrf = self._vrf_of_circuit.get(ifname)
        if vrf is not None and not pkt.mpls_stack:
            # Customer packet entering its VPN at this PE.
            self.after_processing(
                self.processing.ip_lookup_s, bind(self._handle_customer, pkt, vrf)
            )
            return
        super().handle(pkt, ifname)

    def _handle_customer(self, pkt: Packet, vrf: Vrf) -> None:
        fa = self.trace.flows
        if fa is not None:
            fa.ingress(self.name, vrf.name, pkt)
        if pkt.decrement_ttl() <= 0:
            self.drop(pkt, DropReason.TTL)
            return
        route = vrf.lookup(pkt.ip.dst)
        if route is None:
            self.drop(pkt, DropReason.NO_VRF_ROUTE)
            return
        if route.kind == "local":
            # Site-to-site through one PE (both sites on this PE).
            self.transmit(pkt, route.out_ifname)  # type: ignore[arg-type]
            return
        self._forward_remote(pkt, route)

    def _forward_remote(self, pkt: Packet, route: VrfRoute) -> None:
        assert route.remote_pe is not None and route.vpn_label is not None
        exp = dscp_to_exp(pkt.ip.dscp) if self.qos_exp_mapping else 0
        inner_exp = exp if self.exp_mode == "both" else 0
        fl = self.trace.flight
        if fl is not None:
            fl.label_op(self.sim.now, self.name, pkt, "push", new=route.vpn_label)
        pkt.push_label(route.vpn_label, exp=inner_exp)
        # Resolve the tunnel to the egress PE's loopback through the FTN
        # (an LDP binding or a TE tunnel autoroute).
        tunnel = self.ftn.lookup(Prefix.of(route.remote_pe, 32))
        if tunnel is None:
            pkt.pop_label()
            self.drop(pkt, DropReason.NO_TUNNEL)
            return
        for label in tunnel.labels:
            if label != IMPLICIT_NULL:
                if fl is not None:
                    fl.label_op(self.sim.now, self.name, pkt, "push", new=label)
                pkt.push_label(label, exp=exp)
        self.transmit(pkt, tunnel.out_ifname)

    def _vpn_deliver(self, pkt: Packet, vrf_name: str) -> None:
        """Egress side: tunnel label already removed, VPN label popped."""
        vrf = self.vrfs.get(vrf_name)
        if vrf is None:
            self.drop(pkt, DropReason.UNKNOWN_VRF)
            return
        fa = self.trace.flows
        if fa is not None:
            fa.egress(self.name, vrf.name, pkt)
        route = vrf.lookup(pkt.ip.dst)
        if route is None or route.kind != "local":
            # Hairpinning remote->remote through an egress PE would be a
            # provisioning loop; refuse rather than bounce across the core.
            self.drop(pkt, DropReason.NO_VRF_ROUTE)
            return
        self.transmit(pkt, route.out_ifname)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    def vrf_state_entries(self) -> int:
        """Total per-VPN state on this PE (for the E1 state census)."""
        return sum(len(v) for v in self.vrfs.values())
