"""Inter-provider (inter-AS) VPNs — option A: back-to-back VRFs.

The paper's §5 closes with exactly this: "This cross-network SLA
capability allows the building of VPNs using multiple carriers as
necessary, an option not available with most frame relay offerings."

Option A (RFC 2547 §10a, the interconnect every provider pair can deploy
first) treats the neighbour's ASBR as a CE: the two ASBRs are joined by
one attachment circuit *per VPN*, each side binds its end into the VPN's
VRF, and per-VRF eBGP exchanges the customer routes across.  Each provider
then redistributes the foreign routes over its own iBGP.  QoS survives the
border because the inter-AS circuit carries cleartext customer IP whose
DSCP both sides' edges map into their own MPLS EXP — the end-to-end SLA
crosses the provider boundary, which experiment E10 measures.

Topology-wise both providers live in one :class:`Network`, separated by
routing domains ("core-a", "core-b"): the domain tag already keeps their
IGPs, LDP meshes, and iBGP systems fully independent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.net.address import IPv4Address
from repro.vpn.pe import PeRouter

if TYPE_CHECKING:  # pragma: no cover
    from repro.topology import Network

__all__ = ["InterAsCircuit", "connect_option_a", "exchange_option_a"]


@dataclass
class InterAsCircuit:
    """One per-VPN attachment circuit between two ASBRs."""

    vpn_name: str
    asbr_a: PeRouter
    asbr_b: PeRouter
    a_ifname: str
    b_ifname: str
    a_addr: IPv4Address
    b_addr: IPv4Address
    ebgp_updates: int = 0


def connect_option_a(
    net: "Network",
    asbr_a: PeRouter,
    asbr_b: PeRouter,
    vpn_name: str,
    rate_bps: float = 45e6,
    delay_s: float = 1e-3,
) -> InterAsCircuit:
    """Create the per-VPN circuit and bind each end into the VPN's VRF.

    Both ASBRs must already hold a VRF named ``vpn_name`` (create it with
    the provider's own RD/RT policy before calling).  The circuit's link
    subnet moves into the VRFs like any attachment circuit, so it never
    leaks into either IGP.
    """
    for asbr in (asbr_a, asbr_b):
        if vpn_name not in asbr.vrfs:
            raise ValueError(f"{asbr.name} has no VRF {vpn_name!r}")
    dl = net.connect(asbr_a, asbr_b, rate_bps, delay_s)
    a_if, b_if = dl.if_ab.name, dl.if_ba.name
    a_addr = next(a for a, ifn in asbr_a.addresses.items() if ifn == a_if)
    b_addr = next(a for a, ifn in asbr_b.addresses.items() if ifn == b_if)
    asbr_a.bind_circuit(a_if, vpn_name)
    asbr_b.bind_circuit(b_if, vpn_name)
    return InterAsCircuit(vpn_name, asbr_a, asbr_b, a_if, b_if, a_addr, b_addr)


def exchange_option_a(net: "Network", circuit: InterAsCircuit) -> int:
    """Run the per-VRF eBGP exchange over ``circuit``.

    Each side advertises every route in its VRF (local *and* iBGP-learned
    — an ASBR re-advertises its whole VPN table); the receiver installs
    them as *local* routes pointing out the inter-AS circuit, exactly the
    CE-route treatment option A prescribes.  Returns the number of routes
    exchanged; counters record the eBGP update messages.

    Call order for a two-provider deployment:

    1. per-domain ``converge`` + ``run_ldp``;
    2. per-domain iBGP (so each ASBR's VRF holds its own side's routes);
    3. ``exchange_option_a`` (this function);
    4. per-domain iBGP again (so the PEs learn the foreign routes the
       ASBR now originates).
    """
    vrf_a = circuit.asbr_a.vrfs[circuit.vpn_name]
    vrf_b = circuit.asbr_b.vrfs[circuit.vpn_name]
    # Snapshot both tables first: the exchange must not echo routes back.
    a_routes = dict(vrf_a.routes())
    b_routes = dict(vrf_b.routes())
    exchanged = 0
    for prefix, route in sorted(a_routes.items()):
        if prefix in b_routes:
            continue  # the circuit subnet itself, or already known
        vrf_b.add_local(prefix, circuit.b_ifname, next_hop=circuit.a_addr,
                        origin_site=route.origin_site)
        exchanged += 1
    for prefix, route in sorted(b_routes.items()):
        if prefix in a_routes:
            continue
        vrf_a.add_local(prefix, circuit.a_ifname, next_hop=circuit.b_addr,
                        origin_site=route.origin_site)
        exchanged += 1
    circuit.ebgp_updates += exchanged
    net.counters.incr("interas.ebgp_updates", exchanged)
    return exchanged
