"""VPN Routing and Forwarding tables (VRFs).

A PE router keeps one :class:`Vrf` per directly-attached VPN (RFC 2547
§3): an isolated forwarding table whose routes come from (a) the locally
attached sites and (b) MP-BGP imports matching the VRF's import route
targets.  Isolation is structural — a VRF lookup can only ever return
routes that were installed into *this* VRF, so overlapping customer
addresses never meet in one table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.address import IPv4Address, Prefix
from repro.routing.fib import Fib, RouteEntry
from repro.vpn.rd_rt import RouteDistinguisher, RouteTarget

__all__ = ["VrfRoute", "Vrf"]


@dataclass(frozen=True, slots=True)
class VrfRoute:
    """One VRF forwarding decision.

    ``kind`` is ``"local"`` (reachable via an attachment circuit on this
    PE) or ``"remote"`` (reachable via an MPLS tunnel to another PE, using
    ``vpn_label`` as the inner label).
    """

    kind: str
    out_ifname: str | None = None            # local: PE->CE interface
    next_hop: IPv4Address | None = None      # local: CE address (informational)
    remote_pe: IPv4Address | None = None     # remote: egress PE loopback
    vpn_label: int | None = None             # remote: inner label
    origin_site: int | None = None
    metric: float = 0.0

    def __post_init__(self) -> None:
        if self.kind == "local" and self.out_ifname is None:
            raise ValueError("local VRF route needs out_ifname")
        if self.kind == "remote" and (self.remote_pe is None or self.vpn_label is None):
            raise ValueError("remote VRF route needs remote_pe and vpn_label")
        if self.kind not in ("local", "remote"):
            raise ValueError(f"unknown VRF route kind {self.kind!r}")


class Vrf:
    """Per-VPN forwarding table on one PE.

    Parameters
    ----------
    name:
        VRF name, unique on the PE (conventionally the VPN name).
    rd:
        Route distinguisher for routes exported from this VRF.
    import_rts / export_rts:
        Route-target policy; see :mod:`repro.vpn.rd_rt`.
    vpn_label:
        The per-VRF aggregate label this PE advertises for all of the
        VRF's routes; packets arriving with it are looked up in this VRF.
    """

    def __init__(
        self,
        name: str,
        rd: RouteDistinguisher,
        import_rts: frozenset[RouteTarget],
        export_rts: frozenset[RouteTarget],
        vpn_label: int,
    ) -> None:
        self.name = name
        self.rd = rd
        self.import_rts = frozenset(import_rts)
        self.export_rts = frozenset(export_rts)
        self.vpn_label = vpn_label
        self._fib = Fib()
        self._routes: dict[Prefix, VrfRoute] = {}
        # Interfaces (attachment circuits) bound to this VRF on the PE.
        self.circuits: list[str] = []

    # ------------------------------------------------------------------
    def add_local(
        self,
        prefix: Prefix | str,
        out_ifname: str,
        next_hop: IPv4Address | None = None,
        origin_site: int | None = None,
    ) -> VrfRoute:
        """Install a route learned from an attached site."""
        pfx = Prefix.parse(prefix) if isinstance(prefix, str) else prefix
        route = VrfRoute(
            "local", out_ifname=out_ifname, next_hop=next_hop, origin_site=origin_site
        )
        self._install(pfx, route)
        return route

    def add_remote(
        self,
        prefix: Prefix | str,
        remote_pe: IPv4Address,
        vpn_label: int,
        origin_site: int | None = None,
        metric: float = 0.0,
    ) -> VrfRoute:
        """Install a route imported from MP-BGP."""
        pfx = Prefix.parse(prefix) if isinstance(prefix, str) else prefix
        route = VrfRoute(
            "remote",
            remote_pe=remote_pe,
            vpn_label=vpn_label,
            origin_site=origin_site,
            metric=metric,
        )
        self._install(pfx, route)
        return route

    def add_remote_many(
        self,
        items: list[tuple[Prefix, IPv4Address, int, int | None]],
    ) -> int:
        """Install a batch of MP-BGP imports with one FIB generation bump.

        ``items`` is ``[(prefix, remote_pe, vpn_label, origin_site), ...]``.
        The churn engine installs whole deltas through here so the PE's
        per-VRF flow caches are invalidated once per batch, not once per
        route (PR 3's ``install_many`` pattern).  Returns the batch size.
        """
        if not items:
            return 0
        batch: list[tuple[Prefix, RouteEntry]] = []
        routes = self._routes
        for prefix, remote_pe, vpn_label, origin_site in items:
            routes[prefix] = VrfRoute(
                "remote",
                remote_pe=remote_pe,
                vpn_label=vpn_label,
                origin_site=origin_site,
            )
            batch.append((prefix, RouteEntry("", source="remote")))
        return self._fib.install_many(batch)

    def remove_many(self, prefixes: list[Prefix]) -> int:
        """Withdraw a batch of routes with one FIB generation bump.

        Absent prefixes are skipped; returns the number actually removed.
        A batch that removes nothing leaves the generation untouched.
        """
        doomed = [p for p in prefixes if p in self._routes]
        for prefix in doomed:
            del self._routes[prefix]
        return self._fib.withdraw_many(doomed)

    def _install(self, prefix: Prefix, route: VrfRoute) -> None:
        self._routes[prefix] = route
        # The trie stores a RouteEntry shell; the VrfRoute carries the real
        # decision and is recovered via the prefix.
        self._fib.install(prefix, RouteEntry(route.out_ifname or "", source=route.kind))

    def withdraw(self, prefix: Prefix | str) -> bool:
        pfx = Prefix.parse(prefix) if isinstance(prefix, str) else prefix
        if pfx not in self._routes:
            return False
        del self._routes[pfx]
        self._fib.withdraw(pfx)
        return True

    def kind_of(self, prefix: Prefix) -> str | None:
        """``"local"``/``"remote"`` if ``prefix`` is installed, else None."""
        route = self._routes.get(prefix)
        return None if route is None else route.kind

    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """Mutation counter for the PE's per-VRF flow caches.

        Every route change goes through ``_install``/``withdraw`` and thus
        through the inner FIB, whose generation counts both.
        """
        return self._fib.generation

    # ------------------------------------------------------------------
    def lookup(self, addr: IPv4Address) -> Optional[VrfRoute]:
        """Longest-prefix match inside this VRF only."""
        match = self._fib.lookup_prefix(addr)
        if match is None:
            return None
        prefix, _shell = match
        return self._routes.get(prefix)

    def routes(self) -> dict[Prefix, VrfRoute]:
        return dict(self._routes)

    def local_routes(self) -> dict[Prefix, VrfRoute]:
        return {p: r for p, r in self._routes.items() if r.kind == "local"}

    def __len__(self) -> int:
        return len(self._routes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Vrf {self.name} rd={self.rd} routes={len(self)}>"
