"""Per-VPN QoS service tiers.

§2.2 of the paper, verbatim: "A more manageable strategy would be simply
assign a QoS level to an entire VPN, and this is how frame relay or ATM
networks would work."  A :class:`QosProfile` is that assignment — the
provider sells the *VPN* a class (gold / silver / bronze), and applying a
profile configures the managed CPE of every site:

* a DSCP marker stamping the tier's codepoint on **all** of the site's
  upstream traffic (the customer does not mark anything — the tier does);
* a policer holding the marked traffic to the tier's committed rate, with
  the excess demoted to best effort rather than dropped (a srTCM-style
  soft contract).

The backbone then needs nothing per-VPN: the PE's standard DSCP→EXP
mapping and the core's class queues do the rest — which is precisely why
this is "more manageable" than per-flow QoS (contrast the IntServ
baseline in :mod:`repro.qos.intserv`).
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.qos.dscp import DSCP
from repro.qos.meter import SrTCM, srtcm_remarker
from repro.vpn.provision import Vpn

__all__ = ["QosProfile", "GOLD", "SILVER", "BRONZE", "apply_profile"]


@dataclass(frozen=True, slots=True)
class QosProfile:
    """One sellable service tier.

    ``dscp`` is the class the whole VPN rides in; ``cir_bps`` the
    committed rate per site (0 disables policing — pure marking);
    ``excess_dscp`` where out-of-contract traffic lands.
    """

    name: str
    dscp: int
    cir_bps: float = 0.0
    burst_bytes: int = 16_000
    excess_bytes: int = 16_000
    excess_dscp: int = int(DSCP.BE)

    def conditioner(self):
        """Build this tier's CPE conditioner chain element."""
        if self.cir_bps <= 0:
            def _mark(pkt, now):
                pkt.ip.dscp = self.dscp
                return pkt
            return _mark
        meter = SrTCM(self.cir_bps, self.burst_bytes, self.excess_bytes)
        return srtcm_remarker(
            meter,
            green_dscp=self.dscp,
            yellow_dscp=self.excess_dscp,
            red_action="remark",
            red_dscp=self.excess_dscp,
        )


#: Premium tier: the whole VPN rides EF, 2 Mb/s committed per site.
GOLD = QosProfile("gold", dscp=int(DSCP.EF), cir_bps=2e6)

#: Business tier: assured forwarding, 4 Mb/s committed per site.
SILVER = QosProfile("silver", dscp=int(DSCP.AF11), cir_bps=4e6)

#: Economy tier: best effort, unpoliced.
BRONZE = QosProfile("bronze", dscp=int(DSCP.BE))


def apply_profile(vpn: Vpn, profile: QosProfile) -> int:
    """Install ``profile`` on every provisioned site of ``vpn``.

    The conditioner attaches to each CE's uplink toward its PE (the
    provider-managed CPE of §5), so site traffic is tier-marked and
    policed *before* it enters the backbone.  Returns the number of sites
    configured.  Call again after adding sites (idempotent per site is NOT
    guaranteed — apply once, after provisioning).
    """
    configured = 0
    for site in vpn.sites:
        uplinks = [site.ce_ifname]
        if site.role == "hub" and "ce_up_ifname" in site.extra:
            uplinks.append(site.extra["ce_up_ifname"])
        for ifname in uplinks:
            site.ce.interfaces[ifname].add_conditioner(profile.conditioner())
        configured += 1
    return configured
