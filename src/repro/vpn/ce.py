"""Customer Edge router.

The CE is deliberately boring — that is the *point* of the peer model the
paper advocates: the customer router just points a default route at its PE
and advertises its site prefixes; it holds no tunnel state, no per-partner
circuits, and knows nothing about other sites' locations (compare the
overlay baseline, where the CE terminates N-1 circuits).

CEs live in the ``customer`` routing domain so their (possibly
overlapping) addresses never enter the provider IGP.
"""

from __future__ import annotations

from repro.net.address import IPv4Address, Prefix
from repro.routing.fib import RouteEntry
from repro.routing.router import Router

__all__ = ["CeRouter"]

DEFAULT_ROUTE = Prefix(0, 0)


class CeRouter(Router):
    """Customer site router: site subnets + a default route to the PE."""

    def __init__(self, sim, name, site_id: int | None = None, **kw) -> None:
        super().__init__(sim, name, **kw)
        self.domain = "customer"
        self.site_id = site_id
        self.site_prefixes: list[Prefix] = []

    def set_default_route(self, out_ifname: str, next_hop: IPv4Address | None = None) -> None:
        """Point everything non-local at the PE (the peer-model uplink)."""
        self.fib.install(DEFAULT_ROUTE, RouteEntry(out_ifname, next_hop, source="static"))

    def add_site_prefix(self, prefix: Prefix | str) -> Prefix:
        """Declare a subnet this site owns (advertised to the PE's VRF)."""
        pfx = Prefix.parse(prefix) if isinstance(prefix, str) else prefix
        self.site_prefixes.append(pfx)
        return pfx

    def add_host_route(self, addr: IPv4Address | str, out_ifname: str) -> None:
        """Install a /32 toward a locally attached host."""
        a = IPv4Address.parse(addr)
        self.fib.install(Prefix.of(a, 32), RouteEntry(out_ifname, None, source="connected"))
