"""MP-BGP distribution of VPN-IPv4 routes (RFC 2547 §4).

Models a converged MP-iBGP mesh among the PE routers: every PE exports its
VRFs' local routes as VPN-IPv4 NLRI — (RD:prefix, route targets, next hop
= PE loopback, VPN label) — and imports the routes whose RT set intersects
a VRF's import policy.  "Piggybacking labels in the routing protocol
updates" is exactly the paper's §4 description of the mechanism.

Two session topologies are supported, because their control-plane cost is
an E9e ablation:

* **full mesh** — n(n−1)/2 iBGP sessions; each UPDATE goes to n−1 peers.
* **route reflector** — n−1 sessions (every PE peers with the RR); each
  UPDATE goes to the RR, which reflects it to the other n−1 clients.

Message/ session counts land in ``net.counters`` for E1/E9e.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.net.address import IPv4Address, Prefix
from repro.vpn.pe import PeRouter
from repro.vpn.rd_rt import RouteTarget, VpnPrefix

if TYPE_CHECKING:  # pragma: no cover
    from repro.topology import Network

__all__ = ["VpnRoute", "BgpResult", "MpBgp"]


@dataclass(frozen=True, slots=True)
class VpnRoute:
    """One VPN-IPv4 NLRI with its label and RT communities."""

    key: VpnPrefix
    prefix: Prefix
    route_targets: frozenset[RouteTarget]
    next_hop: IPv4Address          # originating PE loopback
    vpn_label: int                 # per-VRF aggregate label at the origin
    origin_pe: str
    origin_site: int | None = None


@dataclass
class BgpResult:
    """Converged-state census after one distribution pass."""

    sessions: int = 0
    updates_sent: int = 0
    routes_exported: int = 0
    routes_imported: int = 0
    exported: list[VpnRoute] = field(default_factory=list)


class MpBgp:
    """Converged MP-iBGP model over a set of PE routers."""

    def __init__(
        self,
        net: "Network",
        pes: Sequence[PeRouter],
        route_reflector: str | None = None,
    ) -> None:
        if not pes:
            raise ValueError("need at least one PE")
        names = [pe.name for pe in pes]
        if len(set(names)) != len(names):
            raise ValueError("duplicate PE names")
        if route_reflector is not None and route_reflector not in names:
            raise ValueError(f"route reflector {route_reflector!r} is not a PE")
        self.net = net
        self.pes = list(pes)
        self.route_reflector = route_reflector

    # ------------------------------------------------------------------
    def session_count(self) -> int:
        n = len(self.pes)
        if n < 2:
            return 0
        if self.route_reflector is not None:
            return n - 1
        return n * (n - 1) // 2

    def _updates_for_export(self) -> int:
        """UPDATE messages triggered by one exported route."""
        n = len(self.pes)
        if n < 2:
            return 0
        if self.route_reflector is not None:
            # origin -> RR (1), then RR -> the other n-2 clients.  Total is
            # n-1, same as full mesh — reflection saves *sessions*, not
            # updates (the E9e ablation shows exactly this split).
            return 1 + (n - 2)
        return n - 1

    # ------------------------------------------------------------------
    def converge(self) -> BgpResult:
        """Export all VRF local routes, distribute, import by RT policy."""
        result = BgpResult(sessions=self.session_count())
        self.net.counters.incr("bgp.sessions", result.sessions)

        exports: list[VpnRoute] = []
        for pe in self.pes:
            assert pe.loopback is not None, f"PE {pe.name} needs a loopback"
            for vrf in pe.vrfs.values():
                for prefix, route in sorted(vrf.local_routes().items()):
                    exports.append(
                        VpnRoute(
                            key=VpnPrefix(vrf.rd, prefix),
                            prefix=prefix,
                            route_targets=vrf.export_rts,
                            next_hop=pe.loopback,
                            vpn_label=vrf.vpn_label,
                            origin_pe=pe.name,
                            origin_site=route.origin_site,
                        )
                    )
        result.exported = exports
        result.routes_exported = len(exports)

        per_export = self._updates_for_export()
        if self.route_reflector is not None:
            # RR-originated routes fan straight out to the n-1 clients; every
            # other route costs per_export (origin→RR, RR→other clients).
            rr_origin = sum(
                1 for route in exports if route.origin_pe == self.route_reflector
            )
            result.updates_sent = rr_origin * (len(self.pes) - 1) + (
                len(exports) - rr_origin
            ) * per_export
        else:
            result.updates_sent = len(exports) * per_export
        self.net.counters.incr("bgp.updates", result.updates_sent)

        # Import phase: RT intersection decides; never import your own export
        # back into its source VRF (split horizon on the VPN prefix key).
        # Index exports by RT once so each VRF only scans routes that can
        # match its import policy — at N sites the full-mesh VPN still
        # touches O(N²) (route, VRF) pairs, but disjoint VPNs sharing the
        # backbone no longer pay for each other's routes.
        by_rt: dict[RouteTarget, list[int]] = {}
        for i, route in enumerate(exports):
            for rt in route.route_targets:
                by_rt.setdefault(rt, []).append(i)
        for pe in self.pes:
            for vrf in pe.vrfs.values():
                candidates = sorted(
                    set().union(*(by_rt.get(rt, ()) for rt in vrf.import_rts))
                ) if vrf.import_rts else []
                for i in candidates:
                    route = exports[i]
                    if route.origin_pe == pe.name:
                        continue
                    vrf.add_remote(
                        route.prefix,
                        remote_pe=route.next_hop,
                        vpn_label=route.vpn_label,
                        origin_site=route.origin_site,
                    )
                    result.routes_imported += 1
        self.net.counters.incr("bgp.routes_imported", result.routes_imported)
        return result
