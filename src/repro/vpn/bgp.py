"""MP-BGP distribution of VPN-IPv4 routes (RFC 2547 §4) — incremental.

Models an MP-iBGP mesh among the PE routers: every PE exports its VRFs'
local routes as VPN-IPv4 NLRI — (RD:prefix, route targets, next hop =
PE loopback, VPN label) — and imports the routes whose RT set intersects
a VRF's import policy.  "Piggybacking labels in the routing protocol
updates" is exactly the paper's §4 description of the mechanism.

Unlike the frozen pre-churn model (:mod:`repro.vpn.reference`), the
engine keeps a **persistent Adj-RIB**: per-(PE, VRF) export sets plus an
incrementally maintained RT → prefix → routes index.  ``converge()`` is
a *resync* — it diffs desired state against the RIB, so re-running it on
an unchanged network sends zero updates, installs nothing, and leaves
every VRF generation untouched (the data-plane flow caches stay warm).
Delta operations propagate only the changed routes:

* :meth:`export_delta` — re-sync one VRF's exports after local route
  changes (site added/removed behind an existing PE).
* :meth:`withdraw` — retract a VRF's advertisements (or one site's)
  ahead of de-provisioning.
* :meth:`peer_down` / :meth:`peer_up` — PE maintenance drain: implicit
  withdraw of the PE's routes everywhere, flush of its own imports, and
  a full re-advertise + refresh when the PE returns.

All VRF installs go through the batched ``add_remote_many`` /
``remove_many`` paths (single FIB generation bump per VRF per
operation — PR 3's ``install_many`` pattern).  Local routes are
preferred over imports: a prefix a VRF holds as a local is never
overwritten (or removed) by the import side — the standard BGP
admin-distance rule, and what keeps churn idempotent when two sites
advertise the same prefix.

Three session topologies are supported, because their control-plane
cost is an E9e ablation:

* **full mesh** — n(n−1)/2 iBGP sessions; each UPDATE goes to n−1 peers.
* **route reflector** — n−1 sessions (every PE peers with the RR); each
  UPDATE goes to the RR, which reflects it to the other n−1 clients.
* **RR clusters** — ``rr_clusters`` names k reflector clusters (each a
  single RR or a redundant pair); clients are assigned round-robin, the
  reflectors peer in a full mesh among themselves, and reflected routes
  carry a cluster list so a redundant co-reflector drops its partner's
  copy (RFC 4456 loop suppression, surfaced as ``updates_suppressed``).

Update fan-out is computed by simulating the reflection graph per
origin (memoized), so session/update/suppression accounting is exact
for any topology.  Message and session counts land in ``net.counters``
for E1/E9e/E15.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.net.address import IPv4Address, Prefix
from repro.vpn.pe import PeRouter
from repro.vpn.rd_rt import RouteTarget, VpnPrefix
from repro.vpn.vrf import Vrf

if TYPE_CHECKING:  # pragma: no cover
    from repro.topology import Network

__all__ = ["VpnRoute", "BgpResult", "MpBgp"]


@dataclass(frozen=True, slots=True)
class VpnRoute:
    """One VPN-IPv4 NLRI with its label and RT communities."""

    key: VpnPrefix
    prefix: Prefix
    route_targets: frozenset[RouteTarget]
    next_hop: IPv4Address          # originating PE loopback
    vpn_label: int                 # per-VRF aggregate label at the origin
    origin_pe: str
    origin_site: int | None = None


@dataclass
class BgpResult:
    """Census of one distribution pass (full resync or delta).

    ``routes_exported``/``routes_withdrawn`` count NLRI advertised and
    retracted by this pass; ``routes_imported``/``routes_removed`` count
    the resulting VRF installs and removals.  ``updates_suppressed``
    counts UPDATEs a reflector dropped by cluster-list loop detection.
    """

    sessions: int = 0
    updates_sent: int = 0
    routes_exported: int = 0
    routes_imported: int = 0
    exported: list[VpnRoute] = field(default_factory=list)
    routes_withdrawn: int = 0
    routes_removed: int = 0
    updates_suppressed: int = 0


def _normalize_clusters(
    rr_clusters: Sequence[Sequence[str] | str] | None,
) -> tuple[tuple[str, ...], ...]:
    if not rr_clusters:
        return ()
    out: list[tuple[str, ...]] = []
    for cluster in rr_clusters:
        if isinstance(cluster, str):
            out.append((cluster,))
        else:
            out.append(tuple(cluster))
    return tuple(out)


class MpBgp:
    """Incremental MP-iBGP engine over a set of PE routers."""

    def __init__(
        self,
        net: "Network",
        pes: Sequence[PeRouter],
        route_reflector: str | None = None,
        rr_clusters: Sequence[Sequence[str] | str] | None = None,
    ) -> None:
        if not pes:
            raise ValueError("need at least one PE")
        names = [pe.name for pe in pes]
        if len(set(names)) != len(names):
            raise ValueError("duplicate PE names")
        if route_reflector is not None and rr_clusters is not None:
            raise ValueError("pass route_reflector or rr_clusters, not both")
        if route_reflector is not None and route_reflector not in names:
            raise ValueError(f"route reflector {route_reflector!r} is not a PE")
        self.net = net
        self.pes = list(pes)
        self.route_reflector = route_reflector
        if rr_clusters is None and route_reflector is not None:
            rr_clusters = [(route_reflector,)]
        self.rr_clusters = _normalize_clusters(rr_clusters)

        self._pe_by_name = {pe.name: pe for pe in self.pes}
        self._pe_pos = {pe.name: i for i, pe in enumerate(self.pes)}
        self._rr_cluster_of: dict[str, int] = {}
        for ci, cluster in enumerate(self.rr_clusters):
            if not cluster:
                raise ValueError("empty RR cluster")
            for rr in cluster:
                if rr not in self._pe_by_name:
                    raise ValueError(f"route reflector {rr!r} is not a PE")
                if rr in self._rr_cluster_of:
                    raise ValueError(f"route reflector {rr!r} in two clusters")
                self._rr_cluster_of[rr] = ci
        # Clients round-robin over clusters, in name order — deterministic
        # so session/update accounting is reproducible.
        self._client_cluster: dict[str, int] = {}
        if self.rr_clusters:
            clients = sorted(n for n in names if n not in self._rr_cluster_of)
            for i, name in enumerate(clients):
                self._client_cluster[name] = i % len(self.rr_clusters)
        self._neighbors = self._build_neighbors()

        # --- persistent Adj-RIB -------------------------------------------
        # Adj-RIB-Out per (pe, vrf): prefix -> advertised VpnRoute.
        self._rib: dict[tuple[str, str], dict[Prefix, VpnRoute]] = {}
        # RT -> prefix -> (origin pe, vrf) -> route; maintained on every
        # advertise/withdraw so imports never rescan the full export set.
        self._rt_index: dict[
            RouteTarget, dict[Prefix, dict[tuple[str, str], VpnRoute]]
        ] = {}
        # What each (pe, vrf) currently has installed from BGP — the diff
        # base that makes resync idempotent.
        self._imported: dict[tuple[str, str], dict[Prefix, VpnRoute]] = {}
        # (pe, vrf) keys that have had at least one import sync; a key
        # seen for the first time in export_delta gets a one-time
        # wholesale import sync (BGP route refresh for a new VRF) so it
        # catches up on NLRI advertised before it existed.
        self._known: set[tuple[str, str]] = set()
        self._down: set[str] = set()
        self._sessions_counted = False
        # Per-origin fan-out (receivers, sent, suppressed), memoized until
        # the up/down set changes.
        self._prop_cache: dict[tuple[str, bool], tuple[frozenset[str], int, int]] = {}

    # ------------------------------------------------------------------
    # Topology census
    # ------------------------------------------------------------------
    def _build_neighbors(self) -> dict[str, tuple[str, ...]]:
        nbrs: dict[str, set[str]] = {pe.name: set() for pe in self.pes}
        if len(self.pes) >= 2:
            if not self.rr_clusters:
                all_names = set(nbrs)
                for a in nbrs:
                    nbrs[a] = all_names - {a}
            else:
                rrs = sorted(self._rr_cluster_of)
                for i, a in enumerate(rrs):
                    for b in rrs[i + 1:]:
                        nbrs[a].add(b)
                        nbrs[b].add(a)
                for client, ci in self._client_cluster.items():
                    for rr in self.rr_clusters[ci]:
                        nbrs[client].add(rr)
                        nbrs[rr].add(client)
        return {name: tuple(sorted(peers)) for name, peers in nbrs.items()}

    def session_count(self) -> int:
        """Configured iBGP sessions (topology census, ignores drains)."""
        return sum(len(peers) for peers in self._neighbors.values()) // 2

    def _updates_for_export(self) -> int:
        """UPDATE messages triggered by one exported route (client origin)."""
        if len(self.pes) < 2:
            return 0
        origin = next(
            (n for n in self._pe_by_name if n not in self._rr_cluster_of),
            self.pes[0].name,
        )
        return self._propagate(origin)[1]

    # ------------------------------------------------------------------
    def _propagate(
        self, origin: str, first_hop_free: bool = False
    ) -> tuple[frozenset[str], int, int]:
        """Simulate one UPDATE's fan-out from ``origin``.

        Returns (receivers, updates sent, updates suppressed by cluster
        list).  ``first_hop_free`` models an *implicit* withdraw — the
        origin's sessions are gone, so its peers generate the withdraw
        themselves and only the reflection legs cost messages.
        """
        key = (origin, first_hop_free)
        cached = self._prop_cache.get(key)
        if cached is not None:
            return cached
        down = self._down
        sent = suppressed = 0
        accepted = {origin}
        receivers: list[str] = []
        queue: deque[tuple[str, str, frozenset[int]]] = deque()
        for nb in self._neighbors[origin]:
            if nb in down:
                continue
            if not first_hop_free:
                sent += 1
            queue.append((nb, origin, frozenset()))
        while queue:
            node, frm, clist = queue.popleft()
            cluster = self._rr_cluster_of.get(node)
            if cluster is not None and cluster in clist:
                suppressed += 1      # RFC 4456 cluster-list loop drop
                continue
            if node in accepted:
                continue             # duplicate path, lost to path selection
            accepted.add(node)
            receivers.append(node)
            if cluster is None:
                continue             # plain iBGP speakers never re-advertise
            new_clist = clist | {cluster}
            if frm in self._client_cluster:
                # Client-learned: reflect to every other peer.
                targets: Iterable[str] = (
                    t for t in self._neighbors[node] if t != frm
                )
            else:
                # Learned from a non-client (co-reflector): clients only.
                targets = (
                    t for t in self._neighbors[node]
                    if t in self._client_cluster and t != frm
                )
            for t in targets:
                if t in down:
                    continue
                sent += 1
                queue.append((t, node, new_clist))
        out = (frozenset(receivers), sent, suppressed)
        self._prop_cache[key] = out
        return out

    def _count_updates(
        self,
        advertised: Sequence[VpnRoute],
        withdrawn: Sequence[VpnRoute],
        result: BgpResult,
        implicit: bool = False,
    ) -> None:
        for route in advertised:
            _, sent, sup = self._propagate(route.origin_pe)
            result.updates_sent += sent
            result.updates_suppressed += sup
        for route in withdrawn:
            _, sent, sup = self._propagate(route.origin_pe, first_hop_free=implicit)
            result.updates_sent += sent
            result.updates_suppressed += sup

    # ------------------------------------------------------------------
    # Adj-RIB maintenance
    # ------------------------------------------------------------------
    def _index(self, key: tuple[str, str], route: VpnRoute) -> None:
        for rt in route.route_targets:
            self._rt_index.setdefault(rt, {}).setdefault(route.prefix, {})[key] = route

    def _unindex(self, key: tuple[str, str], route: VpnRoute) -> None:
        for rt in route.route_targets:
            by_prefix = self._rt_index.get(rt)
            if by_prefix is None:
                continue
            origins = by_prefix.get(route.prefix)
            if origins is None:
                continue
            origins.pop(key, None)
            if not origins:
                del by_prefix[route.prefix]
                if not by_prefix:
                    del self._rt_index[rt]

    def _sync_exports(
        self,
        pe: PeRouter,
        vrf: Vrf,
        advertised: list[VpnRoute],
        withdrawn: list[VpnRoute],
    ) -> None:
        """Diff one VRF's local routes against its Adj-RIB-Out."""
        assert pe.loopback is not None, f"PE {pe.name} needs a loopback"
        key = (pe.name, vrf.name)
        desired: dict[Prefix, VpnRoute] = {}
        for prefix, route in sorted(vrf.local_routes().items()):
            desired[prefix] = VpnRoute(
                key=VpnPrefix(vrf.rd, prefix),
                prefix=prefix,
                route_targets=vrf.export_rts,
                next_hop=pe.loopback,
                vpn_label=vrf.vpn_label,
                origin_pe=pe.name,
                origin_site=route.origin_site,
            )
        current = self._rib.setdefault(key, {})
        for prefix, route in desired.items():
            old = current.get(prefix)
            if old == route:
                continue
            if old is not None:      # replacement UPDATE: implicit withdraw
                self._unindex(key, old)
            current[prefix] = route
            self._index(key, route)
            advertised.append(route)
        for prefix in [p for p in current if p not in desired]:
            route = current.pop(prefix)
            self._unindex(key, route)
            withdrawn.append(route)
        if not current:
            del self._rib[key]

    def _retract_key(self, key: tuple[str, str]) -> list[VpnRoute]:
        """Drop every advertisement for a (pe, vrf) that no longer exists."""
        routes = list(self._rib.pop(key, {}).values())
        for route in routes:
            self._unindex(key, route)
        self._imported.pop(key, None)
        self._known.discard(key)
        return routes

    # ------------------------------------------------------------------
    # Import side
    # ------------------------------------------------------------------
    def _vrf_order(self) -> dict[str, dict[str, int]]:
        """Per-PE VRF insertion order — the tie-break that keeps the
        incremental winner identical to the full-converge import order."""
        return {
            pe.name: {name: i for i, name in enumerate(pe.vrfs)}
            for pe in self.pes
        }

    def _pick_winner(
        self,
        importer: str,
        candidates: dict[tuple[str, str], VpnRoute],
        vrf_order: dict[str, dict[str, int]],
    ) -> VpnRoute | None:
        best: VpnRoute | None = None
        best_key: tuple[int, int] | None = None
        for (origin, vrf_name), route in candidates.items():
            if origin == importer or origin in self._down:
                continue
            rank = (self._pe_pos[origin], vrf_order.get(origin, {}).get(vrf_name, -1))
            if best_key is None or rank > best_key:
                best_key, best = rank, route
        return best

    def _desired_imports(
        self, pe: PeRouter, vrf: Vrf, vrf_order: dict[str, dict[str, int]]
    ) -> dict[Prefix, VpnRoute]:
        if not vrf.import_rts:
            return {}
        merged: dict[Prefix, dict[tuple[str, str], VpnRoute]] = {}
        for rt in vrf.import_rts:
            for prefix, origins in self._rt_index.get(rt, {}).items():
                merged.setdefault(prefix, {}).update(origins)
        desired: dict[Prefix, VpnRoute] = {}
        for prefix, candidates in merged.items():
            winner = self._pick_winner(pe.name, candidates, vrf_order)
            if winner is not None:
                desired[prefix] = winner
        return desired

    def _apply_import_changes(
        self,
        vrf: Vrf,
        key: tuple[str, str],
        adds: list[tuple[Prefix, VpnRoute]],
        dels: list[Prefix],
        result: BgpResult,
    ) -> None:
        current = self._imported.setdefault(key, {})
        if dels:
            # A del may be a bookkeeping-only drop: a prefix the VRF now
            # holds as a *local* route (locals are preferred over BGP —
            # never overwritten, so never removed here either).
            doomed = [p for p in dels if vrf.kind_of(p) == "remote"]
            vrf.remove_many(doomed)
            for prefix in dels:
                current.pop(prefix, None)
            result.routes_removed += len(doomed)
        if adds:
            vrf.add_remote_many(
                [
                    (prefix, r.next_hop, r.vpn_label, r.origin_site)
                    for prefix, r in adds
                ]
            )
            for prefix, r in adds:
                current[prefix] = r
            result.routes_imported += len(adds)
        if not current:
            self._imported.pop(key, None)

    def _sync_vrf_imports(
        self,
        pe: PeRouter,
        vrf: Vrf,
        desired: dict[Prefix, VpnRoute],
        result: BgpResult,
    ) -> None:
        key = (pe.name, vrf.name)
        current = self._imported.get(key, {})
        local = vrf.local_routes()
        adds = [
            (p, r) for p, r in desired.items()
            if p not in local and current.get(p) != r
        ]
        dels = [p for p in current if p not in desired or p in local]
        self._apply_import_changes(vrf, key, adds, dels, result)

    def _resync_imports_for(
        self, changed: Sequence[VpnRoute], result: BgpResult
    ) -> None:
        """Targeted import recompute: only VRFs whose import policy
        intersects the changed routes, only the changed prefixes."""
        if not changed:
            return
        prefixes_by_rt: dict[RouteTarget, set[Prefix]] = {}
        for route in changed:
            for rt in route.route_targets:
                prefixes_by_rt.setdefault(rt, set()).add(route.prefix)
        vrf_order = self._vrf_order()
        for pe in self.pes:
            if pe.name in self._down:
                continue
            for vrf in pe.vrfs.values():
                hit = vrf.import_rts & prefixes_by_rt.keys()
                if not hit:
                    continue
                key = (pe.name, vrf.name)
                current = self._imported.get(key, {})
                prefixes: set[Prefix] = set()
                for rt in hit:
                    prefixes |= prefixes_by_rt[rt]
                adds: list[tuple[Prefix, VpnRoute]] = []
                dels: list[Prefix] = []
                for prefix in sorted(prefixes):
                    if vrf.kind_of(prefix) == "local":
                        # Locals are preferred over any import; drop stale
                        # bookkeeping but leave the VRF entry alone.
                        if prefix in current:
                            dels.append(prefix)
                        continue
                    candidates: dict[tuple[str, str], VpnRoute] = {}
                    for rt in vrf.import_rts:
                        candidates.update(
                            self._rt_index.get(rt, {}).get(prefix, {})
                        )
                    winner = self._pick_winner(pe.name, candidates, vrf_order)
                    have = current.get(prefix)
                    if winner is None:
                        if have is not None:
                            dels.append(prefix)
                    elif have != winner:
                        adds.append((prefix, winner))
                self._apply_import_changes(vrf, key, adds, dels, result)

    # ------------------------------------------------------------------
    # Public operations
    # ------------------------------------------------------------------
    def converge(self) -> BgpResult:
        """Resync every VRF's exports and imports against the Adj-RIB.

        On a fresh engine this is the classic full convergence (and its
        message/state accounting matches :mod:`repro.vpn.reference`
        exactly); re-running it on an unchanged network is a no-op —
        zero updates, zero installs, VRF generations untouched.
        """
        result = BgpResult(sessions=self.session_count())
        if not self._sessions_counted:
            self.net.counters.incr("bgp.sessions", result.sessions)
            self._sessions_counted = True
        advertised: list[VpnRoute] = []
        withdrawn: list[VpnRoute] = []
        live_keys: set[tuple[str, str]] = set()
        for pe in self.pes:
            if pe.name in self._down:
                continue
            for vrf in pe.vrfs.values():
                live_keys.add((pe.name, vrf.name))
                self._sync_exports(pe, vrf, advertised, withdrawn)
        self._known |= live_keys
        for key in [
            k for k in self._rib if k not in live_keys and k[0] not in self._down
        ]:
            withdrawn.extend(self._retract_key(key))
        result.exported = advertised
        result.routes_exported = len(advertised)
        result.routes_withdrawn = len(withdrawn)
        self._count_updates(advertised, withdrawn, result)

        vrf_order = self._vrf_order()
        for pe in self.pes:
            if pe.name in self._down:
                continue
            for vrf in pe.vrfs.values():
                self._sync_vrf_imports(
                    pe, vrf, self._desired_imports(pe, vrf, vrf_order), result
                )
        self.net.counters.incr("bgp.updates", result.updates_sent)
        self.net.counters.incr("bgp.routes_imported", result.routes_imported)
        if result.routes_removed:
            self.net.counters.incr("bgp.routes_removed", result.routes_removed)
        return result

    def export_delta(self, pe: PeRouter, vrf: Vrf | str) -> BgpResult:
        """Propagate one VRF's local-route changes to affected VRFs only."""
        if isinstance(vrf, str):
            vrf = pe.vrfs[vrf]
        if pe.name not in self._pe_by_name:
            raise ValueError(f"{pe.name} is not in this BGP mesh")
        if pe.name in self._down:
            raise ValueError(f"{pe.name} is drained; peer_up() it first")
        result = BgpResult(sessions=self.session_count())
        advertised: list[VpnRoute] = []
        withdrawn: list[VpnRoute] = []
        self._sync_exports(pe, vrf, advertised, withdrawn)
        result.exported = advertised
        result.routes_exported = len(advertised)
        result.routes_withdrawn = len(withdrawn)
        self._count_updates(advertised, withdrawn, result)
        self._resync_imports_for(advertised + withdrawn, result)
        key = (pe.name, vrf.name)
        if key not in self._known:
            # First sync for this VRF: route-refresh its imports so it
            # catches up on NLRI advertised before it existed.
            self._known.add(key)
            self._sync_vrf_imports(
                pe, vrf, self._desired_imports(pe, vrf, self._vrf_order()), result
            )
        self._tally(result)
        return result

    def withdraw(
        self,
        pe: PeRouter,
        vrf: Vrf | str | None = None,
        site: int | None = None,
    ) -> BgpResult:
        """Retract advertisements: a whole VRF's, one site's, or all of
        ``pe``'s.  Local routes are untouched — this is the control-plane
        half of de-provisioning (the provisioner removes the locals)."""
        if pe.name not in self._pe_by_name:
            raise ValueError(f"{pe.name} is not in this BGP mesh")
        vrf_name = vrf.name if isinstance(vrf, Vrf) else vrf
        result = BgpResult(sessions=self.session_count())
        withdrawn: list[VpnRoute] = []
        for key in [k for k in self._rib if k[0] == pe.name]:
            if vrf_name is not None and key[1] != vrf_name:
                continue
            current = self._rib[key]
            doomed = [
                p for p, r in current.items()
                if site is None or r.origin_site == site
            ]
            for prefix in doomed:
                route = current.pop(prefix)
                self._unindex(key, route)
                withdrawn.append(route)
            if not current:
                del self._rib[key]
        result.routes_withdrawn = len(withdrawn)
        self._count_updates((), withdrawn, result)
        self._resync_imports_for(withdrawn, result)
        self._tally(result)
        return result

    def forget_vrf(self, pe: PeRouter | str, vrf_name: str) -> None:
        """Drop all bookkeeping for a VRF being deleted (no messages)."""
        pe_name = pe if isinstance(pe, str) else pe.name
        key = (pe_name, vrf_name)
        if self._rib.get(key):
            raise ValueError(f"{key} still has advertisements; withdraw first")
        self._rib.pop(key, None)
        self._imported.pop(key, None)
        self._known.discard(key)

    def peer_down(self, pe: PeRouter | str) -> BgpResult:
        """PE maintenance drain: sessions to ``pe`` go down, its routes
        are implicitly withdrawn everywhere, and its VRFs flush their
        BGP-learned imports.  The Adj-RIB keeps the PE's exports so
        :meth:`peer_up` can re-advertise without re-exporting."""
        name = pe if isinstance(pe, str) else pe.name
        if name not in self._pe_by_name:
            raise ValueError(f"{name} is not in this BGP mesh")
        if name in self._rr_cluster_of:
            raise ValueError(f"cannot drain route reflector {name}")
        result = BgpResult(sessions=self.session_count())
        if name in self._down:
            return result
        routes = [
            r for key, rib in self._rib.items() if key[0] == name
            for r in rib.values()
        ]
        # Implicit withdraw: peers detect the session loss themselves,
        # only reflection legs cost messages.  Costed before the drain so
        # the fan-out uses the still-up topology.
        self._count_updates((), routes, result, implicit=True)
        self._down.add(name)
        self._prop_cache.clear()
        self.net.counters.incr("bgp.sessions_down", len(
            [n for n in self._neighbors[name] if n not in self._down]
        ))
        self._resync_imports_for(routes, result)
        # The drained PE's own VRFs lose everything they learned.
        node = self._pe_by_name[name]
        for vrf in node.vrfs.values():
            key = (name, vrf.name)
            dels = list(self._imported.get(key, {}))
            self._apply_import_changes(vrf, key, [], dels, result)
        self._tally(result)
        return result

    def peer_up(self, pe: PeRouter | str) -> BgpResult:
        """Bring a drained PE back: re-establish its sessions, re-advertise
        its Adj-RIB, and refresh its VRFs from the mesh."""
        name = pe if isinstance(pe, str) else pe.name
        if name not in self._pe_by_name:
            raise ValueError(f"{name} is not in this BGP mesh")
        result = BgpResult(sessions=self.session_count())
        if name not in self._down:
            return result
        self._down.discard(name)
        self._prop_cache.clear()
        up_peers = [n for n in self._neighbors[name] if n not in self._down]
        self.net.counters.incr("bgp.sessions", len(up_peers))
        routes = [
            r for key, rib in self._rib.items() if key[0] == name
            for r in rib.values()
        ]
        result.routes_exported = len(routes)
        result.exported = list(routes)
        self._count_updates(routes, (), result)
        self._resync_imports_for(routes, result)
        # Route refresh toward the returning PE: each visible foreign NLRI
        # is delivered once over the re-established sessions.
        refresh = sum(
            len(rib) for key, rib in self._rib.items()
            if key[0] != name and key[0] not in self._down
        )
        result.updates_sent += refresh
        vrf_order = self._vrf_order()
        node = self._pe_by_name[name]
        for vrf in node.vrfs.values():
            self._sync_vrf_imports(
                node, vrf, self._desired_imports(node, vrf, vrf_order), result
            )
        self._tally(result)
        return result

    # ------------------------------------------------------------------
    def _tally(self, result: BgpResult) -> None:
        counters = self.net.counters
        if result.updates_sent:
            counters.incr("bgp.updates", result.updates_sent)
        if result.updates_suppressed:
            counters.incr("bgp.updates_suppressed", result.updates_suppressed)
        if result.routes_imported:
            counters.incr("bgp.routes_imported", result.routes_imported)
        if result.routes_removed:
            counters.incr("bgp.routes_removed", result.routes_removed)
        if result.routes_withdrawn:
            counters.incr("bgp.routes_withdrawn", result.routes_withdrawn)

    @property
    def drained(self) -> frozenset[str]:
        return frozenset(self._down)

    @property
    def reflectors(self) -> frozenset[str]:
        """All route-reflector PE names, across clusters."""
        return frozenset(self._rr_cluster_of)

    def fanout(self, origin: str) -> tuple[int, int]:
        """(UPDATEs sent, UPDATEs loop-suppressed) for one advertisement
        from ``origin`` under the configured session topology — the E9e /
        E15 per-route message cost."""
        _, sent, suppressed = self._propagate(origin)
        return sent, suppressed

    def adj_rib_size(self) -> int:
        """Total advertised NLRI across all origins (state census)."""
        return sum(len(rib) for rib in self._rib.values())
