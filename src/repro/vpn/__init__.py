"""BGP/MPLS VPNs (RFC 2547) plus overlay and IPsec baselines."""

from repro.vpn.bgp import BgpResult, MpBgp, VpnRoute
from repro.vpn.ce import CeRouter
from repro.vpn.ipsec import (
    IKEV1_HANDSHAKE_MESSAGES,
    IpsecGateway,
    SecurityAssociation,
    esp_overhead_bytes,
)
from repro.vpn.overlay import (
    OverlayResult,
    OverlayVpnBuilder,
    VcRouter,
    VirtualCircuit,
    expected_full_mesh_circuits,
)
from repro.vpn.interas import InterAsCircuit, connect_option_a, exchange_option_a
from repro.vpn.pe import PeRouter
from repro.vpn.profiles import BRONZE, GOLD, SILVER, QosProfile, apply_profile
from repro.vpn.provision import Site, Vpn, VpnProvisioner
from repro.vpn.rd_rt import RouteDistinguisher, RouteTarget, VpnPrefix
from repro.vpn.vrf import Vrf, VrfRoute

__all__ = [
    "BgpResult", "MpBgp", "VpnRoute",
    "CeRouter",
    "IKEV1_HANDSHAKE_MESSAGES", "IpsecGateway", "SecurityAssociation",
    "esp_overhead_bytes",
    "OverlayResult", "OverlayVpnBuilder", "VcRouter", "VirtualCircuit",
    "expected_full_mesh_circuits",
    "PeRouter",
    "InterAsCircuit", "connect_option_a", "exchange_option_a",
    "Site", "Vpn", "VpnProvisioner",
    "BRONZE", "GOLD", "SILVER", "QosProfile", "apply_profile",
    "RouteDistinguisher", "RouteTarget", "VpnPrefix",
    "Vrf", "VrfRoute",
]
