"""Frozen pre-incremental MP-BGP distribution — parity oracle.

This is the PR 9-era ``MpBgp`` exactly as it shipped before the
incremental churn engine replaced it: a monolithic ``converge()`` that
re-exports every VRF local route, recomputes the RT index from scratch,
and re-imports into every VRF on every call.  It is kept byte-for-byte
faithful (modulo the class name and importing the shared dataclasses
from :mod:`repro.vpn.bgp`) for two jobs:

* **Parity** — ``tests/test_churn_incremental.py`` asserts that any
  sequence of incremental churn operations leaves every VRF in exactly
  the state a clear-and-full-converge with this implementation produces.
* **Self-calibrating benchmarks** — the churn speedup floors in
  ``benchmarks/test_control_plane_performance.py`` time the incremental
  engine against this implementation on the same machine, so the ratio
  is hardware-independent.

Nothing in the library imports this module; it is a test/bench oracle
only.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.vpn.bgp import BgpResult, VpnRoute
from repro.vpn.pe import PeRouter
from repro.vpn.rd_rt import RouteTarget, VpnPrefix

if TYPE_CHECKING:  # pragma: no cover
    from repro.topology import Network

__all__ = ["MpBgpReference"]


class MpBgpReference:
    """Converged MP-iBGP model over a set of PE routers (frozen)."""

    def __init__(
        self,
        net: "Network",
        pes: Sequence[PeRouter],
        route_reflector: str | None = None,
    ) -> None:
        if not pes:
            raise ValueError("need at least one PE")
        names = [pe.name for pe in pes]
        if len(set(names)) != len(names):
            raise ValueError("duplicate PE names")
        if route_reflector is not None and route_reflector not in names:
            raise ValueError(f"route reflector {route_reflector!r} is not a PE")
        self.net = net
        self.pes = list(pes)
        self.route_reflector = route_reflector

    # ------------------------------------------------------------------
    def session_count(self) -> int:
        n = len(self.pes)
        if n < 2:
            return 0
        if self.route_reflector is not None:
            return n - 1
        return n * (n - 1) // 2

    def _updates_for_export(self) -> int:
        """UPDATE messages triggered by one exported route."""
        n = len(self.pes)
        if n < 2:
            return 0
        if self.route_reflector is not None:
            # origin -> RR (1), then RR -> the other n-2 clients.  Total is
            # n-1, same as full mesh — reflection saves *sessions*, not
            # updates (the E9e ablation shows exactly this split).
            return 1 + (n - 2)
        return n - 1

    # ------------------------------------------------------------------
    def converge(self) -> BgpResult:
        """Export all VRF local routes, distribute, import by RT policy."""
        result = BgpResult(sessions=self.session_count())
        self.net.counters.incr("bgp.sessions", result.sessions)

        exports: list[VpnRoute] = []
        for pe in self.pes:
            assert pe.loopback is not None, f"PE {pe.name} needs a loopback"
            for vrf in pe.vrfs.values():
                for prefix, route in sorted(vrf.local_routes().items()):
                    exports.append(
                        VpnRoute(
                            key=VpnPrefix(vrf.rd, prefix),
                            prefix=prefix,
                            route_targets=vrf.export_rts,
                            next_hop=pe.loopback,
                            vpn_label=vrf.vpn_label,
                            origin_pe=pe.name,
                            origin_site=route.origin_site,
                        )
                    )
        result.exported = exports
        result.routes_exported = len(exports)

        per_export = self._updates_for_export()
        if self.route_reflector is not None:
            # RR-originated routes fan straight out to the n-1 clients; every
            # other route costs per_export (origin→RR, RR→other clients).
            rr_origin = sum(
                1 for route in exports if route.origin_pe == self.route_reflector
            )
            result.updates_sent = rr_origin * (len(self.pes) - 1) + (
                len(exports) - rr_origin
            ) * per_export
        else:
            result.updates_sent = len(exports) * per_export
        self.net.counters.incr("bgp.updates", result.updates_sent)

        # Import phase: RT intersection decides; never import your own export
        # back into its source VRF (split horizon on the VPN prefix key).
        # Index exports by RT once so each VRF only scans routes that can
        # match its import policy — at N sites the full-mesh VPN still
        # touches O(N²) (route, VRF) pairs, but disjoint VPNs sharing the
        # backbone no longer pay for each other's routes.
        by_rt: dict[RouteTarget, list[int]] = {}
        for i, route in enumerate(exports):
            for rt in route.route_targets:
                by_rt.setdefault(rt, []).append(i)
        for pe in self.pes:
            for vrf in pe.vrfs.values():
                candidates = sorted(
                    set().union(*(by_rt.get(rt, ()) for rt in vrf.import_rts))
                ) if vrf.import_rts else []
                for i in candidates:
                    route = exports[i]
                    if route.origin_pe == pe.name:
                        continue
                    vrf.add_remote(
                        route.prefix,
                        remote_pe=route.next_hop,
                        vpn_label=route.vpn_label,
                        origin_site=route.origin_site,
                    )
                    result.routes_imported += 1
        self.net.counters.incr("bgp.routes_imported", result.routes_imported)
        return result
