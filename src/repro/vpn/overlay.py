"""Overlay VPN baseline: per-pair virtual circuits (frame relay / ATM model).

This is what the paper's §2.1 argues *against*: every pair of sites that
must communicate gets its own virtual circuit, provisioned hop-by-hop
through the backbone.  A full mesh of N sites therefore needs N(N−1)/2
circuits, and every transit switch holds state for every circuit crossing
it.  The builder here installs working VC forwarding state (so integration
tests can push packets through the overlay) *and* counts everything the E1
experiment tabulates: circuits, per-node state entries, and signaling
messages (one setup + one confirm per hop per direction, the PVC
provisioning cost).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from math import inf
from typing import TYPE_CHECKING, Sequence

from repro.net.drops import DropReason
from repro.net.packet import Packet
from repro.routing.router import Router

if TYPE_CHECKING:  # pragma: no cover
    from repro.routing.spf_core import DomainView
    from repro.topology import Network

__all__ = ["VcRouter", "VirtualCircuit", "OverlayResult", "OverlayVpnBuilder"]


class VcRouter(Router):
    """Router that also switches packets tagged with a virtual-circuit id.

    ``vc_table`` maps an incoming VC id to (out_ifname, next_vc_id) — the
    label-swap-like per-hop behaviour of frame relay DLCIs / ATM VPI:VCI.
    """

    def __init__(self, sim, name, **kw) -> None:
        super().__init__(sim, name, **kw)
        self.vc_table: dict[int, tuple[str, int]] = {}
        # Circuits terminating here deliver to the local sink (the "site").
        self.vc_terminations: set[int] = set()

    def handle(self, pkt: Packet, ifname: str) -> None:
        if pkt.vc_id is not None:
            if pkt.vc_id in self.vc_terminations:
                pkt.vc_id = None
                self.deliver_local(pkt)
                return
            hop = self.vc_table.get(pkt.vc_id)
            if hop is None:
                self.drop(pkt, DropReason.NO_VC)
                return
            out_ifname, next_vc = hop
            pkt.vc_id = next_vc
            self.transmit(pkt, out_ifname)
            return
        super().handle(pkt, ifname)

    @property
    def vc_state_entries(self) -> int:
        return len(self.vc_table) + len(self.vc_terminations)


@dataclass(frozen=True, slots=True)
class VirtualCircuit:
    """One unidirectional provisioned circuit."""

    vc_id: int               # id on the first hop (ids are swapped per hop)
    src: str
    dst: str
    path: tuple[str, ...]

    @property
    def hops(self) -> int:
        return len(self.path) - 1


@dataclass
class OverlayResult:
    """Census of one overlay build — the E1 row for the baseline."""

    circuits: list[VirtualCircuit] = field(default_factory=list)
    signaling_messages: int = 0
    state_entries_by_node: dict[str, int] = field(default_factory=dict)
    # Unidirectional VC count.  Equals ``len(circuits)`` unless the build
    # ran with ``keep_circuits=False`` (paper-scale E1 drops the per-VC
    # records — a 1000-site mesh is 999 000 of them — but keeps the count).
    vc_count: int = 0

    @property
    def circuit_count(self) -> int:
        """Bidirectional circuit count (VC pairs)."""
        return (self.vc_count or len(self.circuits)) // 2

    @property
    def total_state_entries(self) -> int:
        return sum(self.state_entries_by_node.values())

    @property
    def max_state_on_one_node(self) -> int:
        return max(self.state_entries_by_node.values(), default=0)


class OverlayVpnBuilder:
    """Provision per-pair circuits between site attachment routers."""

    def __init__(self, net: "Network", domain: str = "core") -> None:
        self.net = net
        self.domain = domain
        # Integer cursor, not itertools.count: the builder rides in
        # snapshots (repro.sim.snapshot) and live iterators can't pickle.
        self._next_vc_id = 1
        # The topology is static during a build; the network's cached
        # domain view memoizes one SPF per source, so a 200-site full mesh
        # (~40k circuits) never recomputes Dijkstra per circuit.
        self._view: "DomainView | None" = None

    def _alloc_vc_id(self) -> int:
        n = self._next_vc_id
        self._next_vc_id = n + 1
        return n

    def _domain_view(self) -> "DomainView":
        if self._view is None:
            self._view = self.net.domain_view(self.domain)
        return self._view

    # ------------------------------------------------------------------
    def provision_circuit(self, src: str, dst: str) -> VirtualCircuit:
        """One unidirectional VC from ``src`` to ``dst`` along the IGP path.

        Installs swap state at each transit node and a termination at the
        destination; counts 2 signaling messages per hop (setup + confirm).
        """
        view = self._domain_view()
        si = view.idx.get(src)
        di = view.idx.get(dst)
        if si is None or di is None:
            raise ValueError(f"no path {src}->{dst}")
        dist, pred, _disc = view.spf(si)
        if di == si or dist[di] == inf:
            raise ValueError(f"no path {src}->{dst}")
        rev = [di]
        while rev[-1] != si:
            rev.append(pred[rev[-1]])
        path_idx = rev[::-1]
        names = view.names
        # Per-hop VC ids, swapped like DLCIs; allocate one per segment.
        ids = [self._alloc_vc_id() for _ in range(len(path_idx) - 1)]
        for i, (u, v) in enumerate(zip(path_idx, path_idx[1:])):
            node = self.net.nodes[names[u]]
            assert isinstance(node, VcRouter), f"{names[u]} is not a VcRouter"
            out_ifname = view.nbr[u][v][1]
            next_vc = ids[i + 1] if i + 1 < len(ids) else ids[i]
            node.vc_table[ids[i]] = (out_ifname, next_vc)
        last = self.net.nodes[names[path_idx[-1]]]
        assert isinstance(last, VcRouter)
        last.vc_terminations.add(ids[-1])
        self.net.counters.incr("overlay.signaling_msgs", 2 * (len(path_idx) - 1))
        return VirtualCircuit(ids[0], src, dst, tuple(names[i] for i in path_idx))

    # ------------------------------------------------------------------
    def build_full_mesh(
        self, site_routers: Sequence[str], keep_circuits: bool = True
    ) -> OverlayResult:
        """Full mesh of bidirectional circuits among ``site_routers``.

        N sites → N(N−1)/2 circuit pairs → N(N−1) unidirectional VCs.
        Pass ``keep_circuits=False`` at paper scale (E1 at N=1000 is 999 000
        VC records) to install the forwarding state and count everything
        without retaining a ``VirtualCircuit`` object per VC.
        """
        result = OverlayResult()
        for a, b in itertools.combinations(sorted(site_routers), 2):
            c_ab = self.provision_circuit(a, b)
            c_ba = self.provision_circuit(b, a)
            if keep_circuits:
                result.circuits.append(c_ab)
                result.circuits.append(c_ba)
            result.vc_count += 2
        result.signaling_messages = self.net.counters["overlay.signaling_msgs"]
        for name, node in self.net.nodes.items():
            if isinstance(node, VcRouter) and node.vc_state_entries:
                result.state_entries_by_node[name] = node.vc_state_entries
        return result

    def build_hub_spoke(self, hub: str, spokes: Sequence[str]) -> OverlayResult:
        """Hub-and-spoke alternative: 2(N−1) VCs, but all traffic hairpins."""
        result = OverlayResult()
        for spoke in sorted(spokes):
            result.circuits.append(self.provision_circuit(hub, spoke))
            result.circuits.append(self.provision_circuit(spoke, hub))
        result.vc_count = len(result.circuits)
        result.signaling_messages = self.net.counters["overlay.signaling_msgs"]
        for name, node in self.net.nodes.items():
            if isinstance(node, VcRouter) and node.vc_state_entries:
                result.state_entries_by_node[name] = node.vc_state_entries
        return result


def expected_full_mesh_circuits(n_sites: int) -> int:
    """The paper's §2.1 formula: N(N−1)/2 (45 for 10 sites, 19 900 for 200)."""
    return n_sites * (n_sites - 1) // 2
