"""Struct-of-arrays view of one packet burst (the columnar data plane).

The paper's architectural bet is that MPLS/DiffServ reduces the per-hop
decision to a handful of aggregate header fields — top label, EXP/DSCP,
destination key — so the backbone can forward on exact-match state.  A
struct-of-arrays layout is what that access pattern looks like in memory:
one :class:`PacketColumns` per burst holds parallel columns of exactly
the hot fields, the pipeline resolves forwarding decisions per *unique*
key with batched cache gathers and masks, and the heap :class:`~repro.
net.packet.Packet` objects are only touched again at materialization
time — the egress write-back, a drop, a local delivery, or a trace
boundary.

Column inventory (per ISSUE/ARCHITECTURE §11):

``ttl_list``
    The *active* TTL per row — top-of-stack TTL for labeled rows, the IP
    header TTL otherwise.
``label_list`` / ``tops``
    Top label per row (−1 for unlabeled rows in a mixed burst) and, for
    all-labeled bursts, the top :class:`MplsEntry` objects themselves so
    the apply loop writes swaps without re-walking the stacks.
``stacks_col()`` / ``lab_rows``
    The label-stack references (one attribute walk, reused by every
    later column; lazy — the all-labeled core shape never builds it)
    and the labeled row indices — ``range(n)`` when the whole burst is
    labeled, ``()`` when none is.
``wire_col()`` / ``dst_keys()`` / ``depth_col()``
    Lazy columns: wire bytes (egress byte accounting; skipped entirely
    for drop-only bursts), destination keys (never built for a pure
    label-switching burst — the backbone-forwards-on-labels claim,
    visible in the profile), and label-stack depth (only consulted by
    ``POP_PROCESS`` rows).

Representation note (measure-first): the columns are plain Python lists,
not ndarrays.  At simulation burst scale (10²–10³ rows) C-level list
comprehensions over heap ``Packet`` objects beat ``np.fromiter`` +
ndarray scalar reads several-fold — the object-attribute gather, not the
arithmetic, is the cost — while the *pipeline's* action/index arrays and
the TTL expiry masking stay vectorized numpy where whole-burst masks pay
for themselves (see ``ForwardingPipeline._ingress_columns``).  DSCP→EXP
marking reads the 64-entry :func:`exp_lut` per imposition row; the ECMP
flow hash stays memoized on the packet.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable

from repro.net.packet import IPV4_HEADER_BYTES, MPLS_SHIM_BYTES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.packet import Packet

__all__ = ["PacketColumns", "group_rows", "exp_lut"]

# 64-entry DSCP→EXP table (one per codepoint), built lazily because
# ``repro.qos`` cannot be imported at module load (cycle through Router).
# A plain list: the consumer indexes it per imposition row, where a list
# subscript beats an ndarray scalar read by ~5x.
_EXP_LUT: list[int] | None = None


def exp_lut() -> list[int]:
    """The DSCP→EXP mapping as a dense 64-entry table."""
    global _EXP_LUT
    if _EXP_LUT is None:
        from repro.qos.dscp import dscp_to_exp

        _EXP_LUT = [dscp_to_exp(d) for d in range(64)]
    return _EXP_LUT


def group_rows(
    rows: Iterable[int], keys: list
) -> tuple[list, list[list[int]] | None]:
    """Partition ``rows`` by ``keys`` in *first-arrival* order.

    Returns ``(ukeys, buckets)``: the unique keys ordered by first
    occurrence (``dict.fromkeys`` — one C-level pass) and, aligned with
    them, the per-group row-index lists.  ``buckets`` is ``None`` when
    the burst is homogeneous — the overwhelmingly common core case,
    where callers skip the partition entirely and treat ``rows`` as the
    single group.  First-arrival order matters for parity: cache fills
    happen in exactly the order the scalar loop would perform them.
    """
    ukd: dict[Any, list[int]] = dict.fromkeys(keys)  # type: ignore[arg-type]
    if len(ukd) == 1:
        return list(ukd), None
    for k in ukd:
        ukd[k] = []
    for r, k in zip(rows, keys):
        ukd[k].append(r)
    return list(ukd), list(ukd.values())


class PacketColumns:
    """One burst, transposed: parallel columns over ``items``.

    ``items`` is the kernel's burst — a list of ``(pkt, ifname)`` arrival
    tuples — and stays the row identity: row *i* of every column describes
    ``items[i][0]``.  The build is shape-adaptive: a pure-IP burst never
    touches label state, an all-labeled burst gathers straight off the
    top-of-stack entries, and only a mixed burst pays for a row-by-row
    walk.  Everything after construction operates on the columns until
    the materialization loop writes the decisions back.
    """

    __slots__ = ("items", "n", "tops", "ttl_list", "label_list",
                 "lab_rows", "all_labeled", "_stacks", "_wire", "_dst",
                 "_depth")

    def __init__(self, items: "list[tuple[Packet, str]]") -> None:
        self.items = items
        n = len(items)
        self.n = n
        self._stacks: list | None = None
        self._wire: list[int] | None = None
        self._dst: list[int] | None = None
        self._depth: list[int] | None = None
        # EAFP shape probe: gather the top-of-stack entries directly.  An
        # unlabeled row raises IndexError immediately (row 0 for a pure-IP
        # burst — the probe costs one exception), so the all-labeled core
        # shape pays exactly one pass over the packets and never builds
        # the stack column at all.
        try:
            tops: list | None = [p.mpls_stack[-1] for p, _ in items]
        except IndexError:
            tops = None
        if tops:
            # All-labeled burst (the core shape): gather off the tops;
            # keep the entry objects for in-place swap materialization.
            self.all_labeled = True
            self.lab_rows: Any = range(n)
            self.tops = tops
            self.label_list: list[int] | None = [t.label for t in tops]
            self.ttl_list = [t.ttl for t in tops]
            return
        self.all_labeled = False
        self.tops = None
        # Pure-IP probe, same trick in the other direction: gather IP
        # TTLs for unlabeled rows only — a full column means no row is
        # labeled (the edge shape), in one fused pass.
        ttl_ip = [p.ip.ttl for p, _ in items if not p.mpls_stack]
        if len(ttl_ip) == n:
            self.lab_rows = ()
            self.label_list = None
            self.ttl_list = ttl_ip
            return
        # Mixed burst: one manual walk fills both views.
        stacks = [p.mpls_stack for p, _ in items]
        self._stacks = stacks
        lab_rows: list[int] = []
        lab_append = lab_rows.append
        ttl_l = [0] * n
        label_l = [-1] * n
        i = 0
        for pkt, _ifname in items:
            s = stacks[i]
            if s:
                top = s[-1]
                lab_append(i)
                ttl_l[i] = top.ttl
                label_l[i] = top.label
            else:
                ttl_l[i] = pkt.ip.ttl
            i += 1
        self.lab_rows = lab_rows
        self.label_list = label_l
        self.ttl_list = ttl_l

    # ------------------------------------------------------------------
    # Lazy columns — assembled only when a stage asks for them.
    # ------------------------------------------------------------------
    def stacks_col(self) -> list:
        """The label-stack references, one attribute walk, memoized.
        Built eagerly only for mixed bursts (their row walk needs it);
        the uniform shapes materialize this lazily — usually never."""
        s = self._stacks
        if s is None:
            s = self._stacks = [p.mpls_stack for p, _ in self.items]
        return s

    def wire_col(self) -> list[int]:
        """Wire bytes per row, inlining the ``wire_bytes`` arithmetic.

        Memo-first: a packet that already crossed a hop (its transmitter
        read ``wire_bytes``) carries the byte count in ``_wire``, so the
        common arrival shape is one flat gather plus a C-level ``None``
        scan.  Only a burst with cold rows pays the arithmetic walk
        (encapsulated packets — ``inner`` set — take the recursive
        property).  The pipeline mutates this column in place on label
        pushes/pops and hands it to ``send_batch`` so queue byte
        accounting never re-reads the packets.
        """
        w = self._wire
        if w is None:
            w = [p._wire for p, _ in self.items]
            if None in w:
                hdr = IPV4_HEADER_BYTES
                shim = MPLS_SHIM_BYTES
                w = [
                    wv if (wv := p._wire) is not None
                    else (
                        p.wire_bytes if p.inner is not None
                        else hdr + shim * len(s) + p.payload_bytes
                        + p.encap_overhead
                    )
                    for (p, _), s in zip(self.items, self.stacks_col())
                ]
            self._wire = w
        return w

    def dst_keys(self) -> list[int]:
        """Destination key (``ip.dst.value``) per row — the flow-cache
        gather / local-delivery membership key.  Never built for a burst
        the label stages fully consume."""
        d = self._dst
        if d is None:
            d = self._dst = [p.ip.dst.value for p, _ in self.items]
        return d

    def depth_col(self) -> list[int]:
        """Label-stack depth per row (``POP_PROCESS`` rows only)."""
        d = self._depth
        if d is None:
            d = self._depth = list(map(len, self.stacks_col()))
        return d

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PacketColumns n={self.n} "
            f"labeled={len(self.lab_rows)}>"
        )
