"""The unified data-plane forwarding engine.

One :class:`ForwardingPipeline` instance per forwarding node replaces the
three hand-duplicated ``handle()`` implementations that ``Router``,
``Lsr``, and ``PeRouter`` used to carry.  The pipeline is staged::

    ingress ─→ [vrf-demux] ─→ [label-op] ─→ lookup ─→ [qos-mark] ─→ egress

Bracketed stages are enabled by composition, not subclass overrides: a
plain ``Router`` runs ingress → lookup → egress; an ``Lsr`` enables the
label-op stage (LFIB processing, FTN label imposition with DSCP→EXP
marking); a ``PeRouter`` additionally enables VRF demux for its
attachment circuits.  The per-hop semantics — TTL decrement before
lookup, drop taxonomy, flight-recorder event ordering — live here once,
which is what the paper's claim C4 ("label swapping makes the per-hop
data plane cheap and uniform") looks like as code.

Performance notes (measured, see benchmarks/test_simulator_performance.py):

* Zero-closure hot path: when a node's modeled processing cost is zero —
  the default — stages call each other directly; closures are allocated
  only when a nonzero cost forces a trip through the scheduler, and even
  then :meth:`Simulator.schedule_call` stores the arguments on the event
  instead of building a ``bind()`` closure.
* Exact-match fast caches: the destination→decision flow cache fronts the
  LPM trie, the label→entry cache fronts the LFIB, and per-VRF caches
  front the VRF tables.  All are generation-stamped (``GenCache``) so SPF
  reconvergence, ``reset_ldp``, FRR activation, and VRF churn invalidate
  them without any notification protocol.
* ``flow_hash`` memoizes its CRC32 on the packet — the 5-tuple is
  immutable for a packet's lifetime, so the ECMP key is computed at most
  once per packet rather than once per hop.

Logical lookup counters (``fib.lookups``, ``lfib.lookups``) are bumped on
cache hits too, so experiment E8's per-node lookup census keeps its
meaning ("packets that consulted this table") regardless of cache state.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Any

from repro.dataplane.caches import GenCache
from repro.net.address import IPv4Address, Prefix
from repro.net.drops import DropReason
from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.mpls.lfib import FtnTable, Lfib, Nhlfe
    from repro.routing.fib import Fib, RouteEntry

# MPLS symbols are resolved the first time a node enables the label-op
# stage: ``repro.mpls``'s package init pulls FRR → Lsr → Router, and Router
# imports this module, so a load-time import would close the cycle.  Until
# then both names are None — every code path that touches them is only
# reachable on MPLS-enabled pipelines.
LabelOp: Any = None
IMPLICIT_NULL: Any = None


def _resolve_mpls_symbols() -> None:
    global LabelOp, IMPLICIT_NULL
    if LabelOp is None:
        from repro.mpls.label import IMPLICIT_NULL as _implicit_null
        from repro.mpls.lfib import LabelOp as _label_op

        LabelOp = _label_op
        IMPLICIT_NULL = _implicit_null

__all__ = ["ForwardingPipeline", "flow_hash"]

# The stock PeRouter VPN-egress delivery hook, resolved lazily (importing
# repro.vpn.pe at load time would close the same cycle as the MPLS symbols
# above).  The batch path inlines VPN egress only when the node's
# ``vpn_deliver`` is exactly this method — a customized hook always gets
# the scalar call.
_PE_VPN_DELIVER: Any = None


def _stock_pe_deliver() -> Any:
    global _PE_VPN_DELIVER
    if _PE_VPN_DELIVER is None:
        from repro.vpn.pe import PeRouter

        _PE_VPN_DELIVER = PeRouter._vpn_deliver
    return _PE_VPN_DELIVER


def dscp_to_exp(dscp: int) -> int:
    """Self-replacing lazy alias for :func:`repro.qos.dscp.dscp_to_exp`.

    ``repro.qos``'s package init pulls IntServ, which pulls SPF, which
    needs ``Router`` — importing it at module load would close a cycle
    through this module.  The first call rebinds this global to the real
    function, so the hot path pays the indirection exactly once.
    """
    global dscp_to_exp
    from repro.qos.dscp import dscp_to_exp as real

    dscp_to_exp = real
    return real(dscp)


def flow_hash(pkt: Packet) -> int:
    """Stable per-flow hash over the 5-tuple (the classic ECMP key).

    CRC32 rather than ``hash()`` so path selection is identical across
    processes and Python versions — determinism again.  The result is
    memoized on the packet: the 5-tuple never mutates in flight, so the
    key string is built at most once per packet instead of at every ECMP
    hop.
    """
    h = pkt.flow_hash_cache
    if h is None:
        ip = pkt.ip
        key = f"{ip.src.value}|{ip.dst.value}|{ip.proto}|{ip.src_port}|{ip.dst_port}"
        h = zlib.crc32(key.encode("ascii"))
        pkt.flow_hash_cache = h
    return h


class ForwardingPipeline:
    """Staged forwarding engine shared by Router, Lsr, and PeRouter.

    The owning node supplies environment (interfaces, stats, trace bus,
    processing model) and the tables; the pipeline owns the per-packet
    control flow and the fast caches.  Stages read mutable node policy
    (``impose_exp``, ``qos_exp_mapping``, ``exp_mode``, ``vpn_deliver``)
    at packet time so experiments can flip them mid-run.
    """

    __slots__ = (
        "node", "sim", "fib", "lfib", "ftn", "vrf_of_circuit", "vrfs",
        "flow_cache", "label_cache", "tunnel_cache", "vrf_caches",
    )

    def __init__(self, node, fib: "Fib") -> None:
        self.node = node
        self.sim = node.sim
        self.fib = fib
        self.lfib: Lfib | None = None
        self.ftn: FtnTable | None = None
        self.vrf_of_circuit: dict | None = None
        self.vrfs: dict | None = None
        self.flow_cache = GenCache(fib)
        self.label_cache: GenCache | None = None
        self.tunnel_cache: GenCache | None = None
        self.vrf_caches: dict[str, GenCache] = {}

    # ------------------------------------------------------------------
    # Stage composition
    # ------------------------------------------------------------------
    def enable_mpls(self, lfib: Lfib, ftn: FtnTable) -> None:
        """Plug in the label-op stage (LSR): LFIB processing + imposition.

        The flow cache is rebuilt to also watch the FTN generation — an
        IP-path decision now includes "does this FEC have a binding".
        """
        _resolve_mpls_symbols()
        self.lfib = lfib
        self.ftn = ftn
        self.flow_cache = GenCache(self.fib, ftn)
        self.label_cache = GenCache(lfib)

    def enable_vrf_demux(self, vrf_of_circuit: dict, vrfs: dict) -> None:
        """Plug in the VRF demux stage (PE): circuit→VRF ingress mapping."""
        assert self.ftn is not None, "VRF demux requires the MPLS stage"
        self.vrf_of_circuit = vrf_of_circuit
        self.vrfs = vrfs
        self.tunnel_cache = GenCache(self.ftn)

    def stages(self) -> tuple[str, ...]:
        """The composed stage sequence (for conformance tests and docs)."""
        out = ["ingress"]
        if self.vrf_of_circuit is not None:
            out.append("vrf-demux")
        if self.lfib is not None:
            out.append("label-op")
        out.append("lookup")
        if self.lfib is not None:
            out.append("qos-mark")
        out.append("egress")
        return tuple(out)

    # ------------------------------------------------------------------
    # Ingress stage
    # ------------------------------------------------------------------
    def ingress(self, pkt: Packet, ifname: str) -> None:
        """Entry point from ``Node.handle``: demux to the right stage.

        Zero modeled cost (the default) falls straight through to the
        next stage — no closure, no scheduler round-trip.  Nonzero costs
        go through ``schedule_call``, which stores the stage arguments on
        the event rather than allocating a closure.
        """
        node = self.node
        if self.vrf_of_circuit is not None and not pkt.mpls_stack:
            vrf = self.vrf_of_circuit.get(ifname)
            if vrf is not None:
                # Customer packet entering its VPN at this PE.
                cost = node.processing.ip_lookup_s
                if cost <= 0.0:
                    self.customer_stage(pkt, vrf)
                else:
                    self.sim.schedule_call(cost, self.customer_stage, pkt, vrf)
                return
        if pkt.mpls_stack:
            if self.lfib is None:
                # Labeled packet at a non-MPLS router: the deployment
                # scenario of Fig. 4 never lets this happen (LSPs terminate
                # at LSR edges); treat it as a configuration error rather
                # than silently routing.
                node.drop(pkt, DropReason.LABELED_AT_IP_ROUTER)
                return
            cost = node.processing.label_lookup_s
            if cost <= 0.0:
                self.mpls_stage(pkt)
            else:
                self.sim.schedule_call(cost, self.mpls_stage, pkt)
            return
        if node.owns(pkt.ip.dst):
            node.deliver_local(pkt)
            return
        cost = node.processing.ip_lookup_s
        if cost <= 0.0:
            self.ip_stage(pkt)
        else:
            self.sim.schedule_call(cost, self.ip_stage, pkt)

    # ------------------------------------------------------------------
    # Vector fast path
    # ------------------------------------------------------------------
    def ingress_batch(self, items: "list[tuple[Packet, str]]") -> None:
        """Vector entry point (``Router.receive_batch``): one burst, one loop.

        Packets are processed *sequentially in arrival order* through the
        full per-packet pipeline — TTL, flight-recorder records, drops,
        and ECMP hashing all happen per packet, so the side-effect
        sequence is bit-identical to N scalar ``receive`` calls (the
        parity contract of ``tests/test_dataplane_batch.py``).  The win is
        amortization: the receive/handle/ingress/stage call frames
        collapse into one loop, loop-invariant attributes (tables, trace
        sinks, node policy — none of which can mutate mid-burst, since
        control-plane work is never run synchronously from packet
        delivery) are hoisted, and each GenCache is generation-checked
        once per burst (:meth:`GenCache.sync`) with the loop probing the
        entry dict directly; hit/miss/lookup counters are bumped to
        exactly what per-packet ``get`` calls would have recorded.

        Nodes with modeled per-packet CPU cost fall back to the scalar
        path — their stages go through the scheduler anyway.

        Egress run coalescing: with no flight recorder and no drop
        subscriber attached, consecutive packets that resolve to the same
        egress interface are buffered and flushed through one
        ``Interface.send_batch`` call.  Runs break at every interface
        change and are flushed before any side path that could touch an
        interface out of order (``transmit``, VPN egress, local
        delivery), so per-interface op order — queue occupancy, AQM
        verdicts, kick timing — is exactly the scalar sequence.  When
        either observer is attached the per-packet ``send`` path runs
        instead, keeping the record interleave bit-identical.
        """
        node = self.node
        processing = node.processing
        if processing.ip_lookup_s > 0.0 or processing.label_lookup_s > 0.0:
            receive = node.receive
            for pkt, ifname in items:
                receive(pkt, ifname)
            return
        now = self.sim.now
        stats = node.stats
        trace = node.trace
        fl = trace.flight
        fa = trace.flows
        name = node.name
        addresses = node.addresses
        interfaces = node.interfaces
        drop = node.drop
        deliver_local = node.deliver_local
        transmit = node.transmit
        fib = self.fib
        ftn = self.ftn
        lfib = self.lfib
        flow_cache = self.flow_cache
        flow_entries = flow_cache.sync()
        voc = self.vrf_of_circuit
        if lfib is not None:
            label_cache = self.label_cache
            label_entries = label_cache.sync()
            op_swap = LabelOp.SWAP
            op_pop = LabelOp.POP
            op_pop_process = LabelOp.POP_PROCESS
            op_swap_push = LabelOp.SWAP_PUSH
            op_vpn = LabelOp.VPN
            implicit_null = IMPLICIT_NULL
            impose_exp = node.impose_exp
            vpn_deliver = node.vpn_deliver
            pe_fast = (
                self.vrfs is not None
                and vpn_deliver is not None
                and getattr(vpn_deliver, "__func__", None) is _stock_pe_deliver()
            )
            # Per-burst memo of vrf-name → Vrf object (satellite of the
            # vector PR): vpn_egress resolved ``vrfs.get`` per packet.
            # Cross-burst memoization would dodge the Vrf generation
            # guard, so the memo's lifetime is exactly one burst.
            vrf_objs: dict[str, Any] = {}
        else:
            impose_exp = implicit_null = None
        vec_tx = fl is None and not trace.active("drop")
        run_name: str | None = None
        run_iface: Any = None
        run_pkts: list[Packet] | None = None

        def tx_cold(pkt: Packet, out: str) -> None:
            # Run boundary (or scalar fallback): resolve the interface,
            # flush the open run, start the next one.
            nonlocal run_name, run_iface, run_pkts
            iface = interfaces.get(out)
            if iface is None or iface.link is None:
                drop(pkt, DropReason.NO_IFACE)
                return
            if not vec_tx:
                stats.forwarded += 1
                iface.send(pkt)
                return
            if run_name is not None:
                stats.forwarded += len(run_pkts)
                run_iface.send_batch(run_pkts)
            run_name = out
            run_iface = iface
            run_pkts = [pkt]

        def flush_run() -> None:
            nonlocal run_name, run_iface, run_pkts
            if run_name is not None:
                stats.forwarded += len(run_pkts)
                run_iface.send_batch(run_pkts)
                run_name = run_iface = run_pkts = None

        stats.rx_packets += len(items)
        for pkt, ifname in items:
            pkt.hops += 1
            if fl is not None:
                fl.rx(now, name, pkt, ifname)
            stack = pkt.mpls_stack
            if stack:
                if lfib is None:
                    drop(pkt, DropReason.LABELED_AT_IP_ROUTER)
                    continue
                # ---- label-op stage, probes on the synced entry dict ----
                to_ip = False
                while True:
                    top = stack[-1]
                    label = top.label
                    entry = label_entries.get(label)
                    if entry is None:
                        label_cache.misses += 1
                        entry = lfib.lookup(label)
                        if entry is None:
                            drop(pkt, DropReason.NO_LABEL)
                            break
                        label_cache.put(label, entry)
                    else:
                        label_cache.hits += 1
                        lfib.lookups += 1
                    op = entry.op
                    if op is op_swap:
                        if pkt.decrement_ttl() <= 0:
                            drop(pkt, DropReason.TTL)
                            break
                        if fl is not None:
                            fl.label_op(now, name, pkt, "swap",
                                        old=label, new=entry.out_label)
                        pkt.swap_label(entry.out_label)
                        out = entry.out_ifname
                        if out == run_name:
                            run_pkts.append(pkt)
                        else:
                            tx_cold(pkt, out)
                        break
                    if op is op_pop:
                        if pkt.decrement_ttl() <= 0:
                            drop(pkt, DropReason.TTL)
                            break
                        if fl is not None:
                            fl.label_op(now, name, pkt, "pop", old=label)
                        pkt.pop_label()
                        out = entry.out_ifname
                        if out == run_name:
                            run_pkts.append(pkt)
                        else:
                            tx_cold(pkt, out)
                        break
                    if op is op_pop_process:
                        if fl is not None:
                            fl.label_op(now, name, pkt, "pop", old=label)
                        pkt.pop_label()
                        if stack:
                            continue  # inner label is also ours
                        if pkt.ip.dst in addresses:
                            flush_run()  # sinks may inject traffic
                            deliver_local(pkt)
                        else:
                            to_ip = True
                        break
                    if op is op_swap_push:
                        if pkt.decrement_ttl() <= 0:
                            drop(pkt, DropReason.TTL)
                            break
                        exp = top.exp
                        if fl is not None:
                            fl.label_op(now, name, pkt, "swap",
                                        old=label, new=entry.out_label)
                            fl.label_op(now, name, pkt, "push",
                                        new=entry.push_label)
                        pkt.swap_label(entry.out_label)
                        pkt.push_label(entry.push_label, exp=exp)
                        flush_run()  # ordinary transmit may share the run's iface
                        transmit(pkt, entry.out_ifname)
                        break
                    if op is op_vpn:
                        if fl is not None:
                            fl.label_op(now, name, pkt, "pop", old=label)
                        pkt.pop_label()
                        if not pe_fast:
                            if vpn_deliver is None:
                                drop(pkt, DropReason.VPN_LABEL_NO_VRF)
                            else:
                                flush_run()  # hook may transmit or deliver
                                vpn_deliver(pkt, entry.vrf)
                            break
                        vrf_name = entry.vrf
                        vrf = vrf_objs.get(vrf_name)
                        if vrf is None:
                            vrf = self.vrfs.get(vrf_name)
                            if vrf is None:
                                drop(pkt, DropReason.UNKNOWN_VRF)
                                break
                            vrf_objs[vrf_name] = vrf
                        flush_run()  # VPN egress transmits internally
                        self._vpn_egress_vrf(pkt, vrf, fa)
                        break
                    drop(pkt, DropReason.BAD_LFIB_OP)  # pragma: no cover
                    break
                if not to_ip:
                    continue
            else:
                if voc is not None:
                    vrf = voc.get(ifname)
                    if vrf is not None:
                        # ---- customer stage, ``fa`` hoisted per burst ----
                        if fa is not None:
                            fa.ingress(name, vrf.name, pkt)
                        if pkt.decrement_ttl() <= 0:
                            drop(pkt, DropReason.TTL)
                            continue
                        route = self._vrf_lookup(vrf, pkt.ip.dst)
                        if route is None:
                            drop(pkt, DropReason.NO_VRF_ROUTE)
                            continue
                        flush_run()  # customer egress transmits internally
                        if route.kind == "local":
                            transmit(pkt, route.out_ifname)
                        else:
                            self.remote_stage(pkt, route)
                        continue
                if pkt.ip.dst in addresses:
                    flush_run()  # sinks may inject traffic
                    deliver_local(pkt)
                    continue
            # ---- ip stage (unlabeled transit, or the POP_PROCESS tail) ----
            if pkt.decrement_ttl() <= 0:
                drop(pkt, DropReason.TTL)
                continue
            dst = pkt.ip.dst
            dv = dst.value
            decision = flow_entries.get(dv)
            if decision is None:
                flow_cache.misses += 1
                if ftn is None:
                    route = fib.lookup(dst)
                    nhlfe = None
                else:
                    match = fib.lookup_prefix(dst)
                    if match is None:
                        route = nhlfe = None
                    else:
                        prefix, route = match
                        nhlfe = ftn.lookup(prefix)
                flow_cache.put(dv, (route, nhlfe))
            else:
                flow_cache.hits += 1
                route, nhlfe = decision
                if ftn is None:
                    fib.lookups += 1
            if nhlfe is not None:
                # ---- qos-mark stage (imposition) ----
                exp = (
                    impose_exp if impose_exp is not None
                    else dscp_to_exp(pkt.ip.dscp)
                )
                for lbl in nhlfe.labels:
                    if lbl == implicit_null:
                        continue
                    if fl is not None:
                        fl.label_op(now, name, pkt, "push", new=lbl)
                    pkt.push_label(lbl, exp=exp)
                out = nhlfe.out_ifname
                if out == run_name:
                    run_pkts.append(pkt)
                else:
                    tx_cold(pkt, out)
                continue
            if route is None:
                drop(pkt, DropReason.NO_ROUTE)
                continue
            # ---- egress dispatch (per-packet ECMP hash) ----
            if route.alternates:
                paths = route.all_paths
                out = paths[flow_hash(pkt) % len(paths)][0]
            else:
                out = route.out_ifname
            if out == run_name:
                run_pkts.append(pkt)
            else:
                tx_cold(pkt, out)
        flush_run()

    # ------------------------------------------------------------------
    # Label-op stage (MPLS fast path)
    # ------------------------------------------------------------------
    def mpls_stage(self, pkt: Packet) -> None:
        """LFIB processing for the top of stack; iterative across pops.

        ``POP_PROCESS`` on a multi-level stack continues the loop instead
        of recursing, so label-stack depth costs no Python stack frames.
        """
        node = self.node
        sim = self.sim
        lfib = self.lfib
        cache = self.label_cache
        fl = node.trace.flight
        while True:
            top = pkt.mpls_stack[-1]
            label = top.label
            entry = cache.get(label)
            if entry is None:
                entry = lfib.lookup(label)
                if entry is None:
                    node.drop(pkt, DropReason.NO_LABEL)
                    return
                cache.put(label, entry)
            else:
                lfib.lookups += 1  # logical lookup served from the cache
            op = entry.op
            if op is LabelOp.SWAP:
                if pkt.decrement_ttl() <= 0:
                    node.drop(pkt, DropReason.TTL)
                    return
                if fl is not None:
                    fl.label_op(sim.now, node.name, pkt, "swap",
                                old=label, new=entry.out_label)
                pkt.swap_label(entry.out_label)  # EXP is preserved across swaps
                node.transmit(pkt, entry.out_ifname)
                return
            if op is LabelOp.POP:
                if pkt.decrement_ttl() <= 0:
                    node.drop(pkt, DropReason.TTL)
                    return
                if fl is not None:
                    fl.label_op(sim.now, node.name, pkt, "pop", old=label)
                pkt.pop_label()
                node.transmit(pkt, entry.out_ifname)
                return
            if op is LabelOp.POP_PROCESS:
                if fl is not None:
                    fl.label_op(sim.now, node.name, pkt, "pop", old=label)
                pkt.pop_label()
                if pkt.mpls_stack:
                    continue  # inner label is also ours
                if node.owns(pkt.ip.dst):
                    node.deliver_local(pkt)
                else:
                    self.ip_stage(pkt)
                return
            if op is LabelOp.SWAP_PUSH:
                # FRR local repair: restore the label the merge point
                # expects, then tunnel it over the bypass LSP.  EXP is
                # copied onto the bypass entry so the detour keeps the class.
                if pkt.decrement_ttl() <= 0:
                    node.drop(pkt, DropReason.TTL)
                    return
                exp = top.exp
                if fl is not None:
                    fl.label_op(sim.now, node.name, pkt, "swap",
                                old=label, new=entry.out_label)
                    fl.label_op(sim.now, node.name, pkt, "push",
                                new=entry.push_label)
                pkt.swap_label(entry.out_label)
                pkt.push_label(entry.push_label, exp=exp)
                node.transmit(pkt, entry.out_ifname)
                return
            if op is LabelOp.VPN:
                if fl is not None:
                    fl.label_op(sim.now, node.name, pkt, "pop", old=label)
                pkt.pop_label()
                vpn_deliver = node.vpn_deliver
                if vpn_deliver is None:
                    node.drop(pkt, DropReason.VPN_LABEL_NO_VRF)
                else:
                    vpn_deliver(pkt, entry.vrf)
                return
            node.drop(pkt, DropReason.BAD_LFIB_OP)  # pragma: no cover
            return

    # ------------------------------------------------------------------
    # Lookup stage (IP path, with optional label imposition)
    # ------------------------------------------------------------------
    def ip_stage(self, pkt: Packet) -> None:
        """TTL, flow-cache / LPM lookup, FTN imposition check, dispatch."""
        node = self.node
        if pkt.decrement_ttl() <= 0:
            node.drop(pkt, DropReason.TTL)
            return
        fib = self.fib
        ftn = self.ftn
        dst = pkt.ip.dst
        decision = self.flow_cache.get(dst.value)
        if decision is None:
            if ftn is None:
                route = fib.lookup(dst)
                nhlfe = None
            else:
                match = fib.lookup_prefix(dst)
                if match is None:
                    route = nhlfe = None
                else:
                    prefix, route = match
                    nhlfe = ftn.lookup(prefix)
            self.flow_cache.put(dst.value, (route, nhlfe))
        else:
            route, nhlfe = decision
            if ftn is None:
                fib.lookups += 1  # logical lookup served from the cache
        if nhlfe is not None:
            self.impose(pkt, nhlfe)
            return
        if route is None:
            node.drop(pkt, DropReason.NO_ROUTE)
            return
        self.dispatch(pkt, route)

    # ------------------------------------------------------------------
    # QoS-mark stage (label imposition with DSCP→EXP)
    # ------------------------------------------------------------------
    def impose(self, pkt: Packet, nhlfe: Nhlfe) -> None:
        """Push the NHLFE's label stack and transmit.

        Implicit-null labels in the stack are not pushed (PHP on a one-hop
        tunnel).  EXP comes from the packet's DSCP unless the node's
        ``impose_exp`` pins a fixed value.
        """
        node = self.node
        impose_exp = node.impose_exp
        exp = impose_exp if impose_exp is not None else dscp_to_exp(pkt.ip.dscp)
        fl = node.trace.flight
        for label in nhlfe.labels:
            if label == IMPLICIT_NULL:
                continue
            if fl is not None:
                fl.label_op(self.sim.now, node.name, pkt, "push", new=label)
            pkt.push_label(label, exp=exp)
        node.transmit(pkt, nhlfe.out_ifname)

    # ------------------------------------------------------------------
    # Egress dispatch stage
    # ------------------------------------------------------------------
    def dispatch(self, pkt: Packet, entry: "RouteEntry") -> None:
        """Send ``pkt`` out the interface selected by ``entry``.

        With ECMP alternates present, the egress is chosen by the
        (memoized) flow hash — all packets of one flow share a path (no
        reordering), while distinct flows spread across the equal-cost set.
        """
        if entry.alternates:
            paths = entry.all_paths
            out_ifname, _nh = paths[flow_hash(pkt) % len(paths)]
            self.node.transmit(pkt, out_ifname)
            return
        self.node.transmit(pkt, entry.out_ifname)

    # ------------------------------------------------------------------
    # VRF stages (PE)
    # ------------------------------------------------------------------
    def _vrf_lookup(self, vrf, dst: IPv4Address) -> Any:
        """Cached LPM inside one VRF; negative results are not cached."""
        cache = self.vrf_caches.get(vrf.name)
        if cache is None:
            cache = self.vrf_caches[vrf.name] = GenCache(vrf)
        route = cache.get(dst.value)
        if route is None:
            route = vrf.lookup(dst)
            if route is not None:
                cache.put(dst.value, route)
        return route

    def customer_stage(self, pkt: Packet, vrf) -> None:
        """Customer packet arriving on an attachment circuit (VPN ingress)."""
        node = self.node
        fa = node.trace.flows
        if fa is not None:
            fa.ingress(node.name, vrf.name, pkt)
        if pkt.decrement_ttl() <= 0:
            node.drop(pkt, DropReason.TTL)
            return
        route = self._vrf_lookup(vrf, pkt.ip.dst)
        if route is None:
            node.drop(pkt, DropReason.NO_VRF_ROUTE)
            return
        if route.kind == "local":
            # Site-to-site through one PE (both sites on this PE).
            node.transmit(pkt, route.out_ifname)
            return
        self.remote_stage(pkt, route)

    def remote_stage(self, pkt: Packet, route) -> None:
        """Impose the two-level VPN stack and enter the tunnel to the
        egress PE (QoS-mark: DSCP copied into EXP per the node's policy)."""
        node = self.node
        exp = dscp_to_exp(pkt.ip.dscp) if node.qos_exp_mapping else 0
        inner_exp = exp if node.exp_mode == "both" else 0
        fl = node.trace.flight
        if fl is not None:
            fl.label_op(self.sim.now, node.name, pkt, "push", new=route.vpn_label)
        pkt.push_label(route.vpn_label, exp=inner_exp)
        # Resolve the tunnel to the egress PE's loopback through the FTN
        # (an LDP binding or a TE tunnel autoroute).
        tunnel = self._tunnel_nhlfe(route.remote_pe)
        if tunnel is None:
            pkt.pop_label()
            node.drop(pkt, DropReason.NO_TUNNEL)
            return
        for label in tunnel.labels:
            if label != IMPLICIT_NULL:
                if fl is not None:
                    fl.label_op(self.sim.now, node.name, pkt, "push", new=label)
                pkt.push_label(label, exp=exp)
        node.transmit(pkt, tunnel.out_ifname)

    def _tunnel_nhlfe(self, remote_pe: IPv4Address) -> Nhlfe | None:
        """Cached FTN resolution of an egress-PE loopback (/32 FEC)."""
        cache = self.tunnel_cache
        nhlfe = cache.get(remote_pe.value)
        if nhlfe is None:
            nhlfe = self.ftn.lookup(Prefix.of(remote_pe, 32))
            if nhlfe is not None:
                cache.put(remote_pe.value, nhlfe)
        return nhlfe

    def vpn_egress(self, pkt: Packet, vrf_name: str) -> None:
        """Egress side: tunnel label already removed, VPN label popped."""
        node = self.node
        vrfs = self.vrfs
        vrf = vrfs.get(vrf_name) if vrfs is not None else None
        if vrf is None:
            node.drop(pkt, DropReason.UNKNOWN_VRF)
            return
        self._vpn_egress_vrf(pkt, vrf, node.trace.flows)

    def _vpn_egress_vrf(self, pkt: Packet, vrf, fa) -> None:
        """Egress tail with the VRF already resolved.

        The batch path enters here directly, with ``fa`` hoisted per
        burst and the VRF object memoized across the burst's packets.
        """
        node = self.node
        if fa is not None:
            fa.egress(node.name, vrf.name, pkt)
        route = self._vrf_lookup(vrf, pkt.ip.dst)
        if route is None or route.kind != "local":
            # Hairpinning remote->remote through an egress PE would be a
            # provisioning loop; refuse rather than bounce across the core.
            node.drop(pkt, DropReason.NO_VRF_ROUTE)
            return
        node.transmit(pkt, route.out_ifname)

    # ------------------------------------------------------------------
    def cache_stats(self) -> dict[str, Any]:
        """Counters for every enabled cache (observability/test hook)."""
        out: dict[str, Any] = {"flow": self.flow_cache.stats()}
        if self.label_cache is not None:
            out["label"] = self.label_cache.stats()
        if self.tunnel_cache is not None:
            out["tunnel"] = self.tunnel_cache.stats()
        if self.vrf_caches:
            out["vrf"] = {name: c.stats() for name, c in self.vrf_caches.items()}
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ForwardingPipeline {self.node.name} {'+'.join(self.stages())}>"
