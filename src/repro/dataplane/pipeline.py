"""The unified data-plane forwarding engine.

One :class:`ForwardingPipeline` instance per forwarding node replaces the
three hand-duplicated ``handle()`` implementations that ``Router``,
``Lsr``, and ``PeRouter`` used to carry.  The pipeline is staged::

    ingress ─→ [vrf-demux] ─→ [label-op] ─→ lookup ─→ [qos-mark] ─→ egress

Bracketed stages are enabled by composition, not subclass overrides: a
plain ``Router`` runs ingress → lookup → egress; an ``Lsr`` enables the
label-op stage (LFIB processing, FTN label imposition with DSCP→EXP
marking); a ``PeRouter`` additionally enables VRF demux for its
attachment circuits.  The per-hop semantics — TTL decrement before
lookup, drop taxonomy, flight-recorder event ordering — live here once,
which is what the paper's claim C4 ("label swapping makes the per-hop
data plane cheap and uniform") looks like as code.

Performance notes (measured, see benchmarks/test_simulator_performance.py):

* Zero-closure hot path: when a node's modeled processing cost is zero —
  the default — stages call each other directly; closures are allocated
  only when a nonzero cost forces a trip through the scheduler, and even
  then :meth:`Simulator.schedule_call` stores the arguments on the event
  instead of building a ``bind()`` closure.
* Exact-match fast caches: the destination→decision flow cache fronts the
  LPM trie, the label→entry cache fronts the LFIB, and per-VRF caches
  front the VRF tables.  All are generation-stamped (``GenCache``) so SPF
  reconvergence, ``reset_ldp``, FRR activation, and VRF churn invalidate
  them without any notification protocol.
* ``flow_hash`` memoizes its CRC32 on the packet — the 5-tuple is
  immutable for a packet's lifetime, so the ECMP key is computed at most
  once per packet rather than once per hop.

Logical lookup counters (``fib.lookups``, ``lfib.lookups``) are bumped on
cache hits too, so experiment E8's per-node lookup census keeps its
meaning ("packets that consulted this table") regardless of cache state.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.dataplane.caches import GenCache
from repro.dataplane.columns import PacketColumns, exp_lut, group_rows
from repro.net.address import IPv4Address, Prefix
from repro.net.drops import DropReason
from repro.net.packet import MplsEntry, Packet

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.mpls.lfib import FtnTable, Lfib, Nhlfe
    from repro.routing.fib import Fib, RouteEntry

# MPLS symbols are resolved the first time a node enables the label-op
# stage: ``repro.mpls``'s package init pulls FRR → Lsr → Router, and Router
# imports this module, so a load-time import would close the cycle.  Until
# then both names are None — every code path that touches them is only
# reachable on MPLS-enabled pipelines.
LabelOp: Any = None
IMPLICIT_NULL: Any = None


def _resolve_mpls_symbols() -> None:
    global LabelOp, IMPLICIT_NULL
    if LabelOp is None:
        from repro.mpls.label import IMPLICIT_NULL as _implicit_null
        from repro.mpls.lfib import LabelOp as _label_op

        LabelOp = _label_op
        IMPLICIT_NULL = _implicit_null

__all__ = ["ForwardingPipeline", "flow_hash", "COLUMNAR_MIN"]

#: Minimum burst size for the columnar (struct-of-arrays) path: below it
#: the ndarray setup costs more than the per-row loop saves.  Module-level
#: and read at call time so the parity tests can force tiny bursts through
#: the columnar resolver (monkeypatch it to 1).
COLUMNAR_MIN = 4

# Row action codes for the columnar resolve/apply split.  Resolution fills
# an int action column + a decision index per row; the apply loop is a
# single in-order pass that materializes each action back onto the packet.
_A_PENDING = 0      # awaiting the dst-key gather (the ip stage)
_A_IP = 1           # plain IP forward (includes implicit-null imposition)
_A_IMPOSE = 2       # push the NHLFE's label stack, then forward
_A_ECMP = 3         # IP forward, per-flow path choice
_A_SWAP = 4         # label swap
_A_POP = 5          # penultimate-hop pop
_A_LOCAL = 6        # deliver to local sinks
_A_POPP_LOCAL = 7   # pop the last label, then deliver locally
_A_VPN = 8          # VPN egress (stock PE hook, VRF group-resolved)
_A_VRF = 9          # attachment-circuit ingress (customer stage)
_A_SLOW = 10        # exotic label op, per-row scalar continuation
_A_DROP = 11        # drop; no header mutation happened
_A_DROPW = 12       # drop after writing back the decremented TTL

# Label-stack entries built on the imposition fast path skip the dataclass
# __init__/__post_init__ (labels come from the NHLFE, EXP from the 3-bit
# LUT — both validated at install time, same trust the scalar path places
# in swap_label's entry fields).
_NEW_MPLS = object.__new__

# The stock PeRouter VPN-egress delivery hook, resolved lazily (importing
# repro.vpn.pe at load time would close the same cycle as the MPLS symbols
# above).  The batch path inlines VPN egress only when the node's
# ``vpn_deliver`` is exactly this method — a customized hook always gets
# the scalar call.
_PE_VPN_DELIVER: Any = None


def _stock_pe_deliver() -> Any:
    global _PE_VPN_DELIVER
    if _PE_VPN_DELIVER is None:
        from repro.vpn.pe import PeRouter

        _PE_VPN_DELIVER = PeRouter._vpn_deliver
    return _PE_VPN_DELIVER


def dscp_to_exp(dscp: int) -> int:
    """Self-replacing lazy alias for :func:`repro.qos.dscp.dscp_to_exp`.

    ``repro.qos``'s package init pulls IntServ, which pulls SPF, which
    needs ``Router`` — importing it at module load would close a cycle
    through this module.  The first call rebinds this global to the real
    function, so the hot path pays the indirection exactly once.
    """
    global dscp_to_exp
    from repro.qos.dscp import dscp_to_exp as real

    dscp_to_exp = real
    return real(dscp)


def flow_hash(pkt: Packet) -> int:
    """Stable per-flow hash over the 5-tuple (the classic ECMP key).

    CRC32 rather than ``hash()`` so path selection is identical across
    processes and Python versions — determinism again.  The result is
    memoized on the packet: the 5-tuple never mutates in flight, so the
    key string is built at most once per packet instead of at every ECMP
    hop.
    """
    h = pkt.flow_hash_cache
    if h is None:
        ip = pkt.ip
        key = f"{ip.src.value}|{ip.dst.value}|{ip.proto}|{ip.src_port}|{ip.dst_port}"
        h = zlib.crc32(key.encode("ascii"))
        pkt.flow_hash_cache = h
    return h


class ForwardingPipeline:
    """Staged forwarding engine shared by Router, Lsr, and PeRouter.

    The owning node supplies environment (interfaces, stats, trace bus,
    processing model) and the tables; the pipeline owns the per-packet
    control flow and the fast caches.  Stages read mutable node policy
    (``impose_exp``, ``qos_exp_mapping``, ``exp_mode``, ``vpn_deliver``)
    at packet time so experiments can flip them mid-run.
    """

    __slots__ = (
        "node", "sim", "fib", "lfib", "ftn", "vrf_of_circuit", "vrfs",
        "flow_cache", "label_cache", "tunnel_cache", "vrf_caches",
    )

    def __init__(self, node, fib: "Fib") -> None:
        self.node = node
        self.sim = node.sim
        self.fib = fib
        self.lfib: Lfib | None = None
        self.ftn: FtnTable | None = None
        self.vrf_of_circuit: dict | None = None
        self.vrfs: dict | None = None
        self.flow_cache = GenCache(fib)
        self.label_cache: GenCache | None = None
        self.tunnel_cache: GenCache | None = None
        self.vrf_caches: dict[str, GenCache] = {}

    # ------------------------------------------------------------------
    # Stage composition
    # ------------------------------------------------------------------
    def enable_mpls(self, lfib: Lfib, ftn: FtnTable) -> None:
        """Plug in the label-op stage (LSR): LFIB processing + imposition.

        The flow cache is rebuilt to also watch the FTN generation — an
        IP-path decision now includes "does this FEC have a binding".
        """
        _resolve_mpls_symbols()
        self.lfib = lfib
        self.ftn = ftn
        self.flow_cache = GenCache(self.fib, ftn)
        self.label_cache = GenCache(lfib)

    def enable_vrf_demux(self, vrf_of_circuit: dict, vrfs: dict) -> None:
        """Plug in the VRF demux stage (PE): circuit→VRF ingress mapping."""
        assert self.ftn is not None, "VRF demux requires the MPLS stage"
        self.vrf_of_circuit = vrf_of_circuit
        self.vrfs = vrfs
        self.tunnel_cache = GenCache(self.ftn)

    def stages(self) -> tuple[str, ...]:
        """The composed stage sequence (for conformance tests and docs)."""
        out = ["ingress"]
        if self.vrf_of_circuit is not None:
            out.append("vrf-demux")
        if self.lfib is not None:
            out.append("label-op")
        out.append("lookup")
        if self.lfib is not None:
            out.append("qos-mark")
        out.append("egress")
        return tuple(out)

    # ------------------------------------------------------------------
    # Ingress stage
    # ------------------------------------------------------------------
    def ingress(self, pkt: Packet, ifname: str) -> None:
        """Entry point from ``Node.handle``: demux to the right stage.

        Zero modeled cost (the default) falls straight through to the
        next stage — no closure, no scheduler round-trip.  Nonzero costs
        go through ``schedule_call``, which stores the stage arguments on
        the event rather than allocating a closure.
        """
        node = self.node
        if self.vrf_of_circuit is not None and not pkt.mpls_stack:
            vrf = self.vrf_of_circuit.get(ifname)
            if vrf is not None:
                # Customer packet entering its VPN at this PE.
                cost = node.processing.ip_lookup_s
                if cost <= 0.0:
                    self.customer_stage(pkt, vrf)
                else:
                    self.sim.schedule_call(cost, self.customer_stage, pkt, vrf)
                return
        if pkt.mpls_stack:
            if self.lfib is None:
                # Labeled packet at a non-MPLS router: the deployment
                # scenario of Fig. 4 never lets this happen (LSPs terminate
                # at LSR edges); treat it as a configuration error rather
                # than silently routing.
                node.drop(pkt, DropReason.LABELED_AT_IP_ROUTER)
                return
            cost = node.processing.label_lookup_s
            if cost <= 0.0:
                self.mpls_stage(pkt)
            else:
                self.sim.schedule_call(cost, self.mpls_stage, pkt)
            return
        if node.owns(pkt.ip.dst):
            node.deliver_local(pkt)
            return
        cost = node.processing.ip_lookup_s
        if cost <= 0.0:
            self.ip_stage(pkt)
        else:
            self.sim.schedule_call(cost, self.ip_stage, pkt)

    # ------------------------------------------------------------------
    # Vector fast path
    # ------------------------------------------------------------------
    def ingress_batch(self, items: "list[tuple[Packet, str]]") -> None:
        """Vector entry point (``Router.receive_batch``): dispatch one burst.

        Three tiers, all observationally identical to N scalar ``receive``
        calls (the parity contract of ``tests/test_dataplane_batch.py``):

        * Nodes with modeled per-packet CPU cost fall back to the scalar
          path — their stages go through the scheduler anyway.
        * The **columnar** path (:meth:`_ingress_columns`): the burst is
          transposed into :class:`~repro.dataplane.columns.PacketColumns`
          and forwarding decisions are resolved per *unique* key with
          vectorized gathers/masks, materializing back onto the packets
          in one in-order apply pass.  Taken whenever the burst is big
          enough to amortize the ndarray setup (``COLUMNAR_MIN``).  With
          a flight recorder or drop subscriber attached, the apply pass
          emits per-row records and sends per packet, so the observable
          interleave stays bit-identical to the scalar sequence; the
          uniform whole-burst shortcuts and egress run coalescing engage
          only when untraced.  Capacity-bounded caches are fine here:
          they evict at per-burst epoch boundaries (:meth:`GenCache.sync`),
          never on insert, so no fill can invalidate another group's
          pre-gathered entry mid-burst.
        * The hoisted per-row loop (:meth:`_ingress_batch_loop`)
          otherwise — the small-burst tier, and the reference the
          columnar path is tested against.
        """
        node = self.node
        processing = node.processing
        if processing.ip_lookup_s > 0.0 or processing.label_lookup_s > 0.0:
            receive = node.receive
            for pkt, ifname in items:
                receive(pkt, ifname)
            return
        if len(items) >= COLUMNAR_MIN:
            self._ingress_columns(items)
            return
        self._ingress_batch_loop(items)

    def _ingress_batch_loop(self, items: "list[tuple[Packet, str]]") -> None:
        """Hoisted per-row burst loop (the traced / small-burst tier).

        Packets are processed *sequentially in arrival order* through the
        full per-packet pipeline — TTL, flight-recorder records, drops,
        and ECMP hashing all happen per packet, so the side-effect
        sequence is bit-identical to N scalar ``receive`` calls.  The win
        is amortization: the receive/handle/ingress/stage call frames
        collapse into one loop, loop-invariant attributes (tables, trace
        sinks, node policy — none of which can mutate mid-burst, since
        control-plane work is never run synchronously from packet
        delivery) are hoisted, and each GenCache is generation-checked
        once per burst (:meth:`GenCache.sync`) with the loop probing the
        entry dict directly; hit/miss/lookup counters are bumped to
        exactly what per-packet ``get`` calls would have recorded.

        Egress run coalescing: with no flight recorder and no drop
        subscriber attached, consecutive packets that resolve to the same
        egress interface are buffered and flushed through one
        ``Interface.send_batch`` call.  Runs break at every interface
        change and are flushed before any side path that could touch an
        interface out of order (``transmit``, VPN egress, local
        delivery), so per-interface op order — queue occupancy, AQM
        verdicts, kick timing — is exactly the scalar sequence.  When
        either observer is attached the per-packet ``send`` path runs
        instead, keeping the record interleave bit-identical.
        """
        node = self.node
        now = self.sim.now
        stats = node.stats
        trace = node.trace
        fl = trace.flight
        fa = trace.flows
        name = node.name
        addresses = node.addresses
        interfaces = node.interfaces
        drop = node.drop
        deliver_local = node.deliver_local
        transmit = node.transmit
        fib = self.fib
        ftn = self.ftn
        lfib = self.lfib
        flow_cache = self.flow_cache
        # Entry dicts sync lazily on first probe: a burst that never
        # reaches a lookup stage (say, one TTL-expired row) must not
        # count a staleness invalidation the scalar path never saw.
        flow_entries: "dict | None" = None
        voc = self.vrf_of_circuit
        if lfib is not None:
            label_cache = self.label_cache
            label_entries: "dict | None" = None
            op_swap = LabelOp.SWAP
            op_pop = LabelOp.POP
            op_pop_process = LabelOp.POP_PROCESS
            op_swap_push = LabelOp.SWAP_PUSH
            op_vpn = LabelOp.VPN
            implicit_null = IMPLICIT_NULL
            impose_exp = node.impose_exp
            vpn_deliver = node.vpn_deliver
            pe_fast = (
                self.vrfs is not None
                and vpn_deliver is not None
                and getattr(vpn_deliver, "__func__", None) is _stock_pe_deliver()
            )
            # Per-burst memo of vrf-name → Vrf object (satellite of the
            # vector PR): vpn_egress resolved ``vrfs.get`` per packet.
            # Cross-burst memoization would dodge the Vrf generation
            # guard, so the memo's lifetime is exactly one burst.
            vrf_objs: dict[str, Any] = {}
        else:
            impose_exp = implicit_null = None
        vec_tx = fl is None and not trace.active("drop")
        run_name: str | None = None
        run_iface: Any = None
        run_pkts: list[Packet] | None = None

        def tx_cold(pkt: Packet, out: str) -> None:
            # Run boundary (or scalar fallback): resolve the interface,
            # flush the open run, start the next one.
            nonlocal run_name, run_iface, run_pkts
            iface = interfaces.get(out)
            if iface is None or iface.link is None:
                drop(pkt, DropReason.NO_IFACE)
                return
            if not vec_tx:
                stats.forwarded += 1
                iface.send(pkt)
                return
            if run_name is not None:
                stats.forwarded += len(run_pkts)
                run_iface.send_batch(run_pkts)
            run_name = out
            run_iface = iface
            run_pkts = [pkt]

        def flush_run() -> None:
            nonlocal run_name, run_iface, run_pkts
            if run_name is not None:
                stats.forwarded += len(run_pkts)
                run_iface.send_batch(run_pkts)
                run_name = run_iface = run_pkts = None

        stats.rx_packets += len(items)
        for pkt, ifname in items:
            pkt.hops += 1
            if fl is not None:
                fl.rx(now, name, pkt, ifname)
            stack = pkt.mpls_stack
            if stack:
                if lfib is None:
                    drop(pkt, DropReason.LABELED_AT_IP_ROUTER)
                    continue
                # ---- label-op stage, probes on the synced entry dict ----
                to_ip = False
                if label_entries is None:
                    label_entries = label_cache.sync()
                while True:
                    top = stack[-1]
                    label = top.label
                    entry = label_entries.get(label)
                    if entry is None:
                        label_cache.misses += 1
                        entry = lfib.lookup(label)
                        if entry is None:
                            drop(pkt, DropReason.NO_LABEL)
                            break
                        label_cache.put(label, entry)
                    else:
                        label_cache.hits += 1
                        lfib.lookups += 1
                    op = entry.op
                    if op is op_swap:
                        if pkt.decrement_ttl() <= 0:
                            drop(pkt, DropReason.TTL)
                            break
                        if fl is not None:
                            fl.label_op(now, name, pkt, "swap",
                                        old=label, new=entry.out_label)
                        pkt.swap_label(entry.out_label)
                        out = entry.out_ifname
                        if out == run_name:
                            run_pkts.append(pkt)
                        else:
                            tx_cold(pkt, out)
                        break
                    if op is op_pop:
                        if pkt.decrement_ttl() <= 0:
                            drop(pkt, DropReason.TTL)
                            break
                        if fl is not None:
                            fl.label_op(now, name, pkt, "pop", old=label)
                        pkt.pop_label()
                        out = entry.out_ifname
                        if out == run_name:
                            run_pkts.append(pkt)
                        else:
                            tx_cold(pkt, out)
                        break
                    if op is op_pop_process:
                        if fl is not None:
                            fl.label_op(now, name, pkt, "pop", old=label)
                        pkt.pop_label()
                        if stack:
                            continue  # inner label is also ours
                        if pkt.ip.dst in addresses:
                            flush_run()  # sinks may inject traffic
                            deliver_local(pkt)
                        else:
                            to_ip = True
                        break
                    if op is op_swap_push:
                        if pkt.decrement_ttl() <= 0:
                            drop(pkt, DropReason.TTL)
                            break
                        exp = top.exp
                        if fl is not None:
                            fl.label_op(now, name, pkt, "swap",
                                        old=label, new=entry.out_label)
                            fl.label_op(now, name, pkt, "push",
                                        new=entry.push_label)
                        pkt.swap_label(entry.out_label)
                        pkt.push_label(entry.push_label, exp=exp)
                        flush_run()  # ordinary transmit may share the run's iface
                        transmit(pkt, entry.out_ifname)
                        break
                    if op is op_vpn:
                        if fl is not None:
                            fl.label_op(now, name, pkt, "pop", old=label)
                        pkt.pop_label()
                        if not pe_fast:
                            if vpn_deliver is None:
                                drop(pkt, DropReason.VPN_LABEL_NO_VRF)
                            else:
                                flush_run()  # hook may transmit or deliver
                                vpn_deliver(pkt, entry.vrf)
                            break
                        vrf_name = entry.vrf
                        vrf = vrf_objs.get(vrf_name)
                        if vrf is None:
                            vrf = self.vrfs.get(vrf_name)
                            if vrf is None:
                                drop(pkt, DropReason.UNKNOWN_VRF)
                                break
                            vrf_objs[vrf_name] = vrf
                        flush_run()  # VPN egress transmits internally
                        self._vpn_egress_vrf(pkt, vrf, fa)
                        break
                    drop(pkt, DropReason.BAD_LFIB_OP)  # pragma: no cover
                    break
                if not to_ip:
                    continue
            else:
                if voc is not None:
                    vrf = voc.get(ifname)
                    if vrf is not None:
                        # ---- customer stage, ``fa`` hoisted per burst ----
                        if fa is not None:
                            fa.ingress(name, vrf.name, pkt)
                        if pkt.decrement_ttl() <= 0:
                            drop(pkt, DropReason.TTL)
                            continue
                        route = self._vrf_lookup(vrf, pkt.ip.dst)
                        if route is None:
                            drop(pkt, DropReason.NO_VRF_ROUTE)
                            continue
                        flush_run()  # customer egress transmits internally
                        if route.kind == "local":
                            transmit(pkt, route.out_ifname)
                        else:
                            self.remote_stage(pkt, route)
                        continue
                if pkt.ip.dst in addresses:
                    flush_run()  # sinks may inject traffic
                    deliver_local(pkt)
                    continue
            # ---- ip stage (unlabeled transit, or the POP_PROCESS tail) ----
            if pkt.decrement_ttl() <= 0:
                drop(pkt, DropReason.TTL)
                continue
            dst = pkt.ip.dst
            dv = dst.value
            if flow_entries is None:
                flow_entries = flow_cache.sync()
            decision = flow_entries.get(dv)
            if decision is None:
                flow_cache.misses += 1
                if ftn is None:
                    route = fib.lookup(dst)
                    nhlfe = None
                else:
                    match = fib.lookup_prefix(dst)
                    if match is None:
                        route = nhlfe = None
                    else:
                        prefix, route = match
                        nhlfe = ftn.lookup(prefix)
                flow_cache.put(dv, (route, nhlfe))
            else:
                flow_cache.hits += 1
                route, nhlfe = decision
                if ftn is None:
                    fib.lookups += 1
            if nhlfe is not None:
                # ---- qos-mark stage (imposition) ----
                exp = (
                    impose_exp if impose_exp is not None
                    else dscp_to_exp(pkt.ip.dscp)
                )
                for lbl in nhlfe.labels:
                    if lbl == implicit_null:
                        continue
                    if fl is not None:
                        fl.label_op(now, name, pkt, "push", new=lbl)
                    pkt.push_label(lbl, exp=exp)
                out = nhlfe.out_ifname
                if out == run_name:
                    run_pkts.append(pkt)
                else:
                    tx_cold(pkt, out)
                continue
            if route is None:
                drop(pkt, DropReason.NO_ROUTE)
                continue
            # ---- egress dispatch (per-packet ECMP hash) ----
            if route.alternates:
                paths = route.all_paths
                out = paths[flow_hash(pkt) % len(paths)][0]
            else:
                out = route.out_ifname
            if out == run_name:
                run_pkts.append(pkt)
            else:
                tx_cold(pkt, out)
        flush_run()

    # ------------------------------------------------------------------
    # Columnar fast path (struct-of-arrays)
    # ------------------------------------------------------------------
    def _ingress_columns(self, items: "list[tuple[Packet, str]]") -> None:
        """Struct-of-arrays burst resolution: classify → gather → apply.

        The burst is transposed into :class:`PacketColumns` (one O(n)
        object walk), then resolved without touching the packets again:

        1. **Label groups** — unique top labels in first-arrival order,
           one LFIB/cache probe per group; hit/miss/logical-lookup
           counters are bumped by group size to exactly the per-row
           totals.  SWAP/POP/VPN/local rows get their action codes here;
           single-level ``POP_PROCESS`` transit rows fall through to the
           ip stage with a pop-first flag; exotic ops (``SWAP_PUSH``,
           multi-level ``POP_PROCESS``, a customized VPN hook) defer to
           the per-row scalar continuation (:meth:`_row_label_slow`).
        2. **VRF demux / local delivery** — attachment-circuit rows via a
           per-burst ifname memo; local rows via one vectorized
           membership test on the dst-key column.
        3. **Mass TTL** — one masked decrement over every row the scalar
           path would decrement (SWAP, POP, ip-stage, customer ingress),
           with the expiry mask rewriting actions to drops.  Rows whose
           handlers order observable effects around the decrement
           themselves (customer ingress runs the flow accountant first)
           keep their action and re-check in the apply pass.
        4. **Dst-key gather** — unique destinations of the surviving
           ip-stage rows against the flow cache, same group arithmetic;
           misses resolve through the identical trie/FTN calls the scalar
           path makes (negative decisions cached as ``(None, None)``).
        5. **Apply** — one in-order pass materializing header writes
           (TTL, swaps, pushes via direct slot stores, pops), with egress
           run coalescing identical to the loop tier: consecutive
           same-interface rows flush through one ``send_batch`` carrying
           the wire-bytes column, so queue byte accounting never re-reads
           the packets.

        Packet objects are only touched in the build pass and at
        materialization boundaries — egress write-back, drops, local
        delivery, trace/measurement hooks — which is the lazy-
        materialization contract documented in ARCHITECTURE §11.
        """
        node = self.node
        stats = node.stats
        n = len(items)
        stats.rx_packets += n
        cols = PacketColumns(items)
        trace = node.trace
        fa = trace.flows
        fl = trace.flight
        # Per-packet observers force the per-row record interleave: no
        # uniform whole-burst shortcuts, per-packet sends instead of run
        # coalescing.  The resolve phases (1-4) are unaffected — lookups
        # and counter arithmetic are not observable events.
        vec_tx = fl is None and not trace.active("drop")
        addresses = node.addresses
        lfib = self.lfib
        act = np.zeros(n, dtype=np.int64)
        didx = np.zeros(n, dtype=np.int64)
        decisions: list[Any] = [None]
        dec_append = decisions.append
        lab_rows = cols.lab_rows
        popp: list[bool] | None = None
        # ``special`` tracks whether any row holds a non-PENDING action —
        # while False, phases 3/4 take uniform-shape shortcuts (whole-array
        # decrement, no PENDING scan).  ``uni_swap`` is the all-rows single-
        # group SWAP entry: the core-LSR shape whose action/didx writes are
        # deferred (filled only on a fallback) because the uniform apply
        # loop never reads them.
        special = bool(lab_rows)
        uni_swap: Any = None
        uni_didx = 0

        # ---- phase 1: label-op groups -------------------------------
        if lab_rows:
            popp = [False] * n
            if lfib is None:
                if cols.all_labeled:
                    act[:] = _A_DROP
                    didx[:] = len(decisions)
                else:
                    lab_idx = np.array(lab_rows, dtype=np.int64)
                    act[lab_idx] = _A_DROP
                    didx[lab_idx] = len(decisions)
                dec_append(DropReason.LABELED_AT_IP_ROUTER)
            else:
                label_cache = self.label_cache
                label_l = cols.label_list
                keys = (
                    label_l if cols.all_labeled
                    else [label_l[r] for r in lab_rows]
                )
                ukeys, buckets = group_rows(lab_rows, keys)
                probed = label_cache.probe_many(ukeys)
                vrfs = self.vrfs
                vpn_deliver = node.vpn_deliver
                pe_fast = (
                    vrfs is not None
                    and vpn_deliver is not None
                    and getattr(vpn_deliver, "__func__", None)
                    is _stock_pe_deliver()
                )
                vrf_objs: dict[str, Any] = {}
                op_swap = LabelOp.SWAP
                op_pop = LabelOp.POP
                op_popp = LabelOp.POP_PROCESS
                op_vpn = LabelOp.VPN
                for g, key in enumerate(ukeys):
                    rows_l = lab_rows if buckets is None else buckets[g]
                    c = len(rows_l)
                    entry = probed[g]
                    if entry is None:
                        # Scalar row 1: miss + real lookup (+fill); rows
                        # 2..c then hit the fresh entry.  An unknown label
                        # is never cached, so every row of its group
                        # misses and consults the LFIB.
                        label_cache.misses += 1
                        entry = lfib.lookup(key)
                        if entry is None:
                            label_cache.misses += c - 1
                            lfib.lookups += c - 1
                            rows = np.fromiter(rows_l, np.int64, count=c)
                            act[rows] = _A_DROP
                            didx[rows] = len(decisions)
                            dec_append(DropReason.NO_LABEL)
                            continue
                        label_cache.put(key, entry)
                        label_cache.hits += c - 1
                        lfib.lookups += c - 1
                    else:
                        label_cache.hits += c
                        lfib.lookups += c
                    op = entry.op
                    if op is op_swap:
                        di = len(decisions)
                        dec_append(entry)
                        if c == n:
                            uni_swap = entry
                            uni_didx = di
                        else:
                            rows = np.fromiter(rows_l, np.int64, count=c)
                            act[rows] = _A_SWAP
                            didx[rows] = di
                    elif op is op_pop:
                        rows = np.fromiter(rows_l, np.int64, count=c)
                        act[rows] = _A_POP
                        didx[rows] = len(decisions)
                        dec_append(entry)
                    elif op is op_popp:
                        di = 0
                        depth = cols.depth_col()
                        for r in rows_l:
                            if depth[r] > 1:
                                if di == 0:
                                    di = len(decisions)
                                    dec_append(entry)
                                act[r] = _A_SLOW
                                didx[r] = di
                            elif items[r][0].ip.dst in addresses:
                                act[r] = _A_POPP_LOCAL
                            else:
                                popp[r] = True  # stays pending → ip gather
                    elif op is op_vpn and pe_fast:
                        vrf_name = entry.vrf
                        vrf = vrf_objs.get(vrf_name)
                        if vrf is None:
                            vrf = vrfs.get(vrf_name)
                            vrf_objs[vrf_name] = vrf
                        rows = np.fromiter(rows_l, np.int64, count=c)
                        act[rows] = _A_VPN
                        didx[rows] = len(decisions)
                        dec_append(vrf)  # None → UNKNOWN_VRF at apply
                    else:
                        # SWAP_PUSH, a customized VPN hook, or a bad op:
                        # per-row scalar continuation.
                        rows = np.fromiter(rows_l, np.int64, count=c)
                        act[rows] = _A_SLOW
                        didx[rows] = len(decisions)
                        dec_append(entry)

        # ---- phase 2: VRF demux + local delivery --------------------
        if not cols.all_labeled:
            unlab: Any
            if lab_rows:
                lset = set(lab_rows)
                unlab = [r for r in range(n) if r not in lset]
            else:
                unlab = range(n)
            voc = self.vrf_of_circuit
            if voc is not None:
                ifmemo: dict[str, Any] = {}
                vrf_rows: dict[str, tuple[Any, list[int]]] = {}
                rest: list[int] = []
                rest_append = rest.append
                for r in unlab:
                    ifn = items[r][1]
                    v = ifmemo.get(ifn)
                    if v is None and ifn not in ifmemo:
                        v = ifmemo[ifn] = voc.get(ifn)
                    if v is None:
                        rest_append(r)
                    else:
                        bucket = vrf_rows.get(v.name)
                        if bucket is None:
                            vrf_rows[v.name] = (v, [r])
                        else:
                            bucket[1].append(r)
                for v, rws in vrf_rows.values():
                    rarr = np.array(rws, dtype=np.int64)
                    act[rarr] = _A_VRF
                    didx[rarr] = len(decisions)
                    dec_append(v)
                if vrf_rows:
                    special = True
                unlab = rest
            if addresses:
                # Set membership on the plain dst-key list: the address
                # table is a handful of host entries, so building the
                # int-value set per burst is far cheaper than np.isin.
                # The C-level isdisjoint scan settles the common transit
                # burst (no local traffic) without the filter pass.
                dst_l = cols.dst_keys()
                avals = {a.value for a in addresses}
                if not avals.isdisjoint(dst_l):
                    loc = [r for r in unlab if dst_l[r] in avals]
                    if loc:
                        act[np.array(loc, dtype=np.int64)] = _A_LOCAL
                        special = True

        # ---- phase 3: mass TTL decrement + expiry mask --------------
        ttl_l: list[int] | None = cols.ttl_list
        if not special or uni_swap is not None:
            # Uniform shapes (every row PENDING, or one SWAP group
            # covering the burst): a single min() gates the expiry path
            # off the common no-expiry case, and when nothing expires
            # the decrement fuses into the apply loops (``ttl_l = None``
            # is the fused-decrement sentinel).
            if min(ttl_l) <= 1:
                ttl = np.array(ttl_l, dtype=np.int64)
                ttl -= 1
                if uni_swap is not None:
                    # The deferred uniform-SWAP writes become real: the
                    # expiry mask needs per-row actions to override.
                    act[:] = _A_SWAP
                    didx[:] = uni_didx
                    uni_swap = None
                low = ttl <= 0
                act[low] = _A_DROPW
                didx[low] = len(decisions)
                dec_append(DropReason.TTL)
                special = True
                ttl_l = ttl.tolist()
            else:
                ttl_l = None
        else:
            ttl = np.array(ttl_l, dtype=np.int64)
            decr = (act == _A_PENDING) | (act == _A_SWAP) | (act == _A_POP) \
                | (act == _A_VRF)
            if decr.all():
                ttl -= 1
            else:
                ttl[decr] -= 1
            low = decr & (ttl <= 0)
            if low.any():
                # Customer-ingress rows keep their action: the flow
                # accountant must record the arrival before the TTL
                # verdict, so their handler re-checks the written-back
                # TTL itself.
                over = low & (act != _A_VRF)
                if over.any():
                    act[over] = _A_DROPW
                    didx[over] = len(decisions)
                    dec_append(DropReason.TTL)
            ttl_l = ttl.tolist()

        # ---- phase 4: dst-key gather (the ip stage) -----------------
        interfaces = node.interfaces
        if not special:
            # Pure-IP burst, nothing assigned yet: every row is an
            # ip-stage row, so skip the PENDING scan outright.
            flow_cache = self.flow_cache
            dst_l = cols.dst_keys()
            k0 = dst_l[0]
            if dst_l.count(k0) == n:
                # One destination (the dominant edge shape — a traffic
                # train into one remote): skip the grouping dict.
                ukeys, buckets = [k0], None
            else:
                ukeys, buckets = group_rows(range(n), dst_l)
            probed = flow_cache.probe_many(ukeys)
            if buckets is None:
                # Homogeneous burst — one destination, one decision: the
                # dominant edge shape (a traffic train into one remote).
                # Dispatch straight to a uniform apply loop with no
                # action/decision bookkeeping at all.
                kind, payload = self._resolve_dst_group(
                    probed[0], ukeys[0], items[0][0].ip.dst, n
                )
                if vec_tx:
                    if kind == _A_IP:
                        iface = interfaces.get(payload)
                        if iface is not None and iface.link is not None:
                            self._apply_uniform_ip(items, cols, iface)
                            return
                    elif kind == _A_IMPOSE:
                        iface = interfaces.get(payload[1])
                        if iface is not None and iface.link is not None:
                            self._apply_uniform_impose(
                                items, cols, payload[0], iface
                            )
                            return
                    elif kind == _A_DROPW:
                        self._apply_uniform_noroute(items, cols)
                        return
                # ECMP (per-row hash spray), a missing egress interface,
                # or a traced burst: whole-burst action, generic apply.
                act[:] = kind
                didx[:] = 1
                dec_append(payload)
            else:
                for g, key in enumerate(ukeys):
                    rows_l = buckets[g]
                    c = len(rows_l)
                    kind, payload = self._resolve_dst_group(
                        probed[g], key, items[rows_l[0]][0].ip.dst, c
                    )
                    rows = np.fromiter(rows_l, np.int64, count=c)
                    act[rows] = kind
                    didx[rows] = len(decisions)
                    dec_append(payload)
        elif uni_swap is not None:
            if vec_tx:
                iface = interfaces.get(uni_swap.out_ifname)
                if iface is not None and iface.link is not None:
                    self._apply_uniform_swap(items, cols, uni_swap, iface)
                    return
            # Missing egress (the generic loop drops each row with
            # NO_IFACE) or a traced burst: the deferred uniform-SWAP
            # writes become real.
            act[:] = _A_SWAP
            didx[:] = uni_didx
        else:
            pend = np.nonzero(act == _A_PENDING)[0]
            if len(pend):
                flow_cache = self.flow_cache
                dst_l = cols.dst_keys()
                plist = pend.tolist()
                ukeys, buckets = group_rows(
                    plist, [dst_l[r] for r in plist]
                )
                probed = flow_cache.probe_many(ukeys)
                for g, key in enumerate(ukeys):
                    rows_l = plist if buckets is None else buckets[g]
                    c = len(rows_l)
                    kind, payload = self._resolve_dst_group(
                        probed[g], key, items[rows_l[0]][0].ip.dst, c
                    )
                    rows = np.fromiter(rows_l, np.int64, count=c)
                    act[rows] = kind
                    didx[rows] = len(decisions)
                    dec_append(payload)

        # ---- phase 5: in-order apply / materialization --------------
        act_l = act.tolist()
        didx_l = didx.tolist()
        if ttl_l is None:
            # Fused-decrement sentinel from a uniform shape that fell
            # back here (ECMP spray, missing egress): every such shape
            # decrements all rows, so do it in one pass now.
            ttl_l = [t - 1 for t in cols.ttl_list]
        wire_l = cols.wire_col()
        interfaces = node.interfaces
        drop = node.drop
        deliver_local = node.deliver_local
        transmit = node.transmit
        name = node.name
        now = self.sim.now
        impose_exp = node.impose_exp if lfib is not None else None
        lut = exp_lut()
        run_name: str | None = None
        run_iface: Any = None
        run_pkts: list[Packet] | None = None
        run_wire: list[int] | None = None

        def tx_cold(pkt: Packet, out: str, w: int) -> None:
            nonlocal run_name, run_iface, run_pkts, run_wire
            iface = interfaces.get(out)
            if iface is None or iface.link is None:
                drop(pkt, DropReason.NO_IFACE)
                return
            if not vec_tx:
                # Traced: per-packet send keeps the record interleave
                # bit-identical to the scalar sequence (run_name stays
                # None, so every row lands here).
                stats.forwarded += 1
                iface.send(pkt)
                return
            if run_name is not None:
                stats.forwarded += len(run_pkts)
                run_iface.send_batch(run_pkts, run_wire)
            run_name = out
            run_iface = iface
            run_pkts = [pkt]
            run_wire = [w]

        def flush_run() -> None:
            nonlocal run_name, run_iface, run_pkts, run_wire
            if run_name is not None:
                stats.forwarded += len(run_pkts)
                run_iface.send_batch(run_pkts, run_wire)
                run_name = run_iface = run_pkts = run_wire = None

        i = 0
        for pkt, ifname in items:
            pkt.hops += 1
            if fl is not None:
                fl.rx(now, name, pkt, ifname)
            a = act_l[i]
            if a == _A_IP:
                if popp is not None and popp[i]:
                    if fl is not None:
                        fl.label_op(now, name, pkt, "pop",
                                    old=pkt.mpls_stack[-1].label)
                    pkt.mpls_stack.pop()
                    w = wire_l[i] - 4
                    wire_l[i] = w
                    pkt._wire = w
                else:
                    w = wire_l[i]
                pkt.ip.ttl = ttl_l[i]
                out = decisions[didx_l[i]]
                if out == run_name:
                    run_pkts.append(pkt)
                    run_wire.append(w)
                else:
                    tx_cold(pkt, out, w)
            elif a == _A_SWAP:
                entry = decisions[didx_l[i]]
                top = pkt.mpls_stack[-1]
                if fl is not None:
                    fl.label_op(now, name, pkt, "swap",
                                old=top.label, new=entry.out_label)
                top.ttl = ttl_l[i]
                top.label = entry.out_label
                out = entry.out_ifname
                if out == run_name:
                    run_pkts.append(pkt)
                    run_wire.append(wire_l[i])
                else:
                    tx_cold(pkt, out, wire_l[i])
            elif a == _A_IMPOSE:
                if popp is not None and popp[i]:
                    if fl is not None:
                        fl.label_op(now, name, pkt, "pop",
                                    old=pkt.mpls_stack[-1].label)
                    pkt.mpls_stack.pop()
                    wire_l[i] -= 4
                d = decisions[didx_l[i]]
                labels = d[0]
                t = ttl_l[i]
                pkt.ip.ttl = t
                e = impose_exp
                if e is None:
                    dv = pkt.ip.dscp
                    e = lut[dv] if 0 <= dv < 64 else dscp_to_exp(dv)
                stack = pkt.mpls_stack
                for lbl in labels:
                    if fl is not None:
                        fl.label_op(now, name, pkt, "push", new=lbl)
                    m = _NEW_MPLS(MplsEntry)
                    m.label = lbl
                    m.exp = e
                    m.ttl = t
                    stack.append(m)
                w = wire_l[i] + 4 * len(labels)
                wire_l[i] = w
                pkt._wire = w
                out = d[1]
                if out == run_name:
                    run_pkts.append(pkt)
                    run_wire.append(w)
                else:
                    tx_cold(pkt, out, w)
            elif a == _A_ECMP:
                if popp is not None and popp[i]:
                    if fl is not None:
                        fl.label_op(now, name, pkt, "pop",
                                    old=pkt.mpls_stack[-1].label)
                    pkt.mpls_stack.pop()
                    w = wire_l[i] - 4
                    wire_l[i] = w
                    pkt._wire = w
                else:
                    w = wire_l[i]
                pkt.ip.ttl = ttl_l[i]
                paths = decisions[didx_l[i]]
                h = pkt.flow_hash_cache
                if h is None:
                    h = flow_hash(pkt)
                out = paths[h % len(paths)][0]
                if out == run_name:
                    run_pkts.append(pkt)
                    run_wire.append(w)
                else:
                    tx_cold(pkt, out, w)
            elif a == _A_POP:
                stack = pkt.mpls_stack
                if fl is not None:
                    fl.label_op(now, name, pkt, "pop", old=stack[-1].label)
                stack.pop()
                t = ttl_l[i]
                if stack:
                    stack[-1].ttl = t
                else:
                    pkt.ip.ttl = t
                w = wire_l[i] - 4
                wire_l[i] = w
                pkt._wire = w
                out = decisions[didx_l[i]].out_ifname
                if out == run_name:
                    run_pkts.append(pkt)
                    run_wire.append(w)
                else:
                    tx_cold(pkt, out, w)
            elif a == _A_LOCAL:
                flush_run()  # sinks may inject traffic
                deliver_local(pkt)
            elif a == _A_POPP_LOCAL:
                if fl is not None:
                    fl.label_op(now, name, pkt, "pop",
                                old=pkt.mpls_stack[-1].label)
                pkt.pop_label()
                flush_run()
                deliver_local(pkt)
            elif a == _A_VPN:
                vrf = decisions[didx_l[i]]
                if fl is not None:
                    fl.label_op(now, name, pkt, "pop",
                                old=pkt.mpls_stack[-1].label)
                pkt.pop_label()
                if vrf is None:
                    drop(pkt, DropReason.UNKNOWN_VRF)
                else:
                    flush_run()  # VPN egress transmits internally
                    self._vpn_egress_vrf(pkt, vrf, fa)
            elif a == _A_VRF:
                vrf = decisions[didx_l[i]]
                if fa is not None:
                    fa.ingress(name, vrf.name, pkt)
                t = ttl_l[i]
                pkt.ip.ttl = t
                if t <= 0:
                    drop(pkt, DropReason.TTL)
                else:
                    route = self._vrf_lookup(vrf, pkt.ip.dst)
                    if route is None:
                        drop(pkt, DropReason.NO_VRF_ROUTE)
                    else:
                        flush_run()  # customer egress transmits internally
                        if route.kind == "local":
                            transmit(pkt, route.out_ifname)
                        else:
                            self.remote_stage(pkt, route)
            elif a == _A_SLOW:
                flush_run()
                self._row_label_slow(pkt, decisions[didx_l[i]])
            elif a == _A_DROPW:
                t = ttl_l[i]
                if popp is not None and popp[i]:
                    # Scalar emits the pop record before the TTL/route
                    # verdict on POP_PROCESS rows, so a traced drop still
                    # carries it.
                    if fl is not None:
                        fl.label_op(now, name, pkt, "pop",
                                    old=pkt.mpls_stack[-1].label)
                    pkt.mpls_stack.pop()
                    pkt.ip.ttl = t
                    pkt._wire = None
                elif pkt.mpls_stack:
                    pkt.mpls_stack[-1].ttl = t
                else:
                    pkt.ip.ttl = t
                drop(pkt, decisions[didx_l[i]])
            else:  # _A_DROP: no header mutation happened before the drop
                drop(pkt, decisions[didx_l[i]])
            i += 1
        flush_run()

    def _resolve_dst_group(
        self, decision: Any, key: int, dst: IPv4Address, c: int
    ) -> tuple[int, Any]:
        """Resolve one flow-cache group of ``c`` rows keyed by ``key``.

        ``decision`` is the pre-gathered cache entry (``None`` on miss).
        Returns ``(action, payload)``: ``_A_IP`` with an out-interface
        name, ``_A_IMPOSE`` with ``(labels, out_ifname)``, ``_A_ECMP``
        with the path list, or ``_A_DROPW`` with ``NO_ROUTE``.  Counter
        arithmetic is the exact per-row scalar total: a miss costs one
        real lookup plus ``c - 1`` hits, a hit costs ``c`` hits, and the
        logical FIB lookup counter moves only on the plain-IP path —
        identical to ``ip_stage`` called ``c`` times.
        """
        flow_cache = self.flow_cache
        fib = self.fib
        ftn = self.ftn
        if decision is None:
            flow_cache.misses += 1
            if ftn is None:
                route = fib.lookup(dst)
                nhlfe = None
            else:
                match = fib.lookup_prefix(dst)
                if match is None:
                    route = nhlfe = None
                else:
                    prefix, route = match
                    nhlfe = ftn.lookup(prefix)
            flow_cache.put(key, (route, nhlfe))
            flow_cache.hits += c - 1
            if ftn is None:
                fib.lookups += c - 1
        else:
            route, nhlfe = decision
            flow_cache.hits += c
            if ftn is None:
                fib.lookups += c
        if nhlfe is not None:
            implicit_null = IMPLICIT_NULL
            labels = [lbl for lbl in nhlfe.labels if lbl != implicit_null]
            if labels:
                return _A_IMPOSE, (labels, nhlfe.out_ifname)
            return _A_IP, nhlfe.out_ifname
        if route is None:
            return _A_DROPW, DropReason.NO_ROUTE
        if route.alternates:
            return _A_ECMP, route.all_paths
        return _A_IP, route.out_ifname

    # ------------------------------------------------------------------
    # Uniform apply loops: the whole burst shares one resolved decision
    # (single dst group on an edge, single swap group in the core), so the
    # action/didx bookkeeping and per-row dispatch of the generic apply
    # pass collapse into one tight materialization loop ending in a single
    # ``send_batch``.  Observable effects are row-for-row identical to the
    # generic loop: hops, TTL write-back, header edits, counter and
    # byte accounting all match (held by the parity suite).
    # ------------------------------------------------------------------
    def _apply_uniform_ip(
        self, items: "list[tuple[Packet, str]]", cols: PacketColumns, iface
    ) -> None:
        """Whole burst routed unlabeled out one interface.

        Reached only through the fused-decrement gate (no expiry), so
        the TTL write is ``t - 1`` inline — the loop touches each packet
        exactly twice (hops, ttl) before the batched egress hand-off.
        The packet column is comprehension-built first so the hot loop
        zips flat lists with no per-row tuple unpack.
        """
        wire = cols.wire_col()
        out: list[Packet] = [p for p, _ in items]
        for pkt, t in zip(out, cols.ttl_list):
            pkt.hops += 1
            pkt.ip.ttl = t - 1
        self.node.stats.forwarded += len(out)
        iface.send_batch(out, wire)

    def _apply_uniform_swap(
        self,
        items: "list[tuple[Packet, str]]",
        cols: PacketColumns,
        entry: Any,
        iface,
    ) -> None:
        """Whole burst = one SWAP group: the core-LSR hot shape."""
        lbl = entry.out_label
        wire = cols.wire_col()
        out: list[Packet] = [p for p, _ in items]
        for pkt, top, t in zip(out, cols.tops, cols.ttl_list):
            pkt.hops += 1
            top.ttl = t - 1
            top.label = lbl
        self.node.stats.forwarded += len(out)
        iface.send_batch(out, wire)

    def _apply_uniform_impose(
        self,
        items: "list[tuple[Packet, str]]",
        cols: PacketColumns,
        labels: list[int],
        iface,
    ) -> None:
        """Whole burst imposes one (non-null) label stack: ingress-PE shape.

        The wire column updates as one shifted comprehension; the packet
        loop is specialized for the overwhelmingly common single-label
        NHLFE so no inner iterator is set up per row.
        """
        node = self.node
        wadd = 4 * len(labels)
        wire_l = [w + wadd for w in cols.wire_col()]
        lut = exp_lut()
        e_fixed = node.impose_exp
        out: list[Packet] = [p for p, _ in items]
        if len(labels) == 1 and e_fixed is None:
            # Hot variant: single-label NHLFE, per-packet DSCP→EXP copy
            # (the DiffServ default) — no inner iterator, no fixed-EXP
            # branch per row.
            lbl = labels[0]
            for pkt, t0, w in zip(out, cols.ttl_list, wire_l):
                pkt.hops += 1
                t = t0 - 1
                ip = pkt.ip
                ip.ttl = t
                dv = ip.dscp
                m = _NEW_MPLS(MplsEntry)
                m.label = lbl
                m.exp = lut[dv] if 0 <= dv < 64 else dscp_to_exp(dv)
                m.ttl = t
                pkt.mpls_stack.append(m)
                pkt._wire = w
        else:
            for pkt, t0, w in zip(out, cols.ttl_list, wire_l):
                pkt.hops += 1
                t = t0 - 1
                ip = pkt.ip
                ip.ttl = t
                e = e_fixed
                if e is None:
                    dv = ip.dscp
                    e = lut[dv] if 0 <= dv < 64 else dscp_to_exp(dv)
                stack = pkt.mpls_stack
                for lbl in labels:
                    m = _NEW_MPLS(MplsEntry)
                    m.label = lbl
                    m.exp = e
                    m.ttl = t
                    stack.append(m)
                pkt._wire = w
        node.stats.forwarded += len(out)
        iface.send_batch(out, wire_l)

    def _apply_uniform_noroute(
        self, items: "list[tuple[Packet, str]]", cols: PacketColumns
    ) -> None:
        """Whole burst unroutable: TTL write-back then per-row drop."""
        drop = self.node.drop
        for (pkt, _ifname), t in zip(items, cols.ttl_list):
            pkt.hops += 1
            pkt.ip.ttl = t - 1
            drop(pkt, DropReason.NO_ROUTE)

    def _row_label_slow(self, pkt: Packet, entry: Any) -> None:
        """Scalar continuation for exotic label rows in a columnar burst.

        Entered with the top entry already resolved *and counted* by the
        group gather; everything from the op dispatch on is exactly
        :meth:`mpls_stage`, flight records included.  Handles whatever op
        chain the inner labels produce, including SWAP/POP under a
        multi-level ``POP_PROCESS``, and ends in the scalar
        :meth:`ip_stage` whose per-row cache probe is identical to what
        the scalar loop does.
        """
        node = self.node
        lfib = self.lfib
        cache = self.label_cache
        fl = node.trace.flight
        now = self.sim.now
        name = node.name
        while True:
            op = entry.op
            label = pkt.mpls_stack[-1].label
            if op is LabelOp.SWAP_PUSH:
                if pkt.decrement_ttl() <= 0:
                    node.drop(pkt, DropReason.TTL)
                    return
                exp = pkt.mpls_stack[-1].exp
                if fl is not None:
                    fl.label_op(now, name, pkt, "swap",
                                old=label, new=entry.out_label)
                    fl.label_op(now, name, pkt, "push",
                                new=entry.push_label)
                pkt.swap_label(entry.out_label)
                pkt.push_label(entry.push_label, exp=exp)
                node.transmit(pkt, entry.out_ifname)
                return
            if op is LabelOp.POP_PROCESS:
                if fl is not None:
                    fl.label_op(now, name, pkt, "pop", old=label)
                pkt.pop_label()
                if not pkt.mpls_stack:
                    if node.owns(pkt.ip.dst):
                        node.deliver_local(pkt)
                    else:
                        self.ip_stage(pkt)
                    return
                label = pkt.mpls_stack[-1].label
                entry = cache.get(label)
                if entry is None:
                    entry = lfib.lookup(label)
                    if entry is None:
                        node.drop(pkt, DropReason.NO_LABEL)
                        return
                    cache.put(label, entry)
                else:
                    lfib.lookups += 1
                continue
            if op is LabelOp.SWAP:
                if pkt.decrement_ttl() <= 0:
                    node.drop(pkt, DropReason.TTL)
                    return
                if fl is not None:
                    fl.label_op(now, name, pkt, "swap",
                                old=label, new=entry.out_label)
                pkt.swap_label(entry.out_label)
                node.transmit(pkt, entry.out_ifname)
                return
            if op is LabelOp.POP:
                if pkt.decrement_ttl() <= 0:
                    node.drop(pkt, DropReason.TTL)
                    return
                if fl is not None:
                    fl.label_op(now, name, pkt, "pop", old=label)
                pkt.pop_label()
                node.transmit(pkt, entry.out_ifname)
                return
            if op is LabelOp.VPN:
                if fl is not None:
                    fl.label_op(now, name, pkt, "pop", old=label)
                pkt.pop_label()
                vpn_deliver = node.vpn_deliver
                if vpn_deliver is None:
                    node.drop(pkt, DropReason.VPN_LABEL_NO_VRF)
                else:
                    vpn_deliver(pkt, entry.vrf)
                return
            node.drop(pkt, DropReason.BAD_LFIB_OP)  # pragma: no cover
            return

    # ------------------------------------------------------------------
    # Label-op stage (MPLS fast path)
    # ------------------------------------------------------------------
    def mpls_stage(self, pkt: Packet) -> None:
        """LFIB processing for the top of stack; iterative across pops.

        ``POP_PROCESS`` on a multi-level stack continues the loop instead
        of recursing, so label-stack depth costs no Python stack frames.
        """
        node = self.node
        sim = self.sim
        lfib = self.lfib
        cache = self.label_cache
        fl = node.trace.flight
        while True:
            top = pkt.mpls_stack[-1]
            label = top.label
            entry = cache.get(label)
            if entry is None:
                entry = lfib.lookup(label)
                if entry is None:
                    node.drop(pkt, DropReason.NO_LABEL)
                    return
                cache.put(label, entry)
            else:
                lfib.lookups += 1  # logical lookup served from the cache
            op = entry.op
            if op is LabelOp.SWAP:
                if pkt.decrement_ttl() <= 0:
                    node.drop(pkt, DropReason.TTL)
                    return
                if fl is not None:
                    fl.label_op(sim.now, node.name, pkt, "swap",
                                old=label, new=entry.out_label)
                pkt.swap_label(entry.out_label)  # EXP is preserved across swaps
                node.transmit(pkt, entry.out_ifname)
                return
            if op is LabelOp.POP:
                if pkt.decrement_ttl() <= 0:
                    node.drop(pkt, DropReason.TTL)
                    return
                if fl is not None:
                    fl.label_op(sim.now, node.name, pkt, "pop", old=label)
                pkt.pop_label()
                node.transmit(pkt, entry.out_ifname)
                return
            if op is LabelOp.POP_PROCESS:
                if fl is not None:
                    fl.label_op(sim.now, node.name, pkt, "pop", old=label)
                pkt.pop_label()
                if pkt.mpls_stack:
                    continue  # inner label is also ours
                if node.owns(pkt.ip.dst):
                    node.deliver_local(pkt)
                else:
                    self.ip_stage(pkt)
                return
            if op is LabelOp.SWAP_PUSH:
                # FRR local repair: restore the label the merge point
                # expects, then tunnel it over the bypass LSP.  EXP is
                # copied onto the bypass entry so the detour keeps the class.
                if pkt.decrement_ttl() <= 0:
                    node.drop(pkt, DropReason.TTL)
                    return
                exp = top.exp
                if fl is not None:
                    fl.label_op(sim.now, node.name, pkt, "swap",
                                old=label, new=entry.out_label)
                    fl.label_op(sim.now, node.name, pkt, "push",
                                new=entry.push_label)
                pkt.swap_label(entry.out_label)
                pkt.push_label(entry.push_label, exp=exp)
                node.transmit(pkt, entry.out_ifname)
                return
            if op is LabelOp.VPN:
                if fl is not None:
                    fl.label_op(sim.now, node.name, pkt, "pop", old=label)
                pkt.pop_label()
                vpn_deliver = node.vpn_deliver
                if vpn_deliver is None:
                    node.drop(pkt, DropReason.VPN_LABEL_NO_VRF)
                else:
                    vpn_deliver(pkt, entry.vrf)
                return
            node.drop(pkt, DropReason.BAD_LFIB_OP)  # pragma: no cover
            return

    # ------------------------------------------------------------------
    # Lookup stage (IP path, with optional label imposition)
    # ------------------------------------------------------------------
    def ip_stage(self, pkt: Packet) -> None:
        """TTL, flow-cache / LPM lookup, FTN imposition check, dispatch."""
        node = self.node
        if pkt.decrement_ttl() <= 0:
            node.drop(pkt, DropReason.TTL)
            return
        fib = self.fib
        ftn = self.ftn
        dst = pkt.ip.dst
        decision = self.flow_cache.get(dst.value)
        if decision is None:
            if ftn is None:
                route = fib.lookup(dst)
                nhlfe = None
            else:
                match = fib.lookup_prefix(dst)
                if match is None:
                    route = nhlfe = None
                else:
                    prefix, route = match
                    nhlfe = ftn.lookup(prefix)
            self.flow_cache.put(dst.value, (route, nhlfe))
        else:
            route, nhlfe = decision
            if ftn is None:
                fib.lookups += 1  # logical lookup served from the cache
        if nhlfe is not None:
            self.impose(pkt, nhlfe)
            return
        if route is None:
            node.drop(pkt, DropReason.NO_ROUTE)
            return
        self.dispatch(pkt, route)

    # ------------------------------------------------------------------
    # QoS-mark stage (label imposition with DSCP→EXP)
    # ------------------------------------------------------------------
    def impose(self, pkt: Packet, nhlfe: Nhlfe) -> None:
        """Push the NHLFE's label stack and transmit.

        Implicit-null labels in the stack are not pushed (PHP on a one-hop
        tunnel).  EXP comes from the packet's DSCP unless the node's
        ``impose_exp`` pins a fixed value.
        """
        node = self.node
        impose_exp = node.impose_exp
        exp = impose_exp if impose_exp is not None else dscp_to_exp(pkt.ip.dscp)
        fl = node.trace.flight
        for label in nhlfe.labels:
            if label == IMPLICIT_NULL:
                continue
            if fl is not None:
                fl.label_op(self.sim.now, node.name, pkt, "push", new=label)
            pkt.push_label(label, exp=exp)
        node.transmit(pkt, nhlfe.out_ifname)

    # ------------------------------------------------------------------
    # Egress dispatch stage
    # ------------------------------------------------------------------
    def dispatch(self, pkt: Packet, entry: "RouteEntry") -> None:
        """Send ``pkt`` out the interface selected by ``entry``.

        With ECMP alternates present, the egress is chosen by the
        (memoized) flow hash — all packets of one flow share a path (no
        reordering), while distinct flows spread across the equal-cost set.
        """
        if entry.alternates:
            paths = entry.all_paths
            out_ifname, _nh = paths[flow_hash(pkt) % len(paths)]
            self.node.transmit(pkt, out_ifname)
            return
        self.node.transmit(pkt, entry.out_ifname)

    # ------------------------------------------------------------------
    # VRF stages (PE)
    # ------------------------------------------------------------------
    def _vrf_lookup(self, vrf, dst: IPv4Address) -> Any:
        """Cached LPM inside one VRF; negative results are not cached."""
        cache = self.vrf_caches.get(vrf.name)
        if cache is None:
            cache = self.vrf_caches[vrf.name] = GenCache(vrf)
        route = cache.get(dst.value)
        if route is None:
            route = vrf.lookup(dst)
            if route is not None:
                cache.put(dst.value, route)
        return route

    def customer_stage(self, pkt: Packet, vrf) -> None:
        """Customer packet arriving on an attachment circuit (VPN ingress)."""
        node = self.node
        fa = node.trace.flows
        if fa is not None:
            fa.ingress(node.name, vrf.name, pkt)
        if pkt.decrement_ttl() <= 0:
            node.drop(pkt, DropReason.TTL)
            return
        route = self._vrf_lookup(vrf, pkt.ip.dst)
        if route is None:
            node.drop(pkt, DropReason.NO_VRF_ROUTE)
            return
        if route.kind == "local":
            # Site-to-site through one PE (both sites on this PE).
            node.transmit(pkt, route.out_ifname)
            return
        self.remote_stage(pkt, route)

    def remote_stage(self, pkt: Packet, route) -> None:
        """Impose the two-level VPN stack and enter the tunnel to the
        egress PE (QoS-mark: DSCP copied into EXP per the node's policy)."""
        node = self.node
        exp = dscp_to_exp(pkt.ip.dscp) if node.qos_exp_mapping else 0
        inner_exp = exp if node.exp_mode == "both" else 0
        fl = node.trace.flight
        if fl is not None:
            fl.label_op(self.sim.now, node.name, pkt, "push", new=route.vpn_label)
        pkt.push_label(route.vpn_label, exp=inner_exp)
        # Resolve the tunnel to the egress PE's loopback through the FTN
        # (an LDP binding or a TE tunnel autoroute).
        tunnel = self._tunnel_nhlfe(route.remote_pe)
        if tunnel is None:
            pkt.pop_label()
            node.drop(pkt, DropReason.NO_TUNNEL)
            return
        for label in tunnel.labels:
            if label != IMPLICIT_NULL:
                if fl is not None:
                    fl.label_op(self.sim.now, node.name, pkt, "push", new=label)
                pkt.push_label(label, exp=exp)
        node.transmit(pkt, tunnel.out_ifname)

    def _tunnel_nhlfe(self, remote_pe: IPv4Address) -> Nhlfe | None:
        """Cached FTN resolution of an egress-PE loopback (/32 FEC)."""
        cache = self.tunnel_cache
        nhlfe = cache.get(remote_pe.value)
        if nhlfe is None:
            nhlfe = self.ftn.lookup(Prefix.of(remote_pe, 32))
            if nhlfe is not None:
                cache.put(remote_pe.value, nhlfe)
        return nhlfe

    def vpn_egress(self, pkt: Packet, vrf_name: str) -> None:
        """Egress side: tunnel label already removed, VPN label popped."""
        node = self.node
        vrfs = self.vrfs
        vrf = vrfs.get(vrf_name) if vrfs is not None else None
        if vrf is None:
            node.drop(pkt, DropReason.UNKNOWN_VRF)
            return
        self._vpn_egress_vrf(pkt, vrf, node.trace.flows)

    def _vpn_egress_vrf(self, pkt: Packet, vrf, fa) -> None:
        """Egress tail with the VRF already resolved.

        The batch path enters here directly, with ``fa`` hoisted per
        burst and the VRF object memoized across the burst's packets.
        """
        node = self.node
        if fa is not None:
            fa.egress(node.name, vrf.name, pkt)
        route = self._vrf_lookup(vrf, pkt.ip.dst)
        if route is None or route.kind != "local":
            # Hairpinning remote->remote through an egress PE would be a
            # provisioning loop; refuse rather than bounce across the core.
            node.drop(pkt, DropReason.NO_VRF_ROUTE)
            return
        node.transmit(pkt, route.out_ifname)

    # ------------------------------------------------------------------
    def cache_stats(self) -> dict[str, Any]:
        """Counters for every enabled cache (observability/test hook)."""
        out: dict[str, Any] = {"flow": self.flow_cache.stats()}
        if self.label_cache is not None:
            out["label"] = self.label_cache.stats()
        if self.tunnel_cache is not None:
            out["tunnel"] = self.tunnel_cache.stats()
        if self.vrf_caches:
            out["vrf"] = {name: c.stats() for name, c in self.vrf_caches.items()}
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ForwardingPipeline {self.node.name} {'+'.join(self.stages())}>"
