"""Generation-stamped exact-match caches for the forwarding pipeline.

A :class:`GenCache` sits in front of a slower (or allocation-heavier)
lookup structure — the LPM trie, the LFIB, a VRF table — and memoizes
fully-resolved forwarding decisions keyed by an exact-match integer
(destination address value, incoming label).  Correctness under control-
plane churn is the whole design problem: a cached decision must never
outlive the tables it was derived from.

The guard is a *generation counter* on each source table (``Fib``,
``Lfib``, ``FtnTable``, ``Vrf``), bumped on every mutation — route
install/withdraw, label install/remove, FTN bind/unbind.  Every cache
read first compares the sources' current generations against the ones
captured when the cache was last (re)filled; any mismatch flushes the
whole cache in O(1) amortized (one ``dict.clear``) and reports a miss.
SPF reconvergence, ``reset_ldp``, FRR bypass activation, and VRF route
churn all mutate their tables through the counted entry points, so stale
entries are structurally unreachable — there is no event-subscription
protocol to forget.

The full-flush policy (rather than per-entry invalidation) is deliberate:
topology events are rare and coarse (a reconvergence rewrites most of the
table anyway), while per-entry dependency tracking would put bookkeeping
on the hot path.  See docs/ARCHITECTURE.md §"Data-plane pipeline".
"""

from __future__ import annotations

from typing import Any

__all__ = ["GenCache"]


class GenCache:
    """Exact-match decision cache guarded by source-table generations.

    Parameters
    ----------
    primary:
        Object exposing an integer ``generation`` attribute that changes
        whenever a derived decision could change (e.g. a ``Fib``).
    secondary:
        Optional second generation source when a decision is derived from
        two tables (the LSR's IP path reads the FIB *and* the FTN).
    capacity:
        Optional residency bound.  ``None`` (the default) keeps the cache
        unbounded as before; with a bound, the cache is trimmed back to
        ``capacity`` entries at *epoch boundaries* — the top of every
        :meth:`get` and every :meth:`sync` — evicting oldest first
        (insertion-order FIFO — cheap, and churn workloads that would
        thrash any policy are the ones the bound exists for) and counting
        each eviction in ``evictions``.  Inserts themselves never evict:
        a burst may transiently overshoot the bound by the number of
        distinct keys it fills, which is what lets the columnar tier's
        pre-gathered probes stay coherent (no entry can disappear between
        a group's interleaved rows).

    ``None`` is not a cacheable value — :meth:`get` returns ``None`` for
    a miss, so negative decisions must be encoded (the flow cache stores
    the tuple ``(None, None)`` for "no route") or simply left uncached.
    """

    __slots__ = (
        "_primary", "_secondary", "_gen_p", "_gen_s", "_entries",
        "hits", "misses", "invalidations", "capacity", "evictions",
    )

    def __init__(
        self, primary: Any, secondary: Any = None, capacity: int | None = None
    ) -> None:
        self._primary = primary
        self._secondary = secondary
        self._gen_p = primary.generation
        self._gen_s = secondary.generation if secondary is not None else 0
        self._entries: dict[int, Any] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.capacity = capacity
        self.evictions = 0

    # ------------------------------------------------------------------
    def _trim(self) -> None:
        """Evict oldest entries (FIFO) until residency is back at capacity."""
        entries = self._entries
        cap = self.capacity
        excess = len(entries) - cap
        if excess > 0:
            for key in list(entries)[:excess]:
                del entries[key]
            self.evictions += excess

    def get(self, key: int) -> Any:
        """Cached decision for ``key``, or ``None`` on miss/stale.

        For bounded caches this is also an epoch boundary: residency is
        trimmed back to ``capacity`` before the probe, so the scalar
        per-packet path keeps the bound tight while burst fills between
        probes may transiently overshoot it.
        """
        if self._gen_p != self._primary.generation or (
            self._secondary is not None
            and self._gen_s != self._secondary.generation
        ):
            self._entries.clear()
            self._gen_p = self._primary.generation
            if self._secondary is not None:
                self._gen_s = self._secondary.generation
            self.invalidations += 1
            self.misses += 1
            return None
        if self.capacity is not None:
            self._trim()
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def put(self, key: int, value: Any) -> None:
        """Memoize ``value`` under the generations observed by :meth:`get`.

        Callers must :meth:`get` first (the miss refreshes the captured
        generations), which the pipeline's lookup stages always do.
        Never evicts — the capacity bound is applied at the next epoch
        boundary (:meth:`get` / :meth:`sync`), so a batch of fills within
        one burst cannot invalidate entries another group in the same
        burst already gathered.
        """
        self._entries[key] = value

    def sync(self) -> dict[int, Any]:
        """Refresh the generation guard once and return the live entry dict.

        The batch pipeline calls this per burst and probes the returned
        dict directly, bumping ``hits``/``misses`` itself so the counters
        come out exactly as per-packet :meth:`get` calls would (a stale
        burst counts one invalidation here plus one miss for the first
        probing packet — same totals as scalar).  Sound only because no
        source table can mutate mid-burst: control-plane mutations are
        scheduled events, never run synchronously from packet delivery.

        For bounded caches this is the per-burst epoch boundary: the
        eviction backlog accumulated by the previous burst's fills is
        replayed here in one FIFO pass (oldest first), instead of per
        row — within the burst that follows, no entry can be evicted.
        """
        if self._gen_p != self._primary.generation or (
            self._secondary is not None
            and self._gen_s != self._secondary.generation
        ):
            self._entries.clear()
            self._gen_p = self._primary.generation
            if self._secondary is not None:
                self._gen_s = self._secondary.generation
            self.invalidations += 1
        elif self.capacity is not None:
            self._trim()
        return self._entries

    def probe_many(self, keys: "list[int]") -> list[Any]:
        """Batched counter-free gather: cached value (or ``None``) per key.

        The columnar pipeline resolves a burst per *unique* key: it syncs
        once, gathers all groups' entries here, then applies the group
        arithmetic itself (one real lookup per missed group, ``hits``/
        ``misses``/logical-lookup counters bumped by group size) so the
        totals land exactly where per-packet :meth:`get` calls would.
        Safe for bounded caches too: capacity is enforced by per-burst
        epoch eviction (the :meth:`sync` here trims the previous burst's
        overshoot), and :meth:`put` never evicts, so no fill for one
        group can invalidate another group's pre-gathered entry between
        that group's interleaved rows.
        """
        entries = self.sync()
        get = entries.get
        return [get(k) for k in keys]

    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Explicit flush (the generation guard makes this rarely needed)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict[str, int]:
        """Hit/miss/invalidation counters plus current residency."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "entries": len(self._entries),
        }
