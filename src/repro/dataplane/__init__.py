"""Unified data plane: one staged forwarding engine for Router/LSR/PE.

``ForwardingPipeline`` owns the per-packet control flow (ingress →
vrf-demux → label-op → lookup → qos-mark → egress); ``GenCache`` provides
the generation-stamped exact-match caches that front the LPM trie, the
LFIB, and the VRF tables.  See ``docs/ARCHITECTURE.md`` §"Data-plane
pipeline".
"""

from repro.dataplane.caches import GenCache
from repro.dataplane.pipeline import ForwardingPipeline, flow_hash

__all__ = ["ForwardingPipeline", "GenCache", "flow_hash"]
