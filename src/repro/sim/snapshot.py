"""Converged-state snapshots: checkpoint/restore of a whole simulation.

A snapshot captures everything a run depends on in one consistent image:
the :class:`~repro.sim.engine.Simulator` clock and pending event buckets,
the named RNG streams, the :class:`~repro.topology.Network` object graph —
nodes, links, FIB/LFIB/FTN tables, VRFs, provisioning state, queue
disciplines — plus arbitrary caller ``extras`` (provisioner handles, site
records, control-plane result objects).  Restore rebuilds the identical
graph in a fresh (or forked) process; the parity contract is *bit-
identical traces*: a seeded run resumed from a snapshot must produce
exactly the packet trace the uninterrupted run would have
(``tests/test_snapshot.py`` holds it to that).

Format
------
A snapshot is ``MAGIC`` + a length-prefixed JSON header + a pickle
payload::

    b"RSNP1\\n"  |  u32 header length  |  header JSON  |  pickle bytes

The header names the schema (``repro.snapshot/1``), the ``repro`` version
that wrote it, the Python major.minor, and the pickle protocol.  Restore
fails fast with :class:`SnapshotError` on any mismatch of magic, schema,
or repro version — silently loading a snapshot across a schema change is
exactly the class of bug the header exists to prevent.

Why a custom pickler
--------------------
The object graph is *almost* plain data after the generator→cursor
refactors (``Network``/``Vpn``/``VpnProvisioner``/``OverlayVpnBuilder``
all allocate from integer cursors now), but two kinds of callables still
live in event buckets and conditioners:

* ``bind(...)`` closures — the kernel's zero-arg callback wrapper.  They
  are reduced to ``(bind, (callback, *args), kwargs)`` so the rebuilt
  closure shares ``_BOUND_CODE`` again and the kernel profiler keeps
  recognising it.
* ad-hoc lambdas / local functions (e.g. the E5 EF-match predicate).
  These are serialized by :mod:`marshal`-ing their code object together
  with closure cell values, defaults, and qualname.  Marshal output is
  interpreter-version-specific, which is fine: the header pins the Python
  version, and snapshots are a same-machine warm-start/checkpoint
  mechanism, not an archival format.

Generators are rejected with a pointed error — a half-consumed generator
cannot be serialized, and every one we had has been refactored away;
a new one sneaking into the graph should fail loudly at snapshot time.

Cache-generation contract
-------------------------
Generation-stamped state (``Fib``/``Lfib``/``FtnTable``/``Vrf`` counters,
``topology_generation``, the :class:`~repro.dataplane.caches.GenCache`
captured generations) is pickled *together with* the tables it guards, so
a restored graph is exactly as coherent as the live one: every cache's
captured generation still equals (or validly trails) its source table's.
:func:`verify_cache_coherence` proves this property after restore — the
Hypothesis round-trip suite runs it on random topologies.

Telemetry sessions are intentionally *not* snapshotted: a session holds
process-global hooks (profiler, flight ring) whose lifecycle belongs to
the process, not the network.  Snapshotting a network with an attached
session raises; restore re-attaches a fresh session if the process-wide
telemetry switch is on, and re-syncs vector dispatch to the current
process switch — same rules as ``Network.__init__``.
"""

from __future__ import annotations

import io
import json
import marshal
import pickle
import struct
import sys
import types
from typing import Any, Callable

import repro
from repro.sim.engine import Event, Simulator, bind, _BOUND_CODE

__all__ = [
    "SnapshotError",
    "SCHEMA",
    "snapshot_network",
    "restore_network",
    "save",
    "load",
    "read_header",
    "pending_schedule",
    "verify_cache_coherence",
]

MAGIC = b"RSNP1\n"
SCHEMA = "repro.snapshot/1"
_PROTOCOL = 4  # stable, supports qualname globals; identical across workers
_LEN = struct.Struct("<I")


class SnapshotError(RuntimeError):
    """Raised when state cannot be serialized, or a blob cannot be loaded."""


# ---------------------------------------------------------------------------
# Function serialization helpers
# ---------------------------------------------------------------------------

def _cell_values(fn: types.FunctionType) -> tuple:
    return tuple(c.cell_contents for c in (fn.__closure__ or ()))


def _rebuild_bound(callback: Callable, args: tuple, kwargs: dict) -> Callable:
    """Recreate a ``bind`` closure (restores ``_BOUND_CODE`` identity)."""
    return bind(callback, *args, **kwargs)


def _rebuild_function(
    code_bytes: bytes,
    qualname: str,
    module: str,
    defaults: tuple | None,
    cells: tuple,
) -> types.FunctionType:
    """Reconstruct a marshal-serialized local function/lambda."""
    code = marshal.loads(code_bytes)
    closure = tuple(types.CellType(v) for v in cells) or None
    mod = sys.modules.get(module)
    globalns = mod.__dict__ if mod is not None else {"__builtins__": __builtins__}
    fn = types.FunctionType(code, globalns, code.co_name, defaults, closure)
    fn.__qualname__ = qualname
    return fn


# ``bind`` freevar order is fixed by its source; assert rather than assume.
_BOUND_FREEVARS = _BOUND_CODE.co_freevars
assert _BOUND_FREEVARS == ("args", "callback", "kwargs"), _BOUND_FREEVARS


class _SnapshotPickler(pickle.Pickler):
    """Pickler that knows how to serialize the simulator's callables."""

    def reducer_override(self, obj: Any):  # noqa: C901 - dispatch table
        if isinstance(obj, types.GeneratorType):
            raise SnapshotError(
                f"cannot snapshot a live generator ({obj!r}); refactor the "
                "holder to an integer cursor or explicit state"
            )
        if isinstance(obj, types.FunctionType):
            if obj.__code__ is _BOUND_CODE:
                # A bind() closure: re-bind at load so the rebuilt closure
                # shares _BOUND_CODE and stays profiler-recognisable.
                free = dict(zip(_BOUND_FREEVARS, _cell_values(obj)))
                return (
                    _rebuild_bound,
                    (free["callback"], free["args"], free["kwargs"]),
                )
            qualname = obj.__qualname__
            if "<locals>" in qualname or "<lambda>" in qualname or obj.__closure__:
                try:
                    code_bytes = marshal.dumps(obj.__code__)
                except ValueError as exc:  # pragma: no cover - exotic code
                    raise SnapshotError(
                        f"cannot marshal code of {qualname}: {exc}"
                    ) from exc
                return (
                    _rebuild_function,
                    (
                        code_bytes,
                        qualname,
                        obj.__module__ or "builtins",
                        obj.__defaults__,
                        _cell_values(obj),
                    ),
                )
        return NotImplemented  # default pickle behaviour


# ---------------------------------------------------------------------------
# Snapshot / restore
# ---------------------------------------------------------------------------

def _header() -> dict[str, Any]:
    return {
        "schema": SCHEMA,
        "repro_version": repro.__version__,
        "python": f"{sys.version_info[0]}.{sys.version_info[1]}",
        "pickle_protocol": _PROTOCOL,
    }


def snapshot_network(net: Any, extras: dict[str, Any] | None = None) -> bytes:
    """Serialize ``net`` (and caller ``extras``) into a snapshot blob.

    ``extras`` is an arbitrary picklable dict riding in the same pickle as
    the network, so shared references (a provisioner holding the same node
    objects, say) are preserved — restore hands back the *same* object
    graph, not parallel copies.

    The network must not have a telemetry session attached (sessions hold
    process-scoped hooks); detach or ``repro.obs.runtime.reset()`` first.
    """
    if getattr(net, "telemetry", None) is not None:
        raise SnapshotError(
            "cannot snapshot a network with an attached telemetry session; "
            "telemetry is process-scoped — detach it (obs.runtime.reset()) "
            "and re-enable after restore"
        )
    sim = net.sim
    if getattr(sim, "_running", False):
        raise SnapshotError("cannot snapshot while the simulator is running")
    if getattr(sim, "_profile_hook", None) is not None:
        raise SnapshotError(
            "cannot snapshot with a kernel profiler attached; detach first"
        )
    header = json.dumps(_header(), sort_keys=True).encode("utf-8")
    buf = io.BytesIO()
    buf.write(MAGIC)
    buf.write(_LEN.pack(len(header)))
    buf.write(header)
    pickler = _SnapshotPickler(buf, protocol=_PROTOCOL)
    try:
        pickler.dump({"net": net, "extras": extras or {}})
    except SnapshotError:
        raise
    except Exception as exc:
        raise SnapshotError(f"snapshot failed: {exc!r}") from exc
    return buf.getvalue()


def _parse_header(blob: bytes) -> tuple[dict[str, Any], int]:
    if blob[: len(MAGIC)] != MAGIC:
        raise SnapshotError(
            "not a repro snapshot (bad magic); expected a blob written by "
            "repro.sim.snapshot.snapshot_network/save"
        )
    off = len(MAGIC)
    if len(blob) < off + _LEN.size:
        raise SnapshotError("truncated snapshot (no header length)")
    (hlen,) = _LEN.unpack_from(blob, off)
    off += _LEN.size
    if len(blob) < off + hlen:
        raise SnapshotError("truncated snapshot (header shorter than declared)")
    try:
        header = json.loads(blob[off : off + hlen].decode("utf-8"))
    except ValueError as exc:
        raise SnapshotError(f"corrupt snapshot header: {exc}") from exc
    return header, off + hlen


def _check_header(header: dict[str, Any]) -> None:
    if header.get("schema") != SCHEMA:
        raise SnapshotError(
            f"snapshot schema {header.get('schema')!r} does not match this "
            f"reader ({SCHEMA!r}); re-create the snapshot with this version"
        )
    if header.get("repro_version") != repro.__version__:
        raise SnapshotError(
            f"snapshot written by repro {header.get('repro_version')!r} but "
            f"this is repro {repro.__version__!r}; snapshots do not cross "
            "versions — re-create it"
        )
    here = f"{sys.version_info[0]}.{sys.version_info[1]}"
    if header.get("python") != here:
        raise SnapshotError(
            f"snapshot written under Python {header.get('python')} but this "
            f"is Python {here}; marshal-serialized code objects do not cross "
            "interpreter versions"
        )


def restore_network(blob: bytes) -> tuple[Any, dict[str, Any]]:
    """Rebuild the ``(net, extras)`` graph from a snapshot blob.

    Validates the header (schema, repro version, Python version) before
    touching the payload, then re-applies the process-scoped switches the
    pickle deliberately excludes: a fresh telemetry session is attached if
    the process-wide switch is on, and kernel vector dispatch is synced to
    the current ``repro.obs.runtime.set_vector_mode`` setting — the same
    two steps ``Network.__init__`` performs.
    """
    header, off = _parse_header(blob)
    _check_header(header)
    try:
        payload = pickle.loads(blob[off:])
    except Exception as exc:
        raise SnapshotError(f"snapshot payload failed to load: {exc!r}") from exc
    net, extras = payload["net"], payload["extras"]

    from repro.obs.runtime import attach_if_enabled, vector_mode_enabled

    net.telemetry = attach_if_enabled(net)
    from repro.net.node import install_vector_dispatch, remove_vector_dispatch

    if vector_mode_enabled():
        install_vector_dispatch(net.sim)
    else:
        remove_vector_dispatch(net.sim)
    return net, extras


def save(path: str, net: Any, extras: dict[str, Any] | None = None) -> int:
    """Snapshot ``net`` to ``path``; returns the byte size written."""
    blob = snapshot_network(net, extras)
    with open(path, "wb") as fh:
        fh.write(blob)
    return len(blob)


def load(path: str) -> tuple[Any, dict[str, Any]]:
    """Restore ``(net, extras)`` from a snapshot file."""
    with open(path, "rb") as fh:
        blob = fh.read()
    return restore_network(blob)


def read_header(path: str) -> dict[str, Any]:
    """Parse just the header of a snapshot file (no payload load)."""
    with open(path, "rb") as fh:
        blob = fh.read(len(MAGIC) + _LEN.size + 4096)
    header, _off = _parse_header(blob)
    return header


# ---------------------------------------------------------------------------
# Inspection helpers (used by the parity and property tests)
# ---------------------------------------------------------------------------

def pending_schedule(sim: Simulator) -> list[tuple[float, str, tuple]]:
    """Deterministic listing of the live pending events, in firing order.

    Walks the time heap and buckets *without executing anything*: for each
    live event, ``(time, callback description, args repr tuple)``.  Two
    simulators with identical schedules produce identical listings, which
    is how the round-trip property suite compares pending-event order.
    """
    out: list[tuple[float, str, tuple]] = []
    for t in sorted(sim._times):
        bucket = sim._buckets.get(t)
        if bucket is None:
            continue
        events = bucket if type(bucket) is not Event else (bucket,)
        for ev in events:
            if ev.cancelled:
                continue
            cb = ev.callback
            if isinstance(cb, types.MethodType):
                desc = f"{type(cb.__self__).__name__}.{cb.__func__.__name__}"
                owner = getattr(cb.__self__, "name", None)
                if owner is not None:
                    desc += f"@{owner}"
            else:
                desc = getattr(cb, "__qualname__", repr(cb))
            out.append((t, desc, tuple(repr(a) for a in ev.args)))
    return out


def verify_cache_coherence(net: Any) -> list[str]:
    """Report every GenCache whose captured generations trail its sources.

    Returns a list of human-readable deltas.  A *trailing* capture is
    legal live state (a cache built before the control plane bumped the
    table, not yet refreshed by a ``get``) — the generation guard flushes
    and self-heals on the next probe.  The snapshot contract is therefore
    equality of reports: the restored network's report must be identical
    to the pre-snapshot one, i.e. restore neither invents staleness nor
    silently discards warm cache state.  The round-trip suites assert
    exactly that.
    """
    problems: list[str] = []

    def _check(name: str, cache: Any) -> None:
        if cache is None:
            return
        if cache._gen_p != cache._primary.generation:
            problems.append(
                f"{name}: captured primary gen {cache._gen_p} != "
                f"source gen {cache._primary.generation}"
            )
        if cache._secondary is not None and cache._gen_s != cache._secondary.generation:
            problems.append(
                f"{name}: captured secondary gen {cache._gen_s} != "
                f"source gen {cache._secondary.generation}"
            )

    for node in net.nodes.values():
        pipe = getattr(node, "pipeline", None)
        if pipe is None:
            continue
        _check(f"{node.name}.flow_cache", getattr(pipe, "flow_cache", None))
        _check(f"{node.name}.label_cache", getattr(pipe, "label_cache", None))
        _check(f"{node.name}.tunnel_cache", getattr(pipe, "tunnel_cache", None))
        for vrf_name, cache in getattr(pipe, "vrf_caches", {}).items():
            _check(f"{node.name}.vrf[{vrf_name}]", cache)
    return problems
