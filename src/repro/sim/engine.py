"""Discrete-event simulation kernel.

The kernel is a classic event-heap scheduler: a single priority queue of
``(time, sequence, Event)`` entries.  The sequence number makes scheduling
deterministic — two events at the same timestamp always fire in the order
they were scheduled, regardless of callback identity.  Determinism matters
here because every experiment in the reproduction must be exactly
re-runnable from a seed (see DESIGN.md §4).

The kernel is deliberately single-threaded and allocation-light: the hot
loop is ``heappop`` + one callback invocation, with no per-event object
churn beyond the event itself.  Profiling (per the hpc-parallel guides)
showed callback dispatch dominating; fancier process abstractions
(generators, greenlets) were measurably slower and are not used.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

__all__ = ["Event", "Simulator", "SimulationError", "Timer"]


class SimulationError(RuntimeError):
    """Raised on kernel misuse (scheduling in the past, running twice...)."""


@dataclass(slots=True)
class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Absolute simulation time (seconds) at which the callback fires.
    callback:
        Callable invoked when the event fires.  Zero-argument callables
        (closures, ``bind`` products) have empty ``args``; callables
        scheduled through :meth:`Simulator.schedule_call` carry their
        positional arguments here instead of in a closure, which keeps
        the per-hop hot path allocation-free.
    args:
        Positional arguments applied to ``callback`` at fire time.
    cancelled:
        Cancellation flag; cancelled events stay in the heap but are skipped
        when popped (lazy deletion — O(1) cancel).
    """

    time: float
    callback: Callable[..., None]
    args: tuple = ()
    cancelled: bool = False

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent."""
        self.cancelled = True


class Simulator:
    """Single-threaded deterministic event scheduler.

    Parameters
    ----------
    start_time:
        Initial clock value, defaults to ``0.0`` seconds.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.5]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._running = False
        self._events_processed = 0
        self._stop_requested = False
        # Observability hook: when set, each fired event is routed through
        # ``_profile_hook(event)`` instead of ``event.callback()``.  The
        # ``None`` check is the entire disabled-mode cost (one load + jump),
        # mirroring the TraceBus no-subscriber fast path.
        self._profile_hook: Callable[[Event], None] | None = None
        self._id_counters: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (skipped cancellations excluded)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, whose :meth:`Event.cancel` method may be
        used to revoke it.  ``delay`` must be non-negative and finite.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        if not math.isfinite(delay):
            raise SimulationError(f"delay must be finite, got {delay}")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now={self._now})"
            )
        event = Event(time, callback)
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, event))
        return event

    def schedule_call(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` without allocating a closure.

        The hot-path alternative to ``schedule(delay, bind(fn, ...))``:
        arguments ride on the :class:`Event` itself, so per-packet
        scheduling (link propagation, transmit completion, modeled
        processing cost) creates no closure objects.  The kernel profiler
        attributes these events to ``callback`` directly — no unwrapping.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        if not math.isfinite(delay):
            raise SimulationError(f"delay must be finite, got {delay}")
        time = self._now + delay
        event = Event(time, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, event))
        return event

    def call_soon(self, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at the current time, after pending same-time events."""
        return self.schedule(0.0, callback)

    def next_id(self, namespace: str) -> int:
        """Monotonically increasing id scoped to this simulator.

        Used for deterministic auto-generated names (probe flows, ...):
        unlike a module/class-level counter, the sequence restarts at 1 for
        every fresh :class:`Simulator`, so two runs of the same scenario
        produce identical names.
        """
        nxt = self._id_counters.get(namespace, 0) + 1
        self._id_counters[namespace] = nxt
        return nxt

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time.  Events scheduled at
            exactly ``until`` still fire; the clock is left at ``until`` if
            it is reached, else at the last event time.
        max_events:
            Safety valve — abort with :class:`SimulationError` after this
            many callbacks (catches accidental infinite event chains).

        Returns the final clock value.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        self._stop_requested = False
        budget = math.inf if max_events is None else max_events
        try:
            while self._heap and not self._stop_requested:
                time, _seq, event = self._heap[0]
                if until is not None and time > until:
                    break
                heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                self._now = time
                hook = self._profile_hook
                if hook is None:
                    args = event.args
                    if args:
                        event.callback(*args)
                    else:
                        event.callback()
                else:
                    hook(event)
                self._events_processed += 1
                budget -= 1
                if budget < 0:
                    raise SimulationError(
                        f"max_events={max_events} exceeded at t={self._now}"
                    )
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def step(self) -> bool:
        """Execute exactly one (non-cancelled) event.

        Returns ``True`` if an event ran, ``False`` if the heap is empty.
        """
        while self._heap:
            time, _seq, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = time
            hook = self._profile_hook
            if hook is None:
                args = event.args
                if args:
                    event.callback(*args)
                else:
                    event.callback()
            else:
                hook(event)
            self._events_processed += 1
            return True
        return False

    def stop(self) -> None:
        """Request the running :meth:`run` loop to stop after the current event."""
        self._stop_requested = True

    def peek(self) -> float:
        """Time of the next live event, or ``inf`` if none pending."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else math.inf


@dataclass
class Timer:
    """Restartable one-shot timer built on a :class:`Simulator`.

    Used by the control-plane protocols (LDP session keepalives, BGP MRAI,
    IKE retransmission) where the same timer is repeatedly re-armed.
    """

    sim: Simulator
    callback: Callable[[], None]
    _event: Event | None = field(default=None, repr=False)

    def start(self, delay: float) -> None:
        """(Re-)arm the timer to fire ``delay`` seconds from now."""
        self.cancel()
        self._event = self.sim.schedule(delay, self._fire)

    def cancel(self) -> None:
        """Disarm the timer if armed.  Idempotent."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    @property
    def armed(self) -> bool:
        return self._event is not None and not self._event.cancelled

    def _fire(self) -> None:
        self._event = None
        self.callback()


def drain(sim: Simulator, horizon: float, chunk: float = 1.0) -> Iterable[float]:
    """Run ``sim`` to ``horizon`` yielding the clock after each ``chunk``.

    Convenience for progress reporting in long benchmark runs.
    """
    t = sim.now
    while t < horizon:
        t = min(t + chunk, horizon)
        sim.run(until=t)
        yield sim.now


def bind(callback: Callable[..., Any], *args: Any, **kwargs: Any) -> Callable[[], None]:
    """Tiny ``functools.partial`` equivalent returning a zero-arg closure.

    Exists so call sites read ``sim.schedule(d, bind(node.receive, pkt))``
    without importing functools everywhere; closures proved marginally
    faster than ``partial`` under profiling for our callback mix.
    """

    def _bound() -> None:
        callback(*args, **kwargs)

    return _bound


# All ``bind`` closures share this code object; the kernel profiler uses it
# to recognise a bound callback and unwrap the inner callable for per-kind
# attribution (see repro.obs.profiler).
_BOUND_CODE = bind(lambda: None).__code__
