"""Discrete-event simulation kernel.

The kernel is a time-bucketed event scheduler: a priority heap of the
*distinct* pending timestamps, and a FIFO bucket of events per timestamp.
A bucket is stored *inline* — the dict value is the :class:`Event` itself
while a timestamp holds exactly one event (the overwhelmingly common case
on forwarding workloads, where every hop lands on its own float), and is
promoted to a ``deque`` only when a same-time sibling arrives.  Two
events at the same timestamp always fire in the order they were
scheduled — same contract as the classic ``(time, seq, Event)`` heap
this replaced (frozen in :mod:`repro.sim.reference`, held to it by
``tests/test_engine_parity.py``) — but same-time siblings now cost O(1)
to add and pop instead of a log-n heap rebalance each, and the heap
itself compares bare floats rather than 3-tuples.  Determinism matters
because every experiment in the reproduction must be exactly re-runnable
from a seed (see DESIGN.md §4).

Cancellation is lazy (tombstones): ``Event.cancel`` flips a flag and the
kernel skips the corpse when it surfaces.  Unlike the pre-PR engine the
tombstones are *accounted* — ``pending`` excludes them — and when dead
events outnumber live ones the buckets are compacted in place, so
cancel-heavy workloads (shaper retries, restartable protocol timers) can
no longer grow the heap without bound.

Burst extraction (the data plane's vector fast path): when a batch
target is installed (:meth:`Simulator.set_batch_target`), the run loop
recognises *consecutive* events in one timestamp bucket that are bound-
method calls of the registered function on the same receiver — in
practice ``Node.receive`` arrivals delivered by links — and hands their
argument tuples to the batch dispatcher as one vector instead of firing
them one by one.  Only an unbroken run from the bucket head is fused
(an interposed foreign event ends the burst), so the fused call is
observationally identical to firing the events in FIFO order; the saving
is one run-loop iteration and one callback frame per burst instead of
per packet.  Without a batch target (the default) the probe costs a
single attribute load on multi-event buckets and nothing at all on the
dominant singleton case.

The kernel is deliberately single-threaded and allocation-light: the hot
loop is one bucket pop + one callback invocation, with every loop-
invariant attribute hoisted into a local.  Profiling (per the
hpc-parallel guides) showed callback dispatch dominating; fancier
process abstractions (generators, greenlets) were measurably slower and
are not used.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass, field
from types import MethodType
from typing import Any, Callable, Iterable

__all__ = ["Event", "Periodic", "Simulator", "SimulationError", "Timer"]

_heappush = heapq.heappush
_heappop = heapq.heappop

#: Compaction trigger: at least this many tombstones *and* tombstones
#: outnumbering live events (see ``Simulator._note_cancel``).
_COMPACT_MIN_DEAD = 64

#: Bucket deques are recycled through a small free list; beyond this many
#: spares they are released to the allocator.
_SPARE_DEQUES = 8


class SimulationError(RuntimeError):
    """Raised on kernel misuse (scheduling in the past, running twice...)."""


class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Absolute simulation time (seconds) at which the callback fires.
    callback:
        Callable invoked when the event fires.  Zero-argument callables
        (closures, ``bind`` products) have empty ``args``; callables
        scheduled through :meth:`Simulator.schedule_call` carry their
        positional arguments here instead of in a closure, which keeps
        the per-hop hot path allocation-free.
    args:
        Positional arguments applied to ``callback`` at fire time.
    cancelled:
        Cancellation flag; cancelled events stay in their bucket but are
        skipped when popped (lazy deletion — O(1) cancel).  The owning
        simulator counts them so ``pending`` stays truthful and bucket
        compaction can reclaim them (see module docstring).
    """

    __slots__ = ("time", "callback", "args", "cancelled", "_sim")

    def __init__(
        self, time: float, callback: Callable[..., None], args: tuple = ()
    ) -> None:
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        # Owning simulator while the event sits in a bucket; cleared when
        # it fires, is skipped, or is compacted away, so a late cancel()
        # on an already-fired event cannot skew the tombstone accounting.
        self._sim: "Simulator | None" = None

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            sim = self._sim
            if sim is not None:
                sim._note_cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} {getattr(self.callback, '__qualname__', self.callback)!r}{flag}>"


# The scheduling fast paths build Events with ``__new__`` + direct slot
# stores: at one Event per packet-hop the ``__init__`` call frame alone is
# a measurable slice of the run loop.
_EV_NEW = Event.__new__


class Simulator:
    """Single-threaded deterministic event scheduler.

    Parameters
    ----------
    start_time:
        Initial clock value, defaults to ``0.0`` seconds.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.5]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        # ``now`` is a plain attribute, not a property: the clock is read
        # on every packet hop (queues, meters, traces) and the descriptor
        # overhead was measurable.  Treat it as read-only outside the
        # kernel.
        self.now = float(start_time)
        # Distinct pending timestamps (a float min-heap) ...
        self._times: list[float] = []
        # ... and the FIFO bucket at each of them: a bare Event while the
        # timestamp holds one event, a deque once it holds several.
        # Invariant: ``t`` is in ``_times`` exactly once iff
        # ``_buckets[t]`` exists and is non-empty (modulo tombstones
        # awaiting compaction).
        self._buckets: dict[float, "Event | deque[Event]"] = {}
        self._spare: list[deque[Event]] = []
        self._size = 0   # events currently in buckets, tombstones included
        self._dead = 0   # tombstones currently in buckets
        self._running = False
        self._events_processed = 0
        self._stop_requested = False
        # Observability hook: when set, each fired event is routed through
        # ``_profile_hook(event)`` instead of ``event.callback()``.  The
        # ``None`` check is the entire disabled-mode cost (one load + jump),
        # mirroring the TraceBus no-subscriber fast path.
        self._profile_hook: Callable[[Event], None] | None = None
        self._id_counters: dict[str, int] = {}
        # Vector fast path: when ``_batch_func`` is a plain function, the
        # run loop fuses consecutive same-bucket events whose callback is
        # a bound method of that function on one receiver, and calls
        # ``_batch_dispatch(receiver, [args, ...])`` instead.  Installed
        # by repro.net.node.install_vector_dispatch; None = scalar.
        self._batch_func: Callable[..., None] | None = None
        self._batch_dispatch: Callable[[Any, list], None] | None = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (skipped cancellations excluded)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of *live* events still scheduled.

        Cancelled-but-uncollected tombstones are excluded — this is the
        number of callbacks that will still fire, which is what capacity
        dashboards and the leak regression tests actually want.
        """
        return self._size - self._dead

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, whose :meth:`Event.cancel` method may be
        used to revoke it.  ``delay`` must be non-negative and finite.
        """
        if not 0.0 <= delay < math.inf:  # also rejects NaN
            if delay < 0:
                raise SimulationError(f"cannot schedule in the past (delay={delay})")
            raise SimulationError(f"delay must be finite, got {delay}")
        # Inlined _push (see there for the annotated version) — this is the
        # second per-packet scheduling entry point next to schedule_call.
        time = self.now + delay
        event = _EV_NEW(Event)
        event.time = time
        event.callback = callback
        event.args = ()
        event.cancelled = False
        event._sim = self
        buckets = self._buckets
        prev = buckets.setdefault(time, event)
        if prev is event:
            _heappush(self._times, time)
        elif type(prev) is deque:
            prev.append(event)
        else:
            spare = self._spare
            if spare:
                d = spare.pop()
                d.append(prev)
                d.append(event)
            else:
                d = deque((prev, event))
            buckets[time] = d
        self._size += 1
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} (now={self.now})"
            )
        return self._push(time, callback, ())

    def schedule_call(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` without allocating a closure.

        The hot-path alternative to ``schedule(delay, bind(fn, ...))``:
        arguments ride on the :class:`Event` itself, so per-packet
        scheduling (link propagation, transmit completion, modeled
        processing cost) creates no closure objects.  The kernel profiler
        attributes these events to ``callback`` directly — no unwrapping.

        The bucket insert is inlined (see :meth:`_push` for the annotated
        version): this and :meth:`schedule` are the two per-packet
        scheduling entry points, and the extra call frame is measurable.
        """
        if not 0.0 <= delay < math.inf:
            if delay < 0:
                raise SimulationError(f"cannot schedule in the past (delay={delay})")
            raise SimulationError(f"delay must be finite, got {delay}")
        time = self.now + delay
        event = _EV_NEW(Event)
        event.time = time
        event.callback = callback
        event.args = args
        event.cancelled = False
        event._sim = self
        buckets = self._buckets
        prev = buckets.setdefault(time, event)
        if prev is event:
            _heappush(self._times, time)
        elif type(prev) is deque:
            prev.append(event)
        else:
            spare = self._spare
            if spare:
                d = spare.pop()
                d.append(prev)
                d.append(event)
            else:
                d = deque((prev, event))
            buckets[time] = d
        self._size += 1
        return event

    def call_soon(self, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at the current time, after pending same-time events.

        The zero-delay fast lane: no delay validation, no clock
        arithmetic — the event is appended straight onto the bucket for
        ``now`` (O(1) when that bucket already exists, which it does
        whenever ``call_soon`` runs from inside a callback).
        """
        return self._push(self.now, callback, ())

    def _push(self, time: float, callback: Callable[..., None], args: tuple) -> Event:
        event = _EV_NEW(Event)
        event.time = time
        event.callback = callback
        event.args = args
        event.cancelled = False
        event._sim = self
        buckets = self._buckets
        # setdefault keeps the common case — a timestamp nobody else uses —
        # at a single hash lookup: the new event goes in inline, and only a
        # collision (``prev`` is an earlier occupant) pays more.
        prev = buckets.setdefault(time, event)
        if prev is event:
            _heappush(self._times, time)
        elif type(prev) is deque:
            prev.append(event)
        else:
            # Second event at this timestamp: promote the inline Event to
            # a FIFO deque (recycled through the spare list).
            spare = self._spare
            if spare:
                d = spare.pop()
                d.append(prev)
                d.append(event)
            else:
                d = deque((prev, event))
            buckets[time] = d
        self._size += 1
        return event

    def next_id(self, namespace: str) -> int:
        """Monotonically increasing id scoped to this simulator.

        Used for deterministic auto-generated names (probe flows, ...):
        unlike a module/class-level counter, the sequence restarts at 1 for
        every fresh :class:`Simulator`, so two runs of the same scenario
        produce identical names.
        """
        nxt = self._id_counters.get(namespace, 0) + 1
        self._id_counters[namespace] = nxt
        return nxt

    # ------------------------------------------------------------------
    # Tombstone accounting
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        """Called by :meth:`Event.cancel` while the event sits in a bucket."""
        self._dead += 1
        if self._dead >= _COMPACT_MIN_DEAD and self._dead * 2 >= self._size:
            self._compact()

    def _compact(self) -> None:
        """Drop tombstones from every bucket, in place.

        Preserves FIFO order within each bucket and rebuilds the time
        heap in place, so a ``run()`` loop holding local references to
        the heap/bucket containers stays correct even when a callback's
        cancel triggers compaction mid-run.
        """
        buckets = self._buckets
        emptied: list[float] = []
        size = 0
        for t, bucket in buckets.items():
            if type(bucket) is not deque:
                if bucket.cancelled:
                    bucket._sim = None
                    emptied.append(t)
                else:
                    size += 1
                continue
            live = [ev for ev in bucket if not ev.cancelled]
            if len(live) != len(bucket):
                for ev in bucket:
                    if ev.cancelled:
                        ev._sim = None
                bucket.clear()
                bucket.extend(live)
            if bucket:
                size += len(bucket)
            else:
                emptied.append(t)
        spare = self._spare
        for t in emptied:
            bucket = buckets.pop(t)
            if type(bucket) is deque and len(spare) < _SPARE_DEQUES:
                spare.append(bucket)
        times = self._times
        times[:] = buckets.keys()
        heapq.heapify(times)
        self._size = size
        self._dead = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time.  Events scheduled at
            exactly ``until`` still fire; the clock is left at ``until`` if
            it is reached, else at the last event time.
        max_events:
            Safety valve — abort with :class:`SimulationError` after this
            many callbacks (catches accidental infinite event chains).

        Returns the final clock value.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        self._stop_requested = False
        budget = math.inf if max_events is None else max_events
        # Loop-invariant lookups hoisted out of the hot loop.  The heap
        # and bucket *containers* are stable (compaction mutates them in
        # place); the profile hook is re-read per event because a
        # callback may attach/detach a profiler mid-run.
        times = self._times
        buckets = self._buckets
        spare = self._spare
        heappop = _heappop
        limit = math.inf if until is None else until
        # The processed counter is kept in a local and written back in the
        # finally block: one less attribute round-trip per event.  Code
        # running *inside* a callback sees the count as of run() entry.
        processed = self._events_processed
        try:
            while times and not self._stop_requested:
                t = times[0]
                if t > limit:
                    break
                # The bucket is removed optimistically (one hash op covers
                # both the lookup and the delete): for the dominant inline-
                # singleton case the timestamp is retired *before* the
                # callback runs, so an event the callback schedules at
                # exactly this time re-creates the bucket (and fires
                # next), and a compaction inside the callback sees a
                # consistent heap/bucket pair.  A deque with remaining
                # siblings is put back.
                bucket = buckets.pop(t)
                if type(bucket) is deque:
                    event = bucket.popleft()
                    bfunc = self._batch_func
                    if (
                        bfunc is not None
                        and bucket
                        and not event.cancelled
                        and self._profile_hook is None
                    ):
                        cb = event.callback
                        if type(cb) is MethodType and cb.__func__ is bfunc:
                            # Burst extraction (module docstring): fuse the
                            # unbroken run of arrivals at one receiver from
                            # the bucket head.  Tombstones inside the run
                            # are consumed — they would be skipped anyway —
                            # but the first live foreign event ends it.
                            owner = cb.__self__
                            batch = [event.args]
                            while bucket:
                                nxt = bucket[0]
                                if nxt.cancelled:
                                    bucket.popleft()
                                    nxt._sim = None
                                    self._size -= 1
                                    self._dead -= 1
                                    continue
                                ncb = nxt.callback
                                if (
                                    type(ncb) is MethodType
                                    and ncb.__func__ is bfunc
                                    and ncb.__self__ is owner
                                ):
                                    bucket.popleft()
                                    nxt._sim = None
                                    self._size -= 1
                                    batch.append(nxt.args)
                                    continue
                                break
                            if bucket:
                                buckets[t] = bucket
                            else:
                                heappop(times)
                                if len(spare) < _SPARE_DEQUES:
                                    spare.append(bucket)
                            self._size -= 1
                            event._sim = None
                            self.now = t
                            if len(batch) > 1:
                                self._batch_dispatch(owner, batch)
                            else:
                                args = event.args
                                if args:
                                    event.callback(*args)
                                else:
                                    event.callback()
                            processed += len(batch)
                            budget -= len(batch)
                            if budget < 0:
                                raise SimulationError(
                                    f"max_events={max_events} exceeded at t={self.now}"
                                )
                            continue
                    if bucket:
                        buckets[t] = bucket
                    else:
                        heappop(times)
                        if len(spare) < _SPARE_DEQUES:
                            spare.append(bucket)
                else:
                    event = bucket
                    heappop(times)
                self._size -= 1
                event._sim = None
                if event.cancelled:
                    self._dead -= 1
                    continue
                self.now = t
                hook = self._profile_hook
                if hook is None:
                    args = event.args
                    if args:
                        event.callback(*args)
                    else:
                        event.callback()
                else:
                    hook(event)
                processed += 1
                budget -= 1
                if budget < 0:
                    raise SimulationError(
                        f"max_events={max_events} exceeded at t={self.now}"
                    )
        finally:
            self._events_processed = processed
            self._running = False
        if until is not None and self.now < until:
            self.now = until
        return self.now

    def step(self) -> bool:
        """Execute exactly one (non-cancelled) event.

        Returns ``True`` if an event ran, ``False`` if the heap is empty.
        """
        times = self._times
        buckets = self._buckets
        while times:
            t = times[0]
            bucket = buckets[t]
            if type(bucket) is deque:
                event = bucket.popleft()
                if not bucket:
                    _heappop(times)
                    del buckets[t]
                    if len(self._spare) < _SPARE_DEQUES:
                        self._spare.append(bucket)
            else:
                event = bucket
                _heappop(times)
                del buckets[t]
            self._size -= 1
            event._sim = None
            if event.cancelled:
                self._dead -= 1
                continue
            self.now = t
            hook = self._profile_hook
            if hook is None:
                args = event.args
                if args:
                    event.callback(*args)
                else:
                    event.callback()
            else:
                hook(event)
            self._events_processed += 1
            return True
        return False

    def stop(self) -> None:
        """Request the running :meth:`run` loop to stop after the current event."""
        self._stop_requested = True

    def set_batch_target(
        self,
        func: Callable[..., None] | None,
        dispatch: Callable[[Any, list], None] | None = None,
    ) -> None:
        """Install (or clear, with ``None``) the burst-extraction target.

        ``func`` is a plain function — in practice ``Node.receive`` — and
        ``dispatch(receiver, [args, ...])`` is invoked in its place when
        the run loop finds consecutive same-bucket events that are bound
        methods of ``func``: one call per unbroken run, argument tuples in
        FIFO order.  ``dispatch`` must be observationally equivalent to
        ``for args in batch: func(receiver, *args)`` for traces to stay
        bit-identical to the scalar path (held to it by
        ``tests/test_dataplane_batch.py``).
        """
        if func is not None and dispatch is None:
            raise SimulationError("set_batch_target requires a dispatch function")
        self._batch_func = func
        self._batch_dispatch = dispatch if func is not None else None

    def every(
        self,
        interval: float,
        callback: Callable[[], None],
        *,
        first_delay: float | None = None,
    ) -> "Periodic":
        """Schedule ``callback()`` every ``interval`` seconds, starting
        ``first_delay`` (default: one interval) from now.

        Returns a :class:`Periodic` handle whose :meth:`Periodic.cancel`
        stops the recurrence.  This is the rate-change channel of the
        hybrid fluid/packet traffic plane: envelope epochs (fluid
        aggregate rate redraws, expansion-point reprogramming) ride the
        same event heap as per-packet events, so fluid and packet state
        stay causally ordered on one clock.  Each firing schedules the
        next from the *nominal* grid (``t0 + k*interval`` drift-free
        accumulation is not attempted — intervals are exact float sums,
        which is what the deterministic replay contract needs).
        """
        if not 0.0 < interval < math.inf:
            raise SimulationError(f"interval must be positive and finite, got {interval}")
        p = Periodic(self, interval, callback)
        p._event = self.schedule(
            interval if first_delay is None else first_delay, p._fire
        )
        return p

    def peek(self) -> float:
        """Time of the next live event, or ``inf`` if none pending."""
        times = self._times
        buckets = self._buckets
        while times:
            t = times[0]
            bucket = buckets[t]
            if type(bucket) is deque:
                while bucket and bucket[0].cancelled:
                    event = bucket.popleft()
                    event._sim = None
                    self._size -= 1
                    self._dead -= 1
                if bucket:
                    return t
                _heappop(times)
                del buckets[t]
                if len(self._spare) < _SPARE_DEQUES:
                    self._spare.append(bucket)
            else:
                if not bucket.cancelled:
                    return t
                bucket._sim = None
                self._size -= 1
                self._dead -= 1
                _heappop(times)
                del buckets[t]
        return math.inf


@dataclass
class Timer:
    """Restartable one-shot timer built on a :class:`Simulator`.

    Used by the control-plane protocols (LDP session keepalives, BGP MRAI,
    IKE retransmission) where the same timer is repeatedly re-armed.
    """

    sim: Simulator
    callback: Callable[[], None]
    _event: Event | None = field(default=None, repr=False)

    def start(self, delay: float) -> None:
        """(Re-)arm the timer to fire ``delay`` seconds from now."""
        self.cancel()
        self._event = self.sim.schedule(delay, self._fire)

    def cancel(self) -> None:
        """Disarm the timer if armed.  Idempotent."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    @property
    def armed(self) -> bool:
        return self._event is not None and not self._event.cancelled

    def _fire(self) -> None:
        self._event = None
        self.callback()


class Periodic:
    """Recurring event produced by :meth:`Simulator.every`.

    Self-rearming: each firing runs the callback then schedules the next
    occurrence, so a cancel from *inside* the callback (or from anywhere
    else) stops the recurrence cleanly.  Cancellation is O(1) — the
    pending event is tombstoned like any other.
    """

    __slots__ = ("sim", "interval", "callback", "_event", "_stopped")

    def __init__(
        self, sim: Simulator, interval: float, callback: Callable[[], None]
    ) -> None:
        self.sim = sim
        self.interval = interval
        self.callback = callback
        self._event: Event | None = None
        self._stopped = False

    def cancel(self) -> None:
        """Stop the recurrence.  Idempotent."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    @property
    def active(self) -> bool:
        return not self._stopped

    def _fire(self) -> None:
        self._event = None
        self.callback()
        if not self._stopped:
            self._event = self.sim.schedule(self.interval, self._fire)


def drain(sim: Simulator, horizon: float, chunk: float = 1.0) -> Iterable[float]:
    """Run ``sim`` to ``horizon`` yielding the clock after each ``chunk``.

    Convenience for progress reporting in long benchmark runs.
    """
    t = sim.now
    while t < horizon:
        t = min(t + chunk, horizon)
        sim.run(until=t)
        yield sim.now


def bind(callback: Callable[..., Any], *args: Any, **kwargs: Any) -> Callable[[], None]:
    """Tiny ``functools.partial`` equivalent returning a zero-arg closure.

    Exists so call sites read ``sim.schedule(d, bind(node.receive, pkt))``
    without importing functools everywhere; closures proved marginally
    faster than ``partial`` under profiling for our callback mix.
    """

    def _bound() -> None:
        callback(*args, **kwargs)

    return _bound


# All ``bind`` closures share this code object; the kernel profiler uses it
# to recognise a bound callback and unwrap the inner callable for per-kind
# attribution (see repro.obs.profiler).
_BOUND_CODE = bind(lambda: None).__code__
