"""Discrete-event simulation kernel: scheduler, RNG streams, tracing."""

from repro.sim.engine import (
    Event,
    Periodic,
    SimulationError,
    Simulator,
    Timer,
    bind,
    drain,
)
from repro.sim.randomness import RandomStreams
from repro.sim.trace import Counter, TraceBus, TraceRecord

__all__ = [
    "Event",
    "Periodic",
    "SimulationError",
    "Simulator",
    "Timer",
    "bind",
    "drain",
    "RandomStreams",
    "Counter",
    "TraceBus",
    "TraceRecord",
]
