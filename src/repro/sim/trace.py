"""Lightweight tracing / instrumentation bus.

Components publish structured trace records (packet drops, LSP setups, BGP
updates, SLA violations) to a :class:`TraceBus`; tests and experiment
harnesses subscribe to the record kinds they care about.  When nobody is
subscribed to a kind, publishing is a single dict lookup + ``None`` check,
so tracing costs almost nothing in production benchmark runs.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = ["TraceBus", "TraceRecord", "Counter"]


@dataclass(slots=True, frozen=True)
class TraceRecord:
    """One trace event: a kind, a timestamp, and free-form attributes."""

    kind: str
    time: float
    attrs: dict[str, Any]

    def __getattr__(self, name: str) -> Any:  # convenience: rec.node etc.
        try:
            return self.attrs[name]
        except KeyError:
            raise AttributeError(name) from None


class TraceBus:
    """Publish/subscribe hub for :class:`TraceRecord`.

    Subscribers are plain callables; ``record=True`` subscriptions append to
    an in-memory list retrievable via :meth:`records`.
    """

    def __init__(self) -> None:
        self._subs: dict[str, list[Callable[[TraceRecord], None]]] = defaultdict(list)
        self._recorded: dict[str, list[TraceRecord]] = {}
        # Direct observability attachment points.  Per-hop hot paths check
        # these attributes against ``None`` instead of going through
        # ``publish`` — publish builds its kwargs dict *before* the
        # no-subscriber check, which is too expensive to pay per packet-hop.
        # Set by repro.obs.telemetry when a Telemetry session attaches.
        self.flight = None  # FlightRecorder | None
        self.flows = None   # FlowAccountant | None
        self.slo = None     # repro.obs.slo.SloEngine | None

    def subscribe(self, kind: str, fn: Callable[[TraceRecord], None]) -> None:
        """Invoke ``fn`` for every published record of ``kind``."""
        self._subs[kind].append(fn)

    def unsubscribe(self, kind: str, fn: Callable[[TraceRecord], None]) -> None:
        """Remove a subscription added with :meth:`subscribe`.

        Removes one registration of ``fn`` for ``kind``; raises
        ``ValueError`` if it was never subscribed.  Empty subscriber lists
        are deleted so :meth:`active` (and the publish fast path) return to
        the no-subscriber state.
        """
        subs = self._subs[kind]
        subs.remove(fn)
        if not subs:
            del self._subs[kind]

    def record(self, kind: str) -> None:
        """Start retaining records of ``kind`` for later inspection."""
        if kind not in self._recorded:
            self._recorded[kind] = []
            self.subscribe(kind, self._recorded[kind].append)

    def records(self, kind: str) -> list[TraceRecord]:
        """Records retained via :meth:`record` (empty if not recording)."""
        return self._recorded.get(kind, [])

    def publish(self, kind: str, time: float, **attrs: Any) -> None:
        """Publish a record; no-op when ``kind`` has no subscribers."""
        subs = self._subs.get(kind)
        if not subs:
            return
        rec = TraceRecord(kind, time, attrs)
        for fn in subs:
            fn(rec)

    def active(self, kind: str) -> bool:
        """True when at least one subscriber listens to ``kind``."""
        return bool(self._subs.get(kind))


@dataclass
class Counter:
    """Named integer counters, used for control-plane message accounting.

    The scalability experiment (E1) is entirely counter-driven: we count
    LDP/BGP messages and state entries rather than timing anything.
    """

    counts: dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def incr(self, name: str, by: int = 1) -> None:
        self.counts[name] += by

    def __getitem__(self, name: str) -> int:
        return self.counts.get(name, 0)

    def __iter__(self) -> Iterator[tuple[str, int]]:
        return iter(sorted(self.counts.items()))

    def total(self, prefix: str = "") -> int:
        """Sum of all counters whose name starts with ``prefix``."""
        return sum(v for k, v in self.counts.items() if k.startswith(prefix))

    def snapshot(self) -> dict[str, int]:
        return dict(self.counts)
