"""Named, reproducible random-number streams.

Every stochastic component in the simulator (traffic generators, RED,
jittered control-plane timers) draws from its *own* named stream derived
from a single experiment seed.  This gives two properties the experiments
rely on:

* **Reproducibility** — the same seed replays the identical packet trace.
* **Variance isolation** — adding a new random component (say, enabling RED)
  does not perturb the draw sequence of existing components, so A/B
  comparisons between configurations see the same offered traffic.

Streams are ``numpy.random.Generator`` instances seeded via
``SeedSequence.spawn``-style derivation: the child seed is the SHA-independent
hash of (root seed, stream name), which NumPy's ``SeedSequence`` supports
directly through its ``spawn_key`` mechanism.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """Factory of named, independently-seeded ``numpy.random.Generator`` streams.

    Examples
    --------
    >>> rs = RandomStreams(seed=42)
    >>> g1 = rs.stream("traffic.voice.0")
    >>> g2 = rs.stream("traffic.voice.0")
    >>> g1 is g2          # same name -> same generator object
    True
    >>> rs2 = RandomStreams(seed=42)
    >>> float(rs2.stream("traffic.voice.0").random()) == float(g1.random())
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The mapping name→stream is stable across processes and Python
        versions (it uses CRC32, not the salted builtin ``hash``).
        """
        gen = self._streams.get(name)
        if gen is None:
            spawn_key = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(self._seed, spawn_key=(spawn_key,))
            gen = np.random.Generator(np.random.PCG64(seq))
            self._streams[name] = gen
        return gen

    # ------------------------------------------------------------------
    # State capture/restore — the snapshot layer serializes every named
    # stream's bit-generator state so a restored run draws the exact same
    # variates an uninterrupted run would have.
    def get_state(self) -> dict:
        """Snapshot of the whole factory: seed + per-stream PCG64 state.

        The per-stream payload is ``Generator.bit_generator.state``, a
        plain dict of ints/strings, so the result is JSON/pickle-safe.
        """
        return {
            "seed": self._seed,
            "streams": {
                name: gen.bit_generator.state
                for name, gen in self._streams.items()
            },
        }

    def set_state(self, state: dict) -> None:
        """Restore a :meth:`get_state` snapshot, recreating every stream.

        Streams absent from ``state`` are dropped; streams present are
        rebuilt with their saved bit-generator state, so the next draw on
        each continues exactly where the snapshot left off.
        """
        self._seed = int(state["seed"])
        self._streams = {}
        for name, bg_state in state["streams"].items():
            gen = self.stream(name)       # derive fresh, then overwrite
            gen.bit_generator.state = bg_state

    def reseed(self, seed: int) -> None:
        """Change the root seed of a *pristine* factory.

        Warm-started sweep tasks restore a converged snapshot (whose build
        consumed no streams) and reseed before the first draw.  Reseeding
        after streams exist would silently split one run across two seeds,
        so that is an error.
        """
        if self._streams:
            raise RuntimeError(
                "cannot reseed RandomStreams after streams were created "
                f"({sorted(self._streams)}); reseed before the first draw"
            )
        self._seed = int(seed)

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __len__(self) -> int:
        return len(self._streams)

    def names(self) -> list[str]:
        """Names of all streams created so far, in creation order."""
        return list(self._streams)
