"""Reference (pre-fast-path) simulation kernel, frozen verbatim.

This module preserves the event engine exactly as it stood before the
engine fast path (time-bucketed scheduling, tombstone accounting, packet
pooling, coalesced shaper retries): a single ``(time, seq, Event)``
priority heap popped one entry at a time, plus the pre-PR
``Interface.send`` / ``Interface._transmit_next`` retry behaviour that
re-armed a wake-up timer on every blocked enqueue.

It exists for the same two reasons ``repro.routing.reference`` does:

* **Parity** — ``tests/test_engine_parity.py`` runs whole experiments
  (e2 / e5 / e11) under both engines with the flight recorder attached
  and asserts the per-hop event sequences are bit-identical.  The event
  ordering contract (time first, schedule order within a timestamp) is
  what every seeded experiment depends on; this module is the executable
  statement of that contract.
* **Self-calibrating benchmarks** — ``benchmarks/
  test_engine_performance.py`` measures the fast path's speedup live
  against this engine in the same process, so the asserted floors hold
  on any machine.

Nothing in the library imports this module; it is a test/bench oracle
only.  Keep it byte-for-byte faithful to the old semantics rather than
clean or fast.
"""

from __future__ import annotations

import heapq
import math
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator

__all__ = [
    "ReferenceEvent",
    "ReferenceSimulator",
    "reference_engine",
    "reference_stack",
    "reference_interface_send",
    "reference_interface_transmit_next",
    "reference_transmit_done",
]


@dataclass(slots=True)
class ReferenceEvent:
    """Pre-PR :class:`repro.sim.engine.Event`, kept verbatim."""

    time: float
    callback: Callable[..., None]
    args: tuple = ()
    cancelled: bool = False

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent."""
        self.cancelled = True


class ReferenceSimulator:
    """Pre-PR :class:`repro.sim.engine.Simulator`, kept verbatim.

    One ``(time, seq, Event)`` heap; lazy-deleted cancellations stay in
    the heap until popped; ``pending`` counts them.  API-compatible with
    the fast-path engine so ``Network`` can be built on either.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: list[tuple[float, int, ReferenceEvent]] = []
        self._seq = 0
        self._running = False
        self._events_processed = 0
        self._stop_requested = False
        self._profile_hook: Callable[[ReferenceEvent], None] | None = None
        self._id_counters: dict[str, int] = {}

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending(self) -> int:
        """Pre-PR semantics: everything in the heap, cancelled included."""
        return len(self._heap)

    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], None]) -> ReferenceEvent:
        if delay < 0:
            raise _sim_error(f"cannot schedule in the past (delay={delay})")
        if not math.isfinite(delay):
            raise _sim_error(f"delay must be finite, got {delay}")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> ReferenceEvent:
        if time < self._now:
            raise _sim_error(f"cannot schedule at t={time} (now={self._now})")
        event = ReferenceEvent(time, callback)
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, event))
        return event

    def schedule_call(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> ReferenceEvent:
        if delay < 0:
            raise _sim_error(f"cannot schedule in the past (delay={delay})")
        if not math.isfinite(delay):
            raise _sim_error(f"delay must be finite, got {delay}")
        time = self._now + delay
        event = ReferenceEvent(time, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, event))
        return event

    def call_soon(self, callback: Callable[[], None]) -> ReferenceEvent:
        return self.schedule(0.0, callback)

    def next_id(self, namespace: str) -> int:
        nxt = self._id_counters.get(namespace, 0) + 1
        self._id_counters[namespace] = nxt
        return nxt

    # ------------------------------------------------------------------
    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        if self._running:
            raise _sim_error("simulator is already running (re-entrant run())")
        self._running = True
        self._stop_requested = False
        budget = math.inf if max_events is None else max_events
        try:
            while self._heap and not self._stop_requested:
                time, _seq, event = self._heap[0]
                if until is not None and time > until:
                    break
                heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                self._now = time
                hook = self._profile_hook
                if hook is None:
                    args = event.args
                    if args:
                        event.callback(*args)
                    else:
                        event.callback()
                else:
                    hook(event)
                self._events_processed += 1
                budget -= 1
                if budget < 0:
                    raise _sim_error(
                        f"max_events={max_events} exceeded at t={self._now}"
                    )
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def step(self) -> bool:
        while self._heap:
            time, _seq, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = time
            hook = self._profile_hook
            if hook is None:
                args = event.args
                if args:
                    event.callback(*args)
                else:
                    event.callback()
            else:
                hook(event)
            self._events_processed += 1
            return True
        return False

    def stop(self) -> None:
        self._stop_requested = True

    def peek(self) -> float:
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else math.inf


def _sim_error(msg: str):
    from repro.sim.engine import SimulationError

    return SimulationError(msg)


# ----------------------------------------------------------------------
# Pre-PR Interface driver: re-arm the qdisc retry timer on every blocked
# enqueue (one cancel + one schedule per arrival while regulated).
# ----------------------------------------------------------------------
def reference_interface_send(self, pkt) -> bool:
    """Pre-PR ``Interface.send``: unconditionally kick the transmitter."""
    now = self.sim.now
    for fn in self.conditioners:
        out = fn(pkt, now)
        if out is None:
            self.stats.conditioner_dropped += 1
            self._queue_drop(pkt, _drop_reason_conditioner(), now)
            return False
        pkt = out
    if not self._qdisc.enqueue(pkt, now):
        self.stats.dropped += 1
        return False
    self.stats.enqueued += 1
    fl = self.node.trace.flight
    if fl is not None:
        fl.enqueue(now, self.node.name, pkt, self.name, len(self._qdisc))
    if not self._busy:
        self._transmit_next()
    return True


def reference_interface_transmit_next(self) -> None:
    """Pre-PR ``Interface._transmit_next``: cancel + re-arm per visit."""
    if self._retry_event is not None:
        self._retry_event.cancel()
        self._retry_event = None
    now = self.sim.now
    pkt = self._qdisc.dequeue(now)
    if pkt is None:
        self._busy = False
        if len(self._qdisc) > 0:
            t = self._qdisc.next_eligible(now)
            if t != float("inf"):
                self._retry_event = self.sim.schedule(
                    max(t - now, 1e-9), self._transmit_next
                )
        return
    fl = self.node.trace.flight
    if fl is not None:
        fl.dequeue(now, self.node.name, pkt, self.name, len(self._qdisc))
    self._busy = True
    tx_time = pkt.wire_bytes * 8.0 / self.rate_bps
    self.stats.busy_time += tx_time
    self.sim.schedule_call(tx_time, self._transmit_done, pkt)


def reference_transmit_done(self, pkt) -> None:
    """Pre-PR ``Interface._transmit_done``: delegate to ``Link.carry``."""
    self.stats.tx_packets += 1
    self.stats.tx_bytes += pkt.wire_bytes
    if self.link is not None:
        self.link.carry(pkt)
    self._transmit_next()


def _drop_reason_conditioner():
    from repro.net.drops import DropReason

    return DropReason.CONDITIONER


def reference_queue_drop(self, pkt, reason, now) -> None:
    """Pre-PR ``Interface._queue_drop``: publish unconditionally."""
    trace = self.node.trace
    fl = trace.flight
    if fl is not None:
        fl.drop(now, self.node.name, pkt, reason.value, ifname=self.name)
    trace.publish(
        "drop",
        now,
        node=self.node.name,
        iface=self.name,
        reason=reason.value,
        pkt=pkt,
    )


def reference_classful_len(self) -> int:
    """Pre-PR ``_ClassfulBase.__len__``: sum over class queues per call."""
    return sum(len(c) for c in self.classes)


def reference_cbq_len(self) -> int:
    """Pre-PR ``CbqScheduler.__len__``: sum over class queues per call."""
    return sum(len(c.queue) for c in self.cbq_classes)


def reference_fifo_enqueue(self, pkt, now) -> bool:
    """Pre-PR ``DropTailFifo.enqueue``: unconditional counters and hooks."""
    from repro.net.drops import DropReason

    if self.drop_policy is not None and self.drop_policy.should_drop(
        pkt, self._bytes, now
    ):
        self.stats.dropped += 1
        if self.on_drop is not None:
            self.on_drop(pkt, DropReason.QUEUE_AQM, now)
        return False
    if (
        self.capacity_packets is not None and len(self._q) >= self.capacity_packets
    ) or (
        self.capacity_bytes is not None
        and self._bytes + pkt.wire_bytes > self.capacity_bytes
    ):
        self.stats.dropped += 1
        if self.on_drop is not None:
            self.on_drop(pkt, DropReason.QUEUE_TAIL, now)
        return False
    self._q.append(pkt)
    self._bytes += pkt.wire_bytes
    self.stats.enqueued += 1
    return True


def reference_fifo_dequeue(self, now):
    """Pre-PR ``DropTailFifo.dequeue``: unconditional counters."""
    if not self._q:
        return None
    pkt = self._q.popleft()
    self._bytes -= pkt.wire_bytes
    self.stats.dequeued += 1
    self.stats.bytes_sent += pkt.wire_bytes
    if self.drop_policy is not None:
        self.drop_policy.notify_dequeue(self._bytes, now)
    return pkt


def reference_classqueue_push(self, pkt, now) -> bool:
    """Pre-PR ``ClassQueue.push``: unconditional counters and hooks."""
    from repro.net.drops import DropReason

    if self.drop_policy is not None and self.drop_policy.should_drop(
        pkt, self.bytes, now
    ):
        self.stats.dropped += 1
        if self.on_drop is not None:
            self.on_drop(pkt, DropReason.QUEUE_AQM, now)
        return False
    if (
        self.capacity_packets is not None and len(self.q) >= self.capacity_packets
    ) or (
        self.capacity_bytes is not None
        and self.bytes + pkt.wire_bytes > self.capacity_bytes
    ):
        self.stats.dropped += 1
        if self.on_drop is not None:
            self.on_drop(pkt, DropReason.QUEUE_TAIL, now)
        return False
    self.q.append(pkt)
    self.bytes += pkt.wire_bytes
    self.stats.enqueued += 1
    return True


def reference_classqueue_pop(self, now):
    """Pre-PR ``ClassQueue.pop``: unconditional counters."""
    pkt = self.q.popleft()
    self.bytes -= pkt.wire_bytes
    self.stats.dequeued += 1
    self.stats.bytes_sent += pkt.wire_bytes
    if self.drop_policy is not None:
        self.drop_policy.notify_dequeue(self.bytes, now)
    return pkt


def reference_wire_bytes(self) -> int:
    """Pre-PR ``Packet.wire_bytes``: recompute on every access."""
    from repro.net.packet import IPV4_HEADER_BYTES, MPLS_SHIM_BYTES

    size = IPV4_HEADER_BYTES + MPLS_SHIM_BYTES * len(self.mpls_stack)
    if self.inner is not None:
        size += self.inner.wire_bytes + self.encap_overhead
    else:
        size += self.payload_bytes + self.encap_overhead
    return size


# ----------------------------------------------------------------------
# Context managers: build Networks on the frozen engine / frozen stack
# ----------------------------------------------------------------------
@contextmanager
def reference_engine() -> Iterator[None]:
    """Every ``Network`` built inside runs on :class:`ReferenceSimulator`.

    Swaps the ``Simulator`` symbol :class:`repro.topology.Network` calls
    in ``__init__``; existing networks keep their engine.
    """
    import repro.topology as topology

    saved = topology.Simulator
    topology.Simulator = ReferenceSimulator  # type: ignore[assignment,misc]
    try:
        yield
    finally:
        topology.Simulator = saved  # type: ignore[misc]


@contextmanager
def reference_stack() -> Iterator[None]:
    """Frozen engine *and* frozen churn behaviour, for e2e benchmarks.

    On top of :func:`reference_engine`: restores the pre-PR per-enqueue
    shaper-retry re-arm and unguarded drop publishing on
    :class:`~repro.net.link.Interface`, the per-call qdisc length sums,
    the recomputed ``Packet.wire_bytes``, and turns the traffic-source
    packet pool off — so the measured ratio covers the whole tentpole
    (engine + packet/event churn) rather than the engine alone.
    """
    from repro.net.link import Interface
    from repro.net.packet import Packet
    from repro.qos.cbq import CbqScheduler
    from repro.qos.queues import ClassQueue, DropTailFifo, _ClassfulBase
    from repro.traffic import generators

    saved_send = Interface.send
    saved_next = Interface._transmit_next
    saved_done = Interface._transmit_done
    saved_drop = Interface._queue_drop
    saved_classful_len = _ClassfulBase.__len__
    saved_cbq_len = CbqScheduler.__len__
    saved_wire = Packet.wire_bytes
    saved_pool = generators.POOLING
    saved_fifo_enq = DropTailFifo.enqueue
    saved_fifo_deq = DropTailFifo.dequeue
    saved_cq_push = ClassQueue.push
    saved_cq_pop = ClassQueue.pop
    with reference_engine():
        Interface.send = reference_interface_send  # type: ignore[method-assign]
        Interface._transmit_next = reference_interface_transmit_next  # type: ignore[method-assign]
        Interface._transmit_done = reference_transmit_done  # type: ignore[method-assign]
        Interface._queue_drop = reference_queue_drop  # type: ignore[method-assign]
        _ClassfulBase.__len__ = reference_classful_len  # type: ignore[method-assign]
        CbqScheduler.__len__ = reference_cbq_len  # type: ignore[method-assign]
        Packet.wire_bytes = property(reference_wire_bytes)  # type: ignore[misc]
        generators.POOLING = False
        DropTailFifo.enqueue = reference_fifo_enqueue  # type: ignore[method-assign]
        DropTailFifo.dequeue = reference_fifo_dequeue  # type: ignore[method-assign]
        ClassQueue.push = reference_classqueue_push  # type: ignore[method-assign]
        ClassQueue.pop = reference_classqueue_pop  # type: ignore[method-assign]
        try:
            yield
        finally:
            Interface.send = saved_send  # type: ignore[method-assign]
            Interface._transmit_next = saved_next  # type: ignore[method-assign]
            Interface._transmit_done = saved_done  # type: ignore[method-assign]
            Interface._queue_drop = saved_drop  # type: ignore[method-assign]
            _ClassfulBase.__len__ = saved_classful_len  # type: ignore[method-assign]
            CbqScheduler.__len__ = saved_cbq_len  # type: ignore[method-assign]
            Packet.wire_bytes = saved_wire  # type: ignore[misc]
            generators.POOLING = saved_pool
            DropTailFifo.enqueue = saved_fifo_enq  # type: ignore[method-assign]
            DropTailFifo.dequeue = saved_fifo_deq  # type: ignore[method-assign]
            ClassQueue.push = saved_cq_push  # type: ignore[method-assign]
            ClassQueue.pop = saved_cq_pop  # type: ignore[method-assign]
