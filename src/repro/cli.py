"""Command-line runner: ``python -m repro <command> ...``.

Gives downstream users the whole experiment harness without writing code:

    python -m repro list
    python -m repro run e1 --sites 10 50 200
    python -m repro run e2 --measure 8
    python -m repro run all --measure 4

Each experiment prints the same table its benchmark does.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Any, Callable, Sequence

from repro.metrics.table import print_table

__all__ = ["main", "EXPERIMENTS"]


def _run_e1(args: argparse.Namespace) -> list[dict[str, Any]]:
    from repro.experiments.e1_scalability import run_e1
    rows, _ = run_e1(site_counts=tuple(args.sites))
    return rows


def _run_e2(args: argparse.Namespace) -> list[dict[str, Any]]:
    from repro.experiments.e2_qos import run_e2
    rows, _ = run_e2(measure_s=args.measure)
    return rows


def _run_e3(args: argparse.Namespace) -> list[dict[str, Any]]:
    from repro.experiments.e3_forwarding import run_e3
    rows, _ = run_e3()
    return rows


def _run_e4(args: argparse.Namespace) -> list[dict[str, Any]]:
    from repro.experiments.e4_ipsec import run_e4
    rows, _ = run_e4(measure_s=args.measure)
    return rows


def _run_e5(args: argparse.Namespace) -> list[dict[str, Any]]:
    from repro.experiments.e5_sla import run_e5
    rows, _ = run_e5(measure_s=args.measure)
    return rows


def _run_e6(args: argparse.Namespace) -> list[dict[str, Any]]:
    from repro.experiments.e6_te import run_e6
    rows, _ = run_e6(measure_s=args.measure)
    return rows


def _run_e7(args: argparse.Namespace) -> list[dict[str, Any]]:
    from repro.experiments.e7_isolation import run_e7
    rows, _ = run_e7(measure_s=min(args.measure, 4.0))
    return rows


def _run_e8(args: argparse.Namespace) -> list[dict[str, Any]]:
    from repro.experiments.e8_mixed import run_e8
    rows, _ = run_e8(measure_s=min(args.measure, 4.0))
    return rows


def _run_e9(args: argparse.Namespace) -> list[dict[str, Any]]:
    from repro.experiments.e9_ablations import run_e9
    out = run_e9(measure_s=args.measure)
    all_rows: list[dict[str, Any]] = []
    for name, (rows, _raw) in out.items():
        print_table(rows, title=f"E9 {name}")
        all_rows.extend(rows)
    return []  # already printed per-study


def _run_e10(args: argparse.Namespace) -> list[dict[str, Any]]:
    from repro.experiments.e10_interas import run_e10
    rows, summary = run_e10(measure_s=args.measure)
    rows.append({
        "flow": "— border control plane —",
        "sent": summary["routes_exchanged_over_border"],
        "recv": summary["cross_customer_leaks"],
    })
    return rows


def _run_e11(args: argparse.Namespace) -> list[dict[str, Any]]:
    from repro.experiments.e11_resilience import run_e11
    rows, _ = run_e11(measure_s=max(args.measure, 8.0))
    return rows


def _run_e12(args: argparse.Namespace) -> list[dict[str, Any]]:
    from repro.experiments.e12_elastic import run_e12
    out = run_e12(duration_s=max(args.measure, 10.0))
    for name, (rows, _raw) in out.items():
        print_table(rows, title=f"E12 {name}")
    return []


def _run_e13(args: argparse.Namespace) -> list[dict[str, Any]]:
    from repro.experiments.e13_tiers import run_e13
    rows, _ = run_e13(measure_s=args.measure)
    return rows


def _run_e14(args: argparse.Namespace) -> list[dict[str, Any]]:
    from repro.experiments.e14_intserv import run_e14
    rows, _ = run_e14(measure_s=args.measure)
    return rows


EXPERIMENTS: dict[str, tuple[str, Callable[[argparse.Namespace], list[dict[str, Any]]]]] = {
    "e1": ("scalability: overlay VCs vs MPLS VPN state (§2.1)", _run_e1),
    "e2": ("per-class QoS: IP vs DiffServ vs MPLS (C2)", _run_e2),
    "e3": ("forwarding cost: LPM vs label lookup (C4)", _run_e3),
    "e4": ("encryption vs QoS: IPsec vs MPLS VPN (C3)", _run_e4),
    "e5": ("end-to-end SLA chain, ablated (§5/C6)", _run_e5),
    "e6": ("traffic engineering on the fish (C7)", _run_e6),
    "e7": ("isolation with overlapping addresses (C5)", _run_e7),
    "e8": ("mixed labeled/unlabeled backbone (Fig. 4)", _run_e8),
    "e9": ("ablations: schedulers, AQM, PHP/EXP, stack, iBGP", _run_e9),
    "e10": ("cross-provider VPN, option A (§5)", _run_e10),
    "e11": ("resilience: IGP reconvergence vs FRR", _run_e11),
    "e12": ("elastic (TCP-like) traffic: AQM + class protection", _run_e12),
    "e13": ("per-VPN service tiers: gold/silver/bronze (§2.2)", _run_e13),
    "e14": ("IntServ per-flow vs DiffServ aggregation cost (§2.2)", _run_e14),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Experiment runner for the MPLS VPN QoS reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", choices=[*EXPERIMENTS, "all"])
    run.add_argument("--measure", type=float, default=6.0,
                     help="measurement window in simulated seconds (default 6)")
    run.add_argument("--sites", type=int, nargs="+", default=[10, 50, 100, 200],
                     help="site counts for e1")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name, (desc, _fn) in EXPERIMENTS.items():
            print(f"  {name:4s} {desc}")
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        desc, fn = EXPERIMENTS[name]
        print(f"\n=== {name}: {desc} ===")
        t0 = time.perf_counter()
        rows = fn(args)
        if rows:
            print_table(rows)
        print(f"[{name} finished in {time.perf_counter() - t0:.1f}s wall clock]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
