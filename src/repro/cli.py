"""Command-line runner: ``python -m repro <command> ...``.

Gives downstream users the whole experiment harness without writing code:

    python -m repro list
    python -m repro run e1 --sites 10 50 200
    python -m repro run e2 --measure 8 --telemetry out.json
    python -m repro run all --measure 4
    python -m repro telemetry out.json

Each experiment prints the same table its benchmark does.  With
``--telemetry PATH`` the run also records a full observability bundle —
seed, git revision, per-node/interface/class metrics, kernel profile, and
flow-accounting tables for every network the experiment built — as one
JSON document; ``repro telemetry PATH`` pretty-prints it later.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Callable, Sequence

from repro.metrics.table import print_table

__all__ = ["main", "EXPERIMENTS"]


def _run_e1(args: argparse.Namespace) -> list[dict[str, Any]]:
    from repro.experiments.e1_scalability import run_e1
    rows, _ = run_e1(site_counts=tuple(args.sites))
    return rows


def _measure(args: argparse.Namespace) -> float:
    """Effective measurement window: ``--smoke`` caps it at 1 s."""
    if getattr(args, "smoke", False):
        return min(args.measure, 1.0)
    return args.measure


def _run_e2(args: argparse.Namespace) -> list[dict[str, Any]]:
    from repro.experiments.e2_qos import run_e2
    rows, _ = run_e2(measure_s=_measure(args), hybrid=getattr(args, "hybrid", False))
    return rows


def _run_e3(args: argparse.Namespace) -> list[dict[str, Any]]:
    from repro.experiments.e3_forwarding import run_e3
    rows, _ = run_e3()
    return rows


def _run_e4(args: argparse.Namespace) -> list[dict[str, Any]]:
    from repro.experiments.e4_ipsec import run_e4
    rows, _ = run_e4(measure_s=args.measure)
    return rows


def _run_e5(args: argparse.Namespace) -> list[dict[str, Any]]:
    from repro.experiments.e5_sla import run_e5
    rows, _ = run_e5(measure_s=_measure(args), hybrid=getattr(args, "hybrid", False))
    return rows


def _run_e6(args: argparse.Namespace) -> list[dict[str, Any]]:
    from repro.experiments.e6_te import run_e6
    rows, _ = run_e6(measure_s=args.measure)
    return rows


def _run_e7(args: argparse.Namespace) -> list[dict[str, Any]]:
    from repro.experiments.e7_isolation import run_e7
    rows, _ = run_e7(measure_s=min(args.measure, 4.0))
    return rows


def _run_e8(args: argparse.Namespace) -> list[dict[str, Any]]:
    from repro.experiments.e8_mixed import run_e8
    rows, _ = run_e8(measure_s=min(args.measure, 4.0))
    return rows


def _run_e9(args: argparse.Namespace) -> list[dict[str, Any]]:
    from repro.experiments.e9_ablations import run_e9
    out = run_e9(measure_s=args.measure)
    all_rows: list[dict[str, Any]] = []
    for name, (rows, _raw) in out.items():
        print_table(rows, title=f"E9 {name}")
        all_rows.extend(rows)
    return []  # already printed per-study


def _run_e10(args: argparse.Namespace) -> list[dict[str, Any]]:
    from repro.experiments.e10_interas import run_e10
    rows, summary = run_e10(measure_s=args.measure)
    rows.append({
        "flow": "— border control plane —",
        "sent": summary["routes_exchanged_over_border"],
        "recv": summary["cross_customer_leaks"],
    })
    return rows


def _run_e11(args: argparse.Namespace) -> list[dict[str, Any]]:
    from repro.experiments.e11_resilience import run_e11
    rows, _ = run_e11(measure_s=max(args.measure, 8.0))
    return rows


def _run_e12(args: argparse.Namespace) -> list[dict[str, Any]]:
    from repro.experiments.e12_elastic import run_e12
    duration = max(args.measure, 10.0)
    if getattr(args, "smoke", False):
        duration = 10.0
    out = run_e12(duration_s=duration, hybrid=getattr(args, "hybrid", False))
    for name, (rows, _raw) in out.items():
        print_table(rows, title=f"E12 {name}")
    return []


def _run_e13(args: argparse.Namespace) -> list[dict[str, Any]]:
    from repro.experiments.e13_tiers import run_e13
    rows, _ = run_e13(measure_s=args.measure)
    return rows


def _run_e14(args: argparse.Namespace) -> list[dict[str, Any]]:
    from repro.experiments.e14_intserv import run_e14
    rows, _ = run_e14(measure_s=args.measure)
    return rows


def _run_e15(args: argparse.Namespace) -> list[dict[str, Any]]:
    from repro.experiments.e15_churn import run_e15
    if getattr(args, "smoke", False):
        rows, _ = run_e15(n_sites=48, site_flaps=4, wave_sites=4, link_flaps=1)
    else:
        rows, _ = run_e15(n_sites=500)
    return rows


def _run_eh(args: argparse.Namespace) -> list[dict[str, Any]]:
    from repro.experiments.hybrid import run_hybrid_demo
    n_flows = 2_000 if getattr(args, "smoke", False) else 10_000
    rows, _ = run_hybrid_demo(n_flows=n_flows)
    return rows


EXPERIMENTS: dict[str, tuple[str, Callable[[argparse.Namespace], list[dict[str, Any]]]]] = {
    "e1": ("scalability: overlay VCs vs MPLS VPN state (§2.1)", _run_e1),
    "e2": ("per-class QoS: IP vs DiffServ vs MPLS (C2)", _run_e2),
    "e3": ("forwarding cost: LPM vs label lookup (C4)", _run_e3),
    "e4": ("encryption vs QoS: IPsec vs MPLS VPN (C3)", _run_e4),
    "e5": ("end-to-end SLA chain, ablated (§5/C6)", _run_e5),
    "e6": ("traffic engineering on the fish (C7)", _run_e6),
    "e7": ("isolation with overlapping addresses (C5)", _run_e7),
    "e8": ("mixed labeled/unlabeled backbone (Fig. 4)", _run_e8),
    "e9": ("ablations: schedulers, AQM, PHP/EXP, stack, iBGP", _run_e9),
    "e10": ("cross-provider VPN, option A (§5)", _run_e10),
    "e11": ("resilience: IGP reconvergence vs FRR", _run_e11),
    "e12": ("elastic (TCP-like) traffic: AQM + class protection", _run_e12),
    "e13": ("per-VPN service tiers: gold/silver/bronze (§2.2)", _run_e13),
    "e14": ("IntServ per-flow vs DiffServ aggregation cost (§2.2)", _run_e14),
    "e15": ("churn storms: incremental MP-BGP vs site/PE/VPN/link flaps", _run_e15),
    "eh": ("hybrid fluid/packet plane: pure vs hybrid at scale", _run_eh),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Experiment runner for the MPLS VPN QoS reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", choices=[*EXPERIMENTS, "all"])
    run.add_argument("--measure", type=float, default=6.0,
                     help="measurement window in simulated seconds (default 6)")
    run.add_argument("--sites", type=int, nargs="+", default=[10, 50, 100, 200],
                     help="site counts for e1")
    run.add_argument("--telemetry", metavar="PATH", default=None,
                     help="record a telemetry bundle (metrics, kernel "
                          "profile, flow accounting) to this JSON file")
    run.add_argument("--hybrid", action="store_true",
                     help="carry filler/background traffic on the fluid "
                          "plane (e2, e5, e12; others ignore it)")
    run.add_argument("--smoke", action="store_true",
                     help="seconds-scale CI variant: short measurement "
                          "windows, smaller flow counts")

    tel = sub.add_parser("telemetry", help="pretty-print a telemetry bundle")
    tel.add_argument("path", help="bundle written by 'run --telemetry'")
    tel.add_argument("--flows", action="store_true",
                     help="also print the per-VRF/per-class flow tables")

    sweep = sub.add_parser(
        "sweep",
        help="run an experiment grid across worker processes",
        description="Fan a scenario × parameter × seed grid across "
                    "multiprocessing workers with deterministic per-task "
                    "seeding; merge one JSON report.",
    )
    sweep.add_argument("--grid", choices=["e1", "e2", "e5", "e15", "all"],
                       default="e2", help="which grid to run (default e2)")
    sweep.add_argument("--workers", type=int, default=1,
                       help="worker processes (1 = inline, default)")
    sweep.add_argument("--reps", type=int, default=1,
                       help="seeded repetitions per grid point")
    sweep.add_argument("--measure", type=float, default=2.0,
                       help="measurement window per run (default 2)")
    sweep.add_argument("--sites", type=int, nargs="+",
                       default=[10, 50, 100, 200], help="site counts for e1")
    sweep.add_argument("--smoke", action="store_true",
                       help="run the seconds-scale CI smoke grid instead")
    sweep.add_argument("--slo", action="store_true",
                       help="attach the live streaming SLO engine to e5 "
                            "tasks: adds slo/slo_p99_ms/slo_viol_s columns "
                            "and one (slo-summary) row per task")
    sweep.add_argument("--telemetry", action="store_true",
                       help="collect per-task telemetry manifests into the "
                            "report (disables the counters-off fast path)")
    sweep.add_argument("--warm-start", action="store_true",
                       help="build + converge each distinct scenario base "
                            "once, snapshot it (repro.sim.snapshot), and "
                            "restore per task instead of re-provisioning; "
                            "rows are byte-identical to a cold sweep")
    sweep.add_argument("--out", metavar="PATH", default=None,
                       help="write the merged report to this JSON file")
    sweep.add_argument("--spill-dir", metavar="DIR", default=None,
                       help="directory for per-worker JSONL spill files "
                            "(multi-worker runs; kept after the merge). "
                            "Default: a temporary directory, removed "
                            "once merged")

    snap = sub.add_parser(
        "snapshot",
        help="save/restore converged simulator state",
        description="Checkpoint a built + converged scenario as a "
                    "versioned repro.sim.snapshot image, restore one to "
                    "verify it, or inspect an image's header.",
    )
    snap_sub = snap.add_subparsers(dest="snapshot_command", required=True)
    snap_save = snap_sub.add_parser(
        "save", help="build + converge a scenario base and snapshot it")
    snap_save.add_argument("path", help="output snapshot file")
    snap_save.add_argument(
        "--base", required=True, metavar="KEY",
        help="scenario base key, same naming as the warm-start sweep: "
             "e1/overlay/<sites>, e1/mpls/<sites>, e2/<config>, e5/<stage>")
    snap_restore = snap_sub.add_parser(
        "restore", help="restore a snapshot and verify it round-trips")
    snap_restore.add_argument("path", help="snapshot file to restore")
    snap_info = snap_sub.add_parser(
        "info", help="print a snapshot file's schema/version header")
    snap_info.add_argument("path", help="snapshot file to inspect")

    slo = sub.add_parser(
        "slo",
        help="live SLO report + convergence trace",
        description="Run the E5 SLA chain with the streaming SLO engine "
                    "attached (live windowed conformance next to the batch "
                    "verdicts) and a scripted E11 link flap under the "
                    "convergence tracer (control-plane vs data-plane "
                    "healing time).",
    )
    slo.add_argument("--stage", choices=["none", "cbq-only", "core-only", "full"],
                     default="full", help="E5 ablation stage (default full)")
    slo.add_argument("--measure", type=float, default=6.0,
                     help="E5 measurement window in simulated seconds")
    slo.add_argument("--smoke", action="store_true",
                     help="seconds-scale CI variant: short windows, "
                          "igp-tuned flap only")
    slo.add_argument("--spans", metavar="PATH", default=None,
                     help="write the convergence span trace as JSONL "
                          "(validated against repro.spans/v1)")
    slo.add_argument("--json", metavar="PATH", default=None,
                     help="write the combined SLO + convergence summary "
                          "as one JSON document")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name, (desc, _fn) in EXPERIMENTS.items():
            print(f"  {name:4s} {desc}")
        return 0
    if args.command == "telemetry":
        return _show_telemetry(args)
    if args.command == "sweep":
        return _run_sweep(args)
    if args.command == "snapshot":
        return _run_snapshot(args)
    if args.command == "slo":
        return _run_slo(args)

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    recording = args.telemetry is not None
    manifests: list[dict[str, Any]] = []
    if recording:
        from repro.obs import runtime

        runtime.reset()
        runtime.enable()
    try:
        for name in names:
            desc, fn = EXPERIMENTS[name]
            print(f"\n=== {name}: {desc} ===")
            t0 = time.perf_counter()
            n0 = len(runtime.sessions()) if recording else 0
            rows = fn(args)
            if recording:
                # Every Network built by this experiment got its own
                # telemetry session; snapshot them while still live.
                for session in runtime.sessions()[n0:]:
                    manifests.append(
                        session.manifest(config={"experiment": name})
                    )
            if rows:
                print_table(rows)
            print(f"[{name} finished in {time.perf_counter() - t0:.1f}s wall clock]")
    finally:
        if recording:
            runtime.reset()
    if recording:
        from repro.obs.telemetry import SCHEMA_ID

        bundle = {
            "schema": SCHEMA_ID,
            "kind": "bundle",
            "experiments": names,
            "options": {"measure": args.measure, "sites": list(args.sites)},
            "runs": manifests,
        }
        with open(args.telemetry, "w") as fh:
            json.dump(bundle, fh, indent=2)
            fh.write("\n")
        print(f"[telemetry: {len(manifests)} run manifest(s) -> {args.telemetry}]")
    return 0


def _run_sweep(args: argparse.Namespace) -> int:
    """``repro sweep``: fan a grid across workers, merge one report."""
    from repro.sweep import build_grid, run_sweep, smoke_grid

    if args.smoke:
        tasks = smoke_grid()
    else:
        tasks = build_grid(
            args.grid, reps=args.reps, measure_s=args.measure,
            sites=tuple(args.sites), slo=args.slo,
        )
    print(f"[sweep: {len(tasks)} task(s), {args.workers} worker(s)]")
    report = run_sweep(
        tasks, workers=args.workers, telemetry=args.telemetry,
        spill_dir=args.spill_dir, warm_start=args.warm_start,
    )

    if report["rows"]:
        print_table(report["rows"])
    for failure in report["failed"]:
        print(f"\n[task {failure['index']} {failure['name']} FAILED]")
        print(failure["error"].rstrip())
    wall = report["timing"]["wall_s"]
    warm = report["timing"].get("warm_start")
    if warm:
        print(f"[warm start: {len(warm['bases'])} base(s), "
              f"{warm['bytes']:,} bytes, built in {warm['build_s']:.1f}s]")
    print(f"[sweep: {report['ok']}/{report['tasks']} ok in {wall:.1f}s wall clock]")

    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"[sweep report -> {args.out}]")
    return 0 if not report["failed"] else 1


def _run_snapshot(args: argparse.Namespace) -> int:
    """``repro snapshot save/restore/info``: checkpoint converged state."""
    from repro.sim.snapshot import (
        SnapshotError, load, pending_schedule, read_header,
        verify_cache_coherence,
    )

    if args.snapshot_command == "save":
        from repro.sweep.runner import _build_base

        try:
            blob = _build_base(args.base)
        except (ValueError, KeyError) as exc:
            print(f"unknown base {args.base!r}: {exc}")
            return 1
        with open(args.path, "wb") as fh:
            fh.write(blob)
        print(f"[snapshot: base {args.base} -> {args.path} "
              f"({len(blob):,} bytes)]")
        return 0

    try:
        if args.snapshot_command == "info":
            header = read_header(args.path)
            for key in sorted(header):
                print(f"  {key}: {header[key]}")
            return 0
        # restore
        net, extras = load(args.path)
        problems = verify_cache_coherence(net)
        pending = pending_schedule(net.sim)
        print(f"[snapshot: {len(net.nodes)} node(s), "
              f"{len(net.duplex_links)} link(s), t={net.sim.now}s, "
              f"{len(pending)} pending event(s), "
              f"{len(extras)} extra(s), "
              f"cache deltas: {len(problems)}]")
        return 0
    except OSError as exc:
        print(f"{args.path}: {exc.strerror or exc}")
        return 1
    except SnapshotError as exc:
        print(f"{args.path}: {exc}")
        return 1


def _run_slo(args: argparse.Namespace) -> int:
    """``repro slo``: streaming SLA conformance + convergence tracing."""
    from repro.experiments.e5_sla import run_stage
    from repro.experiments.e11_resilience import run_variant
    from repro.obs.schema import validate_spans

    measure = 1.0 if args.smoke else args.measure
    doc: dict[str, Any] = {"kind": "slo-report", "stage": args.stage}

    # --- E5: live windowed conformance next to the batch verdicts ------
    print(f"\n=== slo: e5 stage={args.stage!r} measure={measure}s ===")
    result = run_stage(args.stage, measure_s=measure, streaming=True)
    print_table(result["slo"]["rows"], title="streaming SLO state per stream")
    verdicts = []
    for flow, batch_key in (("voice", "voice_sla"), ("data", "data_sla")):
        live = result["slo"][flow]
        batch = result[batch_key]
        verdicts.append({
            "flow": flow,
            "spec": live.spec.name,
            "streaming": "PASS" if live.conformant else "FAIL",
            "batch": "PASS" if batch.conformant else "FAIL",
            "agree": live.conformant == batch.conformant,
        })
    print_table(verdicts, title="streaming verdict vs batch oracle")
    doc["e5"] = {
        "rows": result["slo"]["rows"],
        "verdicts": verdicts,
        "summary": result["slo"]["engine"].summary(),
    }

    # --- E11: scripted link flap under the convergence tracer ----------
    variants = (
        [("igp-tuned", "igp", 1.0)]
        if args.smoke
        else [("igp-tuned", "igp", 1.0), ("frr", "frr", 0.050)]
    )
    span_docs: list[dict[str, Any]] = []
    doc["e11"] = {}
    for name, mode, delay in variants:
        flap = run_variant(name, mode, delay, measure_s=4.0, trace_spans=True)
        tracer = flap["tracer"]
        rows = [
            {
                "trace": s.trace_id,
                "span": s.span_id,
                "parent": s.parent_id or "-",
                "kind": s.kind,
                "name": s.name,
                "t_start_s": round(s.t_start_s, 4),
                "t_end_s": round(s.t_end_s, 4),
            }
            for s in tracer.spans
        ]
        print_table(rows, title=f"convergence spans: {name}")
        summary = tracer.summary()
        for trace in summary["traces"]:
            cp, dp = trace["cp_healing_s"], trace["dp_healing_s"]
            print(f"[{name} {trace['link']}: control-plane healed in "
                  f"{cp:.3f}s, data plane in {dp:.3f}s]"
                  if cp is not None and dp is not None else
                  f"[{name} {trace['link']}: incomplete trace]")
        span_docs.extend(tracer.span_docs())
        doc["e11"][name] = {
            "outage_s": flap["outage_s"],
            "summary": summary,
            "healing": flap["healing"],
        }

    if args.spans:
        problems = validate_spans(span_docs)
        if problems:
            print("[spans: schema validation FAILED]")
            for p in problems:
                print(f"  - {p}")
            return 1
        with open(args.spans, "w") as fh:
            for span in span_docs:
                fh.write(json.dumps(span, separators=(",", ":")) + "\n")
        print(f"[{len(span_docs)} span(s) -> {args.spans}]")

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"[slo report -> {args.json}]")

    disagreements = [v for v in verdicts if not v["agree"]]
    return 0 if not disagreements else 1


def _show_telemetry(args: argparse.Namespace) -> int:
    """Pretty-print a bundle written by ``run --telemetry``."""
    from repro.obs.schema import validate_manifest

    try:
        with open(args.path) as fh:
            doc = json.load(fh)
    except OSError as exc:
        print(f"{args.path}: {exc.strerror or exc}")
        return 1
    except json.JSONDecodeError as exc:
        print(f"{args.path}: not JSON ({exc})")
        return 1
    problems = validate_manifest(doc)
    if problems:
        print(f"{args.path}: not a valid telemetry document:")
        for p in problems:
            print(f"  - {p}")
        return 1

    runs = doc["runs"] if doc["kind"] == "bundle" else [doc]
    if doc["kind"] == "bundle":
        print(f"bundle: experiments={','.join(doc['experiments'])} "
              f"options={doc['options']}")
    overview = []
    for i, run in enumerate(runs):
        sim = run["sim"]
        prof = run.get("profile") or {}
        cfg = run.get("config") or {}
        overview.append({
            "run": i,
            "experiment": cfg.get("experiment", "?"),
            "seed": run.get("seed"),
            "nodes": sim["nodes"],
            "links": sim["links"],
            "sim_s": round(sim["now_s"], 3),
            "events": sim["events_processed"],
            "ev/s": int(prof["events_per_sec"]) if prof.get("events_per_sec") else "-",
            "flows": len(run["flows"]),
            "hops_recorded": run["flight"]["recorded_total"],
        })
    print_table(overview, title="runs")

    for i, run in enumerate(runs):
        prof = run.get("profile")
        if prof and prof["kinds"]:
            rows = [
                {
                    "kind": k["kind"],
                    "events": k["events"],
                    "est_total_ms": round(k["est_total_s"] * 1e3, 2),
                    "mean_us": round(k["mean_s"] * 1e6, 1) if k.get("mean_s") else "-",
                }
                for k in prof["kinds"][:8]
            ]
            print_table(rows, title=f"run {i}: hottest event kinds")
        if args.flows and run["flows"]:
            print_table(run["flows"], title=f"run {i}: flow accounting")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
