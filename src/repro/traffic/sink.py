"""Flow sinks: per-flow arrival recording.

A :class:`FlowSink` registers as a node's local-delivery callback and
records, per flow, every arrival's one-way delay and sequence number.
Encapsulated deliveries are unwrapped via ``innermost()`` so end-to-end
delay spans tunnels.  Raw samples are kept (NumPy-converted lazily) —
experiments are short enough that exact percentiles beat streaming
sketches for clarity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.net.node import Node
from repro.net.packet import Packet
from repro.sim.engine import Simulator

__all__ = ["FlowRecord", "FlowSink"]


@dataclass
class FlowRecord:
    """Raw arrival log for one flow."""

    delays: list[float] = field(default_factory=list)
    arrival_times: list[float] = field(default_factory=list)
    seqs: list[int] = field(default_factory=list)
    bytes_received: int = 0
    hops_last: int = 0

    @property
    def count(self) -> int:
        return len(self.delays)

    def delays_array(self) -> np.ndarray:
        return np.asarray(self.delays, dtype=np.float64)

    def arrivals_array(self) -> np.ndarray:
        return np.asarray(self.arrival_times, dtype=np.float64)


class FlowSink:
    """Collects arrivals at one node, bucketed by flow id.

    Attach with ``FlowSink(sim).attach(node)``; multiple nodes may share a
    sink (site-wide collection).
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.flows: dict[Any, FlowRecord] = {}

    def attach(self, node: Node) -> "FlowSink":
        # Indirect through self so instruments that wrap ``on_delivery``
        # (e.g. repro.metrics.timeseries.attach_flow_series) take effect
        # even for nodes attached earlier.
        node.add_local_sink(lambda pkt: self.on_delivery(pkt))
        return self

    def on_delivery(self, pkt: Packet) -> None:
        original = pkt.innermost()
        rec = self.flows.get(original.flow)
        if rec is None:
            rec = self.flows[original.flow] = FlowRecord()
        now = self.sim.now
        rec.delays.append(now - original.created)
        rec.arrival_times.append(now)
        rec.seqs.append(original.seq)
        rec.bytes_received += original.wire_bytes
        rec.hops_last = original.hops

    # ------------------------------------------------------------------
    def record(self, flow: Any) -> FlowRecord:
        """The record for ``flow`` (empty record if nothing arrived)."""
        return self.flows.get(flow, FlowRecord())

    def received(self, flow: Any) -> int:
        return self.record(flow).count

    def __contains__(self, flow: Any) -> bool:
        return flow in self.flows
